"""Thin shim so legacy editable installs work in offline environments
that lack the ``wheel`` package (PEP 517 builds need bdist_wheel)."""
from setuptools import setup

setup()
