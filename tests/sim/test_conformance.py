"""Effect-semantics conformance: both runtimes, one meaning.

Every test here runs the same effect program against the simulated
backend (`Cluster` / `EffectRuntime`) and the asyncio backend
(`AioCluster` / `AsyncioEffectRuntime` over the loopback transport) and
asserts identical results and ordering guarantees.  What the backends
may differ on is *cost* (simulated microseconds vs. wall time); what
they must never differ on is what an effect returns, the order of an
``All``'s results, per-channel FIFO, or RPC plumbing.
"""

import pytest

from repro.sim import (AioCluster, All, Await, BatchedOneSided, Cluster,
                       Compute, NetworkConfig, OneSided, Rpc, Signal, Sleep)

BATCH_CFG = NetworkConfig(doorbell_batching=True)


@pytest.fixture(params=["sim", "aio"])
def make_cluster(request):
    def make(n=3, config=None):
        if request.param == "sim":
            return Cluster(n, config)
        return AioCluster(n, config, transport="loopback")
    return make


# -- primitives --------------------------------------------------------------


def test_compute_resumes_with_none(make_cluster, run_program):
    cluster = make_cluster()

    def txn():
        result = yield Compute(1.0)
        return result

    assert run_program(cluster, txn()) is None


def test_one_sided_returns_op_value_local_and_remote(make_cluster,
                                                     run_program):
    cluster = make_cluster()

    def txn():
        local = yield OneSided(0, lambda: "local-value")
        remote = yield OneSided(2, lambda: {"k": 41})
        return (local, remote)

    assert run_program(cluster, txn()) == ("local-value", {"k": 41})


def test_sleep_resumes_and_longer_sleep_finishes_later(make_cluster):
    cluster = make_cluster()
    finished = []

    def sleeper(name, delay):
        yield Sleep(delay)
        finished.append(name)

    # wall-clock backends need real separation; 1ms vs 40ms is ample
    cluster.engine(0).spawn(sleeper("long", 40_000.0))
    cluster.engine(0).spawn(sleeper("short", 1_000.0))
    cluster.run()
    assert finished == ["short", "long"]


# -- All fan-out/fan-in ------------------------------------------------------


def test_all_preserves_result_order(make_cluster, run_program):
    cluster = make_cluster()

    def handler(src, request):
        return request * 10
        yield  # pragma: no cover - generator marker

    cluster.engine(2).set_rpc_handler(handler)

    def txn():
        results = yield All([
            OneSided(1, lambda: "a"),
            Compute(0.5),
            Rpc(2, 7),
            OneSided(0, lambda: "local"),
            OneSided(1, lambda: "b"),
        ])
        return results

    assert run_program(cluster, txn()) == ["a", None, 70, "local", "b"]


def test_empty_all_resumes_with_empty_list(make_cluster, run_program):
    cluster = make_cluster()

    def txn():
        results = yield All([])
        return results

    assert run_program(cluster, txn()) == []


def test_nested_all(make_cluster, run_program):
    cluster = make_cluster()

    def txn():
        results = yield All([
            All([OneSided(1, lambda: 1), OneSided(2, lambda: 2)]),
            OneSided(1, lambda: 3),
        ])
        return results

    assert run_program(cluster, txn()) == [[1, 2], 3]


@pytest.mark.parametrize("config", [None, BATCH_CFG],
                         ids=["plain", "doorbell"])
def test_batched_one_sided_returns_values_in_op_order(make_cluster, config,
                                                      run_program):
    cluster = make_cluster(config=config)

    def txn():
        remote = yield BatchedOneSided(1, [lambda: "x", lambda: "y",
                                           lambda: "z"])
        local = yield BatchedOneSided(0, [lambda: 1, lambda: 2])
        single = yield BatchedOneSided(2, [lambda: "only"])
        return (remote, local, single)

    assert run_program(cluster, txn()) == (["x", "y", "z"], [1, 2],
                                           ["only"])


def test_doorbell_batching_fuses_on_both_backends(make_cluster, run_program):
    cluster = make_cluster(config=BATCH_CFG)

    def txn():
        results = yield All([OneSided(1, lambda i=i: i) for i in range(4)])
        return results

    assert run_program(cluster, txn()) == [0, 1, 2, 3]
    stats = cluster.network.stats
    assert stats.one_sided_batches == 1
    assert stats.one_sided_batched_verbs == 4
    assert stats.one_sided_remote == 0


# -- RPC and messages --------------------------------------------------------


def test_rpc_round_trip_with_effectful_handler(make_cluster, run_program):
    cluster = make_cluster()

    def handler(src, request):
        value = yield OneSided(1, lambda: request + 1)
        yield Compute(0.2)
        return (src, value)

    cluster.engine(1).set_rpc_handler(handler)

    def txn():
        reply = yield Rpc(1, 41)
        return reply

    assert run_program(cluster, txn()) == (0, 42)


def test_one_way_post_spawns_handler_with_no_reply(make_cluster, run_program):
    cluster = make_cluster()
    seen = []

    def handler(src, request):
        seen.append((src, request))
        return None
        yield  # pragma: no cover - generator marker

    cluster.engine(1).set_rpc_handler(handler)

    def txn():
        cluster.engine(0).post(1, "fire-and-forget")
        yield Sleep(1_000.0)  # keep the cluster alive until delivery

    run_program(cluster, txn())
    assert seen == [(0, "fire-and-forget")]


def test_messages_are_fifo_per_channel(make_cluster, run_program):
    cluster = make_cluster()
    received = []

    def handler(src, request):
        received.append(request)
        return None
        yield  # pragma: no cover - generator marker

    cluster.engine(1).set_rpc_handler(handler)

    def txn():
        for i in range(20):
            cluster.engine(0).post(1, i)
        yield Sleep(1_000.0)

    run_program(cluster, txn())
    assert received == list(range(20))


def test_rpc_replies_route_to_the_right_request(make_cluster):
    """Interleaved RPCs from two tasks: each gets its own reply."""
    cluster = make_cluster()

    def handler(src, request):
        yield Compute(0.1)
        return request * 2

    cluster.engine(1).set_rpc_handler(handler)
    replies = {}

    def client(name, payload):
        reply = yield Rpc(1, payload)
        replies[name] = reply

    cluster.engine(0).spawn(client("a", 10))
    cluster.engine(2).spawn(client("b", 100))
    cluster.run()
    assert replies == {"a": 20, "b": 200}


# -- signals ----------------------------------------------------------------


def test_await_suspends_until_fired_and_passes_value(make_cluster):
    cluster = make_cluster()
    signal = Signal()

    def waiter():
        value = yield Await(signal)
        return value

    def firer():
        yield Compute(1.0)
        signal.fire("payload")

    out = []
    cluster.engine(0).spawn(waiter(), on_done=out.append)
    cluster.engine(1).spawn(firer())
    cluster.run()
    assert out == ["payload"]


def test_await_on_already_fired_signal_resumes(make_cluster, run_program):
    cluster = make_cluster()
    signal = Signal()
    signal.fire(123)

    def txn():
        value = yield Await(signal)
        return value

    assert run_program(cluster, txn()) == 123


# -- failure propagation -----------------------------------------------------


def test_exception_in_remote_verb_op_propagates_out_of_run(make_cluster):
    """A verb op raising at the target aborts the run with that error on
    both backends — never a swallowed exception or a hang."""
    cluster = make_cluster()
    if hasattr(cluster, "run_timeout_s"):
        cluster.run_timeout_s = 10.0  # fail fast if propagation breaks

    def txn():
        yield OneSided(1, lambda: 1 / 0)

    cluster.engine(0).spawn(txn())
    with pytest.raises(ZeroDivisionError):
        cluster.run()


def test_exception_in_transaction_body_propagates_out_of_run(make_cluster):
    cluster = make_cluster()
    if hasattr(cluster, "run_timeout_s"):
        cluster.run_timeout_s = 10.0

    def txn():
        yield Compute(0.1)
        raise KeyError("boom")

    cluster.engine(0).spawn(txn())
    with pytest.raises(KeyError):
        cluster.run()


# -- cross-backend equivalence ----------------------------------------------


def test_composite_program_gives_identical_results_on_both_backends():
    """One program exercising the whole vocabulary must return the exact
    same value from the simulated and the asyncio runtime."""

    def build_and_run(cluster):
        def handler(src, request):
            inner = yield OneSided(0, lambda: request + 1)
            return inner

        cluster.engine(1).set_rpc_handler(handler)
        signal = Signal()

        def firer():
            yield Compute(0.5)
            signal.fire("sig")

        def txn():
            yield Compute(1.0)
            reads = yield All([OneSided(1, lambda: "r1"),
                               OneSided(0, lambda: "l1"),
                               BatchedOneSided(2, [lambda: 1, lambda: 2])])
            reply = yield Rpc(1, 10)
            fired = yield Await(signal)
            empty = yield All([])
            return (reads, reply, fired, empty)

        out = []
        cluster.engine(2).spawn(firer())
        cluster.engine(0).spawn(txn(), on_done=out.append)
        cluster.run()
        return out[0]

    sim_result = build_and_run(Cluster(3, BATCH_CFG))
    aio_result = build_and_run(AioCluster(3, BATCH_CFG,
                                          transport="loopback"))
    assert sim_result == aio_result
    assert sim_result == ((["r1", "l1", [1, 2]]), 11, "sig", [])
