"""Round-trip property tests for the wire codec (sim/codec.py).

Every descriptor kind the transaction layer registers must encode to a
picklable spec and decode to an *equivalent* op: executing the decoded
descriptor against an identical database produces the identical result
(and the identical store mutations, verified by running the follow-up
ops).  Unpicklable payloads must fail loudly, naming the offending
effect — never ship half a closure and hang a worker.
"""

import pickle

import pytest

from repro.bench.conformance import build_conformance_run, conformance_config
from repro.sim import CodecError, OpDescriptor, decode_op, encode_op
from repro.sim.codec import OP_HANDLERS, dumps
from repro.storage import LockMode
from repro.txn.executor import (_commit_op, _lock_insert_op, _lock_read_op,
                                _plain_read_op, _release_op,
                                _replica_apply_op, _to_replica_write)
from repro.placement.migration import _lease_acquire_op
from repro.txn.commit_fsm import (_decision_op, _prepare_op,
                                  _recover_query_op)
from repro.txn.occ import _validate_read_op, _validate_write_op
from repro.txn.common import BufferedWrite, WriteKind


@pytest.fixture
def twin_dbs():
    """Two independently built but identical databases."""
    def build():
        return build_conformance_run(conformance_config("sim")).database
    return build(), build()


def roundtrip(desc: OpDescriptor) -> OpDescriptor:
    """encode -> pickle -> decode, as a real transport would."""
    spec = encode_op(desc, "test effect")
    decoded = decode_op(pickle.loads(pickle.dumps(spec)))
    assert decoded == desc, "wire round trip must preserve the spec"
    return decoded


def run_twin(desc: OpDescriptor, db_a, db_b):
    """Run the original on A and the round-tripped copy on B."""
    direct = desc()
    wired = roundtrip(desc).bind(db_b.dispatch_context)()
    assert wired == direct
    return direct


KEY = 1
TXN = 7001


def test_lock_read_insert_commit_release_round_trip(twin_dbs):
    """The 2PL verb sequence behaves identically through the wire."""
    db_a, db_b = twin_dbs
    pid = db_a.partition_of("accounts", KEY)

    status = run_twin(_lock_read_op(db_a, pid, "accounts", KEY,
                                    LockMode.EXCLUSIVE, TXN), db_a, db_b)
    assert status[0] == "ok"
    # the lock really took on both sides: a second owner conflicts
    conflict = run_twin(_lock_read_op(db_a, pid, "accounts", KEY,
                                      LockMode.EXCLUSIVE, TXN + 1),
                        db_a, db_b)
    assert conflict == ("conflict",)

    run_twin(_plain_read_op(db_a, pid, "accounts", KEY), db_a, db_b)

    missing = run_twin(_lock_read_op(db_a, pid, "accounts", "no-such-key",
                                     LockMode.SHARED, TXN), db_a, db_b)
    assert missing == ("missing",)

    writes = [BufferedWrite(WriteKind.UPDATE, "accounts", KEY,
                            {"balance": 42.0}),
              BufferedWrite(WriteKind.INSERT, "accounts", 9000,
                            {"balance": 1.0})]
    versions = run_twin(_commit_op(db_a, pid, writes, TXN), db_a, db_b)
    assert (("accounts", KEY), 1) in versions  # load=v0, update -> v1
    assert db_a.store(pid).read("accounts", KEY)[0]["balance"] == 42.0
    assert db_b.store(pid).read("accounts", KEY)[0]["balance"] == 42.0

    run_twin(_release_op(db_a, pid, TXN + 1), db_a, db_b)
    # and the insert is now readable on both sides
    assert run_twin(_plain_read_op(db_a, pid, "accounts", 9000),
                    db_a, db_b)[0] == "ok"


def test_lock_insert_and_duplicate_round_trip(twin_dbs):
    db_a, db_b = twin_dbs
    pid = db_a.partition_of("accounts", 9100)
    assert run_twin(_lock_insert_op(db_a, pid, "accounts", 9100, TXN),
                    db_a, db_b) == ("ok",)
    key_pid = db_a.partition_of("accounts", KEY)
    dup = run_twin(_lock_insert_op(db_a, key_pid, "accounts", KEY, TXN),
                   db_a, db_b)
    assert dup == ("duplicate",)


def test_validate_ops_round_trip(twin_dbs):
    db_a, db_b = twin_dbs
    pid = db_a.partition_of("accounts", KEY)
    version = db_a.store(pid).version_of("accounts", KEY)

    assert run_twin(_validate_read_op(db_a, pid, "accounts", KEY, TXN,
                                      version), db_a, db_b) == "ok"
    assert run_twin(_validate_read_op(db_a, pid, "accounts", KEY, TXN,
                                      version + 5), db_a, db_b) == "stale"
    assert run_twin(_validate_write_op(db_a, pid, "accounts", KEY, TXN,
                                       version, is_insert=False),
                    db_a, db_b) == "ok"
    assert run_twin(_validate_write_op(db_a, pid, "accounts", KEY,
                                       TXN + 1, version,
                                       is_insert=False),
                    db_a, db_b) == "conflict"


def test_replica_apply_round_trip(twin_dbs):
    db_a, db_b = twin_dbs
    pid = db_a.partition_of("accounts", KEY)
    (rserver,) = db_a.replicas.replica_servers(pid)
    shipped = tuple([_to_replica_write(
        BufferedWrite(WriteKind.UPDATE, "accounts", KEY,
                      {"balance": 7.0}))])
    run_twin(_replica_apply_op(db_a, rserver, pid, shipped), db_a, db_b)
    for db in (db_a, db_b):
        fields, _v = db.replicas.store_on(rserver, pid).read("accounts",
                                                             KEY)
        assert fields["balance"] == 7.0


def test_migrate_ops_round_trip(twin_dbs):
    """Live migration's install/remove verbs behave identically wired."""
    db_a, db_b = twin_dbs
    src = db_a.partition_of("accounts", KEY)
    dst = (src + 1) % db_a.n_partitions
    fields, _version = db_a.store(src).read("accounts", KEY)

    install = OpDescriptor("migrate_install", dst, "accounts", KEY,
                           (fields,)).bind(db_a.dispatch_context)
    assert run_twin(install, db_a, db_b) == "ok"
    for db in (db_a, db_b):
        copied, _v = db.store(dst).read("accounts", KEY)
        assert copied == fields
    # idempotent re-install (a key migrating back) overwrites in place
    assert run_twin(OpDescriptor(
        "migrate_install", dst, "accounts", KEY,
        ({"balance": 5.0},)).bind(db_a.dispatch_context), db_a, db_b) == "ok"
    assert db_b.store(dst).read("accounts", KEY)[0]["balance"] == 5.0

    remove = OpDescriptor("migrate_remove", src, "accounts", KEY,
                          (TXN,)).bind(db_a.dispatch_context)
    assert run_twin(remove, db_a, db_b) == "ok"
    for db in (db_a, db_b):
        assert db.store(src).read("accounts", KEY) is None


def test_two_phase_commit_verbs_round_trip(twin_dbs):
    """The commit FSM's prepare/decision verbs behave identically
    through the wire: the stash fills, the decision applies and
    releases, on both the direct and the round-tripped side."""
    db_a, db_b = twin_dbs
    pid = db_a.partition_of("accounts", KEY)
    coordinator = (pid + 1) % db_a.n_partitions
    writes = (("update", "accounts", KEY, {"balance": 3.0}),)

    assert run_twin(_prepare_op(db_a, pid, writes, TXN, coordinator),
                    db_a, db_b) == ("ok",)
    for db in (db_a, db_b):
        assert TXN in db.commit_table.in_doubt_txns()

    run_twin(_decision_op(db_a, pid, TXN, True), db_a, db_b)
    for db in (db_a, db_b):
        assert db.store(pid).read("accounts", KEY)[0]["balance"] == 3.0
        assert not db.commit_table.stashed_entries()


def test_recover_query_round_trip(twin_dbs):
    """Presumed abort over the wire: unknown txns answer 'unknown',
    decided txns answer their recorded verdict."""
    db_a, db_b = twin_dbs
    pid = db_a.partition_of("accounts", KEY)
    assert run_twin(_recover_query_op(db_a, pid, 424242),
                    db_a, db_b) == ("unknown",)
    for db in (db_a, db_b):
        db.commit_table.record_decision(424242, True)
        db.commit_table.record_decision(424243, False)
    assert run_twin(_recover_query_op(db_a, pid, 424242),
                    db_a, db_b) == ("committed",)
    assert run_twin(_recover_query_op(db_a, pid, 424243),
                    db_a, db_b) == ("aborted",)


def test_lease_acquire_round_trip(twin_dbs):
    """Controller-election lease grants behave identically wired:
    vacancy and expiry grant, a live rival is refused."""
    db_a, db_b = twin_dbs
    assert run_twin(_lease_acquire_op(db_a, 0, 1, 0.0, 100.0),
                    db_a, db_b) == ("granted", None)
    assert run_twin(_lease_acquire_op(db_a, 0, 1, 50.0, 100.0),
                    db_a, db_b) == ("granted", 1)  # renewal
    assert run_twin(_lease_acquire_op(db_a, 0, 2, 60.0, 100.0),
                    db_a, db_b) == ("held", 1)     # rival inside ttl
    assert run_twin(_lease_acquire_op(db_a, 0, 2, 200.0, 100.0),
                    db_a, db_b) == ("granted", 1)  # ttl lapsed: failover


def test_every_registered_kind_is_exercised():
    """A new verb kind must come with a round-trip test above."""
    assert set(OP_HANDLERS) == {
        "lock_read", "plain_read", "lock_insert", "commit", "release",
        "validate_write", "validate_read", "replica_apply",
        "migrate_install", "migrate_remove",
        "prepare", "decision", "recover_query", "lease_acquire"}


# -- failure modes -----------------------------------------------------------


def test_encoding_a_raw_closure_names_the_effect():
    with pytest.raises(CodecError) as err:
        encode_op(lambda: 1, effect="OneSided(kind='lock_read') to server 3")
    assert "OneSided(kind='lock_read') to server 3" in str(err.value)
    assert "process boundary" in str(err.value)


def test_dumps_unpicklable_payload_names_the_effect():
    with pytest.raises(CodecError) as err:
        dumps(lambda: 1, what="Rpc(kind='chiller_inner', ...) to server 2")
    assert "Rpc(kind='chiller_inner', ...) to server 2" in str(err.value)


def test_unbound_descriptor_refuses_to_execute():
    desc = OpDescriptor("plain_read", 0, "accounts", 1)
    with pytest.raises(CodecError, match="unbound"):
        desc()


def test_unknown_kind_refuses_to_dispatch(twin_dbs):
    db_a, _ = twin_dbs
    desc = OpDescriptor("warp_drive", 0).bind(db_a.dispatch_context)
    with pytest.raises(CodecError, match="warp_drive"):
        desc()


def test_pickled_descriptor_arrives_unbound(twin_dbs):
    db_a, _ = twin_dbs
    pid = db_a.partition_of("accounts", KEY)
    desc = _plain_read_op(db_a, pid, "accounts", KEY)
    clone = pickle.loads(pickle.dumps(desc))
    assert clone == desc
    with pytest.raises(CodecError, match="unbound"):
        clone()  # the receiving process must bind its own context


def test_wire_pickle_protocol_is_pinned_and_asserted():
    """Every wire frame must carry the pinned (highest) protocol: the
    two-byte pickle preamble is \\x80 <proto>."""
    import pickle

    from repro.sim.codec import WIRE_PICKLE_PROTOCOL, WireVerbs, dumps

    assert WIRE_PICKLE_PROTOCOL == pickle.HIGHEST_PROTOCOL
    frame = dumps(WireVerbs(1, (("lock_read", 0, "t", 1, ()),), False),
                  "a test envelope")
    assert frame[0] == 0x80
    assert frame[1] == WIRE_PICKLE_PROTOCOL
    wire = pickle.loads(frame)
    assert wire.token == 1 and wire.batched is False


def test_aio_codec_body_uses_pinned_protocol():
    from repro.sim.aio_runtime import _codec_body
    from repro.sim.codec import WIRE_PICKLE_PROTOCOL
    from repro.sim.effects import OneWay

    body = _codec_body(OneWay(("kind", "payload")))
    assert body is not None
    assert body[1] == WIRE_PICKLE_PROTOCOL
