"""Unit tests for the simulated CPU core."""

import pytest

from repro.sim import Core, Simulator


def test_fifo_service():
    sim = Simulator()
    core = Core(sim)
    finished = []
    core.execute(3.0, lambda: finished.append(("a", sim.now)))
    core.execute(2.0, lambda: finished.append(("b", sim.now)))
    sim.run()
    assert finished == [("a", 3.0), ("b", 5.0)]


def test_work_submitted_later_starts_after_now():
    sim = Simulator()
    core = Core(sim)
    finished = []
    sim.schedule(10.0, lambda: core.execute(1.0,
                                            lambda: finished.append(sim.now)))
    sim.run()
    assert finished == [11.0]


def test_busy_time_accumulates():
    sim = Simulator()
    core = Core(sim)
    core.execute(3.0, lambda: None)
    core.execute(4.0, lambda: None)
    sim.run()
    assert core.busy_time == pytest.approx(7.0)


def test_utilization_with_idle_gap():
    sim = Simulator()
    core = Core(sim)
    core.execute(5.0, lambda: None)
    sim.run()
    sim.run_until(10.0)
    assert core.utilization() == pytest.approx(0.5)


def test_zero_cost_work_still_queues_fifo():
    sim = Simulator()
    core = Core(sim)
    order = []
    core.execute(2.0, lambda: order.append("slow"))
    core.execute(0.0, lambda: order.append("fast"))
    sim.run()
    assert order == ["slow", "fast"]


def test_negative_cost_rejected():
    sim = Simulator()
    core = Core(sim)
    with pytest.raises(ValueError):
        core.execute(-1.0, lambda: None)
