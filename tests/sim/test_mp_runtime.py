"""Multiprocess backend: conformance, benchmark path, and teardown.

These tests spawn real worker processes (multiprocessing "spawn"), so
the builders and drivers they hand the workers live at module level —
the children re-import them by reference.
"""

import asyncio
import dataclasses
import multiprocessing

import pytest

from repro.bench import RunConfig, make_cluster, run_benchmark, \
    run_mp_benchmark
from repro.bench.conformance import (DRIVER_HOME, build_conformance_run,
                                     conformance_config,
                                     conformance_requests, decision_program,
                                     run_conformance)
from repro.bench.setups import make_tpcc_run
from repro.sim import (MpRunError, MpRunSpec, MpTemplateCluster, OneSided,
                       Sleep, run_mp_workers)
from repro.sim.codec import WireVerbs
from repro.sim.mp_runtime import MpWorkerTransport
from repro.txn.common import seed_txn_ids


def no_leaked_workers() -> bool:
    return not [p for p in multiprocessing.active_children()
                if p.name.startswith("mp-worker-")]


def mp_config(**overrides) -> RunConfig:
    defaults = dict(n_partitions=2, concurrent_per_engine=2,
                    horizon_us=15_000.0, warmup_us=0.0, n_replicas=1,
                    backend="mp", mp_run_timeout_s=120.0)
    defaults.update(overrides)
    return RunConfig(**defaults)


# -- parent-side wiring ------------------------------------------------------


def test_make_cluster_mp_returns_inert_template():
    cluster = make_cluster(mp_config())
    assert isinstance(cluster, MpTemplateCluster)
    with pytest.raises(RuntimeError, match="template"):
        cluster.run()
    with pytest.raises(RuntimeError, match="worker processes"):
        cluster.engine(0).spawn(iter(()))


def test_run_benchmark_requires_a_spec_for_mp():
    run = build_conformance_run(conformance_config("mp"))
    with pytest.raises(ValueError, match="mp_spec"):
        run_benchmark(run.workload, run.executor, run.config)


def test_mp_workers_knob_bounds():
    from repro.sim import effective_mp_workers
    assert effective_mp_workers(mp_config()) == 2
    assert effective_mp_workers(mp_config(mp_workers=1)) == 1
    assert effective_mp_workers(mp_config(mp_workers=9)) == 2  # capped
    with pytest.raises(ValueError):
        effective_mp_workers(mp_config(mp_workers=0))


# -- cross-backend conformance -----------------------------------------------


@pytest.mark.parametrize("executor", ["2pl", "occ"])
def test_identical_decisions_on_sim_aio_and_mp(executor):
    """The shared effect program must commit/abort identically — same
    decisions, same abort reasons, same order — on every backend."""
    sim = run_conformance("sim", executor)
    assert any(committed for _p, committed, _r in sim)
    assert ("transfer", False, "logical") in sim
    assert ("transfer", False, "read_miss") in sim
    assert run_conformance("aio", executor) == sim
    assert run_conformance("mp", executor) == sim
    assert no_leaked_workers()


# -- end-to-end benchmark path ------------------------------------------------


def test_tpcc_cell_runs_on_mp_backend():
    """The full setups path (Database + replicas + RPC dispatch) on real
    worker processes, wall-clock metrics merged at the parent."""
    run = make_tpcc_run("2pl", mp_config(horizon_us=20_000.0))
    assert run.mp_spec is not None
    result = run.run()
    assert result.metrics.commits > 0
    assert result.metrics.wall_seconds > 0.0
    assert result.metrics.events_processed > 0
    summary = result.perf_summary()
    assert summary["backend"] == "mp"
    assert summary["workers"] == 2
    # the workers' measured traffic is merged into the parent result
    stats = result.database.cluster.network.stats
    assert stats.total_remote_ops() > 0
    assert stats.total_bytes() > 0
    assert no_leaked_workers()


def test_run_mp_benchmark_merges_worker_metrics():
    config = mp_config(horizon_us=20_000.0)
    spec = make_tpcc_run("2pl", config).mp_spec
    result = run_mp_benchmark(spec, config)
    attempts_per_proc = result.metrics.attempts_by_proc()
    assert sum(attempts_per_proc.values()) == result.metrics.attempts > 0
    assert no_leaked_workers()


# -- teardown regressions -----------------------------------------------------
#
# Workers must be *joined*, never leaked, when a run aborts mid-horizon
# — whether the failure is a builder crash, an unshippable payload, or
# a hang caught by the timeout.


def exploding_builder(config):
    raise RuntimeError("boom-at-build")


def null_driver(run_obj, cluster, worker_id):
    return dict


def test_worker_build_failure_aborts_run_and_joins_workers():
    with pytest.raises(MpRunError, match="boom-at-build"):
        run_mp_workers(MpRunSpec(builder=exploding_builder,
                                 args=(mp_config(),), driver=null_driver),
                       mp_config())
    assert no_leaked_workers()


def closure_driver(run_obj, cluster, worker_id):
    """Ships a raw closure at a remote server: must fail loudly."""
    def program():
        yield OneSided(1, lambda: 1)

    if cluster.owns(0):
        cluster.engine(0).spawn(program())
    return dict


def test_raw_closure_to_remote_server_raises_codec_error():
    config = mp_config()
    spec = MpRunSpec(builder=build_conformance_run, args=(config,),
                     driver=closure_driver)
    with pytest.raises(MpRunError, match="process boundary"):
        run_mp_workers(spec, config)
    assert no_leaked_workers()


def hanging_driver(run_obj, cluster, worker_id):
    def forever():
        yield Sleep(3_600_000_000.0)  # an hour of wall clock

    for server in cluster.owned_servers():
        cluster.engine(server).spawn(forever())
    return dict


def test_hung_worker_is_terminated_not_leaked():
    config = mp_config(mp_run_timeout_s=4.0)
    spec = MpRunSpec(builder=build_conformance_run, args=(config,),
                     driver=hanging_driver)
    with pytest.raises(MpRunError, match="timed out"):
        run_mp_workers(spec, config)
    assert no_leaked_workers()


# -- wire path: transport x codec ---------------------------------------------
#
# The fast wire path (shared-memory rings, struct-packed hot-verb
# frames) must be invisible to decision logic: the conformance program
# commits/aborts identically however its frames travel and however they
# are encoded.


@pytest.mark.parametrize("executor", ["2pl", "occ"])
@pytest.mark.parametrize("transport,codec", [("shm", "packed"),
                                             ("shm", "pickle"),
                                             ("tcp", "pickle")])
def test_wire_path_conformance(executor, transport, codec):
    sim = run_conformance("sim", executor)
    assert run_conformance("mp", executor, mp_transport=transport,
                           mp_codec=codec) == sim
    assert no_leaked_workers()


def test_unknown_mp_transport_fails_loudly():
    config = mp_config(mp_transport="carrier-pigeon")
    spec = MpRunSpec(builder=build_conformance_run, args=(config,),
                     driver=null_driver)
    with pytest.raises(MpRunError, match="carrier-pigeon"):
        run_mp_workers(spec, config)
    assert no_leaked_workers()


def stats_driver(run_obj, cluster, worker_id):
    """Runs the conformance program and reports measured wire bytes."""
    seed_txn_ids(worker_id)
    decisions: list = []
    if cluster.owns(DRIVER_HOME):
        cluster.engine(DRIVER_HOME).spawn(
            decision_program(run_obj, decisions))

    def finalize() -> dict:
        return {"decisions": decisions,
                "wire_bytes": cluster.network.stats.wire_bytes_sent}

    return finalize


def _conformance_wire_bytes(mp_codec: str) -> int:
    config = dataclasses.replace(conformance_config("mp"),
                                 mp_codec=mp_codec)
    spec = MpRunSpec(builder=build_conformance_run, args=(config,),
                     driver=stats_driver)
    payloads = run_mp_workers(spec, config)
    total = sum(p["wire_bytes"] for p in payloads)
    assert total > 0, "the conformance program must cross the wire"
    return total


def test_packed_codec_shrinks_measured_wire_bytes():
    """The same fixed program ships measurably fewer bytes packed than
    pickled — the NetworkStats accounting reflects *actual* frame sizes,
    not nominal estimates."""
    assert _conformance_wire_bytes("packed") < _conformance_wire_bytes(
        "pickle")
    assert no_leaked_workers()


# -- idle() accounting --------------------------------------------------------


class _StubWorkerCluster:
    """Just enough cluster for transport-level unit tests."""

    worker_id = 0

    def owner_of(self, server_id: int) -> int:
        return 1  # everything routes to the (fake) peer worker


def test_idle_counts_popped_but_unwritten_frames():
    """Regression: a frame the writer task has popped from its channel
    queue but not yet written to the socket must keep ``idle()`` False —
    quiescence on queue-emptiness alone would let a worker shut down
    with a frame still in this process."""
    transport = MpWorkerTransport(_StubWorkerCluster(), listener=None,
                                  ports={})
    transport._loop = object()  # "started", but no writer task runs
    queue = asyncio.Queue()
    transport._queues[1] = queue
    assert transport.idle()

    wire = WireVerbs(1, (("release", 1, None, None, (7001,)),), False)
    sent = transport.send(0, 1, wire, "a test verb")
    assert sent > 0
    assert not transport.idle()

    body = queue.get_nowait()  # the writer pops the frame...
    assert body and queue.empty()
    assert not transport.idle(), \
        "frame is popped but unwritten: the transport must stay busy"

    transport._in_flight -= 1  # ...and finishes writing it
    assert transport.idle()
