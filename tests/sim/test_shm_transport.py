"""SpscRing unit tests (sim/shm_transport.py).

Single-process coverage of the ring invariants the shared-memory
transport rests on: frames come out exactly as they went in and in
order, wraparound at the capacity boundary is invisible, a full ring
refuses (rather than corrupts), and a frame that can *never* fit fails
loudly with the config knob in the message.  Cross-process behaviour
rides the mp conformance tests (``--mp-transport shm``).
"""

import random

import pytest

from repro.sim import RingFrameError, SpscRing
from repro.sim.shm_transport import _HEADER_BYTES, _LEN_BYTES


@pytest.fixture
def ring():
    r = SpscRing.create(capacity=256)
    yield r
    r.close()
    r.unlink()


def test_fifo_round_trip(ring):
    frames = [bytes([i]) * (i + 1) for i in range(10)]
    for frame in frames:
        assert ring.try_push(frame)
    for frame in frames:
        assert ring.try_pop() == frame
    assert ring.try_pop() is None


def test_empty_ring_pops_none(ring):
    assert ring.try_pop() is None


def test_wraparound_preserves_frames(ring):
    """Interleaved push/pop drives the cursors far past the capacity,
    so frames straddle the wrap boundary many times over."""
    rng = random.Random(7)
    sent = []
    received = []
    seq = 0
    for _ in range(500):
        if rng.random() < 0.6:
            frame = bytes([seq % 256]) * rng.randrange(1, 40)
            if ring.try_push(frame):
                sent.append(frame)
                seq += 1
        else:
            frame = ring.try_pop()
            if frame is not None:
                received.append(frame)
    while (frame := ring.try_pop()) is not None:
        received.append(frame)
    assert received == sent
    assert seq > 20, "the interleave must actually exercise the ring"


def test_full_ring_refuses_then_recovers(ring):
    frame = b"x" * 40
    pushed = 0
    while ring.try_push(frame):
        pushed += 1
    assert pushed == 256 // (_LEN_BYTES + 40)
    assert not ring.try_push(frame)          # refused, not corrupted
    assert ring.try_pop() == frame           # drain one slot...
    assert ring.try_push(frame)              # ...and the producer resumes
    for _ in range(pushed):
        assert ring.try_pop() == frame
    assert ring.try_pop() is None


def test_oversize_frame_names_the_config_knob(ring):
    with pytest.raises(RingFrameError, match="mp_shm_ring_bytes"):
        ring.try_push(b"y" * 512)
    # the refusal must leave the ring intact
    assert ring.try_push(b"ok")
    assert ring.try_pop() == b"ok"


def test_exactly_full_frame_fits(ring):
    body = b"z" * (ring.capacity - _LEN_BYTES)
    assert ring.try_push(body)
    assert not ring.try_push(b"")
    assert ring.try_pop() == body


def test_attach_sees_creator_frames():
    """Same-process stand-in for the worker handshake: the consumer
    attaches by name to a ring the producer created."""
    producer = SpscRing.create(capacity=128)
    try:
        assert producer.try_push(b"hello")
        consumer = SpscRing.attach(producer.name)
        try:
            assert consumer.capacity == producer.capacity
            assert consumer.try_pop() == b"hello"
            assert consumer.try_pop() is None
        finally:
            consumer.close()
    finally:
        producer.close()
        producer.unlink()


def test_segment_layout():
    ring = SpscRing.create(capacity=64)
    try:
        assert ring.shm.size == _HEADER_BYTES + 64
        assert ring.capacity == 64
    finally:
        ring.close()
        ring.unlink()


def test_unlink_is_idempotent():
    ring = SpscRing.create(capacity=64)
    ring.close()
    ring.unlink()
    ring.unlink()  # second unlink must not raise
