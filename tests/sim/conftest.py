"""Shared helpers for the sim/aio runtime test suites."""

import pytest


@pytest.fixture
def run_program():
    """Spawn one program on server 0, run the cluster, return its result.

    Works on any cluster-like object (`Cluster` or `AioCluster`): both
    expose ``engine(i).spawn`` and ``run()``.
    """
    def run(cluster, gen):
        out = []
        cluster.engine(0).spawn(gen, on_done=out.append)
        cluster.run()
        assert out, "program never completed"
        return out[0]

    return run
