"""Packed hot-verb frame codec tests (sim/codec.py FrameCodec).

The struct-packed wire format must be *invisible*: for every hot-verb
chain and every reply, decoding the packed frame yields exactly the
wire object the pickle frame would have carried — same specs, same
values, same token/batched flags.  Anything the packed encoder cannot
express must fall back to a whole-frame pickle (never a corrupt or
partial packed frame), and the packed form must actually be smaller
than the pickle it replaces, or the fast path is pointless.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.codec import (FRAME_PICKLE, FRAME_VERB_REPLY, FRAME_VERBS,
                             FRAME_VERBS_TRACED, HOT_VERBS,
                             WIRE_PICKLE_PROTOCOL, CodecError, FrameCodec,
                             WireRpc, WireVerbReply, WireVerbs,
                             register_wire_atom)
from repro.storage import LockMode

TABLES = ("accounts", "district", "usertable", "warehouse")


def make_codec(packed: bool = True) -> FrameCodec:
    return FrameCodec(TABLES, packed=packed)


def roundtrip(codec: FrameCodec, wire, src: int = 1, dst: int = 2):
    body = codec.encode(src, dst, wire, "a test frame")
    got_src, got_dst, got_wire = codec.decode(body)
    assert (got_src, got_dst) == (src, dst)
    return body, got_wire


# -- value strategies ---------------------------------------------------------

# keys the storage layer actually uses, plus adversarial scalars: int64
# boundaries, ints that overflow into blobs, NaN-free floats, unicode
# far outside ASCII, raw bytes, and nested tuples of all of those
scalar_keys = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.integers(min_value=2 ** 63, max_value=2 ** 80),      # blob path
    st.integers(min_value=-(2 ** 80), max_value=-(2 ** 63) - 1),
    st.floats(allow_nan=False),
    st.text(max_size=24),
    st.binary(max_size=24),
)
keys = st.one_of(scalar_keys,
                 st.tuples(scalar_keys, scalar_keys),
                 st.tuples(scalar_keys, st.tuples(scalar_keys)))

specs = st.tuples(
    st.sampled_from(HOT_VERBS),
    st.integers(min_value=0, max_value=0xFFFF),              # partition
    st.one_of(st.none(), st.sampled_from(TABLES)),           # table
    keys,
    st.tuples(keys, st.sampled_from([LockMode.SHARED,
                                     LockMode.EXCLUSIVE])),  # args w/ atom
)

verbs_frames = st.builds(
    WireVerbs,
    token=st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    specs=st.tuples(specs) | st.tuples(specs, specs, specs),
    batched=st.booleans(),
)

reply_values = st.one_of(
    keys,
    st.lists(st.integers(), max_size=4),                     # blob path
    st.dictionaries(st.text(max_size=8), st.integers(), max_size=4),
)

reply_frames = st.builds(
    WireVerbReply,
    token=st.integers(min_value=0, max_value=2 ** 62),
    values=st.tuples(reply_values) | st.tuples(reply_values, reply_values),
    batched=st.booleans(),
)


# -- the property: packed path == pickle path ---------------------------------


@settings(max_examples=200, deadline=None)
@given(wire=verbs_frames)
def test_packed_verbs_equal_pickle_path(wire):
    packed_codec = make_codec(packed=True)
    pickle_codec = make_codec(packed=False)
    _, from_packed = roundtrip(packed_codec, wire)
    _, from_pickle = roundtrip(pickle_codec, wire)
    assert from_packed == wire
    assert from_packed == from_pickle


@settings(max_examples=200, deadline=None)
@given(wire=reply_frames)
def test_packed_reply_equals_pickle_path(wire):
    packed_codec = make_codec(packed=True)
    pickle_codec = make_codec(packed=False)
    _, from_packed = roundtrip(packed_codec, wire)
    _, from_pickle = roundtrip(pickle_codec, wire)
    assert from_packed == wire
    assert from_packed == from_pickle


@settings(max_examples=100, deadline=None)
@given(wire=verbs_frames)
def test_cross_codec_decode(wire):
    """A packed peer's frames decode on an unpacked peer and vice versa
    (``packed=False`` only changes what gets *encoded*)."""
    packed_codec = make_codec(packed=True)
    pickle_codec = make_codec(packed=False)
    body = packed_codec.encode(3, 4, wire, "a test frame")
    assert pickle_codec.decode(body) == (3, 4, wire)
    body = pickle_codec.encode(3, 4, wire, "a test frame")
    assert packed_codec.decode(body) == (3, 4, wire)


# -- per-verb fixed cases (readable failures for each hot verb) ---------------


@pytest.mark.parametrize("kind", HOT_VERBS)
def test_every_hot_verb_packs(kind):
    codec = make_codec()
    wire = WireVerbs(9, ((kind, 3, "accounts", (0, "k"), (17,)),), False)
    body, got = roundtrip(codec, wire)
    assert body[0] == FRAME_VERBS
    assert got == wire


def test_all_hot_chain_ships_one_packed_frame():
    """A fused doorbell chain of hot verbs stays packed end to end."""
    codec = make_codec()
    wire = WireVerbs(42, (
        ("lock_read", 0, "accounts", 11, (LockMode.EXCLUSIVE, 7001)),
        ("plain_read", 1, "usertable", (2, 3), ()),
        ("commit", 0, None, None, ((("accounts", 11, {"balance": 1.0}),),
                                   7001)),
        ("release", 1, None, None, (7001,)),
    ), True)
    body, got = roundtrip(codec, wire)
    assert body[0] == FRAME_VERBS
    assert got == wire


def test_reply_round_trip_fixed():
    codec = make_codec()
    wire = WireVerbReply(7, (("ok", {"balance": 5.0}, 2), ("conflict",),
                             [1, 2, 3], None), True)
    body, got = roundtrip(codec, wire)
    assert body[0] == FRAME_VERB_REPLY
    assert got == wire


def test_atoms_pack_to_one_index_byte():
    """Lock modes were registered as wire atoms by the executor layer;
    they must ride as a 1-byte index, not a pickled class reference."""
    codec = make_codec()
    wire = WireVerbs(1, (("lock_read", 0, "accounts", 1,
                          (LockMode.SHARED, 1)),), False)
    body, got = roundtrip(codec, wire)
    assert got == wire
    assert body[0] == FRAME_VERBS
    assert pickle.dumps(LockMode.SHARED,
                        protocol=WIRE_PICKLE_PROTOCOL) not in body


def test_fresh_atom_registration_is_idempotent():
    before = roundtrip(make_codec(),
                       WireVerbs(1, (("release", 0, None, None,
                                      (LockMode.SHARED,)),), False))[0]
    register_wire_atom(LockMode.SHARED)  # second registration: no-op
    after = roundtrip(make_codec(),
                      WireVerbs(1, (("release", 0, None, None,
                                     (LockMode.SHARED,)),), False))[0]
    assert before == after


# -- fallback paths -----------------------------------------------------------


def test_non_registered_table_falls_back_to_pickle_frame():
    codec = make_codec()
    wire = WireVerbs(1, (("lock_read", 0, "not_a_table", 1, ()),), False)
    body, got = roundtrip(codec, wire)
    assert body[0] == FRAME_PICKLE
    assert got == wire


def test_non_hot_verb_falls_back_to_pickle_frame():
    codec = make_codec()
    wire = WireVerbs(1, (("migrate_install", 0, "accounts", 1,
                          ({"balance": 1.0},)),), False)
    body, got = roundtrip(codec, wire)
    assert body[0] == FRAME_PICKLE
    assert got == wire


def test_mixed_chain_falls_back_whole_frame():
    """One cold verb in a chain demotes the *whole* frame (frames are
    atomic: a target never sees half a chain packed)."""
    codec = make_codec()
    wire = WireVerbs(1, (
        ("lock_read", 0, "accounts", 1, (LockMode.SHARED, 1)),
        ("migrate_remove", 0, "accounts", 1, (1,)),
    ), True)
    body, got = roundtrip(codec, wire)
    assert body[0] == FRAME_PICKLE
    assert got == wire


def test_non_verb_wire_objects_always_pickle():
    codec = make_codec()
    wire = WireRpc(5, ("kind", {"body": 1}))
    body, got = roundtrip(codec, wire)
    assert body[0] == FRAME_PICKLE
    assert got == wire


def test_unpicklable_payload_still_raises_codec_error():
    """The pickle-fallback contract: CodecError semantics unchanged."""
    codec = make_codec()
    with pytest.raises(CodecError, match="RPC to server 2"):
        codec.encode(0, 2, WireRpc(1, lambda: 1), "RPC to server 2")


def test_unpicklable_arg_inside_hot_verb_raises_codec_error():
    codec = make_codec()
    wire = WireVerbs(1, (("commit", 0, None, None,
                          (lambda: 1, 7001)),), False)
    with pytest.raises(CodecError, match="commit chain"):
        codec.encode(0, 1, wire, "commit chain")


def test_table_registry_overflow_is_loud():
    with pytest.raises(ValueError, match="table registry"):
        FrameCodec(tuple(f"t{i}" for i in range(0xFF)))


# -- the point of all this: packed is smaller ---------------------------------


def test_packed_hot_chain_is_smaller_than_pickled():
    """The wire-byte claim the NetworkStats accounting relies on: a
    typical hot-verb chain's packed frame undercuts its pickle."""
    wire = WireVerbs(1234, (
        ("lock_read", 2, "warehouse", 7, (LockMode.EXCLUSIVE, 900001)),
        ("lock_read", 2, "district", (7, 3), (LockMode.EXCLUSIVE, 900001)),
        ("plain_read", 2, "usertable", 55, ()),
        ("release", 2, None, None, (900001,)),
    ), True)
    packed = make_codec(packed=True).encode(0, 2, wire, "chain")
    pickled = make_codec(packed=False).encode(0, 2, wire, "chain")
    assert packed[0] == FRAME_VERBS and pickled[0] == FRAME_PICKLE
    assert len(packed) < len(pickled) / 2, (len(packed), len(pickled))


def test_packed_reply_is_smaller_than_pickled():
    wire = WireVerbReply(1234, (("ok", {"balance": 10.0}, 3),
                                ("ok", {"balance": 4.5}, 1)), True)
    packed = make_codec(packed=True).encode(2, 0, wire, "reply")
    pickled = make_codec(packed=False).encode(2, 0, wire, "reply")
    assert len(packed) < len(pickled), (len(packed), len(pickled))


# -- trace context on the wire ------------------------------------------------
# Trace ids (repro.obs) ride the packed frames under a separate tag
# (FRAME_VERBS_TRACED) so untraced frames stay byte-identical to the
# pre-tracing format; the pickle escape hatch carries the dataclass
# field for free.  Both paths must round-trip the id exactly.

traced_verbs_frames = st.builds(
    WireVerbs,
    token=st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    specs=st.tuples(specs) | st.tuples(specs, specs, specs),
    batched=st.booleans(),
    trace=st.integers(min_value=0, max_value=2 ** 63 - 1),
)


@settings(max_examples=200, deadline=None)
@given(wire=traced_verbs_frames)
def test_trace_context_round_trips_both_codecs(wire):
    for packed in (True, False):
        codec = make_codec(packed=packed)
        _, got = roundtrip(codec, wire)
        assert got == wire
        assert got.trace == wire.trace


@pytest.mark.parametrize("packed", [True, False])
@pytest.mark.parametrize("kind", HOT_VERBS)
def test_every_hot_verb_carries_trace(kind, packed):
    codec = make_codec(packed=packed)
    wire = WireVerbs(9, ((kind, 3, "accounts", (0, "k"), (17,)),), False,
                     trace=(5 << 40) | 123)
    body, got = roundtrip(codec, wire)
    if packed:
        assert body[0] == FRAME_VERBS_TRACED
    assert got == wire


def test_untraced_packed_frame_bytes_unchanged():
    """trace=0 keeps the original FRAME_VERBS layout: the tracing
    field must not cost untraced runs a single wire byte."""
    codec = make_codec()
    untraced = WireVerbs(9, (("lock_read", 3, "accounts", 1,
                              (LockMode.EXCLUSIVE, 5)),), False)
    traced = WireVerbs(9, untraced.specs, False, trace=1)
    body_untraced = codec.encode(0, 1, untraced, "frame")
    body_traced = codec.encode(0, 1, traced, "frame")
    assert body_untraced[0] == FRAME_VERBS
    assert body_traced[0] == FRAME_VERBS_TRACED
    assert len(body_traced) == len(body_untraced) + 8
    assert codec.decode(body_untraced)[2].trace == 0
    assert codec.decode(body_traced)[2].trace == 1


@settings(max_examples=100, deadline=None)
@given(trace=st.integers(min_value=0, max_value=2 ** 63 - 1))
def test_wire_rpc_carries_trace_via_pickle(trace):
    """Cross-worker RPC envelopes always pickle; the trace field rides
    along on both codec modes unchanged."""
    wire = WireRpc(7, ("inner", {"warehouse": 3}), trace)
    for packed in (True, False):
        _, got = roundtrip(make_codec(packed=packed), wire)
        assert got == wire
        assert got.trace == trace
