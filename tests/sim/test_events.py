"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(9.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(3.0, lambda i=i: fired.append(i))
    sim.run()
    assert fired == list(range(10))


def test_schedule_inside_event():
    sim = Simulator()
    fired = []

    def first():
        fired.append(sim.now)
        sim.schedule(2.0, lambda: fired.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == [1.0, 3.0]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    handle.cancel()  # second cancel must be harmless
    sim.run()
    assert fired == []


def test_cancel_after_firing_is_safe():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    sim.run()
    handle.cancel()  # late cancel cannot un-fire or corrupt the queue
    assert fired == ["x"]
    assert sim.events_fired == 1


def test_cancel_one_of_same_time_events_preserves_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("a"))
    victim = sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(2.0, lambda: fired.append("c"))
    victim.cancel()
    sim.run()
    assert fired == ["a", "c"]
    assert sim.events_fired == 2


def test_cancel_from_inside_an_earlier_event():
    sim = Simulator()
    fired = []
    later = sim.schedule(5.0, lambda: fired.append("late"))
    sim.schedule(1.0, lambda: later.cancel())
    sim.run()
    assert fired == []
    assert sim.now == 1.0  # clock never advances to the cancelled event


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run_until(2.0)
    assert fired == [1, 2]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 2, 3]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run_until(42.0)
    assert sim.now == 42.0


def test_pending_counts_uncancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    h1.cancel()
    assert sim.pending() == 1


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]
