"""Unit tests for the RDMA-flavoured network model."""

import pytest

from repro.sim import Network, NetworkConfig, Simulator


def make_net(**overrides):
    sim = Simulator()
    cfg = NetworkConfig(**overrides)
    return sim, Network(sim, cfg)


def test_local_one_sided_pays_only_local_latency():
    sim, net = make_net(local_access_us=0.5)
    done = []
    net.one_sided(0, 0, lambda: 42, lambda v: done.append((v, sim.now)))
    sim.run()
    assert done == [(42, 0.5)]
    assert net.stats.one_sided_local == 1
    assert net.stats.one_sided_remote == 0


def test_remote_one_sided_round_trip_latency():
    sim, net = make_net(one_way_us=2.0, verb_overhead_us=0.5)
    done = []
    net.one_sided(0, 1, lambda: "ok", lambda v: done.append((v, sim.now)))
    sim.run()
    value, when = done[0]
    assert value == "ok"
    assert when == pytest.approx(2 * 2.0 + 0.5)
    assert net.stats.one_sided_remote == 1


def test_one_sided_op_runs_at_target_arrival_time():
    sim, net = make_net(one_way_us=2.0, verb_overhead_us=0.5)
    executed_at = []
    net.one_sided(0, 1, lambda: executed_at.append(sim.now), lambda v: None)
    sim.run()
    assert executed_at == [pytest.approx(2.5)]


def test_messages_delivered_fifo_per_channel():
    sim, net = make_net()
    received = []
    net.register_handler(1, lambda src, p: received.append(p))
    for i in range(20):
        net.send(0, 1, i)
    sim.run()
    assert received == list(range(20))


def test_fifo_holds_across_interleaved_sends():
    """Messages sent at different times must not overtake each other."""
    sim, net = make_net(one_way_us=1.0, rpc_overhead_us=0.0)
    received = []
    net.register_handler(1, lambda src, p: received.append(p))
    net.send(0, 1, "first")
    sim.schedule(0.5, lambda: net.send(0, 1, "second"))
    sim.run()
    assert received == ["first", "second"]


def test_send_to_unregistered_handler_raises():
    sim, net = make_net()
    with pytest.raises(KeyError):
        net.send(0, 7, "hello")


def test_stats_count_messages():
    sim, net = make_net()
    net.register_handler(1, lambda src, p: None)
    net.send(0, 1, "a")
    net.send(0, 1, "b")
    sim.run()
    assert net.stats.messages == 2
    assert net.stats.total_remote_ops() == 2


def test_handler_receives_source_id():
    sim, net = make_net()
    seen = []
    net.register_handler(2, lambda src, p: seen.append(src))
    net.send(5, 2, "x")
    sim.run()
    assert seen == [5]


# -- FIFO monotonicity under same-instant sends ------------------------------

def test_fifo_time_strictly_increases_for_same_instant_sends():
    """N deliveries requested at the same instant on one channel must get
    strictly increasing timestamps: nothing ever overtakes, and nothing
    ties (ties would leave ordering to the heap's whim)."""
    sim, net = make_net(one_way_us=1.0, rpc_overhead_us=0.0)
    times = [net._fifo_time(0, 1, 1.0) for _ in range(50)]
    assert all(b > a for a, b in zip(times, times[1:]))


def test_fifo_channels_are_directional_and_independent():
    sim, net = make_net(one_way_us=1.0, rpc_overhead_us=0.0)
    forward = net._fifo_time(0, 1, 1.0)
    backward = net._fifo_time(1, 0, 1.0)
    other = net._fifo_time(0, 2, 1.0)
    # only the (0, 1) channel was bumped; fresh channels get exact times
    assert forward == backward == other == 1.0
    assert net._fifo_time(0, 1, 1.0) > forward


def test_same_instant_one_sided_verbs_execute_in_issue_order():
    sim, net = make_net(one_way_us=1.0, verb_overhead_us=0.0)
    executed = []
    for i in range(10):
        net.one_sided(0, 1, lambda i=i: executed.append(i), lambda v: None)
    sim.run()
    assert executed == list(range(10))


# -- per-kind byte accounting -------------------------------------------------

def test_send_accounts_bytes_by_kind():
    sim, net = make_net()
    net.register_handler(1, lambda src, p: None)
    net.send(0, 1, "abcd", kind="greeting")
    net.send(0, 1, "ef", kind="greeting")
    net.send(0, 1, {"k": 1}, kind="other")
    sim.run()
    assert net.stats.bytes_by_kind["greeting"] == 6
    assert net.stats.bytes_by_kind["other"] == 8 + 1 + 8
    assert net.stats.total_bytes() == 6 + 17


def test_one_sided_accounts_nominal_or_explicit_bytes():
    from repro.sim.network import VERB_NOMINAL_BYTES

    sim, net = make_net()
    net.one_sided(0, 1, lambda: None, lambda v: None)
    net.one_sided(0, 1, lambda: None, lambda v: None,
                  kind="replicate", nbytes=500)
    sim.run()
    assert net.stats.bytes_by_kind["one_sided"] == VERB_NOMINAL_BYTES
    assert net.stats.bytes_by_kind["replicate"] == 500


def test_approx_payload_bytes_walks_structures():
    from dataclasses import dataclass

    from repro.sim import approx_payload_bytes

    assert approx_payload_bytes(None) == 1
    assert approx_payload_bytes(7) == 8
    assert approx_payload_bytes("hello") == 5
    assert approx_payload_bytes((1, "ab")) == 8 + 8 + 2

    @dataclass
    class Body:
        a: int
        b: str

    assert approx_payload_bytes(Body(1, "xy")) == 8 + 8 + 2
    assert approx_payload_bytes(lambda: None) == 64  # opaque


# -- local vs. wire accounting (regression: local traffic inflated totals) ---


def test_local_sends_never_inflate_wire_totals():
    """A server talking to itself crosses no wire: the remote counters,
    total_remote_ops, and total_bytes must all stay untouched."""
    sim, net = make_net()
    net.register_handler(0, lambda src, p: None)
    net.one_sided(0, 0, lambda: None, lambda v: None)
    net.send(0, 0, "hello")
    sim.run()
    assert net.stats.one_sided_local == 1
    assert net.stats.messages_local == 1
    assert net.stats.one_sided_remote == 0
    assert net.stats.messages == 0
    assert net.stats.total_remote_ops() == 0
    assert net.stats.total_bytes() == 0
    assert net.stats.bytes_by_kind == {}
    # the traffic is still visible, just on the local books
    assert net.stats.total_local_bytes() > 0
    assert net.stats.local_bytes_by_kind["one_sided"] > 0
    assert net.stats.local_bytes_by_kind["message"] == 5


def test_mixed_local_and_remote_split_cleanly():
    sim, net = make_net()
    net.register_handler(0, lambda src, p: None)
    net.register_handler(1, lambda src, p: None)
    net.send(0, 0, "xx", kind="m")       # local
    net.send(0, 1, "yyyy", kind="m")     # wire
    net.one_sided(0, 0, lambda: None, lambda v: None, nbytes=10)
    net.one_sided(0, 1, lambda: None, lambda v: None, nbytes=20)
    sim.run()
    assert net.stats.messages == 1
    assert net.stats.messages_local == 1
    assert net.stats.total_remote_ops() == 2  # one message, one verb
    assert net.stats.bytes_by_kind == {"m": 4, "one_sided": 20}
    assert net.stats.local_bytes_by_kind == {"m": 2, "one_sided": 10}


# -- payload-walk bounds (regression: cyclic payload hung accounting) --------


def test_cyclic_payload_accounting_terminates():
    from repro.sim import approx_payload_bytes

    cyclic = [1, 2]
    cyclic.append(cyclic)
    size = approx_payload_bytes(cyclic)  # must not recurse forever
    assert size > 0

    a, b = {}, {}
    a["peer"], b["peer"] = b, a
    assert approx_payload_bytes(a) > 0


def test_high_fanout_cycles_and_shared_dags_walk_in_linear_time():
    """A cycle with fanout >= 3 (or a deeply shared DAG) must cost one
    visit per distinct container, not branching^depth work."""
    import time

    from repro.sim import approx_payload_bytes

    wide_cycle = []
    wide_cycle.extend([wide_cycle] * 50)
    shared = [0]
    for _ in range(30):
        shared = [shared, shared, shared]  # 3^30 paths, 31 containers

    start = time.perf_counter()
    assert approx_payload_bytes(wide_cycle) > 0
    assert approx_payload_bytes(shared) > 0
    assert time.perf_counter() - start < 0.5


def test_deeply_nested_payload_gets_flat_fallback():
    from repro.sim import approx_payload_bytes
    from repro.sim.network import (MESSAGE_NOMINAL_BYTES,
                                   PAYLOAD_WALK_MAX_DEPTH)

    nested = "leaf"
    for _ in range(PAYLOAD_WALK_MAX_DEPTH * 4):
        nested = [nested]
    size = approx_payload_bytes(nested)
    # capped: walked levels plus one flat charge, not 64 levels deep
    assert size == 8 * PAYLOAD_WALK_MAX_DEPTH + MESSAGE_NOMINAL_BYTES


def test_cyclic_payload_send_terminates_and_accounts():
    sim, net = make_net()
    net.register_handler(1, lambda src, p: None)
    cyclic = {"next": None}
    cyclic["next"] = cyclic
    net.send(0, 1, cyclic, kind="cyclic")
    sim.run()
    assert net.stats.bytes_by_kind["cyclic"] > 0


def test_payload_walk_can_be_gated_off_the_hot_path():
    from repro.sim.network import MESSAGE_NOMINAL_BYTES

    sim, net = make_net(account_payload_bytes=False)
    net.register_handler(1, lambda src, p: None)
    net.send(0, 1, "x" * 10_000, kind="big")
    sim.run()
    # flat nominal charge, no walk of the 10k-char payload
    assert net.stats.bytes_by_kind["big"] == MESSAGE_NOMINAL_BYTES
    # explicit sizes still win over the gate
    net.send(0, 1, "y" * 10_000, kind="sized", nbytes=10_000)
    sim.run()
    assert net.stats.bytes_by_kind["sized"] == 10_000


# -- bandwidth term (NetworkConfig.bandwidth_gbps) ----------------------------

def test_bandwidth_off_by_default_and_zero_cost():
    cfg = NetworkConfig()
    assert cfg.bandwidth_gbps is None
    assert cfg.serialization_us(1_000_000) == 0.0


def test_serialization_us_scales_with_bytes_and_bandwidth():
    cfg = NetworkConfig(bandwidth_gbps=100.0)
    # 1250 bytes = 10_000 bits; at 100 Gbit/s that is 0.1 us
    assert cfg.serialization_us(1250) == pytest.approx(0.1)
    # half the bandwidth, double the time
    slow = NetworkConfig(bandwidth_gbps=50.0)
    assert slow.serialization_us(1250) == pytest.approx(0.2)


def test_large_remote_verb_costs_more_than_a_cas():
    sim, net = make_net(one_way_us=2.0, verb_overhead_us=0.5,
                        bandwidth_gbps=10.0)
    done = []
    net.one_sided(0, 1, lambda: "cas", lambda v: done.append(sim.now),
                  kind="cas", nbytes=32)
    sim.run()
    cas_when = done[0]

    sim2, net2 = make_net(one_way_us=2.0, verb_overhead_us=0.5,
                          bandwidth_gbps=10.0)
    done2 = []
    net2.one_sided(0, 1, lambda: "big", lambda v: done2.append(sim2.now),
                   kind="replicate", nbytes=8_000)
    sim2.run()
    big_when = done2[0]
    assert big_when > cas_when
    # the gap is exactly the extra serialization time of the bigger payload
    cfg = NetworkConfig(bandwidth_gbps=10.0)
    assert big_when - cas_when == pytest.approx(
        cfg.serialization_us(8_000) - cfg.serialization_us(32))


def test_bandwidth_charges_messages_from_accounted_bytes():
    sim, net = make_net(one_way_us=1.0, rpc_overhead_us=0.0,
                        bandwidth_gbps=1.0)
    received = []
    net.register_handler(1, lambda src, p: received.append(sim.now))
    net.send(0, 1, "x" * 1000, kind="bulk")
    sim.run()
    nbytes = net.stats.bytes_by_kind["bulk"]
    cfg = NetworkConfig(bandwidth_gbps=1.0)
    assert received[0] == pytest.approx(1.0 + cfg.serialization_us(nbytes))


def test_bandwidth_charges_batch_chains_for_total_payload():
    sim, net = make_net(one_way_us=2.0, verb_overhead_us=0.5,
                        batched_verb_us=0.1, doorbell_batching=True,
                        bandwidth_gbps=10.0)
    done = []
    net.one_sided_batch(0, 1, [lambda: 1, lambda: 2],
                        lambda vs: done.append(sim.now),
                        kinds=[("one_sided", 500), ("one_sided", 500)])
    sim.run()
    cfg = NetworkConfig(one_way_us=2.0, verb_overhead_us=0.5,
                        batched_verb_us=0.1, doorbell_batching=True,
                        bandwidth_gbps=10.0)
    expected = cfg.one_sided_batch_rtt(2, total_nbytes=1000)
    assert done[0] == pytest.approx(expected)


def test_local_traffic_never_pays_bandwidth():
    sim, net = make_net(local_access_us=0.5, bandwidth_gbps=0.001)
    done = []
    net.one_sided(0, 0, lambda: 1, lambda v: done.append(sim.now),
                  nbytes=1_000_000)
    sim.run()
    assert done == [pytest.approx(0.5)]


def test_bandwidth_none_is_bit_identical_to_seed_model():
    for kwargs in ({}, {"bandwidth_gbps": None}):
        sim, net = make_net(one_way_us=1.7, verb_overhead_us=0.3, **kwargs)
        done = []
        net.one_sided(0, 1, lambda: 1, lambda v: done.append(sim.now),
                      nbytes=4096)
        sim.run()
        assert done == [pytest.approx(NetworkConfig().one_sided_rtt())]


# -- per-executor traffic breakdown (Fig.-style bytes-by-phase) ---------------


def test_per_server_books_track_issuing_executor():
    sim, net = make_net()
    net.one_sided(0, 1, lambda: 1, lambda v: None, kind="lock_read",
                  nbytes=32)
    net.one_sided(2, 1, lambda: 1, lambda v: None, kind="commit",
                  nbytes=48)
    net.one_sided(0, 0, lambda: 1, lambda v: None, kind="lock_read",
                  nbytes=32)  # local: never in the wire books
    sim.run()
    assert net.stats.bytes_by_server_kind[0] == {"lock_read": 32}
    assert net.stats.bytes_by_server_kind[2] == {"commit": 48}
    # per-server books always sum to the cluster-wide wire book
    total = {}
    for per in net.stats.bytes_by_server_kind.values():
        for kind, nbytes in per.items():
            total[kind] = total.get(kind, 0) + nbytes
    assert total == net.stats.bytes_by_kind


def test_bytes_by_phase_folds_kinds_into_txn_phases():
    sim, net = make_net()
    net.one_sided(0, 1, lambda: 1, lambda v: None, kind="lock_read",
                  nbytes=32)
    net.one_sided(0, 1, lambda: 1, lambda v: None, kind="validate_write",
                  nbytes=16)
    net.one_sided(0, 1, lambda: 1, lambda v: None, kind="replicate",
                  nbytes=100)
    net.one_sided(0, 1, lambda: 1, lambda v: None, kind="commit",
                  nbytes=24)
    net.one_sided(0, 1, lambda: 1, lambda v: None, kind="release",
                  nbytes=8)
    net.one_sided(0, 1, lambda: 1, lambda v: None, kind="mystery",
                  nbytes=5)
    sim.run()
    assert net.stats.bytes_by_phase() == {
        "lock": 32, "validate": 16, "replicate": 100,
        "commit": 24 + 8, "other": 5}
    assert net.stats.bytes_by_server_phase()[0]["commit"] == 32


def test_merge_from_folds_per_server_books():
    from repro.sim import NetworkStats
    a = NetworkStats()
    b = NetworkStats()
    a.record_one_sided("lock_read", 32, remote=True, server=1)
    b.record_one_sided("lock_read", 10, remote=True, server=1)
    b.record_one_sided("commit", 7, remote=True, server=2)
    a.merge_from(b)
    assert a.bytes_by_server_kind == {1: {"lock_read": 42},
                                      2: {"commit": 7}}
