"""Unit tests for the RDMA-flavoured network model."""

import pytest

from repro.sim import Network, NetworkConfig, Simulator


def make_net(**overrides):
    sim = Simulator()
    cfg = NetworkConfig(**overrides)
    return sim, Network(sim, cfg)


def test_local_one_sided_pays_only_local_latency():
    sim, net = make_net(local_access_us=0.5)
    done = []
    net.one_sided(0, 0, lambda: 42, lambda v: done.append((v, sim.now)))
    sim.run()
    assert done == [(42, 0.5)]
    assert net.stats.one_sided_local == 1
    assert net.stats.one_sided_remote == 0


def test_remote_one_sided_round_trip_latency():
    sim, net = make_net(one_way_us=2.0, verb_overhead_us=0.5)
    done = []
    net.one_sided(0, 1, lambda: "ok", lambda v: done.append((v, sim.now)))
    sim.run()
    value, when = done[0]
    assert value == "ok"
    assert when == pytest.approx(2 * 2.0 + 0.5)
    assert net.stats.one_sided_remote == 1


def test_one_sided_op_runs_at_target_arrival_time():
    sim, net = make_net(one_way_us=2.0, verb_overhead_us=0.5)
    executed_at = []
    net.one_sided(0, 1, lambda: executed_at.append(sim.now), lambda v: None)
    sim.run()
    assert executed_at == [pytest.approx(2.5)]


def test_messages_delivered_fifo_per_channel():
    sim, net = make_net()
    received = []
    net.register_handler(1, lambda src, p: received.append(p))
    for i in range(20):
        net.send(0, 1, i)
    sim.run()
    assert received == list(range(20))


def test_fifo_holds_across_interleaved_sends():
    """Messages sent at different times must not overtake each other."""
    sim, net = make_net(one_way_us=1.0, rpc_overhead_us=0.0)
    received = []
    net.register_handler(1, lambda src, p: received.append(p))
    net.send(0, 1, "first")
    sim.schedule(0.5, lambda: net.send(0, 1, "second"))
    sim.run()
    assert received == ["first", "second"]


def test_send_to_unregistered_handler_raises():
    sim, net = make_net()
    with pytest.raises(KeyError):
        net.send(0, 7, "hello")


def test_stats_count_messages():
    sim, net = make_net()
    net.register_handler(1, lambda src, p: None)
    net.send(0, 1, "a")
    net.send(0, 1, "b")
    sim.run()
    assert net.stats.messages == 2
    assert net.stats.total_remote_ops() == 2


def test_handler_receives_source_id():
    sim, net = make_net()
    seen = []
    net.register_handler(2, lambda src, p: seen.append(src))
    net.send(5, 2, "x")
    sim.run()
    assert seen == [5]
