"""Tests for the EffectRuntime seam and its doorbell-batching path."""

import pytest

from repro.sim import (All, BatchedOneSided, Cluster, Compute,
                       EffectRuntime, NetworkConfig, OneSided, Rpc)

BATCH_CFG = NetworkConfig(local_access_us=0.1, one_way_us=1.0,
                          verb_overhead_us=0.3, rpc_overhead_us=0.0,
                          doorbell_batching=True, batched_verb_us=0.1)
PLAIN_CFG = NetworkConfig(local_access_us=0.1, one_way_us=1.0,
                          verb_overhead_us=0.3, rpc_overhead_us=0.0)


# -- the Engine facade delegates to the runtime ------------------------------

def test_engine_is_a_facade_over_effect_runtime():
    cluster = Cluster(1, PLAIN_CFG)
    engine = cluster.engine(0)
    assert isinstance(engine.runtime, EffectRuntime)
    assert engine.core is engine.runtime.core
    assert engine.active_tasks == engine.runtime.active_tasks == 0


def test_custom_runtime_can_be_injected():
    from repro.sim import Engine, Network, Simulator

    performed = []

    class TracingRuntime(EffectRuntime):
        def perform(self, effect, cont):
            performed.append(type(effect).__name__)
            super().perform(effect, cont)

    sim = Simulator()
    net = Network(sim, PLAIN_CFG)
    runtime = TracingRuntime(sim, net, 0)
    engine = Engine(sim, net, 0, runtime=runtime)

    def txn():
        yield Compute(1.0)
        yield OneSided(0, lambda: None)

    engine.spawn(txn())
    sim.run()
    assert performed == ["Compute", "OneSided"]


# -- doorbell batching: counters and completion times ------------------------

def test_same_destination_round_costs_one_fused_round_trip():
    """The acceptance property: an All of N verbs to one remote server
    completes in one_sided_batch_rtt(N) and counts as ONE round trip."""
    cluster = Cluster(2, BATCH_CFG)
    out = []

    def txn():
        results = yield All([OneSided(1, lambda: "a"),
                             OneSided(1, lambda: "b"),
                             OneSided(1, lambda: "c")])
        out.append((results, cluster.sim.now))

    cluster.engine(0).spawn(txn())
    cluster.run()
    results, when = out[0]
    assert results == ["a", "b", "c"]
    # 2*one_way + verb_overhead + 2 extra chained verbs, exactly once
    assert when == pytest.approx(BATCH_CFG.one_sided_batch_rtt(3))
    stats = cluster.network.stats
    assert stats.one_sided_batches == 1
    assert stats.one_sided_batched_verbs == 3
    assert stats.one_sided_remote == 0
    assert stats.total_remote_ops() == 1


def test_batching_off_keeps_per_verb_round_trips():
    cluster = Cluster(2, PLAIN_CFG)
    out = []

    def txn():
        results = yield All([OneSided(1, lambda: "a"),
                             OneSided(1, lambda: "b"),
                             OneSided(1, lambda: "c")])
        out.append((results, cluster.sim.now))

    cluster.engine(0).spawn(txn())
    cluster.run()
    results, when = out[0]
    assert results == ["a", "b", "c"]
    assert when == pytest.approx(PLAIN_CFG.one_sided_rtt(), abs=1e-6)
    stats = cluster.network.stats
    assert stats.one_sided_batches == 0
    assert stats.one_sided_remote == 3


def test_explicit_batched_effect_fuses_when_enabled():
    cluster = Cluster(2, BATCH_CFG)
    out = []

    def txn():
        results = yield BatchedOneSided(1, [lambda: 1, lambda: 2])
        out.append((results, cluster.sim.now))

    cluster.engine(0).spawn(txn())
    cluster.run()
    results, when = out[0]
    assert results == [1, 2]
    assert when == pytest.approx(BATCH_CFG.one_sided_batch_rtt(2))
    assert cluster.network.stats.one_sided_batches == 1


def test_explicit_batched_effect_falls_back_when_disabled():
    """With the knob off a BatchedOneSided behaves exactly like the flat
    All it replaced — per-verb round trips, same results."""
    cluster = Cluster(2, PLAIN_CFG)
    out = []

    def txn():
        results = yield BatchedOneSided(1, [lambda: 1, lambda: 2])
        out.append((results, cluster.sim.now))

    cluster.engine(0).spawn(txn())
    cluster.run()
    results, when = out[0]
    assert results == [1, 2]
    assert when == pytest.approx(PLAIN_CFG.one_sided_rtt(), abs=1e-6)
    stats = cluster.network.stats
    assert stats.one_sided_batches == 0
    assert stats.one_sided_remote == 2


def test_local_verbs_never_batch():
    """Doorbell batching is a NIC concept; local groups stay plain
    memory accesses even with the knob on."""
    cluster = Cluster(2, BATCH_CFG)
    out = []

    def txn():
        results = yield BatchedOneSided(0, [lambda: "x", lambda: "y"])
        out.append((results, cluster.sim.now))

    cluster.engine(0).spawn(txn())
    cluster.run()
    results, when = out[0]
    assert results == ["x", "y"]
    assert when == pytest.approx(BATCH_CFG.local_access_us)
    stats = cluster.network.stats
    assert stats.one_sided_local == 2
    assert stats.one_sided_batches == 0


def test_single_verb_group_is_not_fused():
    cluster = Cluster(2, BATCH_CFG)
    out = []

    def txn():
        results = yield BatchedOneSided(1, [lambda: 9])
        out.append(results)

    cluster.engine(0).spawn(txn())
    cluster.run()
    assert out == [[9]]
    stats = cluster.network.stats
    assert stats.one_sided_batches == 0
    assert stats.one_sided_remote == 1


def test_mixed_all_batches_only_same_destination_remotes():
    """Local verbs, lone remotes, and RPCs keep their own paths; only
    the multi-verb remote groups fuse.  Result order is preserved."""
    cluster = Cluster(3, BATCH_CFG)
    out = []

    def handler(src, request):
        return request + 100
        yield  # pragma: no cover - generator marker

    cluster.engine(2).set_rpc_handler(handler)

    def txn():
        results = yield All([
            OneSided(1, lambda: "r1a"),    # fused pair -> server 1
            OneSided(0, lambda: "local"),  # local, never batched
            Rpc(2, 5),                     # messages are not verbs
            OneSided(1, lambda: "r1b"),    # fused pair -> server 1
            OneSided(2, lambda: "lone"),   # single verb -> no fuse
        ])
        out.append(results)

    cluster.engine(0).spawn(txn())
    cluster.run()
    assert out == [["r1a", "local", 105, "r1b", "lone"]]
    stats = cluster.network.stats
    assert stats.one_sided_batches == 1
    assert stats.one_sided_batched_verbs == 2
    assert stats.one_sided_remote == 1  # the lone verb to server 2
    assert stats.one_sided_local == 1


def test_batch_ops_execute_at_target_arrival_in_chain_order():
    cluster = Cluster(2, BATCH_CFG)
    executed = []

    def txn():
        yield BatchedOneSided(1, [lambda: executed.append(("a",
                                                           cluster.sim.now)),
                                  lambda: executed.append(("b",
                                                           cluster.sim.now))])

    cluster.engine(0).spawn(txn())
    cluster.run()
    arrival = (BATCH_CFG.one_way_us + BATCH_CFG.verb_overhead_us
               + BATCH_CFG.batched_verb_us)
    assert [name for name, _ in executed] == ["a", "b"]
    for _, when in executed:
        assert when == pytest.approx(arrival)


def test_network_one_sided_batch_rejects_degenerate_chains():
    from repro.sim import Network, Simulator

    sim = Simulator()
    net = Network(sim, BATCH_CFG)
    with pytest.raises(ValueError):
        net.one_sided_batch(0, 0, [lambda: 1, lambda: 2], lambda r: None)
    with pytest.raises(ValueError):
        net.one_sided_batch(0, 1, [lambda: 1], lambda r: None)


# -- dispatch table ----------------------------------------------------------
#
# perform() routes effects through a per-class dispatch table instead of
# an isinstance ladder.  The table must stay semantically equivalent:
# effect *subclasses* dispatch like their base (resolved via the MRO and
# cached), unknown objects fail loudly, and subclass overrides of the
# underlying do_* / send_rpc hooks still take effect (the table binds
# class-level functions, never instance methods).


def test_effect_subclass_dispatches_like_its_base():
    class TracedCompute(Compute):
        pass

    cluster = Cluster(1, PLAIN_CFG)
    out = []

    def txn():
        yield TracedCompute(1.0)
        out.append("ran")

    cluster.engine(0).spawn(txn())
    cluster.run()
    assert out == ["ran"]

    from repro.sim.runtime import _EFFECT_DISPATCH
    assert TracedCompute in _EFFECT_DISPATCH  # MRO walk cached the type


def test_unknown_effect_fails_loudly():
    cluster = Cluster(1, PLAIN_CFG)

    def txn():
        yield object()

    with pytest.raises(TypeError, match="unknown effect"):
        cluster.engine(0).spawn(txn())
        cluster.run()


def test_dispatch_table_respects_send_rpc_overrides():
    """Rpc must dispatch through self.send_rpc so subclass overrides
    (the mp runtime's token-routing send_rpc) keep working."""
    from repro.sim import Engine, Network, Simulator

    seen = []

    class RoutedRuntime(EffectRuntime):
        def send_rpc(self, effect, cont):
            seen.append(effect.target)
            super().send_rpc(effect, cont)

    sim = Simulator()
    net = Network(sim, PLAIN_CFG)
    runtime = RoutedRuntime(sim, net, 0)
    engine = Engine(sim, net, 0, runtime=runtime)

    def rpc_handler(src, body):
        return "pong"
        yield  # pragma: no cover - makes this a generator function

    engine.set_rpc_handler(rpc_handler)

    def txn():
        yield Rpc(0, ("ping", None))

    engine.spawn(txn())
    sim.run()
    assert seen == [0]
