"""Asyncio-backend specifics: transports, clock, latch, wire accounting.

Effect *semantics* are covered by the conformance suite
(`test_conformance.py`); this file tests what is unique to the asyncio
backend — the TCP wire protocol, the wall clock, run-to-quiescence, and
the wire/local traffic split.
"""

import pytest

from repro.sim import (AioCluster, All, Compute, NetworkConfig, OneSided,
                      Rpc, Sleep, TcpTransport)


# -- TCP transport -----------------------------------------------------------


def test_tcp_transport_round_trips_effects(run_program):
    cluster = AioCluster(3, transport="tcp")

    def handler(src, request):
        value = yield OneSided(2, lambda: request * 2)
        return value

    cluster.engine(1).set_rpc_handler(handler)

    def txn():
        verbs = yield All([OneSided(1, lambda: "a"),
                           OneSided(2, lambda: "b")])
        reply = yield Rpc(1, 21)
        return (verbs, reply)

    assert run_program(cluster, txn()) == (["a", "b"], 42)


def test_tcp_transport_sends_real_frames(run_program):
    cluster = AioCluster(2, transport="tcp")

    def txn():
        yield OneSided(1, lambda: None, nbytes=400)

    run_program(cluster, txn())
    transport = cluster.transport
    assert isinstance(transport, TcpTransport)
    # request frame + reply frame, both length-prefixed pickles
    assert transport.frames_sent == 2
    # the 400-byte accounted payload is padded onto the wire
    assert transport.wire_bytes_sent > 400
    assert transport.idle()


def test_tcp_messages_fifo_per_channel(run_program):
    cluster = AioCluster(2, transport="tcp")
    received = []

    def handler(src, request):
        received.append(request)
        return None
        yield  # pragma: no cover - generator marker

    cluster.engine(1).set_rpc_handler(handler)

    def txn():
        for i in range(50):
            cluster.engine(0).post(1, i)
        yield Sleep(20_000.0)

    run_program(cluster, txn())
    assert received == list(range(50))


def test_unknown_transport_name_rejected():
    with pytest.raises(ValueError):
        AioCluster(2, transport="carrier-pigeon")


# -- clock and run loop ------------------------------------------------------


def test_clock_advances_in_wall_microseconds(run_program):
    cluster = AioCluster(1)
    seen = []

    def txn():
        seen.append(cluster.sim.now)
        yield Sleep(5_000.0)  # 5ms wall
        seen.append(cluster.sim.now)

    run_program(cluster, txn())
    before, after = seen
    assert after - before >= 4_000.0  # timers may fire slightly early-ish
    assert cluster.sim.events_fired > 0


def test_clock_rezeros_for_each_run(run_program):
    """A reused cluster must get a fresh horizon: wall time that passed
    between runs (even the previous run itself) must not count."""
    import time

    cluster = AioCluster(1)

    def first():
        yield Sleep(20_000.0)

    run_program(cluster, first())
    time.sleep(0.05)  # idle wall time between runs
    seen = []

    def second():
        seen.append(cluster.sim.now)
        yield Sleep(1_000.0)

    run_program(cluster, second())
    assert seen[0] < 20_000.0  # restarted near zero, not ~70ms in


def test_run_returns_only_when_spawned_handlers_finish(run_program):
    """RPC handler tasks spawned mid-run also hold the cluster open."""
    cluster = AioCluster(2)
    done = []

    def handler(src, request):
        yield Sleep(3_000.0)
        done.append("handler")
        return None

    cluster.engine(1).set_rpc_handler(handler)

    def txn():
        cluster.engine(0).post(1, "work")
        yield Compute(0.1)

    run_program(cluster, txn())
    assert done == ["handler"]


def test_max_events_is_rejected():
    cluster = AioCluster(1)
    with pytest.raises(ValueError):
        cluster.run(max_events=10)


def test_cluster_is_reusable_after_an_aborted_run(run_program):
    """A run killed by a raising verb op must not poison the next run:
    the task latch and the transport escrow both reset."""
    cluster = AioCluster(2, transport="tcp", run_timeout_s=10.0)

    def bad():
        yield OneSided(1, lambda: 1 / 0)

    cluster.engine(0).spawn(bad())
    with pytest.raises(ZeroDivisionError):
        cluster.run()

    def good():
        value = yield OneSided(1, lambda: "recovered")
        return value

    assert run_program(cluster, good()) == "recovered"
    assert cluster.transport.idle()


def test_compute_cost_is_recorded_not_slept(run_program):
    cluster = AioCluster(1)

    def txn():
        yield Compute(10_000_000.0)  # 10 simulated seconds

    import time
    start = time.perf_counter()
    run_program(cluster, txn())
    assert time.perf_counter() - start < 1.0
    assert cluster.engine(0).runtime.cpu_us == 10_000_000.0


# -- traffic accounting ------------------------------------------------------


def test_aio_stats_split_local_and_wire(run_program):
    cluster = AioCluster(2)

    def handler(src, request):
        return request
        yield  # pragma: no cover - generator marker

    for sid in range(2):
        cluster.engine(sid).set_rpc_handler(handler)

    def txn():
        yield OneSided(0, lambda: None)   # local verb
        yield OneSided(1, lambda: None)   # wire verb
        yield Rpc(0, "self")              # local message
        yield Rpc(1, "peer")              # wire message

    run_program(cluster, txn())
    stats = cluster.network.stats
    assert stats.one_sided_local == 1
    assert stats.one_sided_remote == 1
    # each RPC is a request message plus an rpc_reply message; the
    # self-RPC pair stays local, the peer pair crosses the wire
    assert stats.messages_local == 2
    assert stats.messages == 2
    assert stats.total_remote_ops() == 1 + 2
    assert stats.total_bytes() > 0
    assert stats.total_local_bytes() > 0
