"""Unit tests for the coroutine execution engines."""

import pytest

from repro.sim import (All, Cluster, Compute, NetworkConfig, OneSided, Rpc,
                       Sleep)


CFG = NetworkConfig(local_access_us=0.1, one_way_us=1.0,
                    verb_overhead_us=0.0, rpc_overhead_us=0.0)


def test_compute_consumes_engine_cpu():
    cluster = Cluster(1, CFG)
    results = []

    def txn():
        yield Compute(5.0)
        return "done"

    cluster.engine(0).spawn(txn(), results.append)
    cluster.run()
    assert results == ["done"]
    assert cluster.engine(0).core.busy_time == pytest.approx(5.0)
    assert cluster.sim.now == pytest.approx(5.0)


def test_two_coroutines_share_one_core_fifo():
    cluster = Cluster(1, CFG)
    done_at = {}

    def txn(name):
        yield Compute(3.0)
        done_at[name] = cluster.sim.now

    cluster.engine(0).spawn(txn("a"))
    cluster.engine(0).spawn(txn("b"))
    cluster.run()
    assert done_at["a"] == pytest.approx(3.0)
    assert done_at["b"] == pytest.approx(6.0)


def test_network_wait_does_not_hold_cpu():
    """While one txn waits on the network, another can use the core."""
    cluster = Cluster(2, CFG)
    done_at = {}

    def remote_reader():
        yield OneSided(1, lambda: 7)
        done_at["reader"] = cluster.sim.now

    def local_cruncher():
        yield Compute(1.5)
        done_at["cruncher"] = cluster.sim.now

    cluster.engine(0).spawn(remote_reader())
    cluster.engine(0).spawn(local_cruncher())
    cluster.run()
    assert done_at["reader"] == pytest.approx(2.0)   # round trip
    assert done_at["cruncher"] == pytest.approx(1.5)  # overlapped


def test_one_sided_resumes_with_result():
    cluster = Cluster(2, CFG)
    out = []

    def txn():
        value = yield OneSided(1, lambda: 41)
        return value + 1

    cluster.engine(0).spawn(txn(), out.append)
    cluster.run()
    assert out == [42]


def test_all_runs_effects_concurrently():
    cluster = Cluster(3, CFG)
    out = []

    def txn():
        results = yield All([OneSided(1, lambda: "a"),
                             OneSided(2, lambda: "b")])
        out.append((results, cluster.sim.now))

    cluster.engine(0).spawn(txn())
    cluster.run()
    results, when = out[0]
    assert results == ["a", "b"]
    assert when == pytest.approx(2.0)  # one round trip, not two


def test_all_empty_effect_list():
    cluster = Cluster(1, CFG)
    out = []

    def txn():
        results = yield All([])
        out.append(results)

    cluster.engine(0).spawn(txn())
    cluster.run()
    assert out == [[]]


def test_rpc_consumes_remote_cpu():
    cluster = Cluster(2, CFG)
    out = []

    def handler(src, request):
        yield Compute(4.0)
        return request * 10

    cluster.engine(1).set_rpc_handler(handler)

    def txn():
        reply = yield Rpc(1, 5)
        out.append((reply, cluster.sim.now))

    cluster.engine(0).spawn(txn())
    cluster.run()
    reply, when = out[0]
    assert reply == 50
    # one-way + 4us handler CPU + one-way reply
    assert when == pytest.approx(1.0 + 4.0 + 1.0)
    assert cluster.engine(1).core.busy_time == pytest.approx(4.0)
    assert cluster.engine(0).core.busy_time == pytest.approx(0.0)


def test_rpc_without_handler_raises():
    cluster = Cluster(2, CFG)

    def txn():
        yield Rpc(1, "ping")

    cluster.engine(0).spawn(txn())
    with pytest.raises(RuntimeError):
        cluster.run()


def test_sleep_advances_time_without_cpu():
    cluster = Cluster(1, CFG)
    out = []

    def txn():
        yield Sleep(9.0)
        out.append(cluster.sim.now)

    cluster.engine(0).spawn(txn())
    cluster.run()
    assert out == [9.0]
    assert cluster.engine(0).core.busy_time == 0.0


def test_yield_from_composes_subprocedures():
    cluster = Cluster(2, CFG)
    out = []

    def fetch(target):
        value = yield OneSided(target, lambda: 10)
        return value

    def txn():
        a = yield from fetch(1)
        b = yield from fetch(1)
        return a + b

    cluster.engine(0).spawn(txn(), out.append)
    cluster.run()
    assert out == [20]


def test_post_delivers_one_way_message():
    cluster = Cluster(2, CFG)
    seen = []

    def handler(src, request):
        seen.append((src, request))
        return None
        yield  # pragma: no cover - makes this a generator

    cluster.engine(1).set_rpc_handler(handler)
    cluster.engine(0).post(1, "notify")
    cluster.run()
    assert seen == [(0, "notify")]


def test_nested_all_effects():
    """An All may contain Alls; results mirror the nesting."""
    cluster = Cluster(3, CFG)
    out = []

    def txn():
        results = yield All([
            All([OneSided(1, lambda: "aa"), OneSided(2, lambda: "ab")]),
            OneSided(1, lambda: "b"),
            All([]),
        ])
        out.append((results, cluster.sim.now))

    cluster.engine(0).spawn(txn())
    cluster.run()
    results, when = out[0]
    assert results == [["aa", "ab"], "b", []]
    assert when == pytest.approx(2.0, abs=1e-6)  # still one round trip


def test_deeply_nested_all_preserves_structure():
    cluster = Cluster(2, CFG)
    out = []

    def txn():
        results = yield All([All([All([OneSided(1, lambda: 1)])])])
        out.append(results)

    cluster.engine(0).spawn(txn())
    cluster.run()
    assert out == [[[[1]]]]


def test_signal_double_fire_raises():
    from repro.sim import Signal

    signal = Signal()
    signal.fire("first")
    with pytest.raises(RuntimeError):
        signal.fire("second")
    assert signal.value == "first"


def test_await_after_fire_resumes_with_fired_value():
    from repro.sim import Await, Signal

    cluster = Cluster(1, CFG)
    signal = Signal()
    signal.fire(123)
    out = []

    def txn():
        value = yield Await(signal)
        out.append(value)

    cluster.engine(0).spawn(txn())
    cluster.run()
    assert out == [123]


def test_active_task_accounting():
    cluster = Cluster(1, CFG)

    def txn():
        yield Compute(1.0)

    engine = cluster.engine(0)
    engine.spawn(txn())
    assert engine.active_tasks == 1
    cluster.run()
    assert engine.active_tasks == 0
