"""Crash recovery on the multiprocess backend (chaos tests).

The real thing, no mocks: a worker process is SIGKILL'd mid-benchmark
(``mp_chaos_kill_worker``), the parent detects the death, announces it
to the survivors, respawns a fresh generation over the same WAL
directory, and rewires the fleet.  The run must complete, the
replacement must actually replay its predecessor's log, and nothing —
worker processes or shared-memory rings — may leak.
"""

import multiprocessing

import pytest

from repro.bench import RunConfig
from repro.bench.setups import make_ycsb_run
from repro.sim import MpRunError
from repro.workloads.ycsb import YcsbWorkload


def no_leaked_workers() -> bool:
    return not [p for p in multiprocessing.active_children()
                if p.name.startswith("mp-worker-")]


def small_workload() -> YcsbWorkload:
    """A few hundred keys: the worker build (populate) finishes well
    inside the chaos-kill delay, so the SIGKILL lands mid-load with WAL
    records already on disk."""
    return YcsbWorkload(n_keys=512)


def chaos_config(tmp_path, **overrides) -> RunConfig:
    defaults = dict(
        n_partitions=2, concurrent_per_engine=2,
        horizon_us=3_000_000.0, warmup_us=0.0, n_replicas=1,
        backend="mp", mp_run_timeout_s=180.0,
        wal="group", wal_dir=str(tmp_path),
        mp_recovery=True, mp_max_restarts=1,
        mp_chaos_kill_worker=1, mp_chaos_kill_after_s=1.2)
    defaults.update(overrides)
    return RunConfig(**defaults)


@pytest.mark.parametrize("transport", ["shm", "tcp"])
def test_chaos_kill_mid_run_recovers_and_completes(tmp_path, transport):
    """SIGKILL a worker mid-run: the run still completes, commits keep
    flowing, and the respawned generation replays its predecessor's
    WAL (merged recovery counters prove it happened)."""
    config = chaos_config(tmp_path, mp_transport=transport)
    run = make_ycsb_run("2pl", config, workload=small_workload())
    result = run.run()

    assert result.metrics.commits > 0
    recovery = result.metrics.recovery_stats
    assert recovery is not None
    # the replacement found and replayed its predecessor's log
    assert recovery.recoveries >= 1
    assert recovery.wal_appends > 0
    summary = result.perf_summary()
    assert summary["recovery"]["recoveries"] >= 1
    assert no_leaked_workers()


def test_chaos_kill_without_recovery_fails_the_run(tmp_path):
    """With mp_recovery off the death is fatal — the legacy contract:
    a run either finishes whole or raises, never silently degrades."""
    config = chaos_config(tmp_path, mp_recovery=False,
                          horizon_us=30_000_000.0,
                          mp_chaos_kill_after_s=0.3)
    run = make_ycsb_run("2pl", config, workload=small_workload())
    with pytest.raises(MpRunError, match="died before reporting"):
        run.run()
    assert no_leaked_workers()


def test_restart_budget_exhaustion_is_fatal(tmp_path):
    """A second death with mp_max_restarts=1 aborts the run: kill the
    same worker slot again by aiming the chaos timer long enough to
    outlive the first restart."""
    # one allowed restart is consumed by the first kill; a zero budget
    # makes even the first death fatal despite recovery being on
    config = chaos_config(tmp_path, mp_max_restarts=0,
                          horizon_us=30_000_000.0,
                          mp_chaos_kill_after_s=0.3)
    run = make_ycsb_run("2pl", config, workload=small_workload())
    with pytest.raises(MpRunError, match="died before reporting"):
        run.run()
    assert no_leaked_workers()


def test_merged_stats_count_each_generation_once(tmp_path):
    """Stats-merging regression for worker restart: a killed worker's
    payload is never collected (only its replacement reports), so the
    merged SchedulerStats/RecoveryStats must count each engine and
    each replay exactly once.  A double-fold of the dead generation's
    counters alongside its replacement's would show up here as a
    duplicate engine entry, recoveries=2, or more admissions than the
    same payloads' recorded attempts."""
    config = chaos_config(tmp_path)
    run = make_ycsb_run("2pl", config, workload=small_workload())
    result = run.run()
    metrics = result.metrics

    # exactly one scheduler entry per engine, whichever generation
    # owned it at quiescence
    assert set(metrics.scheduler_stats) == set(range(config.n_partitions))
    sched = metrics.scheduler_summary()
    assert sched.completed <= sched.admitted
    # every admitted request records >= 1 attempt in the same worker's
    # payload; double-merged scheduler counters would overshoot the
    # concatenated outcome list
    assert sched.admitted <= metrics.attempts

    # one SIGKILL, one respawn, one WAL replay -- exactly
    recovery = metrics.recovery_stats
    assert recovery is not None
    assert recovery.recoveries == 1
    assert result.perf_summary()["recovery"]["recoveries"] == 1
    assert no_leaked_workers()
