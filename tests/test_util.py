"""Property tests for deterministic hashing and RNG derivation."""

import random

from hypothesis import given, strategies as st

from repro._util import make_rng, stable_hash

key_values = st.one_of(
    st.integers(-2**63, 2**63 - 1),
    st.text(max_size=30),
    st.booleans(),
    st.binary(max_size=30),
)
keys = st.one_of(key_values,
                 st.tuples(key_values, key_values),
                 st.tuples(key_values, key_values, key_values))


@given(keys)
def test_stable_hash_is_deterministic(key):
    assert stable_hash(key) == stable_hash(key)


@given(keys)
def test_stable_hash_is_64_bit(key):
    assert 0 <= stable_hash(key) < 2**64


@given(st.integers(0, 10_000))
def test_int_and_single_tuple_differ(n):
    """(n,) must not collide with n by construction accident."""
    assert stable_hash(n) != stable_hash((n,))


def test_distribution_over_buckets():
    counts = [0] * 8
    for i in range(8000):
        counts[stable_hash(i) % 8] += 1
    assert min(counts) > 800  # roughly uniform


def test_string_hash_does_not_depend_on_process_salt():
    # fixed expectation guards against accidentally using built-in hash
    assert stable_hash("banana") == stable_hash("banana")
    a, b = stable_hash("banana"), stable_hash("bananb")
    assert a != b


def test_unsupported_type_raises():
    import pytest
    with pytest.raises(TypeError):
        stable_hash(3.14)


@given(st.integers(0, 1000), st.integers(0, 1000))
def test_make_rng_streams_independent(seed, salt):
    r1 = make_rng(seed, "a", salt)
    r2 = make_rng(seed, "b", salt)
    assert isinstance(r1, random.Random)
    # same seed different salt should (almost surely) diverge
    if salt != seed:
        assert [r1.random() for _ in range(3)] != [
            r2.random() for _ in range(3)]


def test_make_rng_reproducible():
    assert make_rng(7, "x").random() == make_rng(7, "x").random()
