"""Tests for hash/range/lookup placement schemes."""

import pytest
from hypothesis import given, strategies as st

from repro.partitioning import (HashScheme, LookupScheme, RangeScheme,
                                first_component_routing)


def test_hash_scheme_deterministic_and_in_range():
    scheme = HashScheme(4)
    for key in range(100):
        pid = scheme.partition_of("t", key)
        assert 0 <= pid < 4
        assert pid == scheme.partition_of("t", key)


def test_hash_scheme_spreads_keys():
    scheme = HashScheme(4)
    parts = {scheme.partition_of("t", k) for k in range(200)}
    assert parts == {0, 1, 2, 3}


def test_hash_scheme_zero_lookup_size():
    assert HashScheme(4).lookup_table_size() == 0


def test_hash_invalid_partitions():
    with pytest.raises(ValueError):
        HashScheme(0)


def test_first_component_routing_colocates_children():
    scheme = HashScheme(8, routing=first_component_routing)
    parent = scheme.partition_of("orders", (3,))
    for line in range(10):
        assert scheme.partition_of("order_line", (3, line)) == parent


def test_range_scheme_boundaries():
    scheme = RangeScheme(3, {"t": [10, 20]})
    assert scheme.partition_of("t", 0) == 0
    assert scheme.partition_of("t", 9) == 0
    assert scheme.partition_of("t", 10) == 1
    assert scheme.partition_of("t", 19) == 1
    assert scheme.partition_of("t", 20) == 2
    assert scheme.partition_of("t", 99) == 2


def test_range_scheme_validation():
    with pytest.raises(ValueError, match="boundaries"):
        RangeScheme(3, {"t": [10]})
    with pytest.raises(ValueError, match="not sorted"):
        RangeScheme(3, {"t": [20, 10]})
    with pytest.raises(KeyError):
        RangeScheme(2, {"t": [5]}).partition_of("other", 1)


def test_lookup_scheme_overrides_fallback():
    fallback = HashScheme(4)
    scheme = LookupScheme({("t", 1): 3}, fallback)
    assert scheme.partition_of("t", 1) == 3
    assert scheme.partition_of("t", 2) == fallback.partition_of("t", 2)
    assert scheme.lookup_table_size() == 1


@given(st.integers(1, 16), st.lists(st.integers(0, 10_000), max_size=50))
def test_hash_scheme_total_function(k, keys):
    scheme = HashScheme(k)
    for key in keys:
        assert 0 <= scheme.partition_of("t", key) < k
