"""Tests for the Schism baseline partitioner."""

import pytest

from repro.core import TxnSample
from repro.partitioning import (HashScheme, SchismConfig,
                                build_coaccess_graph, partition_schism)

T = "accounts"


def clustered_samples():
    """Two groups of records, transactions never cross groups."""
    samples = []
    for _ in range(10):
        samples.append(TxnSample("p", reads=((T, 1), (T, 2)),
                                 writes=((T, 3),)))
        samples.append(TxnSample("p", reads=((T, 11), (T, 12)),
                                 writes=((T, 13),)))
    return samples


def test_coaccess_graph_has_clique_edges():
    """n(n-1)/2 edges per transaction (3 records -> 3 edges)."""
    graph, vertex_of = build_coaccess_graph(
        [TxnSample("p", reads=((T, 1), (T, 2), (T, 3)), writes=())])
    assert graph.n_vertices == 3
    assert graph.n_edges == 3


def test_coaccess_edge_weights_accumulate_frequency():
    samples = [TxnSample("p", reads=((T, 1), (T, 2)), writes=())] * 5
    graph, vertex_of = build_coaccess_graph(samples)
    u, v = vertex_of[(T, 1)], vertex_of[(T, 2)]
    assert graph.neighbors(u)[v] == 5.0


def test_schism_separates_independent_clusters():
    result = partition_schism(clustered_samples(), 2,
                              SchismConfig(seed=2))
    groups = [{result.record_assignment[(T, r)] for r in (1, 2, 3)},
              {result.record_assignment[(T, r)] for r in (11, 12, 13)}]
    assert all(len(g) == 1 for g in groups), "each cluster co-located"
    assert groups[0] != groups[1], "clusters split across partitions"
    assert result.cut_weight() == 0.0


def test_schism_lookup_table_has_entry_per_record():
    result = partition_schism(clustered_samples(), 2)
    assert result.lookup_table_size() == 6


def test_schism_scheme_falls_back_for_unseen_records():
    result = partition_schism(clustered_samples(), 2)
    fallback = HashScheme(2)
    scheme = result.scheme(fallback)
    assert (scheme.partition_of(T, 1)
            == result.record_assignment[(T, 1)])
    assert scheme.partition_of(T, 999) == fallback.partition_of(T, 999)


def test_schism_empty_workload():
    result = partition_schism([], 4)
    assert result.record_assignment == {}
    assert result.lookup_table_size() == 0


def test_schism_star_vs_clique_edge_counts():
    """The representational gap the paper quantifies: for an n-record
    transaction Schism stores n(n-1)/2 edges, Chiller's star stores n."""
    from repro.core import build_star_graph
    n = 10
    sample = TxnSample("p",
                       reads=tuple((T, i) for i in range(n)), writes=())
    schism_graph, _ = build_coaccess_graph([sample])
    star = build_star_graph([sample], {})
    assert schism_graph.n_edges == n * (n - 1) // 2
    assert star.graph.n_edges == n


def test_schism_minimizes_distributed_transactions():
    """On a workload where co-location is possible, Schism's layout
    leaves zero distributed transactions."""
    samples = clustered_samples()
    result = partition_schism(samples, 2, SchismConfig(seed=1))

    def is_distributed(sample):
        parts = {result.record_assignment[rid]
                 for rid in sample.records()}
        return len(parts) > 1

    assert sum(1 for s in samples if is_distributed(s)) == 0
