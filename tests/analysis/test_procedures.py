"""Stored-procedure template, validation, and instantiation tests."""

import pytest

from repro.analysis import (StoredProcedure, check, derived_key, insert,
                            param_key, read, update)
from repro.storage import LockMode
from repro.workloads.flightbooking import flight_booking_procedure


def test_validation_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        StoredProcedure("p", ("k",), [
            read("a", "t", key=param_key("k")),
            read("a", "t", key=param_key("k")),
        ])


def test_validation_rejects_forward_references():
    with pytest.raises(ValueError, match="not declared earlier"):
        StoredProcedure("p", ("k",), [
            read("a", "t",
                 key=derived_key(("b",), lambda p, ctx, item: ctx["b"])),
            read("b", "t", key=param_key("k")),
        ])


def test_validation_rejects_update_of_shared_read():
    with pytest.raises(ValueError, match="for_update"):
        StoredProcedure("p", ("k",), [
            read("a", "t", key=param_key("k")),  # shared lock
            update("a_upd", target="a", set_fn=lambda p, c, i: {}),
        ])


def test_validation_rejects_update_targeting_non_read():
    with pytest.raises(ValueError, match="not a READ"):
        StoredProcedure("p", ("k",), [
            read("a", "t", key=param_key("k"), for_update=True),
            update("u1", target="a", set_fn=lambda p, c, i: {}),
            update("u2", target="u1", set_fn=lambda p, c, i: {}),
        ])


def test_validation_rejects_unknown_foreach_param():
    with pytest.raises(ValueError, match="unknown parameter"):
        StoredProcedure("p", ("k",), [
            read("a", "t", key=param_key(lambda p, item: item),
                 foreach="items"),
        ])


def test_validation_requires_predicate_for_check():
    with pytest.raises(ValueError, match="predicate"):
        StoredProcedure("p", ("k",), [
            check("c", deps=(), predicate=None),
        ])


def test_instantiate_simple_procedure():
    proc = flight_booking_procedure()
    instances = proc.instantiate({"flight_id": 7, "cust_id": 3})
    assert [i.name for i in instances] == proc.op_names()


def test_instantiate_expands_foreach():
    proc = StoredProcedure("p", ("items",), [
        read("stock", "stock", key=param_key(lambda p, item: item),
             for_update=True, foreach="items"),
        update("dec", target="stock",
               set_fn=lambda p, ctx, item: {"qty": ctx["stock"]["qty"] - 1},
               foreach="items"),
    ])
    instances = proc.instantiate({"items": [10, 20, 30]})
    names = [i.name for i in instances]
    assert names == ["stock[0]", "stock[1]", "stock[2]",
                     "dec[0]", "dec[1]", "dec[2]"]


def test_foreach_alias_binds_same_index():
    proc = StoredProcedure("p", ("items",), [
        read("stock", "stock", key=param_key(lambda p, item: item),
             for_update=True, foreach="items"),
        update("dec", target="stock",
               set_fn=lambda p, ctx, item: {"qty": ctx["stock"]["qty"] - 1},
               foreach="items"),
    ])
    instances = proc.instantiate({"items": [10, 20]})
    dec1 = next(i for i in instances if i.name == "dec[1]")
    ctx = {"stock[0]": {"qty": 5}, "stock[1]": {"qty": 9}}
    assert dec1.run_update({"items": [10, 20]}, ctx) == {"qty": 8}
    assert dec1.target_instance() == "stock[1]"


def test_placement_param_key_is_exact():
    proc = flight_booking_procedure()
    instances = {i.name: i for i in
                 proc.instantiate({"flight_id": 7, "cust_id": 3})}
    placement = instances["f"].placement({"flight_id": 7, "cust_id": 3})
    assert placement.table == "flight"
    assert placement.key == 7
    assert placement.exact


def test_placement_derived_key_without_hint_is_unknown():
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    instances = {i.name: i for i in proc.instantiate(params)}
    placement = instances["t"].placement(params)
    assert placement.table == "tax"
    assert not placement.known()


def test_placement_derived_key_with_hint():
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    instances = {i.name: i for i in proc.instantiate(params)}
    placement = instances["s_ins"].placement(params)
    assert placement.table == "seats"
    assert placement.key == (7, 0)
    assert not placement.exact


def test_update_placement_follows_target():
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    instances = {i.name: i for i in proc.instantiate(params)}
    placement = instances["f_upd"].placement(params)
    assert (placement.table, placement.key) == ("flight", 7)


def test_check_has_no_placement():
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    instances = {i.name: i for i in proc.instantiate(params)}
    assert instances["ok"].placement(params) is None


def test_concrete_key_resolution_with_ctx():
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    instances = {i.name: i for i in proc.instantiate(params)}
    ctx = {"f": {"price": 100.0, "seats": 42}}
    assert instances["s_ins"].concrete_key(params, ctx) == (7, 42)


def test_concrete_key_unresolved_raises():
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    instances = {i.name: i for i in proc.instantiate(params)}
    with pytest.raises(KeyError, match="has not been read"):
        instances["t"].concrete_key(params, {})


def test_run_check_and_semantics():
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    instances = {i.name: i for i in proc.instantiate(params)}
    ctx = {"f": {"price": 100.0, "seats": 1},
           "c": {"balance": 500.0, "name": "x", "state": 0},
           "t": {"rate": 0.1}}
    assert instances["ok"].run_check(params, ctx)
    ctx["c"]["balance"] = 10.0
    assert not instances["ok"].run_check(params, ctx)
    updates = instances["f_upd"].run_update(params, ctx)
    assert updates == {"seats": 0}


def test_lock_modes():
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    instances = {i.name: i for i in proc.instantiate(params)}
    assert instances["f"].lock_mode() == LockMode.EXCLUSIVE
    assert instances["t"].lock_mode() == LockMode.SHARED
