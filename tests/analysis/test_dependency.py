"""Dependency-graph tests, anchored on the paper's Fig. 4 example."""

import pytest

from repro.analysis import DependencyGraph, ProcedureRegistry
from repro.workloads.flightbooking import flight_booking_procedure


@pytest.fixture()
def graph():
    return DependencyGraph.from_procedure(flight_booking_procedure())


def test_fig4_pk_edges(graph):
    """Paper: tax read pk-depends on customer read; seats insert
    pk-depends on the flight read (seat_id)."""
    assert ("c", "t") in graph.pk_edges
    assert ("f", "s_ins") in graph.pk_edges
    # and nothing else is a pk-dep
    assert len(graph.pk_edges) == 2


def test_fig4_v_edges(graph):
    """Value deps do not constrain ordering but are tracked: the insert
    needs c.name, the customer update needs cost (from f and t)."""
    assert ("c", "s_ins") in graph.v_edges
    assert ("f", "c_upd") in graph.v_edges
    assert ("t", "c_upd") in graph.v_edges
    assert ("f", "f_upd") in graph.v_edges   # implicit target dep


def test_conditional_ops_marked(graph):
    assert graph.conditional == {"f_upd", "c_upd", "s_ins"}


def test_pk_children_and_descendants(graph):
    assert graph.pk_children("f") == ["s_ins"]
    assert graph.pk_children("c") == ["t"]
    assert graph.pk_descendants("f") == {"s_ins"}
    assert not graph.has_pk_children("t")


def test_program_order_is_legal(graph):
    assert graph.is_legal_order(
        ["f", "c", "t", "ok", "f_upd", "c_upd", "s_ins"])


def test_order_violating_pk_dep_is_illegal(graph):
    # tax before customer violates the c -> t pk-dep
    assert not graph.is_legal_order(
        ["f", "t", "c", "ok", "f_upd", "c_upd", "s_ins"])


def test_order_with_missing_ops_is_illegal(graph):
    assert not graph.is_legal_order(["f", "c", "t"])


def test_reorder_last_postpones_hot_ops(graph):
    """Postponing the flight read drags its pk-descendant (the seats
    insert) along and keeps the order legal."""
    order = graph.reorder_last({"f"})
    assert graph.is_legal_order(order)
    assert order.index("f") > order.index("c")
    assert order.index("f") > order.index("t")
    assert order.index("s_ins") > order.index("f")


def test_reorder_last_is_stable_for_empty_set(graph):
    assert graph.reorder_last(set()) == graph.nodes


def test_cycle_detection():
    with pytest.raises(ValueError, match="cycle"):
        DependencyGraph(["a", "b"], pk_edges=[("a", "b"), ("b", "a")],
                        v_edges=[])


def test_unknown_edge_endpoint_rejected():
    with pytest.raises(ValueError, match="unknown op"):
        DependencyGraph(["a"], pk_edges=[("a", "zzz")], v_edges=[])


def test_to_dot_contains_styles(graph):
    dot = graph.to_dot()
    assert "style=solid" in dot
    assert "style=dashed" in dot
    assert "color=blue" in dot


def test_registry_builds_graph_at_registration():
    registry = ProcedureRegistry()
    proc = flight_booking_procedure()
    registry.register(proc)
    assert "book_flight" in registry
    assert registry.graph("book_flight").pk_edges == [("c", "t"),
                                                      ("f", "s_ins")]
    with pytest.raises(ValueError):
        registry.register(proc)
