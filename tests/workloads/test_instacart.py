"""Tests for the synthetic Instacart workload calibration."""

import pytest

from repro._util import make_rng
from repro.core import sample_from_request
from repro.analysis import ProcedureRegistry
from repro.workloads._zipf import power_law_weights
from repro.workloads.instacart import InstacartWorkload


@pytest.fixture(scope="module")
def workload():
    return InstacartWorkload(n_products=1000, seed=3)


def test_power_law_weights_sum_to_one():
    weights = power_law_weights(100, (0.016, 0.0085), 0.9)
    assert sum(weights) == pytest.approx(1.0)
    assert weights[0] == pytest.approx(0.016)
    assert weights[1] == pytest.approx(0.0085)
    assert weights[2] > weights[50] > weights[99]


def test_power_law_validation():
    with pytest.raises(ValueError):
        power_law_weights(1, (0.5, 0.5))
    with pytest.raises(ValueError):
        power_law_weights(10, (0.9, 0.2))


def test_basket_size_distribution(workload):
    rng = make_rng(1, "size")
    sizes = [len(workload.sample_basket(rng)) for _ in range(500)]
    mean = sum(sizes) / len(sizes)
    assert mean == pytest.approx(10.0, abs=1.5)


def test_baskets_have_no_duplicates(workload):
    rng = make_rng(2, "dups")
    for _ in range(200):
        basket = workload.sample_basket(rng)
        assert len(basket) == len(set(basket))


def test_top_product_share_matches_instacart(workload):
    """The paper's skew: the top product (banana) appears in ~15% of
    orders, the runner-up in ~8%."""
    rng = make_rng(3, "skew")
    n = 2000
    top = second = 0
    for _ in range(n):
        basket = set(workload.sample_basket(rng))
        top += 0 in basket
        second += 1 in basket
    assert top / n == pytest.approx(0.15, abs=0.05)
    assert second / n == pytest.approx(0.08, abs=0.04)


def test_requests_are_valid_grocery_orders(workload):
    rng = make_rng(4, "req")
    request = workload.next_request(2, rng)
    assert request.proc == "grocery_order"
    assert request.home == 2
    assert len(request.params["items"]) >= 1
    # order ids are unique across requests
    other = workload.next_request(2, rng)
    assert request.params["order_id"] != other.params["order_id"]


def test_sampling_extracts_stock_writes(workload):
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    rng = make_rng(5, "sample")
    request = workload.next_request(0, rng)
    sample = sample_from_request(registry, request)
    stock_writes = [rid for rid in sample.writes if rid[0] == "stock"]
    assert len(stock_writes) == len(request.params["items"])
    order_writes = [rid for rid in sample.writes if rid[0] == "orders"]
    assert len(order_writes) == 1


def test_trace_is_deterministic(workload):
    t1 = workload.trace(20, 4, seed=9)
    w2 = InstacartWorkload(n_products=1000, seed=3)
    t2 = w2.trace(20, 4, seed=9)
    assert [r.params["items"] for r in t1] == [
        r.params["items"] for r in t2]


def test_categories_make_copurchase_correlated(workload):
    """Non-popular products co-occur with same-category products more
    often than chance: the structure Chiller's partitioner exploits."""
    rng = make_rng(6, "cat")
    cooccur_same = cooccur_other = 0
    for _ in range(800):
        basket = workload.sample_basket(rng)
        tail = [p for p in basket if p >= 20]
        for i in range(len(tail)):
            for j in range(i + 1, len(tail)):
                same = (workload._category_of[tail[i]]
                        == workload._category_of[tail[j]])
                if same:
                    cooccur_same += 1
                else:
                    cooccur_other += 1
    # with 40 categories, random pairs would be same-category ~2.5% of
    # the time; the category model should push this way up
    ratio = cooccur_same / max(1, cooccur_same + cooccur_other)
    assert ratio > 0.15
