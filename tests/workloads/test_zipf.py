"""Regression tests for power-law weight normalization and validation."""

import math

import pytest

from repro.workloads._zipf import power_law_weights

HEAD_TAIL_CONFIGS = [
    # (n, top_shares, tail_exponent)
    (10, (), 1.0),
    (100, (), 0.5),
    (100, (0.016, 0.0085), 0.9),          # the Instacart calibration
    (1000, (0.016, 0.0085), 0.9),
    (50, (0.3,), 1.0),
    (500, (0.1, 0.05, 0.025), 2.0),
    (10_000, (), 0.99),                    # the YCSB zipf path
    (3, (0.5, 0.4), 1.0),                  # spare < 0: rescale branch
    (10, (0.2,) * 4, 3.0),
]


@pytest.mark.parametrize("n,top_shares,tail_exponent", HEAD_TAIL_CONFIGS)
def test_weights_sum_to_one_exactly(n, top_shares, tail_exponent):
    weights = power_law_weights(n, top_shares, tail_exponent)
    assert len(weights) == n
    assert abs(math.fsum(weights) - 1.0) < 1e-12
    assert all(w >= 0.0 for w in weights)


@pytest.mark.parametrize("n,top_shares,tail_exponent", HEAD_TAIL_CONFIGS)
def test_head_shares_stay_pinned_bit_for_bit(n, top_shares, tail_exponent):
    weights = power_law_weights(n, top_shares, tail_exponent)
    assert tuple(weights[:len(top_shares)]) == top_shares


def test_rescale_branch_regression():
    """The tail-shrink branch used to leave the vector summing away
    from 1; it must now be exact."""
    # big anchor + long heavy tail forces spare < 0
    weights = power_law_weights(2000, (0.4, 0.39), 0.1)
    assert abs(math.fsum(weights) - 1.0) < 1e-12


def test_negative_and_zero_head_shares_rejected():
    with pytest.raises(ValueError):
        power_law_weights(10, (0.5, -0.1))
    with pytest.raises(ValueError):
        power_law_weights(10, (0.5, 0.0))
    with pytest.raises(ValueError):
        power_law_weights(10, (-0.2,))


def test_existing_validation_still_applies():
    with pytest.raises(ValueError):
        power_law_weights(1, (0.5, 0.3))      # n <= head size
    with pytest.raises(ValueError):
        power_law_weights(10, (0.9, 0.2))     # head mass >= 1
    with pytest.raises(ValueError):
        power_law_weights(10, (0.1, 0.2))     # increasing shares
