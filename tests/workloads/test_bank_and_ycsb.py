"""Tests for the bank and YCSB micro-workloads."""

import pytest

from repro._util import make_rng
from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, TwoPLExecutor
from repro.workloads.bank import BankWorkload
from repro.workloads.ycsb import YcsbWorkload, expected_counter_total


def test_bank_generator_hot_bias():
    workload = BankWorkload(n_accounts=100, hot_accounts=5,
                            hot_probability=0.8)
    rng = make_rng(1, "bank")
    hot_hits = 0
    n = 500
    for _ in range(n):
        request = workload.next_request(0, rng)
        if request.proc != "transfer":
            continue
        if request.params["src"] < 5:
            hot_hits += 1
    assert hot_hits / n > 0.5


def test_bank_generator_never_self_transfer():
    workload = BankWorkload(n_accounts=10)
    rng = make_rng(2, "bank")
    for _ in range(200):
        request = workload.next_request(0, rng)
        assert request.params["src"] != request.params["dst"]


def test_bank_invalid_hot_config():
    with pytest.raises(ValueError):
        BankWorkload(n_accounts=5, hot_accounts=10)


def test_bank_audit_fraction():
    workload = BankWorkload(n_accounts=50, audit_fraction=0.5)
    rng = make_rng(3, "bank")
    procs = [workload.next_request(0, rng).proc for _ in range(300)]
    share = procs.count("audit") / len(procs)
    assert share == pytest.approx(0.5, abs=0.1)


def run_ycsb(zipf=0.0, writes=2, seed=5):
    workload = YcsbWorkload(n_keys=500, reads_per_txn=4,
                            writes_per_txn=writes,
                            zipf_exponent=zipf)
    config = RunConfig(n_partitions=2, concurrent_per_engine=2,
                       horizon_us=2_000.0, warmup_us=0.0, seed=seed,
                       n_replicas=0)
    cluster = Cluster(config.n_partitions)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(2, HashScheme(2)),
                  workload.tables(), registry, n_replicas=0)
    workload.populate(db.loader())
    result = run_benchmark(workload, TwoPLExecutor(db), config)
    return result, workload, db


def test_ycsb_counters_match_commits():
    """Every committed transaction bumps exactly `writes` counters: the
    lost-update litmus test."""
    result, workload, db = run_ycsb()
    total = expected_counter_total(db, workload.n_keys)
    assert total == result.metrics.commits * workload.writes_per_txn


def test_ycsb_request_key_disjointness():
    workload = YcsbWorkload(n_keys=100, reads_per_txn=5,
                            writes_per_txn=3)
    rng = make_rng(7, "ycsb")
    for _ in range(100):
        request = workload.next_request(0, rng)
        keys = (list(request.params["read_keys"])
                + list(request.params["write_keys"]))
        assert len(keys) == len(set(keys)) == 8


def test_ycsb_zipf_skews_access():
    workload = YcsbWorkload(n_keys=1000, zipf_exponent=1.2)
    rng = make_rng(8, "ycsb")
    low_keys = 0
    total = 0
    for _ in range(200):
        request = workload.next_request(0, rng)
        for key in request.params["read_keys"]:
            total += 1
            if key < 50:
                low_keys += 1
    assert low_keys / total > 0.2  # head-heavy under zipf


def test_ycsb_read_only_mode():
    result, workload, db = run_ycsb(writes=0)
    assert result.metrics.commits > 0
    assert expected_counter_total(db, workload.n_keys) == 0
