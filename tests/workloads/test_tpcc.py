"""Unit tests for TPC-C schema, loader, procedures, and generator."""

import pytest

from repro._util import make_rng
from repro.analysis import DependencyGraph, ProcedureRegistry
from repro.partitioning import ModuloScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import AbortReason, Database, TwoPLExecutor, TxnRequest
from repro.workloads.tpcc import (DISTRICTS_PER_WAREHOUSE, INVALID_ITEM_ID,
                                  REPLICATED_TABLES, TpccScale, TpccWorkload,
                                  new_order_procedure, tpcc_routing)


def make_db(n_partitions=2, scale=None):
    workload = TpccWorkload(scale or TpccScale(n_warehouses=n_partitions),
                            n_partitions=n_partitions)
    cluster = Cluster(n_partitions)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    scheme = ModuloScheme(n_partitions, routing=tpcc_routing)
    catalog = Catalog(n_partitions, scheme,
                      replicated_tables=REPLICATED_TABLES)
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=0)
    workload.populate(db.loader())
    return workload, db, cluster, TwoPLExecutor(db)


def run_txn(cluster, executor, request):
    outcomes = []
    cluster.engine(request.home).spawn(executor.execute(request),
                                       outcomes.append)
    cluster.run()
    return outcomes[0]


def items(*ids, w=0):
    return [{"i_id": i, "supply_w_id": w, "qty": 2, "ol_number": n}
            for n, i in enumerate(ids)]


# -- loader ----------------------------------------------------------------

def test_loader_cardinalities():
    workload, db, _, _ = make_db(n_partitions=2)
    scale = workload.scale
    total_stock = sum(len(db.store(p).table("stock"))
                      for p in range(2))
    assert total_stock == scale.n_warehouses * scale.n_items
    total_customers = sum(len(db.store(p).table("customer"))
                          for p in range(2))
    assert total_customers == (scale.n_warehouses
                               * DISTRICTS_PER_WAREHOUSE
                               * scale.customers_per_district)


def test_item_table_replicated_everywhere():
    workload, db, _, _ = make_db(n_partitions=2)
    for pid in range(2):
        assert len(db.store(pid).table("item")) == workload.scale.n_items


def test_warehouse_rows_follow_modulo_placement():
    _, db, _, _ = make_db(n_partitions=2)
    for w in range(2):
        assert db.partition_of("warehouse", w) == w % 2
        assert db.store(w % 2).read("warehouse", w) is not None


def test_initial_delivery_cursor():
    workload, db, _, _ = make_db()
    district = db.store(0).read("district", (0, 0))[0]
    scale = workload.scale
    assert district["d_next_o_id"] == scale.initial_orders
    assert district["d_next_del_o_id"] == (scale.initial_orders
                                           - scale.undelivered_orders)


# -- NewOrder -----------------------------------------------------------------

def test_new_order_dependency_graph():
    """The inserts pk-depend on the district read — the structural fact
    that forces them into the district's inner region."""
    graph = DependencyGraph.from_procedure(new_order_procedure())
    assert ("district", "order_ins") in graph.pk_edges
    assert ("district", "new_order_ins") in graph.pk_edges
    assert ("district", "order_line_ins") in graph.pk_edges


def test_new_order_applies_all_effects():
    workload, db, cluster, executor = make_db()
    o_id = workload.scale.initial_orders
    request = TxnRequest("new_order", {
        "w_id": 0, "d_id": 0, "c_id": 1,
        "items": items(5, 6, 7), "entry_d": 1}, home=0)
    outcome = run_txn(cluster, executor, request)
    assert outcome.committed
    store = db.store(0)
    assert store.read("district", (0, 0))[0]["d_next_o_id"] == o_id + 1
    order = store.read("order", (0, 0, o_id))
    assert order is not None and order[0]["o_c_id"] == 1
    assert store.read("new_order", (0, 0, o_id)) is not None
    for ol in range(3):
        line = store.read("order_line", (0, 0, o_id, ol))
        assert line is not None
        assert line[0]["ol_qty"] == 2
    stock = store.read("stock", (0, 5))[0]
    assert stock["s_quantity"] == workload.scale.initial_stock - 2
    assert stock["s_ytd"] == 2
    assert stock["s_order_cnt"] == 1


def test_new_order_remote_item_counts_remote():
    workload, db, cluster, executor = make_db()
    request = TxnRequest("new_order", {
        "w_id": 0, "d_id": 0, "c_id": 1,
        "items": [{"i_id": 5, "supply_w_id": 1, "qty": 1,
                   "ol_number": 0}],
        "entry_d": 1}, home=0)
    outcome = run_txn(cluster, executor, request)
    assert outcome.committed
    assert outcome.distributed
    stock = db.store(1).read("stock", (1, 5))[0]
    assert stock["s_remote_cnt"] == 1


def test_new_order_invalid_item_rolls_back():
    workload, db, cluster, executor = make_db()
    request = TxnRequest("new_order", {
        "w_id": 0, "d_id": 0, "c_id": 1,
        "items": items(5, INVALID_ITEM_ID), "entry_d": 1}, home=0)
    outcome = run_txn(cluster, executor, request)
    assert not outcome.committed
    assert outcome.reason is AbortReason.READ_MISS
    store = db.store(0)
    o_id = workload.scale.initial_orders
    assert store.read("district", (0, 0))[0]["d_next_o_id"] == o_id
    assert store.read("order", (0, 0, o_id)) is None
    assert store.read("stock", (0, 5))[0]["s_ytd"] == 0


def test_stock_quantity_wraps_below_ten():
    workload, db, cluster, executor = make_db()
    db.store(0).write("stock", (0, 5), {"s_quantity": 11})
    request = TxnRequest("new_order", {
        "w_id": 0, "d_id": 0, "c_id": 1,
        "items": items(5), "entry_d": 1}, home=0)
    assert run_txn(cluster, executor, request).committed
    assert db.store(0).read("stock", (0, 5))[0]["s_quantity"] == 100


# -- Payment ----------------------------------------------------------------

def payment_request(w=0, c_w=0, amount=100.0, h_id=1):
    return TxnRequest("payment", {
        "w_id": w, "d_id": 0, "c_w_id": c_w, "c_d_id": 0, "c_id": 2,
        "amount": amount, "h_id": h_id}, home=w)


def test_payment_updates_all_three_rows_and_history():
    workload, db, cluster, executor = make_db()
    outcome = run_txn(cluster, executor, payment_request())
    assert outcome.committed
    store = db.store(0)
    assert store.read("warehouse", 0)[0]["w_ytd"] == 100.0
    assert store.read("district", (0, 0))[0]["d_ytd"] == 100.0
    customer = store.read("customer", (0, 0, 2))[0]
    assert customer["c_balance"] == 900.0
    assert customer["c_payment_cnt"] == 1
    history = store.read("history", (0, 0, 2, 1))
    assert history is not None and history[0]["h_amount"] == 100.0


def test_payment_remote_customer_is_distributed():
    workload, db, cluster, executor = make_db()
    outcome = run_txn(cluster, executor, payment_request(w=0, c_w=1))
    assert outcome.committed
    assert outcome.distributed
    assert db.store(1).read("customer", (1, 0, 2))[0]["c_balance"] == 900.0
    # local warehouse still took the payment amount
    assert db.store(0).read("warehouse", 0)[0]["w_ytd"] == 100.0


# -- OrderStatus / Delivery / StockLevel ------------------------------------

def test_order_status_reads_latest_order():
    workload, db, cluster, executor = make_db()
    request = TxnRequest("order_status",
                         {"w_id": 0, "d_id": 0, "c_id": 0}, home=0)
    outcome = run_txn(cluster, executor, request)
    assert outcome.committed


def test_delivery_advances_cursor_and_credits_customer():
    workload, db, cluster, executor = make_db()
    scale = workload.scale
    first_undelivered = scale.initial_orders - scale.undelivered_orders
    order = db.store(0).read("order", (0, 0, first_undelivered))[0]
    customer_before = db.store(0).read(
        "customer", (0, 0, order["o_c_id"]))[0]["c_balance"]
    request = TxnRequest("delivery", {
        "w_id": 0, "d_id": 0, "carrier_id": 7, "delivery_d": 2}, home=0)
    outcome = run_txn(cluster, executor, request)
    assert outcome.committed
    store = db.store(0)
    assert store.read("new_order", (0, 0, first_undelivered)) is None
    assert store.read("order",
                      (0, 0, first_undelivered))[0]["o_carrier_id"] == 7
    district = store.read("district", (0, 0))[0]
    assert district["d_next_del_o_id"] == first_undelivered + 1
    customer_after = store.read(
        "customer", (0, 0, order["o_c_id"]))[0]["c_balance"]
    assert customer_after == customer_before + order["o_total"]


def test_delivery_with_nothing_undelivered_aborts_logically():
    workload, db, cluster, executor = make_db()
    db.store(0).write("district", (0, 0),
                      {"d_next_del_o_id": workload.scale.initial_orders})
    request = TxnRequest("delivery", {
        "w_id": 0, "d_id": 0, "carrier_id": 7, "delivery_d": 2}, home=0)
    outcome = run_txn(cluster, executor, request)
    assert not outcome.committed
    assert outcome.reason is AbortReason.LOGICAL


def test_stock_level_read_only():
    workload, db, cluster, executor = make_db()
    request = TxnRequest("stock_level", {
        "w_id": 0, "d_id": 0, "threshold": 15,
        "check_items": [1, 2, 3]}, home=0)
    outcome = run_txn(cluster, executor, request)
    assert outcome.committed


# -- generator -----------------------------------------------------------------

def test_generator_mix_shares():
    workload = TpccWorkload(TpccScale(n_warehouses=4), n_partitions=4)
    rng = make_rng(1, "mix")
    counts = {}
    for _ in range(4000):
        request = workload.next_request(0, rng)
        counts[request.proc] = counts.get(request.proc, 0) + 1
    assert counts["new_order"] / 4000 == pytest.approx(0.45, abs=0.03)
    assert counts["payment"] / 4000 == pytest.approx(0.43, abs=0.03)
    for proc in ("order_status", "delivery", "stock_level"):
        assert counts[proc] / 4000 == pytest.approx(0.04, abs=0.015)


def test_generator_respects_home_partition():
    workload = TpccWorkload(TpccScale(n_warehouses=8), n_partitions=4)
    rng = make_rng(2, "homes")
    for home in range(4):
        for _ in range(50):
            request = workload.next_request(home, rng)
            assert request.params["w_id"] % 4 == home


def test_generator_remote_payment_share():
    workload = TpccWorkload(TpccScale(n_warehouses=4), n_partitions=4,
                            payment_remote_prob=0.5)
    rng = make_rng(3, "remote")
    remote = total = 0
    while total < 500:
        request = workload.next_request(0, rng)
        if request.proc == "payment":
            total += 1
            if request.params["c_w_id"] != request.params["w_id"]:
                remote += 1
    assert remote / total == pytest.approx(0.5, abs=0.08)


def test_generator_invalid_mix_rejected():
    with pytest.raises(ValueError, match="mix"):
        TpccWorkload(TpccScale(n_warehouses=2), n_partitions=2,
                     mix=(("new_order", 0.5),))
