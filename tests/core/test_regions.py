"""Region planner edge cases beyond the paper-example tests."""

from repro.analysis import (StoredProcedure, check, derived_key, insert,
                            param_key, read, update)
from repro.core import HotRecordTable, RegionPlanner


class Placement:
    def __init__(self, mapping, default=0):
        self.mapping = mapping
        self.default = default

    def __call__(self, table, key):
        return self.mapping.get((table, key), self.default)


def simple_proc():
    return StoredProcedure(
        "p", params=("a", "b"),
        ops=[
            read("ra", "t", key=param_key("a"), for_update=True),
            read("rb", "t", key=param_key("b"), for_update=True),
            update("ua", target="ra",
                   set_fn=lambda p, c, i: {"v": c["ra"]["v"] + 1}),
            update("ub", target="rb",
                   set_fn=lambda p, c, i: {"v": c["rb"]["v"] + 1}),
        ])


def plan_for(proc, params, hot, placement):
    planner = RegionPlanner(HotRecordTable(hot), placement)
    return planner.plan(proc.instantiate(params), params)


def test_no_hot_records_means_normal_execution():
    plan = plan_for(simple_proc(), {"a": 1, "b": 2}, {},
                    Placement({("t", 1): 0, ("t", 2): 1}))
    assert not plan.two_region
    assert plan.inner_host is None
    assert len(plan.outer) == 4


def test_single_hot_record_defines_inner_host():
    plan = plan_for(simple_proc(), {"a": 1, "b": 2},
                    {("t", 1): 0},
                    Placement({("t", 1): 0, ("t", 2): 1}))
    assert plan.two_region
    assert plan.inner_host == 0
    assert set(plan.inner_names()) == {"ra", "ua"}


def test_inner_host_majority_vote():
    """Step 2: the partition with the most hot records wins."""
    proc = StoredProcedure(
        "p3", params=("a", "b", "c"),
        ops=[
            read("ra", "t", key=param_key("a"), for_update=True),
            read("rb", "t", key=param_key("b"), for_update=True),
            read("rc", "t", key=param_key("c"), for_update=True),
            update("ua", target="ra", set_fn=lambda p, c, i: {}),
            update("ub", target="rb", set_fn=lambda p, c, i: {}),
            update("uc", target="rc", set_fn=lambda p, c, i: {}),
        ])
    placement = Placement({("t", 1): 0, ("t", 2): 1, ("t", 3): 1})
    hot = {("t", 1): 0, ("t", 2): 1, ("t", 3): 1}
    plan = plan_for(proc, {"a": 1, "b": 2, "c": 3}, hot, placement)
    assert plan.inner_host == 1
    assert {"rb", "rc"} <= set(plan.inner_names())
    # the losing hot record stays outer (long span, as the paper warns)
    assert "ra" in {i.name for i in plan.outer}


def test_cold_records_colocated_with_inner_host_join_inner():
    """Section 4.3: r-vertices in the t-vertex's partition execute in
    the inner region even when cold."""
    plan = plan_for(simple_proc(), {"a": 1, "b": 2},
                    {("t", 1): 0},
                    Placement({("t", 1): 0, ("t", 2): 0}))
    assert set(plan.inner_names()) == {"ra", "rb", "ua", "ub"}
    assert plan.outer == []


def test_hot_reads_reordered_last_within_inner():
    """Idea (1): the hot record's lock is acquired at the end of the
    inner region, after the cold co-located ops."""
    plan = plan_for(simple_proc(), {"a": 1, "b": 2},
                    {("t", 1): 0},
                    Placement({("t", 1): 0, ("t", 2): 0}))
    names = plan.inner_names()
    assert names.index("ra") > names.index("rb")


def test_unknown_derived_placement_stays_outer():
    proc = StoredProcedure(
        "pd", params=("a",),
        ops=[
            read("ra", "t", key=param_key("a"), for_update=True),
            read("rx", "t",
                 key=derived_key(("ra",),
                                 lambda p, ctx, i: ctx["ra"]["next"])),
            update("ua", target="ra", set_fn=lambda p, c, i: {}),
        ])
    # ra is hot but rx (pk-child, unknown placement) blocks it: rule (b)
    plan = plan_for(proc, {"a": 1}, {("t", 1): 0},
                    Placement({("t", 1): 0}))
    assert not plan.two_region
    assert plan.blocked_hot_records == 1


def test_insert_with_matching_hint_allows_inner():
    proc = StoredProcedure(
        "pi", params=("a",),
        ops=[
            read("ra", "t", key=param_key("a"), for_update=True),
            insert("ix", "t2",
                   key=derived_key(("ra",),
                                   lambda p, ctx, i: ctx["ra"]["next"],
                                   partition_hint=lambda p, i: p["a"]),
                   fields_fn=lambda p, c, i: {}),
            update("ua", target="ra", set_fn=lambda p, c, i: {}),
        ])
    placement = Placement({("t", 1): 2, ("t2", 1): 2}, default=2)
    plan = plan_for(proc, {"a": 1}, {("t", 1): 2}, placement)
    assert plan.two_region
    assert set(plan.inner_names()) == {"ra", "ix", "ua"}


def test_check_depending_only_on_outer_reads_stays_outer():
    proc = StoredProcedure(
        "pc", params=("a", "b"),
        ops=[
            read("ra", "t", key=param_key("a"), for_update=True),
            read("rb", "t", key=param_key("b")),
            check("cb", deps=("rb",),
                  predicate=lambda p, c, i: c["rb"]["v"] > 0),
            update("ua", target="ra", set_fn=lambda p, c, i: {}),
        ])
    plan = plan_for(proc, {"a": 1, "b": 2}, {("t", 1): 0},
                    Placement({("t", 1): 0, ("t", 2): 1}))
    assert plan.two_region
    outer_names = {i.name for i in plan.outer}
    assert "cb" in outer_names  # early abort at the coordinator


def test_check_depending_on_inner_read_goes_inner():
    proc = StoredProcedure(
        "pc2", params=("a", "b"),
        ops=[
            read("ra", "t", key=param_key("a"), for_update=True),
            read("rb", "t", key=param_key("b")),
            check("ca", deps=("ra", "rb"),
                  predicate=lambda p, c, i: c["ra"]["v"] > 0),
            update("ua", target="ra", set_fn=lambda p, c, i: {}),
        ])
    plan = plan_for(proc, {"a": 1, "b": 2}, {("t", 1): 0},
                    Placement({("t", 1): 0, ("t", 2): 1}))
    assert "ca" in plan.inner_names()
    # and it is ordered after the hot read it consumes
    names = plan.inner_names()
    assert names.index("ca") > names.index("ra")
