"""Tests for the hot-record lookup table."""

import pytest

from repro.core import HotRecordTable
from repro.partitioning import HashScheme


def test_basic_membership_and_partition():
    table = HotRecordTable({("stock", 1): 2, ("stock", 5): 0})
    assert ("stock", 1) in table
    assert table.is_hot("stock", 1)
    assert not table.is_hot("stock", 99)
    assert table.partition("stock", 1) == 2
    assert table.partition("stock", 99) is None
    assert len(table) == 2


def test_scheme_overrides_only_hot_records():
    fallback = HashScheme(4)
    table = HotRecordTable({("stock", 1): 3})
    scheme = table.scheme(fallback)
    assert scheme.partition_of("stock", 1) == 3
    assert (scheme.partition_of("stock", 2)
            == fallback.partition_of("stock", 2))
    assert scheme.lookup_table_size() == 1


def test_from_assignment_applies_threshold():
    assignment = {("stock", 1): 0, ("stock", 2): 1, ("stock", 3): 0}
    likelihoods = {("stock", 1): 1.0, ("stock", 2): 0.5,
                   ("stock", 3): 0.01}
    table = HotRecordTable.from_assignment(assignment, likelihoods,
                                           threshold=0.1)
    assert ("stock", 1) in table
    assert ("stock", 2) in table
    assert ("stock", 3) not in table


def test_from_assignment_invalid_threshold():
    with pytest.raises(ValueError):
        HotRecordTable.from_assignment({}, {}, threshold=1.5)


def test_from_stats_normalizes_and_places():
    fallback = HashScheme(4)
    likelihoods = {("stock", 1): 0.2, ("stock", 2): 0.002}
    table = HotRecordTable.from_stats(likelihoods, threshold=0.1,
                                      placement=fallback.partition_of)
    assert ("stock", 1) in table  # normalized to 1.0
    assert ("stock", 2) not in table  # normalized to 0.01
    assert (table.partition("stock", 1)
            == fallback.partition_of("stock", 1))


def test_empty_table():
    table = HotRecordTable.empty()
    assert len(table) == 0
    assert not table.is_hot("x", 1)
    assert table.entries() == {}


# -- epoch-versioned migration support ----------------------------------------


def test_apply_move_flips_and_versions_the_entry():
    table = HotRecordTable({("stock", 1): 0})
    assert table.current_epoch == 0
    table.apply_move("stock", 1, 3, epoch=1)
    assert table.partition("stock", 1) == 3
    assert table.current_epoch == 1
    # history answers for old epochs (in-flight transactions' view)
    assert table.partition_as_of("stock", 1, 0) == 0
    assert table.partition_as_of("stock", 1, 1) == 3
    assert table.moved_since("stock", 1, 0)
    assert not table.moved_since("stock", 1, 1)


def test_apply_move_is_idempotent_per_epoch():
    table = HotRecordTable.empty()
    for _ in range(3):  # broadcast re-delivery on shared catalogs
        table.apply_move("stock", 7, 2, epoch=1)
    assert table.current_epoch == 1
    assert table.partition_as_of("stock", 7, 0) is None
    assert table.partition_as_of("stock", 7, 1) == 2


def test_apply_move_rejects_epoch_zero():
    with pytest.raises(ValueError):
        HotRecordTable.empty().apply_move("stock", 1, 0, epoch=0)


def test_live_scheme_reads_through_migrations():
    fallback = HashScheme(4)
    table = HotRecordTable.empty()
    scheme = table.live_scheme(fallback)
    key = ("stock", 9)
    assert scheme.partition_of(*key) == fallback.partition_of(*key)
    dst = (fallback.partition_of(*key) + 1) % 4
    scheme.apply_move("stock", 9, dst, epoch=1)
    assert scheme.partition_of(*key) == dst
    assert scheme.current_epoch == 1
    assert scheme.moved_since("stock", 9, 0)
    assert key in scheme.entries
    assert scheme.lookup_table_size() == 1


def test_snapshot_scheme_ignores_later_moves():
    table = HotRecordTable({("stock", 1): 0})
    snapshot = table.scheme(HashScheme(4))
    table.apply_move("stock", 1, 3, epoch=1)
    assert snapshot.partition_of("stock", 1) == 0  # frozen view
    assert table.live_scheme(HashScheme(4)).partition_of("stock", 1) == 3
