"""Tests for sampling and the global statistics service."""

import pytest

from repro.analysis import ProcedureRegistry
from repro.core import StatsService, TxnSample, sample_from_request
from repro.txn import TxnRequest
from repro.workloads.bank import BankWorkload
from repro.workloads.flightbooking import flight_booking_procedure


@pytest.fixture()
def registry():
    reg = ProcedureRegistry()
    for proc in BankWorkload().procedures():
        reg.register(proc)
    reg.register(flight_booking_procedure())
    return reg


def test_sample_from_transfer(registry):
    request = TxnRequest("transfer", {"src": 1, "dst": 2, "amount": 5.0})
    sample = sample_from_request(registry, request)
    # both reads are for_update targets -> counted as writes
    assert set(sample.writes) == {("accounts", 1), ("accounts", 2)}
    assert sample.reads == ()


def test_sample_from_audit_is_read_only(registry):
    request = TxnRequest("audit", {"accounts": [3, 4]})
    sample = sample_from_request(registry, request)
    assert set(sample.reads) == {("accounts", 3), ("accounts", 4)}
    assert sample.writes == ()


def test_sample_skips_derived_and_hinted_records(registry):
    """The tax read (derived key) and seats insert (hint only) have no
    statically-known record id; the contention model ignores them."""
    request = TxnRequest("book_flight", {"flight_id": 7, "cust_id": 3})
    sample = sample_from_request(registry, request)
    assert set(sample.writes) == {("flight", 7), ("customer", 3)}
    assert sample.reads == ()


def test_sample_records_deduplicates_preserving_order():
    sample = TxnSample("p", reads=(("t", 1), ("t", 2)),
                       writes=(("t", 2), ("t", 3)))
    assert sample.records() == (("t", 1), ("t", 2), ("t", 3))


def test_stats_aggregation_counts():
    service = StatsService()
    service.record(TxnSample("p", reads=(("t", 1),), writes=(("t", 2),)))
    service.record(TxnSample("p", reads=(("t", 1),), writes=()))
    assert len(service) == 2
    assert service.access_counts(("t", 1)) == (0, 2)
    assert service.access_counts(("t", 2)) == (1, 0)


def test_arrival_rates_scale_with_window_and_sampling():
    service = StatsService(sample_rate=0.5, lock_window_us=10.0)
    for _ in range(100):
        service.record(TxnSample("p", reads=(("t", 1),), writes=()))
    rates = service.arrival_rates(observed_duration_us=1000.0)
    lw, lr = rates[("t", 1)]
    assert lw == 0.0
    # 100 sampled reads / 0.5 sample rate = 200 real reads over 1000us
    # -> 0.2 reads/us * 10us window = 2 per window
    assert lr == pytest.approx(2.0)


def test_likelihoods_rank_hot_above_cold():
    service = StatsService(sample_rate=1.0, lock_window_us=10.0)
    for i in range(50):
        service.record(TxnSample("p", reads=(),
                                 writes=(("t", "hot"),)))
        if i % 10 == 0:
            service.record(TxnSample("p", reads=(),
                                     writes=(("t", "cold"),)))
    likelihoods = service.likelihoods(observed_duration_us=10_000.0)
    assert likelihoods[("t", "hot")] > likelihoods[("t", "cold")]


def test_likelihoods_from_txn_rate():
    service = StatsService(sample_rate=1.0, lock_window_us=20.0)
    for _ in range(100):
        service.record(TxnSample("p", reads=(), writes=(("t", 1),)))
    # 100 txns at 10k txns/sec -> 10_000us observed; 0.01 writes/us
    # * 20us window -> lambda_w = 0.2 -> Pc = 1 - e^-.2 - .2e^-.2
    out = service.likelihoods_from_txn_rate(txns_per_second=10_000)
    assert out[("t", 1)] == pytest.approx(0.01752, abs=1e-4)


def test_invalid_windows_rejected():
    service = StatsService()
    with pytest.raises(ValueError):
        service.arrival_rates(0.0)
    with pytest.raises(ValueError):
        service.likelihoods_from_txn_rate(0.0)
