"""Reproductions of the paper's worked examples (Figs. 1, 2, 4, 5)."""

import pytest

from repro.core import (ChillerPartitionerConfig, HotRecordTable,
                        RegionPlanner, TxnSample, partition_workload)
from repro.workloads.flightbooking import flight_booking_procedure

ACCT = "accounts"


def fig5_samples():
    """The 7-record / 4-transaction workload of Fig. 5a.

    dave=1 jack=2 henry=3 phil=4 rose=5 adam=6 bob=7
    """
    return [
        TxnSample("t1", reads=((ACCT, 1), (ACCT, 2), (ACCT, 3)),
                  writes=()),
        TxnSample("t2", reads=(),
                  writes=((ACCT, 4), (ACCT, 5), (ACCT, 3))),
        TxnSample("t3", reads=(), writes=((ACCT, 6), (ACCT, 5))),
        TxnSample("t4", reads=((ACCT, 5), (ACCT, 7)), writes=()),
    ]


def fig5_likelihoods():
    """rose (5) is hottest, then henry (3); read-only records are 0."""
    return {
        (ACCT, 3): 0.37, (ACCT, 4): 0.13, (ACCT, 5): 1.0,
        (ACCT, 6): 0.13,
        (ACCT, 1): 0.0, (ACCT, 2): 0.0, (ACCT, 7): 0.0,
    }


def fig5_config(**overrides):
    """The paper simplifies the example's balance notion to 'split the
    set of records in half' -> the 'records' load metric, with enough
    slack for a 4/3 split of the 7 records."""
    defaults = dict(eps=0.15, seed=3, hot_threshold=0.1,
                    load_metric="records")
    defaults.update(overrides)
    return ChillerPartitionerConfig(**defaults)


def test_fig5_contention_centric_partitioning_zero_cut():
    """Fig. 5c: a two-way split exists with zero contention cut, with
    every written record co-located and t2/t3 fully local."""
    result = partition_workload(
        fig5_samples(), fig5_likelihoods(), n_partitions=2,
        config=fig5_config())
    assert result.cut_weight == pytest.approx(0.0)
    hot_side = {result.record_assignment[(ACCT, r)] for r in (3, 4, 5, 6)}
    assert len(hot_side) == 1, "all contended records must co-locate"
    # records balance: 4 on the hot side, 3 on the other
    side = hot_side.pop()
    counts = [0, 0]
    for rid, part in result.record_assignment.items():
        counts[part] += 1
    assert sorted(counts) == [3, 4]
    # every transaction's inner host is where the hot records live
    # (all four have their only weighted edges there)
    assert result.inner_hosts[1] == side  # t2 (local)
    assert result.inner_hosts[2] == side  # t3 (local)


def test_fig5_t2_t3_local_t1_t4_distributed():
    """Fig. 5c's table: t2 and t3 become local; t1 and t4 span both
    partitions (one more distributed transaction than Schism's split —
    the trade the paper argues is worth making)."""
    result = partition_workload(
        fig5_samples(), fig5_likelihoods(), n_partitions=2,
        config=fig5_config())
    assignment = result.record_assignment

    def spans(records):
        return len({assignment[(ACCT, r)] for r in records})

    assert spans((4, 5, 3)) == 1   # t2 local
    assert spans((6, 5)) == 1      # t3 local
    assert spans((1, 2, 3)) == 2   # t1 distributed
    assert spans((5, 7)) == 2      # t4 distributed


def test_fig5_hot_records_enter_lookup_table():
    result = partition_workload(
        fig5_samples(), fig5_likelihoods(), n_partitions=2,
        config=fig5_config())
    assert (ACCT, 5) in result.hot_table
    assert (ACCT, 3) in result.hot_table
    assert (ACCT, 1) not in result.hot_table
    assert (ACCT, 7) not in result.hot_table
    # lookup table is much smaller than the record population
    assert result.lookup_table_size() <= 4


def test_fig5_keep_all_records_mimics_schism_table():
    result = partition_workload(
        fig5_samples(), fig5_likelihoods(), n_partitions=2,
        config=fig5_config(keep_all_records=True))
    assert result.lookup_table_size() == 7


class _StaticPlacement:
    """Fixed record placement for the Fig. 1/2 toy example."""

    def __init__(self, mapping):
        self.mapping = mapping

    def __call__(self, table, key):
        return self.mapping[(table, key)]


def fig2_transaction_t3():
    """t3 of Fig. 1a: update r5, r4, r1 (r1 and r4 are hot)."""
    from repro.analysis import StoredProcedure, param_key, read, update

    return StoredProcedure(
        "t3", params=("k5", "k4", "k1"),
        ops=[
            read("r5", "recs", key=param_key("k5"), for_update=True),
            read("r4", "recs", key=param_key("k4"), for_update=True),
            read("r1", "recs", key=param_key("k1"), for_update=True),
            update("u5", target="r5",
                   set_fn=lambda p, c, i: {"v": c["r5"]["v"] + 1}),
            update("u4", target="r4",
                   set_fn=lambda p, c, i: {"v": c["r4"]["v"] + 1}),
            update("u1", target="r1",
                   set_fn=lambda p, c, i: {"v": c["r1"]["v"] + 1}),
        ])


def test_fig2_two_region_plan_for_t3():
    """Section 2.2: with r1, r4 hot on server 3 (here partition 2), t3's
    inner region is {r1, r4} and only r5 stays outer."""
    placement = _StaticPlacement({
        ("recs", "r1"): 2, ("recs", "r4"): 2,
        ("recs", "r5"): 0, ("recs", "r2"): 0, ("recs", "r3"): 1,
    })
    hot = HotRecordTable({("recs", "r1"): 2, ("recs", "r4"): 2})
    planner = RegionPlanner(hot, placement)
    proc = fig2_transaction_t3()
    params = {"k5": "r5", "k4": "r4", "k1": "r1"}
    plan = planner.plan(proc.instantiate(params), params)
    assert plan.two_region
    assert plan.inner_host == 2
    assert set(plan.inner_names()) == {"r4", "r1", "u4", "u1"}
    outer = {inst.name for inst in plan.outer}
    assert outer == {"r5", "u5"}
    assert plan.hot_inner_records == 2


def test_fig4_flight_example_region_split():
    """Fig. 4: with the flight hot, the inner region is {flight read,
    flight update, seats insert}; customer and tax stay outer; the
    feasibility check runs at the inner host (it needs the flight)."""
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    placement = _StaticPlacement({
        ("flight", 7): 1, ("seats", (7, 0)): 1,
        ("customer", 3): 0,
    })
    hot = HotRecordTable({("flight", 7): 1})
    planner = RegionPlanner(hot, placement)
    plan = planner.plan(proc.instantiate(params), params)
    assert plan.two_region
    assert plan.inner_host == 1
    assert set(plan.inner_names()) == {"f", "f_upd", "s_ins", "ok"}
    outer = {inst.name for inst in plan.outer}
    assert outer == {"c", "t", "c_upd"}


def test_fig4_insert_on_other_partition_blocks_inner_region():
    """Section 3.3 step 1: if the seats insert lived on a different
    partition than the flight, the flight could not enter the inner
    region (pk-dep child elsewhere)."""
    proc = flight_booking_procedure()
    params = {"flight_id": 7, "cust_id": 3}
    placement = _StaticPlacement({
        ("flight", 7): 1, ("seats", (7, 0)): 2,  # child elsewhere!
        ("customer", 3): 0,
    })
    hot = HotRecordTable({("flight", 7): 1})
    planner = RegionPlanner(hot, placement)
    plan = planner.plan(proc.instantiate(params), params)
    assert not plan.two_region
    assert plan.blocked_hot_records == 1
