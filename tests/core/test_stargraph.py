"""Tests for the star workload-graph representation (Section 4.2)."""

import pytest

from repro.core import TxnSample, build_star_graph


def samples_simple():
    return [
        TxnSample("p", reads=(("t", "a"),), writes=(("t", "h"),)),
        TxnSample("p", reads=(("t", "b"),), writes=(("t", "h"),)),
    ]


def test_star_shape_vertex_and_edge_counts():
    """|V| = |T| + |R| and n edges per transaction (not n(n-1)/2)."""
    star = build_star_graph(samples_simple(), {("t", "h"): 0.9})
    assert star.n_transactions == 2
    assert star.n_records == 3  # a, b, h
    assert star.graph.n_vertices == 5
    assert star.graph.n_edges == 4  # 2 records per txn
    # no record-record edges: records connect only through t-vertices
    for rid, vertex in star.r_vertex_of.items():
        for neighbor in star.graph.neighbors(vertex):
            assert neighbor in star.t_vertex_of


def test_edge_weights_follow_normalized_likelihood():
    star = build_star_graph(samples_simple(),
                            {("t", "h"): 0.5, ("t", "a"): 0.25})
    assert star.edge_weight_of[("t", "h")] == pytest.approx(1.0)
    assert star.edge_weight_of[("t", "a")] == pytest.approx(0.5)
    assert star.edge_weight_of[("t", "b")] == pytest.approx(0.0)


def test_min_weight_floors_all_edges():
    star = build_star_graph(samples_simple(), {("t", "h"): 0.5},
                            min_weight=0.1)
    assert star.edge_weight_of[("t", "a")] == pytest.approx(0.1)
    assert star.edge_weight_of[("t", "h")] == pytest.approx(1.0)


def test_duplicate_record_access_collapses_to_one_edge():
    sample = TxnSample("p", reads=(("t", "x"),), writes=(("t", "x"),))
    star = build_star_graph([sample], {})
    assert star.graph.n_edges == 1


def test_load_metric_transactions():
    star = build_star_graph(samples_simple(), {},
                            load_metric="transactions")
    for v in star.t_vertex_of:
        assert star.graph.vertex_weights[v] == 1.0
    for v in star.r_vertex_of.values():
        assert star.graph.vertex_weights[v] == 0.0


def test_load_metric_records():
    star = build_star_graph(samples_simple(), {}, load_metric="records")
    for v in star.t_vertex_of:
        assert star.graph.vertex_weights[v] == 0.0
    for v in star.r_vertex_of.values():
        assert star.graph.vertex_weights[v] == 1.0


def test_load_metric_accesses():
    star = build_star_graph(samples_simple(), {}, load_metric="accesses")
    h_vertex = star.r_vertex_of[("t", "h")]
    a_vertex = star.r_vertex_of[("t", "a")]
    assert star.graph.vertex_weights[h_vertex] == 2.0
    assert star.graph.vertex_weights[a_vertex] == 1.0


def test_unknown_load_metric_rejected():
    with pytest.raises(ValueError, match="load metric"):
        build_star_graph([], {}, load_metric="bogus")


def test_negative_min_weight_rejected():
    with pytest.raises(ValueError):
        build_star_graph([], {}, min_weight=-0.5)


def test_assignment_helpers():
    star = build_star_graph(samples_simple(), {("t", "h"): 0.9})
    # vertices: t0, t1 then records in first-seen order a, h, b
    assignment = [0, 1, 0, 0, 1]
    records = star.record_assignment(assignment)
    assert records[("t", "a")] == 0
    assert records[("t", "h")] == 0
    assert records[("t", "b")] == 1
    assert star.inner_host_assignment(assignment) == [0, 1]
