"""Tests for the two-region Chiller executor (Sections 3 and 5)."""

import pytest

from repro.analysis import ProcedureRegistry
from repro.core import ChillerExecutor, HotRecordTable
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog, LockMode
from repro.txn import AbortReason, Database, HistoryRecorder, TxnRequest
from repro.workloads.flightbooking import (FLIGHT_TABLES, flight_booking_procedure,
                                           flight_routing, populate)


def make_flight_db(n_partitions=3, n_replicas=0, hot_flights=(7,)):
    cluster = Cluster(n_partitions)
    registry = ProcedureRegistry()
    registry.register(flight_booking_procedure())
    scheme = HashScheme(n_partitions, routing=flight_routing)
    catalog = Catalog(n_partitions, scheme)
    db = Database(cluster, catalog, FLIGHT_TABLES, registry,
                  n_replicas=n_replicas)
    populate(db.loader())
    hot = HotRecordTable({("flight", f): scheme.partition_of("flight", f)
                          for f in hot_flights})
    executor = ChillerExecutor(db, hot, history=HistoryRecorder())
    return db, cluster, executor, scheme


def run_txn(cluster, executor, request):
    outcomes = []
    cluster.engine(request.home).spawn(executor.execute(request),
                                       outcomes.append)
    cluster.run()
    assert len(outcomes) == 1
    return outcomes[0]


def booking(db, home=None, flight=7, cust=3):
    flight_pid = db.partition_of("flight", flight)
    if home is None:  # pick a coordinator that is NOT the inner host
        home = (flight_pid + 1) % db.n_partitions
    return TxnRequest("book_flight",
                      {"flight_id": flight, "cust_id": cust}, home=home)


def test_hot_flight_booking_runs_two_region():
    db, cluster, executor, scheme = make_flight_db()
    outcome = run_txn(cluster, executor, booking(db))
    assert outcome.committed
    assert outcome.used_two_region
    assert outcome.inner_host == scheme.partition_of("flight", 7)


def test_booking_semantics_applied():
    db, cluster, executor, _ = make_flight_db()
    outcome = run_txn(cluster, executor, booking(db))
    assert outcome.committed
    fpid = db.partition_of("flight", 7)
    flight = db.store(fpid).read("flight", 7)[0]
    assert flight["seats"] == 199
    seat = db.store(fpid).read("seats", (7, 200))
    assert seat is not None
    assert seat[0]["cust"] == 3
    cpid = db.partition_of("customer", 3)
    customer = db.store(cpid).read("customer", 3)[0]
    assert customer["balance"] < 10_000.0  # debited by the ticket cost


def test_cold_flight_falls_back_to_normal_execution():
    db, cluster, executor, _ = make_flight_db(hot_flights=())
    outcome = run_txn(cluster, executor, booking(db))
    assert outcome.committed
    assert not outcome.used_two_region
    assert outcome.inner_host is None


def test_inner_lock_conflict_aborts_and_cleans_outer():
    db, cluster, executor, _ = make_flight_db()
    fpid = db.partition_of("flight", 7)
    db.store(fpid).try_lock("flight", 7, LockMode.EXCLUSIVE, "intruder")
    outcome = run_txn(cluster, executor, booking(db))
    assert not outcome.committed
    assert outcome.reason is AbortReason.INNER_CONFLICT
    # the outer region's locks (customer, tax) must be released
    cpid = db.partition_of("customer", 3)
    assert not db.store(cpid).is_locked("customer", 3)
    # nothing was applied anywhere
    assert db.store(fpid).read("flight", 7)[0]["seats"] == 200
    assert db.store(cpid).read("customer", 3)[0]["balance"] == 10_000.0


def test_inner_logical_abort_no_partial_effects():
    db, cluster, executor, _ = make_flight_db()
    fpid = db.partition_of("flight", 7)
    db.store(fpid).write("flight", 7, {"seats": 0})  # sold out
    outcome = run_txn(cluster, executor, booking(db))
    assert not outcome.committed
    assert outcome.reason is AbortReason.LOGICAL
    cpid = db.partition_of("customer", 3)
    assert db.store(cpid).read("customer", 3)[0]["balance"] == 10_000.0
    assert not db.store(fpid).is_locked("flight", 7)


def test_coordinator_co_located_with_inner_host():
    """When the coordinator's partition IS the inner host, the inner
    region runs inline without an RPC."""
    db, cluster, executor, scheme = make_flight_db()
    fpid = scheme.partition_of("flight", 7)
    before = db.cluster.network.stats.messages
    outcome = run_txn(cluster, executor, booking(db, home=fpid))
    assert outcome.committed
    assert outcome.used_two_region
    # no inner RPC was needed (no messages unless replication)
    assert db.cluster.network.stats.messages == before


def test_outer_update_uses_inner_computed_value():
    """The customer debit (outer phase 2) consumes the ticket cost,
    which depends on the flight price read in the INNER region."""
    db, cluster, executor, _ = make_flight_db()
    outcome = run_txn(cluster, executor, booking(db))
    assert outcome.committed
    cpid = db.partition_of("customer", 3)
    balance = db.store(cpid).read("customer", 3)[0]["balance"]
    # price = 100 + 7 = 107; customer 3 is in state 3 -> rate 0.065
    assert balance == pytest.approx(10_000.0 - 107.0 * 1.065)


def test_inner_replication_reaches_replicas_and_acks():
    db, cluster, executor, scheme = make_flight_db(n_replicas=1)
    outcome = run_txn(cluster, executor, booking(db))
    assert outcome.committed
    fpid = scheme.partition_of("flight", 7)
    for rserver in db.replicas.replica_servers(fpid):
        replica = db.replicas.store_on(rserver, fpid)
        assert replica.read("flight", 7)[0]["seats"] == 199
        assert replica.read("seats", (7, 200)) is not None
    # no dangling ack state
    assert executor._pending_acks == {}


def test_inner_abort_skips_replication():
    db, cluster, executor, scheme = make_flight_db(n_replicas=1)
    fpid = scheme.partition_of("flight", 7)
    db.store(fpid).write("flight", 7, {"seats": 0})
    outcome = run_txn(cluster, executor, booking(db))
    assert not outcome.committed
    for rserver in db.replicas.replica_servers(fpid):
        replica = db.replicas.store_on(rserver, fpid)
        # the replica still has the loaded value (200): the failed inner
        # region must not replicate anything
        assert replica.read("flight", 7)[0]["seats"] == 200
    assert executor._pending_acks == {}


def test_outcome_partitions_include_inner_host():
    db, cluster, executor, scheme = make_flight_db()
    outcome = run_txn(cluster, executor, booking(db))
    assert scheme.partition_of("flight", 7) in outcome.partitions


def test_history_includes_inner_reads_and_writes():
    db, cluster, executor, _ = make_flight_db()
    run_txn(cluster, executor, booking(db))
    log = executor.history.commits[0]
    read_rids = {rid for rid, _ in log.reads}
    write_rids = {rid for rid, _ in log.writes}
    assert ("flight", 7) in read_rids
    assert ("flight", 7) in write_rids
    assert ("seats", (7, 200)) in write_rids
    assert ("customer", 3) in write_rids


def test_two_sequential_bookings_get_distinct_seats():
    db, cluster, executor, _ = make_flight_db()
    assert run_txn(cluster, executor, booking(db, cust=3)).committed
    assert run_txn(cluster, executor, booking(db, cust=4)).committed
    fpid = db.partition_of("flight", 7)
    assert db.store(fpid).read("flight", 7)[0]["seats"] == 198
    assert db.store(fpid).read("seats", (7, 200)) is not None
    assert db.store(fpid).read("seats", (7, 199)) is not None
