"""Tests for the optional Section 3.3 inner-lock bypass."""

import pytest

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig
from repro.bench.setups import make_tpcc_run
from repro.core import ChillerExecutor, HotRecordTable
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog, LockMode
from repro.txn import AbortReason, ExecConfig, TxnRequest, Database
from repro.workloads.flightbooking import (FLIGHT_TABLES,
                                           flight_booking_procedure,
                                           flight_routing, populate)


def make_flight_db(bypass):
    cluster = Cluster(3)
    registry = ProcedureRegistry()
    registry.register(flight_booking_procedure())
    scheme = HashScheme(3, routing=flight_routing)
    db = Database(cluster, Catalog(3, scheme), FLIGHT_TABLES, registry,
                  n_replicas=0)
    populate(db.loader())
    hot = HotRecordTable({("flight", 7): scheme.partition_of("flight",
                                                             7)})
    executor = ChillerExecutor(
        db, hot, config=ExecConfig(bypass_inner_locks=bypass))
    return db, cluster, executor


def run_booking(db, cluster, executor):
    fpid = db.partition_of("flight", 7)
    home = (fpid + 1) % 3
    outcomes = []
    request = TxnRequest("book_flight",
                         {"flight_id": 7, "cust_id": 3}, home=home)
    cluster.engine(home).spawn(executor.execute(request), outcomes.append)
    cluster.run()
    return outcomes[0]


def test_bypass_commits_without_taking_inner_locks():
    db, cluster, executor = make_flight_db(bypass=True)
    outcome = run_booking(db, cluster, executor)
    assert outcome.committed
    fpid = db.partition_of("flight", 7)
    assert db.store(fpid).read("flight", 7)[0]["seats"] == 199
    assert not db.store(fpid).is_locked("flight", 7)


def test_bypass_still_respects_foreign_locks():
    """A lock held by someone else (an outer region) must still abort
    the inner region — bypass is not license to trample."""
    db, cluster, executor = make_flight_db(bypass=True)
    fpid = db.partition_of("flight", 7)
    db.store(fpid).try_lock("flight", 7, LockMode.EXCLUSIVE, "outer-txn")
    outcome = run_booking(db, cluster, executor)
    assert not outcome.committed
    assert outcome.reason is AbortReason.INNER_CONFLICT
    assert db.store(fpid).read("flight", 7)[0]["seats"] == 200


def test_bypass_preserves_tpcc_serializability():
    """On TPC-C the bypass precondition holds (warehouse/district rows
    are only ever inner), so the full mix must stay serializable."""
    config = RunConfig(n_partitions=2, concurrent_per_engine=3,
                       horizon_us=4_000.0, warmup_us=0.0, seed=13,
                       n_replicas=0, record_history=True,
                       exec_config=ExecConfig(bypass_inner_locks=True))
    run = make_tpcc_run("chiller", config)
    result = run.run()
    assert result.metrics.commits > 50
    assert result.history.find_cycle() is None
    # consistency spot check
    db = run.database
    for w in range(run.workload.scale.n_warehouses):
        pid = db.partition_of("warehouse", w)
        w_ytd = db.store(pid).read("warehouse", w)[0]["w_ytd"]
        d_sum = sum(db.store(pid).read("district", (w, d))[0]["d_ytd"]
                    for d in range(10))
        assert w_ytd == pytest.approx(d_sum)
