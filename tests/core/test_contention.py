"""Tests for the Poisson contention-likelihood model (Section 4.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import contention_likelihood, likelihoods_from_rates, normalize


def test_no_writes_means_no_contention():
    """Shared locks are compatible: lambda_w = 0 -> Pc = 0 exactly."""
    assert contention_likelihood(0.0, 0.0) == pytest.approx(0.0)
    assert contention_likelihood(0.0, 100.0) == pytest.approx(0.0)


def test_matches_closed_form():
    lw, lr = 0.7, 1.3
    expected = 1 - math.exp(-lw) - lw * math.exp(-lw) * math.exp(-lr)
    assert contention_likelihood(lw, lr) == pytest.approx(expected)


def test_matches_two_term_derivation():
    """The closed form equals P(ww conflict) + P(rw conflict)."""
    lw, lr = 0.9, 0.4
    p_w0 = math.exp(-lw)
    p_w1 = lw * math.exp(-lw)
    p_r0 = math.exp(-lr)
    ww = (1 - p_w0 - p_w1) * p_r0          # >=2 writes, no reads
    rw = (1 - p_w0) * (1 - p_r0)           # >=1 write, >=1 read
    assert contention_likelihood(lw, lr) == pytest.approx(ww + rw)


def test_heavy_write_rate_saturates_to_one():
    assert contention_likelihood(50.0, 0.0) == pytest.approx(1.0, abs=1e-6)


def test_negative_rates_rejected():
    with pytest.raises(ValueError):
        contention_likelihood(-0.1, 0.0)
    with pytest.raises(ValueError):
        contention_likelihood(0.0, -0.1)


@given(st.floats(0.0, 20.0), st.floats(0.0, 20.0))
def test_likelihood_is_a_probability(lw, lr):
    value = contention_likelihood(lw, lr)
    assert -1e-12 <= value <= 1.0


@given(st.floats(0.001, 10.0), st.floats(0.0, 10.0), st.floats(0.01, 5.0))
def test_monotone_in_read_rate_when_writes_exist(lw, lr, delta):
    """More readers of a written record -> more read-write conflicts."""
    assert (contention_likelihood(lw, lr + delta)
            >= contention_likelihood(lw, lr) - 1e-12)


@given(st.floats(0.0, 10.0), st.floats(0.0, 10.0), st.floats(0.01, 5.0))
def test_monotone_in_write_rate(lw, lr, delta):
    assert (contention_likelihood(lw + delta, lr)
            >= contention_likelihood(lw, lr) - 1e-12)


def test_likelihoods_from_rates():
    rates = {("t", 1): (1.0, 2.0), ("t", 2): (0.0, 5.0)}
    out = likelihoods_from_rates(rates)
    assert out[("t", 2)] == pytest.approx(0.0)
    assert out[("t", 1)] > 0.0


def test_normalize_peaks_at_one():
    values = {("t", 1): 0.2, ("t", 2): 0.4, ("t", 3): 0.0}
    out = normalize(values)
    assert out[("t", 2)] == pytest.approx(1.0)
    assert out[("t", 1)] == pytest.approx(0.5)
    assert out[("t", 3)] == pytest.approx(0.0)


def test_normalize_all_zero_and_empty():
    assert normalize({}) == {}
    out = normalize({("t", 1): 0.0})
    assert out[("t", 1)] == 0.0
