"""Unit tests for the weighted graph structure."""

import pytest

from repro.graph import WeightedGraph


def test_add_vertices_and_edges():
    g = WeightedGraph()
    a = g.add_vertex(2.0)
    b = g.add_vertex(3.0)
    g.add_edge(a, b, 1.5)
    assert g.n_vertices == 2
    assert g.n_edges == 1
    assert g.neighbors(a) == {b: 1.5}
    assert g.total_vertex_weight() == 5.0
    assert g.total_edge_weight() == 1.5


def test_parallel_edges_accumulate():
    g = WeightedGraph.from_edges(2, [(0, 1, 1.0), (0, 1, 2.0)])
    assert g.neighbors(0)[1] == 3.0
    assert g.n_edges == 1


def test_self_loop_rejected():
    g = WeightedGraph.from_edges(2, [])
    with pytest.raises(ValueError):
        g.add_edge(1, 1)


def test_negative_weight_rejected():
    g = WeightedGraph.from_edges(2, [])
    with pytest.raises(ValueError):
        g.add_edge(0, 1, -1.0)


def test_unknown_vertex_rejected():
    g = WeightedGraph.from_edges(2, [])
    with pytest.raises(IndexError):
        g.add_edge(0, 5)


def test_edge_cut():
    #  0 -1- 1 -5- 2    cut between {0,1} and {2} = 5
    g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 5.0)])
    assert g.edge_cut([0, 0, 1]) == 5.0
    assert g.edge_cut([0, 1, 1]) == 1.0
    assert g.edge_cut([0, 0, 0]) == 0.0


def test_edge_cut_wrong_length():
    g = WeightedGraph.from_edges(3, [])
    with pytest.raises(ValueError):
        g.edge_cut([0, 1])


def test_part_loads_and_balance():
    g = WeightedGraph.from_edges(4, [], vertex_weights=[1, 1, 1, 3])
    assert g.part_loads([0, 0, 1, 1], 2) == [2.0, 4.0]
    # mu = 3; (1+eps)*mu with eps=0.5 allows 4.5
    assert g.is_balanced([0, 0, 1, 1], 2, eps=0.5)
    assert not g.is_balanced([0, 0, 1, 1], 2, eps=0.1)


def test_part_loads_invalid_assignment():
    g = WeightedGraph.from_edges(2, [])
    with pytest.raises(ValueError):
        g.part_loads([0, 7], 2)
