"""Multilevel partitioner tests: correctness, balance, cut quality."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import make_rng
from repro.graph import (WeightedGraph, coarsen, coarsen_once,
                         heavy_edge_matching, part_graph)


def two_cliques(n_per=6, bridge_weight=0.1):
    """Two heavy cliques joined by one light bridge edge."""
    g = WeightedGraph()
    for _ in range(2 * n_per):
        g.add_vertex(1.0)
    for base in (0, n_per):
        for i in range(n_per):
            for j in range(i + 1, n_per):
                g.add_edge(base + i, base + j, 10.0)
    g.add_edge(0, n_per, bridge_weight)
    return g


def test_two_cliques_split_on_the_bridge():
    g = two_cliques()
    assignment = part_graph(g, 2, eps=0.1, seed=3)
    assert g.edge_cut(assignment) == pytest.approx(0.1)
    assert g.is_balanced(assignment, 2, 0.1)
    # each clique wholly on one side
    assert len({assignment[i] for i in range(6)}) == 1
    assert len({assignment[i] for i in range(6, 12)}) == 1


def test_k1_trivial():
    g = two_cliques()
    assert part_graph(g, 1) == [0] * g.n_vertices


def test_k_larger_than_vertices_rejected():
    g = WeightedGraph.from_edges(2, [(0, 1, 1.0)])
    with pytest.raises(ValueError):
        part_graph(g, 3)


def test_empty_graph():
    assert part_graph(WeightedGraph(), 4) == []


def test_four_cliques_into_four_parts():
    g = WeightedGraph()
    n_per, k = 5, 4
    for _ in range(n_per * k):
        g.add_vertex(1.0)
    for c in range(k):
        base = c * n_per
        for i in range(n_per):
            for j in range(i + 1, n_per):
                g.add_edge(base + i, base + j, 5.0)
    # ring of light bridges
    for c in range(k):
        g.add_edge(c * n_per, ((c + 1) % k) * n_per, 0.2)
    assignment = part_graph(g, k, eps=0.1, seed=5)
    assert g.is_balanced(assignment, k, 0.1)
    assert g.edge_cut(assignment) <= 1.0  # only bridges cut


def test_zero_weight_vertices_allowed():
    """r-vertices carry weight 0 under the 'transactions' load metric."""
    g = WeightedGraph()
    for i in range(8):
        g.add_vertex(1.0 if i < 4 else 0.0)
    for i in range(4):
        g.add_edge(i, 4 + i, 2.0)
    assignment = part_graph(g, 2, eps=0.1, seed=1)
    assert g.is_balanced(assignment, 2, 0.1)
    # zero cut is achievable: each (t, r) pair together
    assert g.edge_cut(assignment) == 0.0


def test_heavy_edge_matching_is_a_matching():
    g = two_cliques()
    match = heavy_edge_matching(g, random.Random(1))
    for v, partner in enumerate(match):
        assert match[partner] == v


def test_coarsen_once_preserves_total_vertex_weight():
    g = two_cliques()
    level = coarsen_once(g, random.Random(1))
    assert level.graph.total_vertex_weight() == pytest.approx(
        g.total_vertex_weight())
    assert level.graph.n_vertices < g.n_vertices


def test_coarsen_preserves_cut_correspondence():
    g = two_cliques()
    level = coarsen_once(g, random.Random(3))
    coarse_assignment = [i % 2 for i in range(level.graph.n_vertices)]
    projected = level.project(coarse_assignment)
    assert g.edge_cut(projected) == pytest.approx(
        level.graph.edge_cut(coarse_assignment))


def test_coarsen_terminates_on_edgeless_graph():
    g = WeightedGraph.from_edges(50, [])
    levels = coarsen(g, 10, random.Random(1))
    # nothing to match: must stop, not loop forever
    assert levels == [] or levels[-1].graph.n_vertices >= 10


def test_deterministic_given_seed():
    g = two_cliques()
    a = part_graph(g, 2, seed=9)
    b = part_graph(g, 2, seed=9)
    assert a == b


@settings(max_examples=25, deadline=None)
@given(st.integers(10, 60), st.integers(2, 4), st.integers(0, 10_000))
def test_random_graphs_valid_and_balanced(n, k, seed):
    """Property: any random graph yields a total, balanced assignment."""
    rng = make_rng(seed, "gen")
    g = WeightedGraph()
    for _ in range(n):
        g.add_vertex(rng.choice([0.5, 1.0, 2.0]))
    for _ in range(2 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v, rng.uniform(0.1, 5.0))
    assignment = part_graph(g, k, eps=0.35, seed=seed)
    assert len(assignment) == n
    assert all(0 <= p < k for p in assignment)
    assert g.is_balanced(assignment, k, 0.35)


@settings(max_examples=15, deadline=None)
@given(st.integers(12, 40), st.integers(0, 1000))
def test_partitioner_beats_random_split(n, seed):
    """The cut should be no worse than a random balanced split."""
    rng = make_rng(seed, "beat")
    g = WeightedGraph()
    for _ in range(n):
        g.add_vertex(1.0)
    for _ in range(3 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v, rng.uniform(0.1, 3.0))
    assignment = part_graph(g, 2, eps=0.2, seed=seed)
    random_split = [i % 2 for i in range(n)]
    assert g.edge_cut(assignment) <= g.edge_cut(random_split) + 1e-9
