"""Focused tests for coarsening and refinement internals."""

import random

import pytest

from repro.graph import (WeightedGraph, coarsen, initial_partition,
                         rebalance, refine, swap_refine)


def path_graph(n, weight=1.0):
    g = WeightedGraph()
    for _ in range(n):
        g.add_vertex(1.0)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight)
    return g


def test_coarsen_reaches_target():
    g = path_graph(256)
    levels = coarsen(g, 32, random.Random(1))
    assert levels
    assert levels[-1].graph.n_vertices <= 64  # halves each level
    # weights preserved at every level
    for level in levels:
        assert level.graph.total_vertex_weight() == pytest.approx(256.0)


def test_projection_round_trip():
    g = path_graph(64)
    levels = coarsen(g, 8, random.Random(2))
    coarse = levels[-1].graph
    assignment = [i % 2 for i in range(coarse.n_vertices)]
    for level in reversed(levels):
        assignment = level.project(assignment)
    assert len(assignment) == 64
    assert set(assignment) <= {0, 1}


def test_initial_partition_covers_all_vertices():
    g = path_graph(40)
    assignment = initial_partition(g, 4, 0.2, random.Random(3))
    assert len(assignment) == 40
    assert set(assignment) == {0, 1, 2, 3}
    assert g.is_balanced(assignment, 4, 0.2)


def test_initial_partition_k1():
    g = path_graph(5)
    assert initial_partition(g, 1, 0.1, random.Random(1)) == [0] * 5


def test_initial_partition_invalid_k():
    g = path_graph(5)
    with pytest.raises(ValueError):
        initial_partition(g, 0, 0.1, random.Random(1))


def test_refine_reduces_cut():
    g = path_graph(20)
    # deliberately awful: alternating assignment cuts every edge
    assignment = [i % 2 for i in range(20)]
    before = g.edge_cut(assignment)
    refine(g, assignment, 2, eps=0.2)
    assert g.edge_cut(assignment) < before
    assert g.is_balanced(assignment, 2, 0.2)


def test_refine_never_worsens_cut():
    rng = random.Random(5)
    g = WeightedGraph()
    for _ in range(30):
        g.add_vertex(1.0)
    for _ in range(80):
        u, v = rng.randrange(30), rng.randrange(30)
        if u != v:
            g.add_edge(u, v, rng.uniform(0.1, 2.0))
    assignment = [rng.randrange(3) for _ in range(30)]
    assignment = rebalance(g, assignment, 3, 0.3)
    before = g.edge_cut(assignment)
    refine(g, assignment, 3, eps=0.3)
    assert g.edge_cut(assignment) <= before + 1e-9


def test_swap_refine_fixes_tight_balance():
    """Two vertices stuck on the wrong sides can only be fixed by a
    swap when the balance cap forbids single moves."""
    g = WeightedGraph()
    for _ in range(4):
        g.add_vertex(1.0)
    # pairs (0,1) and (2,3) heavy; start split across
    g.add_edge(0, 1, 10.0)
    g.add_edge(2, 3, 10.0)
    g.add_edge(0, 2, 0.1)
    assignment = [0, 1, 1, 0]  # cuts both heavy edges
    swap_refine(g, assignment, 2, eps=0.0)
    assert g.edge_cut(assignment) == pytest.approx(0.1)
    assert g.is_balanced(assignment, 2, 0.0)


def test_rebalance_enforces_cap():
    g = WeightedGraph()
    for _ in range(10):
        g.add_vertex(1.0)
    assignment = [0] * 10  # everything on one side
    rebalance(g, assignment, 2, eps=0.1)
    assert g.is_balanced(assignment, 2, 0.1)
