"""Unit tests for the 2PL NO_WAIT + 2PC executor."""

import pytest

from repro.analysis import ProcedureRegistry
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog, LockMode
from repro.txn import (AbortReason, Database, HistoryRecorder,
                       TwoPLExecutor, TxnRequest)
from repro.workloads.bank import BankWorkload


def make_db(n_partitions=2, n_replicas=0, workload=None):
    workload = workload or BankWorkload(n_accounts=100)
    cluster = Cluster(n_partitions)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    catalog = Catalog(n_partitions, HashScheme(n_partitions))
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=n_replicas)
    workload.populate(db.loader())
    return db, cluster, workload


def run_txn(db, cluster, executor, request):
    outcomes = []
    cluster.engine(request.home).spawn(executor.execute(request),
                                       outcomes.append)
    cluster.run()
    assert len(outcomes) == 1
    return outcomes[0]


def balance_of(db, acct):
    pid = db.partition_of("accounts", acct)
    return db.store(pid).read("accounts", acct)[0]["balance"]


def test_commit_applies_updates():
    db, cluster, _ = make_db()
    executor = TwoPLExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 2, "amount": 50.0}))
    assert outcome.committed
    assert balance_of(db, 1) == 950.0
    assert balance_of(db, 2) == 1050.0


def test_logical_abort_leaves_state_untouched():
    db, cluster, _ = make_db()
    executor = TwoPLExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 2, "amount": 1e9}))
    assert not outcome.committed
    assert outcome.reason is AbortReason.LOGICAL
    assert balance_of(db, 1) == 1000.0
    assert balance_of(db, 2) == 1000.0


def test_abort_releases_all_locks():
    db, cluster, _ = make_db()
    executor = TwoPLExecutor(db)
    run_txn(db, cluster, executor,
            TxnRequest("transfer", {"src": 1, "dst": 2, "amount": 1e9}))
    for acct in (1, 2):
        pid = db.partition_of("accounts", acct)
        assert not db.store(pid).is_locked("accounts", acct)


def test_commit_releases_all_locks():
    db, cluster, _ = make_db()
    executor = TwoPLExecutor(db)
    run_txn(db, cluster, executor,
            TxnRequest("transfer", {"src": 1, "dst": 2, "amount": 1.0}))
    for acct in (1, 2):
        pid = db.partition_of("accounts", acct)
        assert not db.store(pid).is_locked("accounts", acct)


def test_lock_conflict_aborts_no_wait():
    db, cluster, _ = make_db()
    executor = TwoPLExecutor(db)
    pid = db.partition_of("accounts", 1)
    db.store(pid).try_lock("accounts", 1, LockMode.EXCLUSIVE, "intruder")
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 2, "amount": 1.0}))
    assert not outcome.committed
    assert outcome.reason is AbortReason.LOCK_CONFLICT
    # the victim's locks are gone; the intruder's remains
    assert db.store(pid).locks_held("intruder") == 1


def test_read_miss_aborts():
    db, cluster, _ = make_db()
    executor = TwoPLExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 424242, "amount": 1.0}))
    assert not outcome.committed
    assert outcome.reason is AbortReason.READ_MISS


def test_outcome_partitions_and_distributed_flag():
    db, cluster, _ = make_db(n_partitions=2)
    executor = TwoPLExecutor(db)
    # find two accounts on different partitions
    src = 1
    dst = next(a for a in range(2, 100)
               if db.partition_of("accounts", a)
               != db.partition_of("accounts", src))
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": src, "dst": dst, "amount": 1.0}))
    assert outcome.committed
    assert outcome.distributed
    assert len(outcome.partitions) == 2


def test_local_transaction_is_not_distributed():
    db, cluster, _ = make_db(n_partitions=2)
    executor = TwoPLExecutor(db)
    src = 1
    dst = next(a for a in range(2, 100)
               if db.partition_of("accounts", a)
               == db.partition_of("accounts", src))
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": src, "dst": dst, "amount": 1.0}))
    assert outcome.committed
    assert not outcome.distributed


def test_replication_ships_committed_writes():
    db, cluster, _ = make_db(n_partitions=3, n_replicas=1)
    executor = TwoPLExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 2, "amount": 25.0}))
    assert outcome.committed
    for acct, expected in ((1, 975.0), (2, 1025.0)):
        pid = db.partition_of("accounts", acct)
        for rserver in db.replicas.replica_servers(pid):
            replica = db.replicas.store_on(rserver, pid)
            assert replica.read("accounts", acct)[0]["balance"] == expected


def test_history_recorded_on_commit():
    db, cluster, _ = make_db()
    history = HistoryRecorder()
    executor = TwoPLExecutor(db, history=history)
    run_txn(db, cluster, executor,
            TxnRequest("transfer", {"src": 1, "dst": 2, "amount": 1.0}))
    assert len(history) == 1
    log = history.commits[0]
    assert {rid for rid, _ in log.reads} == {("accounts", 1),
                                             ("accounts", 2)}
    assert {rid for rid, _ in log.writes} == {("accounts", 1),
                                              ("accounts", 2)}


def test_audit_takes_only_shared_locks_and_commits():
    db, cluster, _ = make_db()
    executor = TwoPLExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("audit", {"accounts": [1, 2, 3]}))
    assert outcome.committed
