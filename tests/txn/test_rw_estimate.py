"""BaseExecutor.estimate_rw_sets: pre-execution fingerprint source."""

from repro.analysis import ProcedureRegistry
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, TwoPLExecutor
from repro.txn.common import TxnRequest
from repro.workloads.bank import BankWorkload
from repro.workloads.tpcc import TpccScale, TpccWorkload
from repro.workloads.ycsb import YcsbWorkload


def build_executor(workload, n_partitions=2):
    cluster = Cluster(n_partitions)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(n_partitions, HashScheme(n_partitions)),
                  workload.tables(), registry, n_replicas=0)
    workload.populate(db.loader())
    return TwoPLExecutor(db)


def test_ycsb_reads_and_for_update_writes():
    executor = build_executor(YcsbWorkload(n_keys=100))
    request = TxnRequest("ycsb", {"read_keys": [1, 2],
                                  "write_keys": [3, 4]}, home=0)
    reads, writes = executor.estimate_rw_sets(request)
    assert reads == {("usertable", 1), ("usertable", 2)}
    # for_update reads conflict like writes (exclusive lock up front)
    assert writes == {("usertable", 3), ("usertable", 4)}


def test_write_set_wins_on_overlap():
    executor = build_executor(YcsbWorkload(n_keys=100))
    request = TxnRequest("ycsb", {"read_keys": [5],
                                  "write_keys": [5]}, home=0)
    reads, writes = executor.estimate_rw_sets(request)
    assert ("usertable", 5) in writes
    assert ("usertable", 5) not in reads


def test_bank_transfer_estimates_both_accounts_as_writes():
    executor = build_executor(BankWorkload(n_accounts=20))
    request = TxnRequest("transfer",
                         {"src": 3, "dst": 7, "amount": 1.0}, home=0)
    reads, writes = executor.estimate_rw_sets(request)
    assert ("accounts", 3) in writes
    assert ("accounts", 7) in writes


def test_tpcc_new_order_covers_hot_rows_despite_derived_keys():
    """Param-computable keys (warehouse, district, stock) land in the
    estimate; the order/order-line inserts have derived keys whose
    hints are placement-equivalent — they never mislead the fingerprint
    into a wrong *record* identity, so only exact keys are claimed."""
    workload = TpccWorkload(TpccScale(n_warehouses=2), n_partitions=2)
    executor = build_executor(workload)
    request = TxnRequest("new_order", {
        "w_id": 0, "d_id": 1, "c_id": 2, "entry_d": 7,
        "items": [{"supply_w_id": 0, "i_id": 5, "qty": 1},
                  {"supply_w_id": 1, "i_id": 9, "qty": 2}],
    }, home=0)
    reads, writes = executor.estimate_rw_sets(request)
    assert ("district", (0, 1)) in writes       # D_NEXT_O_ID increment
    assert ("warehouse", 0) in reads
    assert ("stock", (0, 5)) in writes and ("stock", (1, 9)) in writes
    # derived-key inserts (order rows) only carry placement hints, not
    # exact record identities — they must not be claimed as records
    assert not any(table == "order" for table, _ in writes)
