"""Commit-FSM and crash-recovery tests (txn/commit_fsm.py).

The crash matrix is the heart: simulate dying at every protocol point
— before/after the coordinator's prepare and decision records, and
before/after the participant's — then "restart" by rebuilding the
database over the same WAL directory and recovering.  Two invariants
must hold at every point: a transaction whose decision record became
durable is fully present after recovery, one without is fully absent
(presumed abort), and either way no in-doubt transaction leaks locks
or stash entries.
"""

import pytest

from repro.analysis import ProcedureRegistry
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog, WalSpec
from repro.txn import (CommitFsm, Database, InvalidTransition, TwoPLExecutor,
                       TxnPhase, TxnRequest, recover_database,
                       recovery_program, resolve_in_doubt_local)
from repro.txn import commit_fsm
from repro.txn.commit_fsm import SimulatedCrash
from repro.workloads.bank import BankWorkload

AMOUNT = 50.0


def make_db(tmp_path, n_partitions=2):
    workload = BankWorkload(n_accounts=100)
    cluster = Cluster(n_partitions)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    catalog = Catalog(n_partitions, HashScheme(n_partitions))
    db = Database(cluster, catalog, workload.tables(), registry,
                  wal=WalSpec(mode="fsync", dir=str(tmp_path)))
    workload.populate(db.loader())
    return db, cluster


def cross_partition_transfer(db):
    """A transfer whose source lives on the coordinator (partition of
    ``src``) and whose destination is a remote participant."""
    src = 1
    dst = next(a for a in range(2, 100)
               if db.partition_of("accounts", a)
               != db.partition_of("accounts", src))
    home = db.partition_of("accounts", src)
    return TxnRequest("transfer", {"src": src, "dst": dst,
                                   "amount": AMOUNT}, home=home), src, dst


def balance_of(db, acct):
    pid = db.partition_of("accounts", acct)
    return db.store(pid).read("accounts", acct)[0]["balance"]


@pytest.fixture
def crash_at(monkeypatch):
    """Install a hook that raises SimulatedCrash at the nth occurrence
    of a named protocol point."""

    def install(point: str, occurrence: int = 1):
        state = {"left": occurrence}

        def hook(name: str) -> None:
            if name == point:
                state["left"] -= 1
                if state["left"] == 0:
                    raise SimulatedCrash(name)

        monkeypatch.setattr(commit_fsm, "CRASH_HOOK", hook)

    yield install
    monkeypatch.setattr(commit_fsm, "CRASH_HOOK", None)


# -- the crash matrix ---------------------------------------------------------

# (protocol point, does the txn survive recovery?) — the decision
# record's durability is the exact commit point
MATRIX = [
    ("coord:before_prepare", False),
    ("coord:after_prepare", False),
    ("part:before_prepare", False),
    ("part:after_prepare", False),
    ("coord:before_decision", False),
    ("coord:after_decision", True),
    ("part:after_decision", True),
]


@pytest.mark.parametrize("point,survives", MATRIX)
def test_crash_matrix(tmp_path, crash_at, point, survives):
    db, cluster = make_db(tmp_path)
    executor = TwoPLExecutor(db)
    request, src, dst = cross_partition_transfer(db)
    crash_at(point)
    cluster.engine(request.home).spawn(executor.execute(request))
    with pytest.raises(SimulatedCrash):
        cluster.run()
    db.close_wals()

    # "restart": a fresh process rebuilds the same database over the
    # surviving log directory, replays, and settles in-doubt txns
    db2, _cluster2 = make_db(tmp_path)
    in_doubt = recover_database(db2)
    resolve_in_doubt_local(db2, in_doubt)

    if survives:
        assert balance_of(db2, src) == 1000.0 - AMOUNT
        assert balance_of(db2, dst) == 1000.0 + AMOUNT
    else:
        assert balance_of(db2, src) == 1000.0
        assert balance_of(db2, dst) == 1000.0
    # no in-doubt txn leaks locks or stash entries
    for pid in range(2):
        assert not db2.store(pid).owners_holding()
    assert not db2.commit_table.stashed_entries()
    assert not db2.commit_table.in_doubt_txns()
    # a crash before the first append leaves empty logs — replaying
    # nothing is not a recovery
    expected = 0 if point == "coord:before_prepare" else 1
    assert db2.recovery.recoveries == expected


def test_crash_matrix_double_restart(tmp_path, crash_at):
    """Recovery is idempotent: crashing after the decision and
    recovering twice applies the writes once."""
    db, cluster = make_db(tmp_path)
    executor = TwoPLExecutor(db)
    request, src, dst = cross_partition_transfer(db)
    crash_at("coord:after_decision")
    cluster.engine(request.home).spawn(executor.execute(request))
    with pytest.raises(SimulatedCrash):
        cluster.run()
    db.close_wals()

    for _restart in range(2):
        db2, _ = make_db(tmp_path)
        in_doubt = recover_database(db2)
        resolve_in_doubt_local(db2, in_doubt)
        assert balance_of(db2, src) == 1000.0 - AMOUNT
        assert balance_of(db2, dst) == 1000.0 + AMOUNT
        db2.close_wals()


def test_clean_commit_leaves_nothing_in_doubt(tmp_path):
    """The happy path: prepare/decision/end all logged, recovery of the
    full log redoes the txn and reports nothing in doubt."""
    db, cluster = make_db(tmp_path)
    executor = TwoPLExecutor(db)
    request, src, dst = cross_partition_transfer(db)
    outcomes = []
    cluster.engine(request.home).spawn(executor.execute(request),
                                       outcomes.append)
    cluster.run()
    assert outcomes[0].committed
    db.close_wals()

    db2, _ = make_db(tmp_path)
    assert recover_database(db2) == []
    assert balance_of(db2, src) == 1000.0 - AMOUNT
    assert db2.recovery.txns_redone >= 1


def test_recovery_program_resolves_via_coordinator_query(tmp_path):
    """The mp-style path: an in-doubt participant entry settles by a
    recover_query verb against the coordinator's decision table."""
    db, cluster = make_db(tmp_path)
    coordinator, participant = 0, 1
    txn_id = 9001
    writes = (("update", "accounts", 4242, {"balance": 7.0}),)
    db.store(participant).insert("accounts", 4242, {"balance": 0.0})
    db.commit_table.stash(participant, txn_id, coordinator, writes)
    db.commit_table.record_decision(txn_id, True)
    entries = db.commit_table.stashed_entries()
    cluster.engine(participant).spawn(recovery_program(db, entries))
    cluster.run()
    assert db.store(participant).read(
        "accounts", 4242)[0]["balance"] == 7.0
    assert not db.commit_table.stashed_entries()
    assert db.recovery.in_doubt_resolved == 1


def test_recovery_program_presumes_abort_on_unknown(tmp_path):
    db, cluster = make_db(tmp_path)
    txn_id = 9002
    writes = (("update", "accounts", 4242, {"balance": 7.0}),)
    db.store(1).insert("accounts", 4242, {"balance": 0.0})
    db.commit_table.stash(1, txn_id, 0, writes)  # no decision anywhere
    entries = db.commit_table.stashed_entries()
    cluster.engine(1).spawn(recovery_program(db, entries))
    cluster.run()
    assert db.store(1).read("accounts", 4242)[0]["balance"] == 0.0
    assert not db.commit_table.stashed_entries()


# -- FSM phase discipline -----------------------------------------------------


class _StubReq:
    home = 0


class _StubState:
    request = _StubReq()
    txn_id = 1


class _StubDb:
    @staticmethod
    def wal_of(_sid):
        return None


class _StubEx:
    db = _StubDb()


def make_fsm():
    return CommitFsm(_StubEx(), _StubState())


def test_fsm_starts_in_initialize():
    assert make_fsm().phase is TxnPhase.INITIALIZE


def test_fsm_rejects_commit_before_prepare():
    fsm = make_fsm()
    with pytest.raises(InvalidTransition, match="initialize -> committed"):
        fsm._transition(TxnPhase.COMMITTED)


def test_fsm_rejects_reviving_an_aborted_txn():
    fsm = make_fsm()
    fsm.mark_aborted()
    assert fsm.phase is TxnPhase.ABORTED
    with pytest.raises(InvalidTransition):
        fsm._transition(TxnPhase.PREPARED)


def test_fsm_rejects_double_abort():
    fsm = make_fsm()
    fsm.mark_aborted()
    with pytest.raises(InvalidTransition):
        fsm.mark_aborted()
