"""Unit tests for the serializability checker."""

import pytest

from repro.txn import CommitLog, HistoryRecorder


def log(txn_id, reads=(), writes=()):
    return CommitLog(txn_id, reads=list(reads), writes=list(writes))


def test_empty_history_is_serializable():
    history = HistoryRecorder()
    assert history.is_serializable()


def test_sequential_writers_are_serializable():
    history = HistoryRecorder()
    history.record(log(1, writes=[(("t", "a"), 1)]))
    history.record(log(2, writes=[(("t", "a"), 2)]))
    assert history.is_serializable()
    assert (1, 2) in history.precedence_edges()


def test_classic_rw_cycle_detected():
    """T1 reads a@0 writes b@1; T2 reads b@0 writes a@1 - not
    serializable (each read preceded the other's write)."""
    history = HistoryRecorder()
    history.record(log(1, reads=[(("t", "a"), 0)],
                       writes=[(("t", "b"), 1)]))
    history.record(log(2, reads=[(("t", "b"), 0)],
                       writes=[(("t", "a"), 1)]))
    cycle = history.find_cycle()
    assert cycle is not None
    assert set(cycle) >= {1, 2}


def test_read_your_writer_ordering():
    """Reader of version 1 comes after the writer of version 1."""
    history = HistoryRecorder()
    history.record(log(1, writes=[(("t", "a"), 1)]))
    history.record(log(2, reads=[(("t", "a"), 1)]))
    edges = history.precedence_edges()
    assert (1, 2) in edges
    assert history.is_serializable()


def test_reader_before_next_writer():
    history = HistoryRecorder()
    history.record(log(1, reads=[(("t", "a"), 0)]))
    history.record(log(2, writes=[(("t", "a"), 1)]))
    assert (1, 2) in history.precedence_edges()


def test_lost_update_raises():
    """Two transactions producing the same version = a lost update."""
    history = HistoryRecorder()
    history.record(log(1, writes=[(("t", "a"), 1)]))
    history.record(log(2, writes=[(("t", "a"), 1)]))
    with pytest.raises(ValueError, match="lost update"):
        history.precedence_edges()


def test_self_conflicts_ignored():
    history = HistoryRecorder()
    history.record(log(1, reads=[(("t", "a"), 0)],
                       writes=[(("t", "a"), 1)]))
    assert history.is_serializable()
    assert history.precedence_edges() == set()


def test_double_update_collapsed_to_final_version():
    history = HistoryRecorder()
    record = log(1, writes=[(("t", "a"), 1), (("t", "a"), 2)])
    assert HistoryRecorder.writes_collapsed(record) == [(("t", "a"), 2)]


def test_three_txn_cycle():
    history = HistoryRecorder()
    history.record(log(1, reads=[(("t", "a"), 0)],
                       writes=[(("t", "b"), 1)]))
    history.record(log(2, reads=[(("t", "b"), 0)],
                       writes=[(("t", "c"), 1)]))
    history.record(log(3, reads=[(("t", "c"), 0)],
                       writes=[(("t", "a"), 1)]))
    assert not history.is_serializable()


def test_disabled_recorder_drops_logs():
    history = HistoryRecorder(enabled=False)
    history.record(log(1, writes=[(("t", "a"), 1)]))
    assert len(history) == 0
