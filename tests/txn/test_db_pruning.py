"""Multiprocess worker builds prune foreign-partition records.

Every mp worker deterministically rebuilds the whole database, but a
worker only ever serves its *owned* partitions — the local copies of
foreign cold records were pure memory waste (the ROADMAP follow-up
this closes).  A worker build now keeps: records of owned partitions,
replicated tables (on owned partitions), explicitly-placed (hot)
records, and replica stores hosted on owned servers.  Anything else is
skipped, and the test asserts the memory win.
"""

from repro.analysis import ProcedureRegistry
from repro.core import HotRecordTable
from repro.partitioning import HashScheme
from repro.sim import Cluster, MpWorkerCluster
from repro.storage import Catalog, TableSpec
from repro.txn import Database

N_PARTITIONS = 4
N_KEYS = 200
N_REF = 10
HOT_FOREIGN = ("usertable", "hot-key")
"""An explicitly-placed record homed on a partition worker 0 does NOT
own; worker builds keep explicit placements everywhere."""


def build_db(cluster) -> Database:
    hot = HotRecordTable({HOT_FOREIGN: 2})
    catalog = Catalog(N_PARTITIONS, hot.live_scheme(HashScheme(N_PARTITIONS)),
                      replicated_tables=frozenset({"ref"}))
    db = Database(cluster, catalog,
                  [TableSpec("usertable"), TableSpec("ref")],
                  ProcedureRegistry(), n_replicas=1)
    for key in range(N_KEYS):
        db.load("usertable", key, {"value": key})
    db.load(*HOT_FOREIGN, {"value": -1})
    for key in range(N_REF):
        db.load("ref", key, {"value": key})
    return db


def primary_records(db) -> dict[int, int]:
    return {server.id: sum(len(server.storage.table(name))
                           for name in server.storage.table_names())
            for server in db.cluster.servers}


def replica_records(db) -> int:
    return sum(
        sum(len(db.replicas.store_on(server, partition).table(name))
            for name in ("usertable", "ref"))
        for server, partition in db.replicas.applied_counts)


def test_worker_build_keeps_only_what_it_can_serve():
    cluster = MpWorkerCluster(N_PARTITIONS, worker_id=0, n_workers=4)
    db = build_db(cluster)
    counts = primary_records(db)

    owned_keys = [k for k in range(N_KEYS)
                  if db.partition_of("usertable", k) == 0]
    assert counts[0] == len(owned_keys) + N_REF  # home records + ref copy
    # foreign stores hold only the explicitly-placed hot record
    assert counts[2] == 1
    hot_store = db.store(2)
    assert hot_store.read(*HOT_FOREIGN) is not None
    for foreign in (1, 3):
        assert counts[foreign] == 0

    # replica stores only materialize records for owned hosting servers
    for (server, partition), _n in db.replicas.applied_counts.items():
        store = db.replicas.store_on(server, partition)
        loaded = sum(len(store.table(name))
                     for name in ("usertable", "ref"))
        if server % 4 == 0:  # hosted on worker 0's server
            assert loaded > 0
        else:
            assert loaded == 0


def test_pruned_worker_build_is_a_real_memory_win():
    pruned = build_db(MpWorkerCluster(N_PARTITIONS, worker_id=0,
                                      n_workers=4))
    # a 1-worker topology owns everything: the historical full build
    full = build_db(MpWorkerCluster(N_PARTITIONS, worker_id=0,
                                    n_workers=1))
    pruned_total = (sum(primary_records(pruned).values())
                    + replica_records(pruned))
    full_total = sum(primary_records(full).values()) + replica_records(full)
    assert pruned_total < full_total / 2, (
        f"worker 0 of 4 holds {pruned_total} records vs {full_total} "
        f"for the full build — pruning should cut at least half")


def test_single_process_builds_are_untouched():
    db = build_db(Cluster(N_PARTITIONS))
    counts = primary_records(db)
    assert sum(counts.values()) == N_KEYS + 1 + N_REF * N_PARTITIONS
    # replicated table present on every partition, as before
    for server in range(N_PARTITIONS):
        assert db.store(server).read("ref", 0) is not None
