"""Tests for the Database composition layer."""

import pytest

from repro.analysis import ProcedureRegistry
from repro.partitioning import HashScheme
from repro.sim import Cluster, Rpc
from repro.storage import Catalog, TableSpec
from repro.txn import Database


def make_db(n_partitions=3, n_replicas=1, replicated=frozenset()):
    cluster = Cluster(n_partitions)
    catalog = Catalog(n_partitions, HashScheme(n_partitions),
                      replicated_tables=replicated)
    db = Database(cluster, catalog, [TableSpec("t", n_buckets=64)],
                  ProcedureRegistry(), n_replicas=n_replicas)
    return db, cluster


def test_partition_count_must_match_cluster():
    cluster = Cluster(3)
    catalog = Catalog(2, HashScheme(2))
    with pytest.raises(ValueError, match="1:1"):
        Database(cluster, catalog, [TableSpec("t")], ProcedureRegistry())


def test_load_reaches_primary_and_replicas():
    db, _ = make_db()
    db.load("t", 5, {"v": 1})
    pid = db.partition_of("t", 5)
    assert db.store(pid).read("t", 5)[0] == {"v": 1}
    for rserver in db.replicas.replica_servers(pid):
        assert db.replicas.store_on(rserver, pid).read("t", 5)[0] == \
            {"v": 1}
    # other primaries do not have it
    other = (pid + 1) % 3
    assert db.store(other).read("t", 5) is None


def test_replicated_table_loads_everywhere():
    db, _ = make_db(replicated=frozenset({"t"}))
    db.load("t", 5, {"v": 1})
    for pid in range(3):
        assert db.store(pid).read("t", 5)[0] == {"v": 1}


def test_replicated_table_resolves_to_reader():
    db, _ = make_db(replicated=frozenset({"t"}))
    assert db.partition_of("t", 5, reader=2) == 2
    with pytest.raises(ValueError, match="reader"):
        db.partition_of("t", 5)


def test_rpc_dispatch_by_kind():
    db, cluster = make_db()
    received = []

    def factory(server_id, src, body):
        received.append((server_id, src, body))
        return "reply:" + body
        yield  # pragma: no cover - generator marker

    db.register_rpc("probe", factory)
    replies = []

    def txn():
        reply = yield Rpc(1, ("probe", "hello"))
        replies.append(reply)

    cluster.engine(0).spawn(txn())
    cluster.run()
    assert received == [(1, 0, "hello")]
    assert replies == ["reply:hello"]


def test_duplicate_rpc_kind_rejected():
    db, _ = make_db()
    db.register_rpc("k", lambda s, src, b: iter(()))
    with pytest.raises(ValueError):
        db.register_rpc("k", lambda s, src, b: iter(()))


def test_unknown_rpc_kind_raises():
    db, cluster = make_db()

    def txn():
        yield Rpc(1, ("nope", None))

    cluster.engine(0).spawn(txn())
    with pytest.raises(KeyError):
        cluster.run()
