"""Unit tests for the OCC (MaaT-flavoured) executor."""

from repro.analysis import ProcedureRegistry
from repro.partitioning import HashScheme
from repro.sim import All, Cluster, Compute, OneSided, Sleep
from repro.storage import Catalog, LockMode
from repro.txn import AbortReason, Database, OccExecutor, TxnRequest
from repro.workloads.bank import BankWorkload


def sync_run(gen, after_round=None):
    """Drive an executor coroutine synchronously (no simulator), firing
    ``after_round[n]()`` right after the n-th parallel round completes.
    Gives tests deterministic control over interleavings."""
    after_round = after_round or {}
    rounds = 0
    value = None
    while True:
        try:
            effect = gen.send(value)
        except StopIteration as stop:
            return stop.value
        if isinstance(effect, (Compute, Sleep)):
            value = None
        elif isinstance(effect, OneSided):
            value = effect.op()
        elif isinstance(effect, All):
            value = [sub.op() for sub in effect.effects]
            rounds += 1
            hook = after_round.get(rounds)
            if hook is not None:
                hook()
        else:  # pragma: no cover - unexpected effect kind
            raise TypeError(f"unexpected effect {effect!r}")


def make_db(n_partitions=2, n_replicas=0):
    workload = BankWorkload(n_accounts=100)
    cluster = Cluster(n_partitions)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    catalog = Catalog(n_partitions, HashScheme(n_partitions))
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=n_replicas)
    workload.populate(db.loader())
    return db, cluster


def run_txn(db, cluster, executor, request):
    outcomes = []
    cluster.engine(request.home).spawn(executor.execute(request),
                                       outcomes.append)
    cluster.run()
    return outcomes[0]


def balance_of(db, acct):
    pid = db.partition_of("accounts", acct)
    return db.store(pid).read("accounts", acct)[0]["balance"]


def test_commit_applies_updates():
    db, cluster = make_db()
    executor = OccExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 2, "amount": 50.0}))
    assert outcome.committed
    assert balance_of(db, 1) == 950.0
    assert balance_of(db, 2) == 1050.0


def test_reads_take_no_locks():
    db, cluster = make_db()
    executor = OccExecutor(db)
    # an exclusive lock held by someone else does NOT abort the read
    # phase; OCC only notices at validation when versions/locks conflict
    pid = db.partition_of("accounts", 1)
    db.store(pid).try_lock("accounts", 1, LockMode.EXCLUSIVE, "intruder")
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("audit", {"accounts": [1, 2]}))
    # audit is read-only: validation only checks versions + locks of
    # *written* records; there are none, and read-only records are
    # checked for foreign locks -> abort expected here
    assert not outcome.committed
    assert outcome.reason is AbortReason.VALIDATION


def test_validation_detects_stale_read():
    """A record modified between read and validation forces an abort."""
    db, _cluster = make_db()
    executor = OccExecutor(db)
    pid = db.partition_of("accounts", 1)
    request = TxnRequest("transfer", {"src": 1, "dst": 2, "amount": 10.0})
    # round 1 is the (lock-free) read round; intrude right after it
    outcome = sync_run(
        executor.execute(request),
        after_round={1: lambda: db.store(pid).write("accounts", 1,
                                                    {"balance": 123.0})})
    assert not outcome.committed
    assert outcome.reason is AbortReason.VALIDATION
    # and the intruding write survives untouched
    assert balance_of(db, 1) == 123.0


def test_validation_failure_releases_write_locks():
    db, _cluster = make_db()
    executor = OccExecutor(db)
    pid = db.partition_of("accounts", 1)
    request = TxnRequest("transfer", {"src": 1, "dst": 2, "amount": 10.0})
    outcome = sync_run(
        executor.execute(request),
        after_round={1: lambda: db.store(pid).write("accounts", 1,
                                                    {"balance": 123.0})})
    assert not outcome.committed
    for acct in (1, 2):
        p = db.partition_of("accounts", acct)
        assert not db.store(p).is_locked("accounts", acct)


def test_logical_abort_during_read_phase_is_free():
    db, cluster = make_db()
    executor = OccExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 2, "amount": 1e9}))
    assert not outcome.committed
    assert outcome.reason is AbortReason.LOGICAL
    assert balance_of(db, 1) == 1000.0


def test_read_miss_aborts():
    db, cluster = make_db()
    executor = OccExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 999999, "amount": 1.0}))
    assert not outcome.committed
    assert outcome.reason is AbortReason.READ_MISS


def test_commit_releases_validation_locks():
    db, cluster = make_db()
    executor = OccExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 2, "amount": 5.0}))
    assert outcome.committed
    for acct in (1, 2):
        p = db.partition_of("accounts", acct)
        assert not db.store(p).is_locked("accounts", acct)


def test_replication_on_commit():
    db, cluster = make_db(n_partitions=3, n_replicas=1)
    executor = OccExecutor(db)
    outcome = run_txn(db, cluster, executor,
                      TxnRequest("transfer",
                                 {"src": 1, "dst": 2, "amount": 25.0}))
    assert outcome.committed
    pid = db.partition_of("accounts", 1)
    for rserver in db.replicas.replica_servers(pid):
        replica = db.replicas.store_on(rserver, pid)
        assert replica.read("accounts", 1)[0]["balance"] == 975.0
