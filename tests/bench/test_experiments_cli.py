"""CLI argument handling for the experiments module (sweeps stubbed)."""

import pytest

from repro.bench import experiments as ex


@pytest.fixture()
def stubbed(monkeypatch):
    calls = []

    def fake_instacart_sweep(partitions, quick=False, **kwargs):
        calls.append(("instacart", tuple(partitions), quick))
        return [{"partitions": k,
                 **{f"{n}_{f}": 1.0
                    for n in ex.INSTACART_LAYOUTS
                    for f in ("throughput", "distributed", "abort_rate",
                              "lookup", "edges", "train_s")}}
                for k in partitions]

    def fake_fig9_rows(concurrency, quick=False, **kwargs):
        calls.append(("fig9", tuple(concurrency), quick))
        rows = []
        for c in concurrency:
            row = {"concurrent": c}
            for n in ex.TPCC_EXECUTORS:
                row[f"{n}_throughput"] = 1.0
                row[f"{n}_abort_rate"] = 0.0
            for p in ("new_order", "payment", "stock_level"):
                row[f"2pl_{p}_abort"] = 0.0
            rows.append(row)
        return rows

    def fake_fig10_rows(percents, quick=False, **kwargs):
        calls.append(("fig10", tuple(percents), quick))
        return [{"percent": p,
                 **{f"{n}_{c}_throughput": 1.0
                    for n, c in ex.FIG10_SERIES}}
                for p in percents]

    def fake_reorder(quick=False, **kwargs):
        calls.append(("reorder", quick))
        return [{"label": "x", "layout": "hashing", "executor": "2pl",
                 "throughput": 1.0, "abort_rate": 0.0,
                 "distributed": 0.0}]

    def fake_minweight(quick=False, **kwargs):
        calls.append(("minweight", quick))
        return [{"min_weight": 0.0, "throughput": 1.0,
                 "abort_rate": 0.0, "distributed": 0.0}]

    monkeypatch.setattr(ex, "instacart_sweep", fake_instacart_sweep)
    monkeypatch.setattr(ex, "fig9_rows", fake_fig9_rows)
    monkeypatch.setattr(ex, "fig10_rows", fake_fig10_rows)
    monkeypatch.setattr(ex, "reorder_ablation_rows", fake_reorder)
    monkeypatch.setattr(ex, "min_weight_ablation_rows", fake_minweight)
    return calls


def test_default_runs_fig7(stubbed, capsys):
    ex.main([])
    assert ("instacart", (2, 3, 4, 5, 6, 7, 8), False) in stubbed
    assert "Fig. 7" in capsys.readouterr().out


def test_quick_flag_shrinks_sweeps(stubbed, capsys):
    ex.main(["fig7", "--quick"])
    assert ("instacart", (2, 4, 8), True) in stubbed


def test_all_runs_everything(stubbed, capsys):
    ex.main(["all", "--quick"])
    kinds = {call[0] for call in stubbed}
    assert kinds == {"instacart", "fig9", "fig10", "reorder",
                     "minweight"}
    out = capsys.readouterr().out
    for marker in ("Fig. 7", "Fig. 8", "Fig. 9a", "Fig. 9b", "Fig. 9c",
                   "Fig. 10", "lookup table size", "partitioning cost",
                   "Ablation"):
        assert marker in out


def test_selected_figures_only(stubbed, capsys):
    ex.main(["fig9b"])
    kinds = [call[0] for call in stubbed]
    assert kinds == ["fig9"]
    out = capsys.readouterr().out
    assert "Fig. 9b" in out
    assert "Fig. 9a" not in out


def test_backend_flag_both_spellings(stubbed, capsys):
    ex.main(["fig9a", "--backend", "aio"])
    assert [call[0] for call in stubbed] == ["fig9"]
    assert "wall-clock" in capsys.readouterr().out
    ex.main(["fig9a", "--backend=aio"])
    assert "wall-clock" in capsys.readouterr().out


def test_backend_flag_default_is_sim(stubbed, capsys):
    ex.main(["fig9a"])
    assert "wall-clock" not in capsys.readouterr().out


def test_unknown_backend_rejected(stubbed):
    with pytest.raises(SystemExit):
        ex.main(["fig9a", "--backend", "quantum"])
    with pytest.raises(SystemExit):
        ex.main(["fig9a", "--backend"])


def test_mp_backend_flag_prints_parallel_note(stubbed, capsys):
    ex.main(["fig9a", "--backend", "mp"])
    assert [call[0] for call in stubbed] == ["fig9"]
    assert "multiprocess backend" in capsys.readouterr().out


def test_workers_flag_both_spellings(stubbed, capsys):
    ex.main(["fig9a", "--backend", "mp", "--workers", "2"])
    assert "packed onto 2 workers" in capsys.readouterr().out
    ex.main(["fig9a", "--backend=mp", "--workers=3"])
    assert "packed onto 3 workers" in capsys.readouterr().out


def test_workers_flag_rejects_bad_values(stubbed):
    with pytest.raises(SystemExit):
        ex.main(["fig9a", "--workers", "zero"])
    with pytest.raises(SystemExit):
        ex.main(["fig9a", "--workers", "0"])
    with pytest.raises(SystemExit):
        ex.main(["fig9a", "--workers"])
