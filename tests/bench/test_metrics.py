"""Unit tests for the metrics aggregation."""

import pytest

from repro.bench.metrics import Metrics
from repro.txn.common import AbortReason, Outcome


def outcome(txn_id=1, proc="p", committed=True, reason=None,
            start=0.0, end=10.0, partitions=(0,), two_region=False):
    return Outcome(txn_id=txn_id, proc=proc, committed=committed,
                   reason=reason, start=start, end=end,
                   partitions=frozenset(partitions),
                   used_two_region=two_region)


def test_counts():
    m = Metrics()
    m.add(outcome(1))
    m.add(outcome(2, committed=False,
                  reason=AbortReason.LOCK_CONFLICT))
    assert m.attempts == 2
    assert m.commits == 1
    assert m.aborts == 1


def test_abort_rate_excludes_app_aborts_by_default():
    m = Metrics()
    m.add(outcome(1))
    m.add(outcome(2, committed=False, reason=AbortReason.LOGICAL))
    m.add(outcome(3, committed=False, reason=AbortReason.READ_MISS))
    m.add(outcome(4, committed=False,
                  reason=AbortReason.LOCK_CONFLICT))
    assert m.abort_rate() == pytest.approx(0.5)
    assert m.abort_rate(include_app_aborts=True) == pytest.approx(0.75)


def test_abort_rate_per_proc():
    m = Metrics()
    m.add(outcome(1, proc="a"))
    m.add(outcome(2, proc="b", committed=False,
                  reason=AbortReason.LOCK_CONFLICT))
    assert m.abort_rate("a") == 0.0
    assert m.abort_rate("b") == 1.0


def test_throughput_window():
    m = Metrics()
    for i, end in enumerate((1_000.0, 5_000.0, 9_000.0, 20_000.0)):
        m.add(outcome(i, end=end))
    # window [0, 10_000us) = 0.01s: 3 commits -> 300 txns/sec
    assert m.throughput(0.0, 10_000.0) == pytest.approx(300.0)


def test_throughput_invalid_window():
    with pytest.raises(ValueError):
        Metrics().throughput(5.0, 5.0)


def test_distributed_and_two_region_ratios():
    m = Metrics()
    m.add(outcome(1, partitions=(0,)))
    m.add(outcome(2, partitions=(0, 1), two_region=True))
    m.add(outcome(3, committed=False,
                  reason=AbortReason.LOCK_CONFLICT, partitions=(0, 1)))
    assert m.distributed_ratio() == pytest.approx(0.5)
    assert m.two_region_ratio() == pytest.approx(0.5)


def test_latency_statistics():
    m = Metrics()
    for i, end in enumerate((10.0, 20.0, 30.0, 40.0)):
        m.add(outcome(i, start=0.0, end=end))
    assert m.mean_latency() == pytest.approx(25.0)
    assert m.percentile_latency(0.5) == pytest.approx(30.0)
    assert m.percentile_latency(0.99) == pytest.approx(40.0)


def test_commit_share():
    m = Metrics()
    m.add(outcome(1, proc="a"))
    m.add(outcome(2, proc="a"))
    m.add(outcome(3, proc="b"))
    shares = m.commit_share()
    assert shares["a"] == pytest.approx(2 / 3)
    assert shares["b"] == pytest.approx(1 / 3)


def test_empty_metrics_are_safe():
    m = Metrics()
    assert m.abort_rate() == 0.0
    assert m.distributed_ratio() == 0.0
    assert m.mean_latency() == 0.0
    assert m.commit_share() == {}
