"""Unit tests for the log2-bucketed latency histogram.

The two properties the open-loop metrics rest on: merge is associative
and commutative (mp workers fold parts in arbitrary order), and
quantiles stay within the layout's ~1.6% relative error bound at any
magnitude.
"""

import math
import pickle
import random

from repro.bench.metrics import LatencyHistogram, Metrics, OpenLoopStats


def hist(values) -> LatencyHistogram:
    h = LatencyHistogram()
    for v in values:
        h.record(v)
    return h


def exact_percentile(values, q):
    ordered = sorted(values)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


def test_small_values_are_exact():
    values = list(range(32)) * 3
    h = hist(values)
    assert h.n == 96
    for q in (0.5, 0.9, 0.99):
        assert h.percentile(q) == exact_percentile(values, q)
    assert h.max_us == 31


def test_percentile_relative_error_bound():
    rng = random.Random(5)
    # log-uniform over five orders of magnitude
    values = [int(10 ** rng.uniform(0, 6)) for _ in range(20_000)]
    h = hist(values)
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = exact_percentile(values, q)
        got = h.percentile(q)
        assert abs(got - exact) <= 0.017 * exact + 1.0, (
            f"q={q}: {got} vs exact {exact}")
    assert abs(h.mean_us() - sum(values) / len(values)) < 1e-6


def test_merge_matches_single_pass():
    rng = random.Random(9)
    values = [int(rng.expovariate(1 / 500.0)) for _ in range(5_000)]
    whole = hist(values)
    parts = [hist(values[i::4]) for i in range(4)]
    merged = LatencyHistogram.merged(parts)
    assert merged.counts == whole.counts
    assert merged.n == whole.n
    assert merged.max_us == whole.max_us
    assert merged.percentile(0.99) == whole.percentile(0.99)


def test_merge_is_associative_and_commutative():
    rng = random.Random(11)
    parts = [hist([int(rng.expovariate(1 / 200.0)) for _ in range(500)])
             for _ in range(3)]
    a, b, c = parts
    left = LatencyHistogram.merged([LatencyHistogram.merged([a, b]), c])
    right = LatencyHistogram.merged([a, LatencyHistogram.merged([b, c])])
    shuffled = LatencyHistogram.merged([c, a, b])
    assert left.counts == right.counts == shuffled.counts
    assert left.n == right.n == shuffled.n


def test_empty_histogram_summary():
    h = LatencyHistogram()
    assert h.percentile(0.99) == 0.0
    assert h.summary()["count"] == 0
    assert h.mean_us() == 0.0


def test_histogram_pickles():
    h = hist([3, 700, 90_000])
    clone = pickle.loads(pickle.dumps(h))
    assert clone.counts == h.counts
    assert clone.summary() == h.summary()


def test_open_loop_stats_merge_folds_tenants():
    a = OpenLoopStats()
    gold = a.tenant("gold", deadline_us=1_000.0)
    gold.scheduled, gold.committed, gold.in_slo = 5, 4, 3
    gold.histogram.record(100)

    b = OpenLoopStats()
    gold_b = b.tenant("gold", deadline_us=1_000.0)
    gold_b.scheduled, gold_b.shed = 2, 2
    b.tenant("standard", deadline_us=4_000.0).scheduled = 7

    merged = OpenLoopStats.merged([a, b])
    assert merged.tenants["gold"].scheduled == 7
    assert merged.tenants["gold"].shed == 2
    assert merged.tenants["gold"].in_slo == 3
    assert merged.tenants["gold"].histogram.n == 1
    assert merged.tenants["standard"].scheduled == 7
    assert merged.scheduled == 14
    # attainment counts shed arrivals against the tenant
    assert merged.tenants["gold"].attainment() == 3 / 7


def test_metrics_merged_folds_open_loop_parts():
    part1 = Metrics()
    part1.open_loop = OpenLoopStats()
    part1.open_loop.tenant("all").scheduled = 3
    part2 = Metrics()
    part2.open_loop = OpenLoopStats()
    part2.open_loop.tenant("all").scheduled = 4
    closed = Metrics()  # a worker with no open-loop homes

    merged = Metrics.merged([part1, part2, closed])
    assert merged.open_loop.scheduled == 7
    assert Metrics.merged([closed]).open_loop is None
