"""Placement wiring through the harness: static bit-identity and the
adaptive observe->plan->migrate loop end to end on the simulator."""

import dataclasses

from repro.bench import RunConfig, build_database, run_benchmark
from repro.partitioning import HashScheme
from repro.placement import PlacementSpec
from repro.storage import Catalog
from repro.txn import TwoPLExecutor
from repro.workloads.ycsb import DriftingYcsbWorkload, YcsbWorkload

import pytest


def small_config(**overrides) -> RunConfig:
    defaults = dict(n_partitions=2, concurrent_per_engine=2,
                    horizon_us=2_500.0, warmup_us=250.0, seed=5,
                    n_replicas=1, route_by_data=True)
    defaults.update(overrides)
    return RunConfig(**defaults)


def run_ycsb(config: RunConfig):
    workload = YcsbWorkload(n_keys=400, reads_per_txn=3, writes_per_txn=2,
                            zipf_exponent=0.8)
    db, _cluster = build_database(
        workload, Catalog(config.n_partitions,
                          HashScheme(config.n_partitions)), config)
    return run_benchmark(workload, TwoPLExecutor(db), config)


def outcome_trace(result):
    # txn ids come from a process-global counter, so consecutive runs
    # shift them uniformly; everything behavioral must match exactly
    return [(o.proc, o.committed, o.reason, o.start, o.end, o.partitions)
            for o in result.metrics.outcomes]


def test_placement_static_is_bit_identical_to_unset():
    baseline = run_ycsb(small_config(placement=None))
    explicit = run_ycsb(small_config(placement="static"))
    assert outcome_trace(explicit) == outcome_trace(baseline)
    assert (explicit.metrics.events_processed
            == baseline.metrics.events_processed)
    assert explicit.metrics.placement_stats is None
    assert baseline.metrics.outcomes[0].read_set == ()  # footprints off


def test_adaptive_run_consolidates_drifting_hot_groups():
    """End-to-end on sim: telemetry observes the load, the controller
    plans, migrations apply, and routing epochs advance."""
    config = small_config(
        horizon_us=6_000.0,
        placement=PlacementSpec(kind="adaptive", epoch_us=800.0,
                                max_moves_per_epoch=16, min_gain=4.0,
                                min_window_commits=8))
    workload = DriftingYcsbWorkload(n_groups=24, group_size=6,
                                    reads_per_txn=3, writes_per_txn=2,
                                    zipf_exponent=1.3)
    db, cluster = build_database(
        workload, Catalog(config.n_partitions,
                          HashScheme(config.n_partitions)), config)
    workload.bind_clock(lambda: cluster.sim.now)
    result = run_benchmark(workload, TwoPLExecutor(db), config)

    stats = result.metrics.placement_stats
    assert stats is not None and stats.placement == "adaptive"
    assert stats.epochs >= 3
    assert stats.moves_applied > 0, \
        "hash-scattered hot groups must trigger consolidation"
    assert db.placement_epoch() >= 1
    assert stats.commits_observed > 0
    # footprints were recorded for telemetry
    committed = [o for o in result.metrics.outcomes if o.committed]
    assert committed and committed[0].write_set

    summary = result.perf_summary()
    assert summary["placement"]["moves_applied"] == stats.moves_applied
    assert "bytes_by_phase" in summary["traffic"]
    assert "migrate" in summary["traffic"]["bytes_by_phase"]


def test_perf_summary_reports_traffic_phases_on_static_runs():
    result = run_ycsb(small_config())
    summary = result.perf_summary()
    phases = summary["traffic"]["bytes_by_phase"]
    assert phases.get("lock", 0) > 0 and phases.get("commit", 0) > 0
    per_server = summary["traffic"]["bytes_by_server_phase"]
    assert len(per_server) == 2  # both engines issued wire traffic
    assert "placement" not in summary  # static runs stay quiet


def test_unknown_placement_kind_is_rejected():
    with pytest.raises(ValueError, match="unknown placement"):
        run_ycsb(small_config(placement="sideways"))


def test_adaptive_without_its_controller_home_is_rejected():
    """Excluding the controller's engine from the load homes would
    silently collect telemetry and never adapt — refuse instead."""
    with pytest.raises(ValueError, match="controller engine"):
        run_ycsb(small_config(placement="adaptive", homes=(1,)))


def test_placement_spec_rides_through_config_replace():
    spec = PlacementSpec(kind="adaptive", epoch_us=123.0)
    config = dataclasses.replace(small_config(), placement=spec)
    assert config.placement.epoch_us == 123.0
