"""End-to-end benchmark runs on the asyncio backend.

The acceptance flow: a YCSB run completes under ``backend="aio"`` with
wall-clock throughput landing in ``RunResult``, through the very same
harness/executor/database code path the simulator uses.
"""

import pytest

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, build_database, make_cluster, run_benchmark
from repro.bench.setups import make_tpcc_run
from repro.partitioning import HashScheme
from repro.sim import AioCluster, Cluster
from repro.storage import Catalog
from repro.txn import TwoPLExecutor
from repro.workloads.ycsb import YcsbWorkload, expected_counter_total


def aio_config(**overrides) -> RunConfig:
    defaults = dict(n_partitions=2, concurrent_per_engine=2,
                    horizon_us=25_000.0,  # 25ms of wall clock
                    warmup_us=1_000.0, n_replicas=0, backend="aio")
    defaults.update(overrides)
    return RunConfig(**defaults)


def test_make_cluster_selects_backend():
    assert isinstance(make_cluster(RunConfig(n_partitions=2)), Cluster)
    assert isinstance(make_cluster(aio_config()), AioCluster)
    with pytest.raises(ValueError):
        make_cluster(RunConfig(backend="quantum"))


def test_aio_run_timeout_scales_with_horizon():
    # a long wall-clock horizon must not be killed by a fixed cap
    long_run = make_cluster(aio_config(horizon_us=300_000_000.0))
    assert long_run.run_timeout_s > 300.0
    pinned = make_cluster(aio_config(aio_run_timeout_s=7.0))
    assert pinned.run_timeout_s == 7.0


def test_ycsb_completes_on_aio_backend_with_wall_clock_metrics():
    workload = YcsbWorkload(n_keys=400, reads_per_txn=4, writes_per_txn=2)
    config = aio_config()
    db, cluster = build_database(
        workload, Catalog(2, HashScheme(2)), config)
    result = run_benchmark(workload, TwoPLExecutor(db), config)

    assert result.metrics.commits > 0
    # no lost updates: every committed write landed exactly once
    assert (expected_counter_total(db, workload.n_keys)
            == result.metrics.commits * workload.writes_per_txn)
    # the clock is the wall clock: the run took about horizon_us of
    # real time, and wall-clock throughput is the headline number
    assert result.end_time >= config.horizon_us
    assert result.wall_seconds >= config.horizon_us / 1e6
    assert result.throughput > 0
    assert result.wall_clock_throughput > 0
    summary = result.perf_summary()
    assert summary["backend"] == "aio"
    assert summary["wall_clock_throughput"] == result.wall_clock_throughput


def test_ycsb_aio_run_is_repeatable_and_consistent():
    """Wall-clock runs are not bit-deterministic, but every run must
    keep the workload invariant and produce commits."""
    for _ in range(2):
        workload = YcsbWorkload(n_keys=300)
        config = aio_config(horizon_us=10_000.0, warmup_us=0.0)
        db, _ = build_database(workload, Catalog(2, HashScheme(2)), config)
        result = run_benchmark(workload, TwoPLExecutor(db), config)
        assert result.metrics.commits > 0
        assert (expected_counter_total(db, workload.n_keys)
                == result.metrics.commits * workload.writes_per_txn)


def test_aio_backend_with_doorbell_batching_fuses_rounds():
    workload = YcsbWorkload(n_keys=400, reads_per_txn=6, writes_per_txn=2)
    config = aio_config(doorbell_batching=True)
    db, cluster = build_database(
        workload, Catalog(2, HashScheme(2)), config)
    result = run_benchmark(workload, TwoPLExecutor(db), config)
    assert result.metrics.commits > 0
    assert cluster.network.stats.one_sided_batches > 0
    assert (expected_counter_total(db, workload.n_keys)
            == result.metrics.commits * workload.writes_per_txn)


def test_tpcc_cell_runs_on_aio_backend():
    """The full setups path (Database + replicas + RPC dispatch) works
    on the asyncio backend too — TPC-C with 2PL and replication."""
    run = make_tpcc_run("2pl", aio_config(horizon_us=15_000.0,
                                          n_replicas=1))
    result = run.run()
    assert result.metrics.commits > 0
    assert result.config.backend == "aio"
