"""Tests for the benchmark driver."""

import pytest

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, TwoPLExecutor
from repro.workloads.bank import BankWorkload
from repro.workloads.instacart import InstacartWorkload


def build(workload, config):
    cluster = Cluster(config.n_partitions, config.network_config())
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(config.n_partitions,
                                   HashScheme(config.n_partitions)),
                  workload.tables(), registry,
                  n_replicas=config.n_replicas)
    workload.populate(db.loader())
    return db


def test_run_produces_commits_within_horizon():
    workload = BankWorkload(n_accounts=50)
    config = RunConfig(n_partitions=2, concurrent_per_engine=2,
                       horizon_us=2_000.0, warmup_us=0.0, n_replicas=0)
    db = build(workload, config)
    result = run_benchmark(workload, TwoPLExecutor(db), config)
    assert result.metrics.commits > 10
    assert result.throughput > 0
    # admission stops at the horizon; in-flight work drains shortly after
    assert result.end_time >= config.horizon_us


def test_deterministic_given_seed():
    def once():
        workload = BankWorkload(n_accounts=50)
        config = RunConfig(n_partitions=2, concurrent_per_engine=2,
                           horizon_us=2_000.0, warmup_us=0.0, seed=42,
                           n_replicas=0)
        db = build(workload, config)
        result = run_benchmark(workload, TwoPLExecutor(db), config)
        return (result.metrics.commits, result.metrics.aborts,
                result.end_time)

    assert once() == once()


def test_different_seeds_differ():
    def once(seed):
        workload = BankWorkload(n_accounts=50)
        config = RunConfig(n_partitions=2, concurrent_per_engine=2,
                           horizon_us=2_000.0, warmup_us=0.0, seed=seed,
                           n_replicas=0)
        db = build(workload, config)
        result = run_benchmark(workload, TwoPLExecutor(db), config)
        return result.metrics.commits

    assert once(1) != once(2) or once(3) != once(4)


def test_homes_restricts_generating_engines():
    workload = BankWorkload(n_accounts=50)
    config = RunConfig(n_partitions=3, concurrent_per_engine=1,
                       horizon_us=1_000.0, warmup_us=0.0,
                       homes=(0,), n_replicas=0)
    db = build(workload, config)
    result = run_benchmark(workload, TwoPLExecutor(db), config)
    assert all(o.proc in ("transfer", "audit")
               for o in result.metrics.outcomes)
    assert result.metrics.commits > 0


def test_retry_disabled_counts_single_attempts():
    workload = BankWorkload(n_accounts=10, hot_accounts=2,
                            hot_probability=0.9)
    config = RunConfig(n_partitions=2, concurrent_per_engine=4,
                       horizon_us=2_000.0, warmup_us=0.0,
                       retry_aborts=False, n_replicas=0)
    db = build(workload, config)
    result = run_benchmark(workload, TwoPLExecutor(db), config)
    assert result.metrics.attempts > 0


def test_run_records_hot_path_health():
    workload = BankWorkload(n_accounts=50)
    config = RunConfig(n_partitions=2, concurrent_per_engine=2,
                       horizon_us=1_000.0, warmup_us=0.0, n_replicas=0)
    db = build(workload, config)
    result = run_benchmark(workload, TwoPLExecutor(db), config)
    assert result.wall_seconds > 0.0
    assert result.events_processed > 0
    assert result.metrics.events_per_wall_second() > 0.0
    summary = result.perf_summary()
    assert summary["events_processed"] == result.events_processed
    assert summary["sim_us"] == result.end_time


def test_doorbell_batching_preserves_correctness():
    """Same workload, batching on: writes still all land (the YCSB
    lost-update litmus test), and fused round trips actually happened."""
    from repro.workloads.ycsb import YcsbWorkload, expected_counter_total

    workload = YcsbWorkload(n_keys=300, reads_per_txn=6, writes_per_txn=2)
    config = RunConfig(n_partitions=2, concurrent_per_engine=2,
                       horizon_us=2_000.0, warmup_us=0.0, n_replicas=0,
                       doorbell_batching=True)
    assert config.network_config().doorbell_batching
    db = build(workload, config)
    result = run_benchmark(workload, TwoPLExecutor(db), config)
    assert result.metrics.commits > 10
    assert (expected_counter_total(db, workload.n_keys)
            == result.metrics.commits * workload.writes_per_txn)
    stats = db.cluster.network.stats
    assert stats.one_sided_batches > 0
    assert stats.bytes_by_kind.get("lock_read", 0) > 0
    assert stats.bytes_by_kind.get("commit", 0) > 0


def test_route_by_data_sends_txns_to_majority_partition():
    workload = InstacartWorkload(n_products=500)
    config = RunConfig(n_partitions=2, concurrent_per_engine=2,
                       horizon_us=1_500.0, warmup_us=0.0,
                       route_by_data=True, n_replicas=0)
    db = build(workload, config)
    result = run_benchmark(workload, TwoPLExecutor(db), config)
    mismatched = 0
    for outcome in result.metrics.outcomes:
        if not outcome.committed:
            continue
    assert result.metrics.commits > 10
