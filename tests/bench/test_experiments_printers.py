"""Fast tests for the experiment row printers and CLI plumbing.

The sweeps themselves are exercised by the benchmark suite; here we
check the reporting layer against fabricated rows so a broken column
never silently corrupts EXPERIMENTS.md regeneration.
"""

from repro.bench import experiments as ex


def fabricated_instacart_rows():
    return [{
        "partitions": k,
        **{f"{name}_{field}": value
           for name in ex.INSTACART_LAYOUTS
           for field, value in (("throughput", 1000.0 * k),
                                ("distributed", 0.5),
                                ("abort_rate", 0.1),
                                ("lookup", 10),
                                ("edges", 100),
                                ("train_s", 0.5))},
    } for k in (2, 4)]


def fabricated_fig9_rows():
    rows = []
    for conc in (1, 4):
        row = {"concurrent": conc}
        for name in ex.TPCC_EXECUTORS:
            row[f"{name}_throughput"] = 1e5 * conc
            row[f"{name}_abort_rate"] = 0.25
        for proc in ("new_order", "payment", "stock_level"):
            row[f"2pl_{proc}_abort"] = 0.5
        rows.append(row)
    return rows


def test_fig7_printer(capsys):
    ex.print_fig7(fabricated_instacart_rows())
    out = capsys.readouterr().out
    assert "Fig. 7" in out
    assert "chiller" in out
    assert "2" in out and "4" in out


def test_fig8_printer(capsys):
    ex.print_fig8(fabricated_instacart_rows())
    out = capsys.readouterr().out
    assert "Fig. 8" in out
    assert "0.50" in out


def test_lookup_and_cost_printers(capsys):
    rows = fabricated_instacart_rows()
    ex.print_lookup(rows)
    ex.print_cost(rows)
    out = capsys.readouterr().out
    assert "lookup table size" in out
    assert "partitioning cost" in out
    assert "1.0x" in out


def test_fig9_printers(capsys):
    rows = fabricated_fig9_rows()
    ex.print_fig9a(rows)
    ex.print_fig9b(rows)
    ex.print_fig9c(rows)
    out = capsys.readouterr().out
    assert "Fig. 9a" in out and "Fig. 9b" in out and "Fig. 9c" in out
    assert "payment" in out


def test_fig10_printer(capsys):
    rows = [{"percent": 0,
             **{f"{n}_{c}_throughput": 5e5
                for n, c in ex.FIG10_SERIES}}]
    ex.print_fig10(rows)
    out = capsys.readouterr().out
    assert "Fig. 10" in out
    assert "chiller(5)" in out


def test_reorder_and_minweight_printers(capsys):
    ex.print_reorder([{"label": "full Chiller", "layout": "chiller",
                       "executor": "chiller", "throughput": 1e5,
                       "abort_rate": 0.1, "distributed": 0.9}])
    ex.print_min_weight([{"min_weight": 0.2, "throughput": 1e5,
                          "abort_rate": 0.1, "distributed": 0.9}])
    out = capsys.readouterr().out
    assert "full Chiller" in out
    assert "0.20" in out
