"""Scheduler-mediated dispatch: end-to-end behavior on real runs.

Covers the tentpole acceptance properties: the fifo path is
indistinguishable from the historical raw loop, the conflict scheduler
measurably converts wasted contention work into commits, decisions are
scheduler- and backend-independent for race-free programs, and sim
runs stay bit-deterministic (same seed ⇒ same SchedulerStats).
"""

import pytest

from repro.bench import RunConfig, build_database, run_benchmark
from repro.bench.conformance import run_ycsb_conformance
from repro.partitioning import HashScheme
from repro.sched import SchedulerSpec
from repro.storage import Catalog
from repro.txn import TwoPLExecutor
from repro.workloads.ycsb import YcsbWorkload


def run_hot_ycsb(scheduler, seed=11, concurrent=8, horizon=5_000.0,
                 theta=1.1):
    workload = YcsbWorkload(n_keys=800, reads_per_txn=4, writes_per_txn=3,
                            zipf_exponent=theta)
    config = RunConfig(n_partitions=4, concurrent_per_engine=concurrent,
                       horizon_us=horizon, warmup_us=500.0, seed=seed,
                       n_replicas=1, scheduler=scheduler)
    db, _cluster = build_database(
        workload, Catalog(config.n_partitions,
                          HashScheme(config.n_partitions)), config)
    return run_benchmark(workload, TwoPLExecutor(db), config)


def outcome_trace(result):
    return [(o.proc, o.committed, o.reason, o.start, o.end)
            for o in result.metrics.outcomes]


def test_default_and_fifo_are_identical():
    """scheduler=None and scheduler='fifo' must be the same dispatch,
    down to per-attempt timestamps (both reproduce the raw loop)."""
    default = run_hot_ycsb(None)
    fifo = run_hot_ycsb("fifo")
    assert outcome_trace(default) == outcome_trace(fifo)
    assert default.end_time == fifo.end_time
    assert default.metrics.events_processed == fifo.metrics.events_processed
    summary = fifo.metrics.scheduler_summary()
    assert summary.scheduler == "fifo"
    assert summary.deferrals == 0 and summary.sheds == 0


def test_conflict_converts_wasted_work_into_commits():
    fifo = run_hot_ycsb("fifo")
    conflict = run_hot_ycsb("conflict")
    assert conflict.metrics.commits > fifo.metrics.commits
    assert (conflict.metrics.wasted_attempts()
            < fifo.metrics.wasted_attempts())
    summary = conflict.metrics.scheduler_summary()
    assert summary.deferrals > 0
    assert summary.n_classes > 0
    assert summary.mean_queueing_delay_us() > 0.0


def test_conflict_stats_deterministic_per_seed():
    """Same seed ⇒ same SchedulerStats on the sim backend."""
    a = run_hot_ycsb("conflict", seed=23)
    b = run_hot_ycsb("conflict", seed=23)
    assert a.metrics.scheduler_stats == b.metrics.scheduler_stats
    assert outcome_trace(a) == outcome_trace(b)
    c = run_hot_ycsb("conflict", seed=24)
    assert (outcome_trace(a) != outcome_trace(c)
            or a.metrics.scheduler_stats != c.metrics.scheduler_stats)


def test_full_spec_crosses_run_config():
    spec = SchedulerSpec(kind="conflict", class_width=2,
                         max_queue_per_class=4)
    result = run_hot_ycsb(spec, horizon=2_000.0)
    summary = result.metrics.scheduler_summary()
    assert summary.scheduler == "conflict"
    assert summary.max_class_occupancy <= 2


def test_shed_requests_surface_in_metrics():
    spec = SchedulerSpec(kind="conflict", max_queue_per_class=1)
    result = run_hot_ycsb(spec, theta=1.3)
    metrics = result.metrics
    if metrics.shed_requests:  # hot enough to overflow a class queue
        summary = metrics.scheduler_summary()
        assert summary.shed_reasons.get("class_overload", 0) > 0
        assert metrics.shed_requests == summary.sheds


def test_perf_summary_reports_scheduler():
    result = run_hot_ycsb("conflict", horizon=2_000.0)
    sched = result.perf_summary()["scheduler"]
    assert sched["scheduler"] == "conflict"
    assert sched["admitted"] > 0


# -- decision conformance (the satellite's fixed programs) --------------------

def test_ycsb_conformance_raw_vs_fifo_vs_conflict_on_sim():
    raw = run_ycsb_conformance("sim", scheduler=None)
    fifo = run_ycsb_conformance("sim", scheduler="fifo")
    conflict = run_ycsb_conformance("sim", scheduler="conflict")
    assert raw == fifo == conflict
    assert len(raw) == 12


@pytest.mark.parametrize("executor", ["2pl", "occ"])
def test_ycsb_conformance_conflict_sim_equals_aio(executor):
    sim = run_ycsb_conformance("sim", executor, scheduler="conflict")
    aio = run_ycsb_conformance("aio", executor, scheduler="conflict")
    assert sim == aio


def test_ycsb_conformance_conflict_sim_equals_mp():
    sim = run_ycsb_conformance("sim", scheduler="conflict")
    mp = run_ycsb_conformance("mp", scheduler="conflict")
    assert sim == mp
