"""Integration tests for the open-loop dispatch mode.

Sim-backend runs through the real harness: arrival accounting must
balance, latency must be measured from the *scheduled* arrival
(coordinated-omission-safe — under overload the open-loop percentiles
dwarf the per-attempt ones), and deadline admission must shed by
value.  One cell drives the asyncio backend to prove the schedule
dispatches on a wall clock through the same code path.
"""

import pickle

import pytest

from repro.bench import RunConfig
from repro.bench.setups import make_ycsb_run
from repro.traffic import ArrivalSpec, schedule_for_home


def run_open_loop(offered_load=50_000.0, process="poisson",
                  admission="none", horizon_us=10_000.0,
                  n_partitions=2, backend="sim", **overrides):
    config = RunConfig(n_partitions=n_partitions, horizon_us=horizon_us,
                       warmup_us=1_000.0, seed=7, backend=backend,
                       arrivals=ArrivalSpec(process=process,
                                            offered_load=offered_load,
                                            deadline_us=2_000.0,
                                            admission=admission),
                       **overrides)
    return make_ycsb_run("2pl", config).run()


def test_open_loop_accounting_balances():
    result = run_open_loop()
    stats = result.metrics.open_loop
    assert stats is not None
    expected = sum(
        len(schedule_for_home(result.config.arrival_spec(), home, 2,
                              7, 10_000.0))
        for home in range(2))
    assert stats.scheduled == expected
    tenant = stats.tenants["all"]
    # the run drains to quiescence: every scheduled arrival was either
    # shed or ran to a terminal outcome, and each finished request
    # recorded exactly one latency sample
    assert tenant.scheduled == (tenant.shed + tenant.committed
                                + tenant.failed)
    assert tenant.histogram.n == tenant.committed + tenant.failed
    assert tenant.committed > 0


def test_perf_summary_reports_open_loop_only_when_enabled():
    open_loop = run_open_loop()
    summary = open_loop.perf_summary()["open_loop"]
    assert summary["scheduled"] > 0
    assert "p99_us" in summary["latency"]
    assert "all" in summary["tenants"]

    closed = make_ycsb_run("2pl", RunConfig(
        n_partitions=2, horizon_us=5_000.0, warmup_us=500.0,
        seed=7)).run()
    assert closed.metrics.open_loop is None
    assert "open_loop" not in closed.perf_summary()


def test_latency_measured_from_scheduled_arrival():
    # 2 engines sustain ~400k/s on this cell; offer 2x that.  The
    # per-attempt view (dispatch to outcome) cannot see time spent
    # queued behind the backlog; the open-loop view charges it, so
    # under overload the open-loop *median* must dwarf both the
    # per-attempt median and the entire unloaded tail.
    overload = run_open_loop(offered_load=800_000.0)
    open_loop_p50 = overload.metrics.open_loop.overall().percentile(0.50)
    per_attempt_p50 = overload.metrics.percentile_latency(0.50)
    assert open_loop_p50 > 3.0 * per_attempt_p50, (
        f"open-loop median {open_loop_p50:.0f}us should dwarf the "
        f"per-attempt median {per_attempt_p50:.0f}us under overload")

    unloaded = run_open_loop(offered_load=50_000.0)
    unloaded_p99 = unloaded.metrics.open_loop.overall().percentile(0.99)
    assert open_loop_p50 > 100.0 * unloaded_p99, (
        "queueing delay must dominate: a coordinated-omission-unsafe "
        "recorder would report near-service-time latencies here")


def test_deadline_admission_sheds_low_priority_first():
    result = run_open_loop(offered_load=800_000.0, process="tenants",
                           admission="deadline")
    tenants = result.metrics.open_loop.tenants
    assert tenants["standard"].shed > tenants["gold"].shed
    sheds = result.metrics.scheduler_summary().summary()["tenant_sheds"]
    reasons = {reason for per_tenant in sheds.values()
               for reason in per_tenant}
    assert reasons <= {"queue_full", "deadline_hopeless",
                       "priority_shed"}
    assert "standard" in sheds


def test_unadmitted_overload_drowns_all_tenants():
    result = run_open_loop(offered_load=800_000.0, process="tenants",
                           admission="none")
    stats = result.metrics.open_loop
    assert stats.shed == 0
    for tenant in stats.tenants.values():
        assert tenant.attainment() < 0.9


def test_offered_load_and_deadline_overrides():
    config = RunConfig(arrivals="poisson", offered_load=123_456.0,
                       deadline_us=777.0)
    spec = config.arrival_spec()
    assert spec.offered_load == 123_456.0
    assert spec.deadline_us == 777.0
    assert RunConfig().arrival_spec() is None


def test_open_loop_rejects_route_by_data():
    with pytest.raises(ValueError, match="route_by_data"):
        run_open_loop(route_by_data=True)


def test_config_with_arrivals_pickles():
    config = RunConfig(arrivals=ArrivalSpec(process="tenants",
                                            admission="deadline"))
    clone = pickle.loads(pickle.dumps(config))
    assert clone.arrival_spec() == config.arrival_spec()


def test_open_loop_dispatches_on_wall_clock_aio():
    result = run_open_loop(offered_load=2_000.0, horizon_us=25_000.0,
                           backend="aio")
    stats = result.metrics.open_loop
    assert stats is not None and stats.scheduled > 0
    tenant = stats.tenants["all"]
    assert tenant.committed > 0
    # wall-clock run: the horizon really elapsed
    assert result.end_time >= 25_000.0
