"""Unit tests for the seeded arrival processes.

The load-bearing property is determinism: a schedule is a pure
function of ``(spec, home, n_homes, seed, horizon_us)``, so the same
run configuration produces identical arrivals on every backend and
every mp worker topology.  The rest checks each process's shape —
mean rate, diurnal modulation, the flash step, tenant shares and
deadline resolution.
"""

import pickle

import pytest

from repro.traffic import (ADMISSIONS, ARRIVAL_PROCESSES, ArrivalSpec,
                           TenantSpec, as_arrival_spec, schedule_for_home)

HORIZON = 100_000.0  # 100ms


def spec(**overrides) -> ArrivalSpec:
    defaults = dict(process="poisson", offered_load=50_000.0,
                    deadline_us=4_000.0)
    defaults.update(overrides)
    return ArrivalSpec(**defaults)


def test_same_seed_same_schedule():
    a = schedule_for_home(spec(), home=2, n_homes=4, seed=7,
                          horizon_us=HORIZON)
    b = schedule_for_home(spec(), home=2, n_homes=4, seed=7,
                          horizon_us=HORIZON)
    assert a == b
    assert len(a) > 0


def test_schedule_independent_of_sibling_homes():
    # the property mp correctness rests on: a worker owning homes
    # {1, 3} generates exactly the schedules the single-process run
    # generates for those homes — nothing leaks across home streams
    alone = schedule_for_home(spec(), home=3, n_homes=4, seed=7,
                              horizon_us=HORIZON)
    for other in (0, 1, 2):
        schedule_for_home(spec(), home=other, n_homes=4, seed=7,
                          horizon_us=HORIZON)
    again = schedule_for_home(spec(), home=3, n_homes=4, seed=7,
                              horizon_us=HORIZON)
    assert alone == again


def test_different_seeds_and_homes_differ():
    base = schedule_for_home(spec(), 0, 4, seed=7, horizon_us=HORIZON)
    assert base != schedule_for_home(spec(), 0, 4, seed=8,
                                     horizon_us=HORIZON)
    assert base != schedule_for_home(spec(), 1, 4, seed=7,
                                     horizon_us=HORIZON)


def test_poisson_mean_rate():
    # 50k/s over 4 homes for 100ms => 1250 expected per home (sd ~35)
    n = len(schedule_for_home(spec(), 0, 4, seed=7, horizon_us=HORIZON))
    assert 1050 <= n <= 1450
    # arrivals are sorted and inside the horizon
    sched = schedule_for_home(spec(), 0, 4, seed=7, horizon_us=HORIZON)
    ats = [a.at for a in sched]
    assert ats == sorted(ats)
    assert 0.0 < ats[0] and ats[-1] < HORIZON


def test_diurnal_curve_modulates_rate():
    s = spec(process="diurnal", diurnal_period_us=20_000.0,
             diurnal_trough=0.25)
    sched = schedule_for_home(s, 0, 1, seed=7, horizon_us=40_000.0)
    # sin phase: [0, 10ms) is the high half-period, [10ms, 20ms) low
    high = sum(1 for a in sched if a.at % 20_000.0 < 10_000.0)
    low = len(sched) - high
    assert high > 1.5 * low


def test_flash_crowd_step():
    s = spec(process="flash", flash_at_frac=0.5, flash_ratio=4.0)
    sched = schedule_for_home(s, 0, 1, seed=7, horizon_us=HORIZON)
    before = sum(1 for a in sched if a.at < HORIZON / 2)
    after = len(sched) - before
    # the post-step rate is 4x the quiet rate
    assert after > 2.5 * before


def test_tenant_shares_and_deadline_resolution():
    s = spec(process="tenants",
             tenants=(TenantSpec("gold", share=0.2, priority=4.0,
                                 deadline_us=1_000.0),
                      TenantSpec("standard", share=0.8)))
    sched = schedule_for_home(s, 0, 1, seed=7, horizon_us=HORIZON)
    gold = [a for a in sched if a.tenant == "gold"]
    standard = [a for a in sched if a.tenant == "standard"]
    assert 0.15 < len(gold) / len(standard) < 0.35
    # per-tenant deadline wins; unset falls back to the spec default
    assert all(a.deadline_us == 1_000.0 for a in gold)
    assert all(a.deadline_us == 4_000.0 for a in standard)
    assert all(a.priority == 4.0 for a in gold)


def test_default_tenant_mix_for_tenants_process():
    names = {t.name for t in spec(process="tenants").effective_tenants()}
    assert names == {"gold", "standard"}
    # non-tenant processes run one anonymous tenant
    assert [t.name for t in spec().effective_tenants()] == ["all"]


def test_as_arrival_spec_normalizes_and_validates():
    assert as_arrival_spec(None) is None
    assert as_arrival_spec("poisson") == ArrivalSpec(process="poisson")
    full = spec(process="flash")
    assert as_arrival_spec(full) is full
    with pytest.raises(ValueError):
        as_arrival_spec("bursty")
    with pytest.raises(ValueError):
        as_arrival_spec(spec(admission="oracle"))
    assert set(ARRIVAL_PROCESSES) >= {"poisson", "diurnal", "flash",
                                      "tenants"}
    assert set(ADMISSIONS) == {"none", "deadline"}


def test_spec_is_picklable():
    s = spec(process="tenants",
             tenants=(TenantSpec("gold", share=0.2, priority=4.0),))
    assert pickle.loads(pickle.dumps(s)) == s


def test_invalid_inputs_raise():
    with pytest.raises(ValueError):
        schedule_for_home(spec(offered_load=0.0), 0, 4, 7, HORIZON)
    with pytest.raises(ValueError):
        schedule_for_home(spec(), 0, 0, 7, HORIZON)
