"""Admission control: queue caps shed with typed reasons."""

from repro.sched import (AdmissionController, ConflictClassScheduler,
                         SchedAction, SchedReason, SchedulerSpec,
                         SchedulerStats)
from repro.txn.common import Outcome, TxnRequest


def req(*classes):
    return TxnRequest("t", {"classes": tuple(classes)}, home=0)


def fingerprint(request):
    return request.params["classes"]


def test_controller_sheds_at_cap_with_typed_reason():
    stats = SchedulerStats(scheduler="conflict")
    ctl = AdmissionController(SchedulerSpec(max_queue_per_class=2), stats)
    assert ctl.check_queue("hot", 0) is None
    assert ctl.check_queue("hot", 1) is None
    decision = ctl.check_queue("hot", 2)
    assert decision is not None
    assert decision.action is SchedAction.SHED
    assert decision.reason is SchedReason.CLASS_OVERLOAD
    assert stats.sheds == 1
    assert stats.shed_reasons == {"class_overload": 1}


def test_zero_cap_disables_shedding():
    stats = SchedulerStats()
    ctl = AdmissionController(SchedulerSpec(max_queue_per_class=0), stats)
    assert ctl.check_queue("hot", 10_000) is None
    assert stats.sheds == 0


def test_scheduler_sheds_when_class_queue_is_full():
    spec = SchedulerSpec(kind="conflict", max_queue_per_class=1)
    sched = ConflictClassScheduler(fingerprint, spec)
    holder = sched.admit(req("hot"), 0.0)
    assert holder.action is SchedAction.RUN
    assert sched.admit(req("hot"), 0.0).action is SchedAction.DEFER
    shed = sched.admit(req("hot"), 0.0)
    assert shed.action is SchedAction.SHED
    assert shed.reason is SchedReason.CLASS_OVERLOAD
    # the shed request holds nothing: releasing the holder frees a slot
    sched.on_outcome(holder,
                     Outcome(txn_id=1, proc="t", committed=True),
                     1.0, will_retry=False)
    assert sched.admit(req("hot"), 1.0).action is SchedAction.RUN
