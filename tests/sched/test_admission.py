"""Admission control: queue caps shed with typed reasons."""

from repro.sched import (AdmissionController, ConflictClassScheduler,
                         SchedAction, SchedReason, SchedulerSpec,
                         SchedulerStats)
from repro.txn.common import Outcome, TxnRequest


def req(*classes):
    return TxnRequest("t", {"classes": tuple(classes)}, home=0)


def fingerprint(request):
    return request.params["classes"]


def test_controller_sheds_at_cap_with_typed_reason():
    stats = SchedulerStats(scheduler="conflict")
    ctl = AdmissionController(SchedulerSpec(max_queue_per_class=2), stats)
    assert ctl.check_queue("hot", 0) is None
    assert ctl.check_queue("hot", 1) is None
    decision = ctl.check_queue("hot", 2)
    assert decision is not None
    assert decision.action is SchedAction.SHED
    assert decision.reason is SchedReason.CLASS_OVERLOAD
    assert stats.sheds == 1
    assert stats.shed_reasons == {"class_overload": 1}


def test_zero_cap_disables_shedding():
    stats = SchedulerStats()
    ctl = AdmissionController(SchedulerSpec(max_queue_per_class=0), stats)
    assert ctl.check_queue("hot", 10_000) is None
    assert stats.sheds == 0


def test_scheduler_sheds_when_class_queue_is_full():
    spec = SchedulerSpec(kind="conflict", max_queue_per_class=1)
    sched = ConflictClassScheduler(fingerprint, spec)
    holder = sched.admit(req("hot"), 0.0)
    assert holder.action is SchedAction.RUN
    assert sched.admit(req("hot"), 0.0).action is SchedAction.DEFER
    shed = sched.admit(req("hot"), 0.0)
    assert shed.action is SchedAction.SHED
    assert shed.reason is SchedReason.CLASS_OVERLOAD
    # the shed request holds nothing: releasing the holder frees a slot
    sched.on_outcome(holder,
                     Outcome(txn_id=1, proc="t", committed=True),
                     1.0, will_retry=False)
    assert sched.admit(req("hot"), 1.0).action is SchedAction.RUN


# -- deadline/priority-aware admission (open-loop front door) ---------------

def arrival(at=0.0, deadline_us=1_000.0, priority=1.0, tenant="t"):
    from repro.traffic import Arrival
    return Arrival(at=at, tenant=tenant, deadline_us=deadline_us,
                   priority=priority)


def deadline_ctl(**kwargs):
    from repro.sched import DeadlineAdmission
    defaults = dict(max_priority=4.0, max_in_flight=8,
                    init_gap_us=100.0)
    defaults.update(kwargs)
    return DeadlineAdmission(SchedulerStats(), **defaults)


def test_deadline_admits_when_wait_fits_budget():
    ctl = deadline_ctl()
    # empty system: predicted wait 0, everything fits
    assert ctl.admit(arrival(priority=0.5), now=0.0) is None


def test_hopeless_deadline_is_shed_even_at_top_priority():
    ctl = deadline_ctl()
    for _ in range(5):
        ctl.on_start()  # predicted wait: 5 * 100us = 500us
    verdict = ctl.admit(arrival(deadline_us=300.0, priority=4.0),
                        now=0.0)
    assert verdict is SchedReason.DEADLINE_HOPELESS


def test_low_priority_is_shed_before_high():
    ctl = deadline_ctl()
    for _ in range(5):
        ctl.on_start()  # predicted wait 500us
    # budget 1000us: gold (full budget) fits, standard (1000 * 1/4 =
    # 250us slice) does not
    assert ctl.admit(arrival(priority=4.0, tenant="gold"),
                     now=0.0) is None
    verdict = ctl.admit(arrival(priority=1.0, tenant="standard"),
                        now=0.0)
    assert verdict is SchedReason.PRIORITY_SHED
    assert ctl.stats.tenant_sheds["standard"] == {"priority_shed": 1}


def test_dispatch_lag_counts_against_budget():
    ctl = deadline_ctl()
    for _ in range(5):
        ctl.on_start()  # predicted wait 500us
    # scheduled at t=0 with a 1000us deadline, picked up at t=800:
    # only 200us of budget left
    verdict = ctl.admit(arrival(at=0.0, deadline_us=1_000.0,
                                priority=4.0), now=800.0)
    assert verdict is SchedReason.DEADLINE_HOPELESS


def test_in_flight_cap_sheds_queue_full():
    ctl = deadline_ctl(max_in_flight=2)
    ctl.on_start()
    ctl.on_start()
    verdict = ctl.admit(arrival(priority=4.0), now=0.0)
    assert verdict is SchedReason.QUEUE_FULL


def test_completion_gap_ewma_tracks_drain_rate():
    ctl = deadline_ctl(gap_ewma_alpha=0.5)
    ctl.on_start()
    ctl.on_finish(now=100.0)   # first completion only seeds the clock
    assert ctl.gap_ewma_us == 100.0
    ctl.on_start()
    ctl.on_finish(now=120.0)   # observed gap 20us, EWMA moves halfway
    assert ctl.gap_ewma_us == 60.0
    assert ctl.in_flight == 0
