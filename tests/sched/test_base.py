"""Scheduler interface, FIFO baseline, stats, and spec plumbing."""

import pickle
import random

import pytest

from repro.sched import (FifoScheduler, SchedAction, SchedulerSpec,
                         SchedulerStats, as_spec)
from repro.txn.common import TxnRequest


def req(**params):
    return TxnRequest("t", params, home=0)


def test_fifo_always_runs_immediately_without_effects():
    sched = FifoScheduler()
    for i in range(5):
        decision = sched.admit(req(i=i), now=float(i))
        assert decision.action is SchedAction.RUN
        assert decision.signal is None and decision.delay_us == 0.0
    assert sched.stats.admitted == 5
    assert sched.stats.deferrals == 0
    assert sched.stats.sheds == 0
    assert sched.stats.queue_depth == 0


def test_fifo_retry_backoff_matches_raw_loop_rng_draw():
    """The mediated loop must consume the worker RNG exactly like the
    historical raw loop: one uniform draw per retry."""
    sched = FifoScheduler()
    decision = sched.admit(req(), 0.0)
    a, b = random.Random(7), random.Random(7)
    drawn = sched.retry_backoff_us(decision, a, 10.0)
    assert drawn == b.uniform(0.0, 10.0)
    assert a.random() == b.random()  # exactly one draw consumed


def test_stats_merge_sums_and_maxes():
    a = SchedulerStats(scheduler="conflict", admitted=3, deferrals=2,
                       sheds=1, queueing_delay_us=10.0,
                       queued_admissions=2, max_queue_depth=4,
                       n_classes=5, max_class_occupancy=1,
                       window_widenings=2,
                       defer_reasons={"class_serialized": 2},
                       shed_reasons={"class_overload": 1})
    b = SchedulerStats(scheduler="conflict", admitted=1, deferrals=1,
                       max_queue_depth=2, queueing_delay_us=5.0,
                       queued_admissions=1, n_classes=2,
                       defer_reasons={"class_cooldown": 1})
    merged = SchedulerStats.merged([a, b])
    assert merged.admitted == 4
    assert merged.deferrals == 3
    assert merged.sheds == 1
    assert merged.max_queue_depth == 4
    assert merged.queueing_delay_us == 15.0
    assert merged.mean_queueing_delay_us() == 5.0
    assert merged.n_classes == 7
    assert merged.defer_reasons == {"class_serialized": 2,
                                    "class_cooldown": 1}
    assert merged.summary()["scheduler"] == "conflict"


def test_stats_and_spec_are_picklable():
    """Both cross the mp process boundary (spec out, stats back)."""
    spec = SchedulerSpec(kind="conflict", class_width=2)
    stats = SchedulerStats(scheduler="conflict", admitted=7,
                           defer_reasons={"class_serialized": 3})
    spec2 = pickle.loads(pickle.dumps(spec))
    stats2 = pickle.loads(pickle.dumps(stats))
    assert spec2 == spec
    assert stats2.admitted == 7
    assert stats2.defer_reasons == {"class_serialized": 3}


def test_as_spec_normalizes_none_name_and_spec():
    assert as_spec(None).kind == "fifo"
    assert as_spec("conflict").kind == "conflict"
    spec = SchedulerSpec(kind="conflict", class_width=3)
    assert as_spec(spec) is spec
    with pytest.raises(ValueError, match="unknown scheduler"):
        as_spec("lifo")


def test_spec_build_fifo_and_conflict():
    assert isinstance(SchedulerSpec(kind="fifo").build(), FifoScheduler)
    sched = SchedulerSpec(kind="conflict").build(lambda r: ())
    assert sched.name == "conflict"
    with pytest.raises(ValueError, match="fingerprint"):
        SchedulerSpec(kind="conflict").build()
    with pytest.raises(ValueError, match="unknown scheduler kind"):
        SchedulerSpec(kind="nope").build()
