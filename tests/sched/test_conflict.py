"""Conflict-class scheduling: serialization, wake-up, abort feedback."""

from repro.sched import (ConflictClassScheduler, SchedAction, SchedReason,
                         SchedulerSpec)
from repro.txn.common import AbortReason, Outcome, TxnRequest


def req(*classes):
    return TxnRequest("t", {"classes": tuple(classes)}, home=0)


def fingerprint(request):
    return request.params["classes"]


def make(spec=None):
    return ConflictClassScheduler(fingerprint,
                                  spec or SchedulerSpec(kind="conflict"))


def outcome(committed=True, reason=None):
    return Outcome(txn_id=1, proc="t", committed=committed, reason=reason)


def test_same_class_serializes_and_wakes_in_fifo_order():
    sched = make()
    first = sched.admit(req("hot"), 0.0)
    assert first.action is SchedAction.RUN
    second = sched.admit(req("hot"), 1.0)
    assert second.action is SchedAction.DEFER
    assert second.reason is SchedReason.CLASS_SERIALIZED
    assert second.signal is not None and not second.signal.fired

    # the holder finishing fires the waiter's signal
    sched.on_outcome(first, outcome(), 5.0, will_retry=False)
    assert second.signal.fired
    woken = sched.readmit(req("hot"), second, 5.0)
    assert woken.action is SchedAction.RUN
    assert sched.stats.queued_admissions == 1
    assert sched.stats.queueing_delay_us == 4.0  # deferred 1.0 -> ran 5.0


def test_distinct_classes_run_in_parallel():
    sched = make()
    assert sched.admit(req("a"), 0.0).action is SchedAction.RUN
    assert sched.admit(req("b"), 0.0).action is SchedAction.RUN
    assert sched.stats.deferrals == 0
    assert sched.stats.n_classes == 2


def test_unfingerprintable_requests_run_unconstrained():
    sched = make()
    for _ in range(4):
        assert sched.admit(req(), 0.0).action is SchedAction.RUN
    assert sched.stats.n_classes == 0


def test_multi_class_admission_is_all_or_nothing():
    sched = make()
    held = sched.admit(req("a"), 0.0)
    assert held.action is SchedAction.RUN
    # wants a AND b; a is busy -> defers without holding b
    both = sched.admit(req("a", "b"), 0.0)
    assert both.action is SchedAction.DEFER
    # b must still be free for others
    assert sched.admit(req("b"), 0.0).action is SchedAction.RUN


def test_retrying_holder_keeps_its_slot():
    sched = make()
    holder = sched.admit(req("hot"), 0.0)
    sched.on_outcome(holder, outcome(False, AbortReason.LOCK_CONFLICT),
                     1.0, will_retry=True)
    assert sched.admit(req("hot"), 1.5).action is SchedAction.DEFER
    sched.on_outcome(holder, outcome(), 2.0, will_retry=False)
    assert sched.admit(req("hot"), 2.5).action is SchedAction.RUN


def test_abort_spike_widens_window_and_cooldown_defers():
    spec = SchedulerSpec(kind="conflict", window_init_us=50.0,
                         abort_ewma_alpha=1.0, abort_spike_threshold=0.5)
    sched = ConflictClassScheduler(fingerprint, spec)
    holder = sched.admit(req("hot"), 0.0)
    # a contention abort at full alpha spikes the ewma instantly
    sched.on_outcome(holder, outcome(False, AbortReason.LOCK_CONFLICT),
                     1.0, will_retry=False)
    assert sched.stats.window_widenings == 1
    cooled = sched.admit(req("hot"), 2.0)
    assert cooled.action is SchedAction.DEFER
    assert cooled.reason is SchedReason.CLASS_COOLDOWN
    assert cooled.delay_us > 0.0
    # after the window passes, admissions flow again
    reopened = sched.readmit(req("hot"), cooled, 51.0 + 1.0)
    assert reopened.action is SchedAction.RUN


def test_commits_shrink_the_window_back():
    spec = SchedulerSpec(kind="conflict", window_init_us=40.0,
                         abort_ewma_alpha=1.0, abort_spike_threshold=0.5)
    sched = ConflictClassScheduler(fingerprint, spec)
    holder = sched.admit(req("hot"), 0.0)
    sched.on_outcome(holder, outcome(False, AbortReason.LOCK_CONFLICT),
                     1.0, will_retry=True)
    state = sched._classes["hot"]
    assert state.window_us == 40.0
    # alpha=1.0: one commit zeroes the ewma, halving then clearing
    sched.on_outcome(holder, outcome(), 2.0, will_retry=False)
    assert state.window_us == 0.0


def test_window_caps_at_max():
    spec = SchedulerSpec(kind="conflict", window_init_us=30.0,
                         window_max_us=60.0, abort_ewma_alpha=1.0,
                         abort_spike_threshold=0.5)
    sched = ConflictClassScheduler(fingerprint, spec)
    holder = sched.admit(req("hot"), 0.0)
    for t in range(4):
        sched.on_outcome(holder,
                         outcome(False, AbortReason.LOCK_CONFLICT),
                         float(t), will_retry=True)
    assert sched._classes["hot"].window_us <= 60.0


def test_stats_track_occupancy_and_depth():
    spec = SchedulerSpec(kind="conflict", class_width=2)
    sched = ConflictClassScheduler(fingerprint, spec)
    a = sched.admit(req("hot"), 0.0)
    b = sched.admit(req("hot"), 0.0)
    assert a.action is b.action is SchedAction.RUN
    assert sched.stats.max_class_occupancy == 2
    deferred = sched.admit(req("hot"), 0.0)
    assert deferred.action is SchedAction.DEFER
    assert sched.stats.queue_depth == 1
    assert sched.stats.max_queue_depth == 1
    sched.on_outcome(a, outcome(), 1.0, will_retry=False)
    assert sched.readmit(req("hot"), deferred, 1.0).action is SchedAction.RUN
    assert sched.stats.queue_depth == 0
