"""Unit tests for the live metrics timeline: rings, deltas, merge."""

from types import SimpleNamespace

from repro.obs import Timeline, TimelineSample, TimelineSampler


def row(t_us, server=0, gen=0, counters=None, gauges=None, final=False):
    return TimelineSample(t_us=t_us, server=server, gen=gen,
                          counters=counters or {}, gauges=gauges or {},
                          final=final)


# -- Timeline ---------------------------------------------------------------

def test_rings_are_per_server_and_bounded():
    tl = Timeline(10.0, ring=3)
    for i in range(5):
        tl.add(row(float(i), server=0))
    tl.add(row(0.0, server=1))
    assert tl.servers() == [0, 1]
    assert tl.dropped == 2
    assert [r.t_us for r in tl.rows(0)] == [2.0, 3.0, 4.0]
    assert len(tl.rows(1)) == 1


def test_rows_interleave_time_ordered():
    tl = Timeline(10.0)
    tl.add(row(20.0, server=1))
    tl.add(row(10.0, server=0))
    tl.add(row(20.0, server=0))
    assert [(r.t_us, r.server) for r in tl.rows()] == \
        [(10.0, 0), (20.0, 0), (20.0, 1)]


def test_series_and_cumulative_are_monotone():
    tl = Timeline(10.0)
    for i, commits in enumerate([3, 0, 5]):
        tl.add(row(10.0 * (i + 1), counters={"commits": commits}))
    assert tl.series("commits") == [(10.0, 3), (20.0, 0), (30.0, 5)]
    cumulative = [v for _, v in tl.cumulative("commits")]
    assert cumulative == [3, 3, 8]
    assert cumulative == sorted(cumulative)


def test_series_falls_back_to_gauges():
    tl = Timeline(10.0)
    tl.add(row(10.0, gauges={"queue_depth": 4.0}))
    assert tl.series("queue_depth") == [(10.0, 4.0)]
    assert tl.gauge_max("queue_depth") == 4.0
    assert tl.gauge_last("queue_depth", 0) == 4.0


def test_totals_and_tenant_totals_sum_all_servers():
    tl = Timeline(10.0)
    tl.add(row(10.0, server=0, counters={"commits": 2}))
    a = row(10.0, server=1, counters={"commits": 3})
    a.tenants["gold"] = {"scheduled": 5, "in_slo": 4}
    tl.add(a)
    assert tl.totals()["commits"] == 5
    assert tl.tenant_totals() == {"gold": {"scheduled": 5, "in_slo": 4}}


def test_merge_preserves_rows_dropped_and_health():
    a = Timeline(10.0)
    a.add(row(10.0, server=0, counters={"commits": 1}))
    a.dropped = 2
    b = Timeline(10.0)
    b.add(row(10.0, server=1, counters={"commits": 4}))
    b.health.append("event")
    merged = Timeline.merged([a, b])
    assert merged.servers() == [0, 1]
    assert merged.totals()["commits"] == 5
    assert merged.dropped == 2
    assert merged.health == ["event"]


def test_summary_reports_the_headline_numbers():
    tl = Timeline(10.0)
    tl.add(row(10.0, counters={"commits": 7, "aborts": 1, "sheds": 2},
               gauges={"queue_depth": 9.0}))
    summary = tl.summary()
    assert summary["samples"] == 1 and summary["servers"] == 1
    assert summary["commits"] == 7 and summary["aborts"] == 1
    assert summary["sheds"] == 2 and summary["max_queue_depth"] == 9


# -- TimelineSampler --------------------------------------------------------

def fake_sched(admitted=0, completed=0, queue_depth=0):
    stats = SimpleNamespace(
        queue_depth=queue_depth, max_queue_depth=queue_depth,
        timeline_snapshot=lambda: {"admitted": admitted,
                                   "completed": completed})
    return SimpleNamespace(stats=stats)


def fake_metrics(outcomes=()):
    return SimpleNamespace(outcomes=list(outcomes), open_loop=None)


def outcome(committed=True, reason=None):
    return SimpleNamespace(committed=committed, reason=reason)


def test_tick_fires_only_on_interval_boundaries():
    sampler = TimelineSampler(100.0, fake_metrics(), {0: fake_sched()})
    assert sampler.tick(50.0) == []
    rows = sampler.tick(100.0)
    assert len(rows) == 1 and rows[0].t_us == 100.0
    assert sampler.tick(150.0) == []
    # a late tick lands in whatever interval the clock reached
    assert sampler.tick(350.0)[0].t_us == 350.0


def test_counters_are_deltas_not_cumulative():
    sched = fake_sched()
    sampler = TimelineSampler(100.0, fake_metrics(), {0: sched})
    sched.stats.timeline_snapshot = lambda: {"completed": 5}
    first = sampler.tick(100.0)[0]
    sched.stats.timeline_snapshot = lambda: {"completed": 8}
    second = sampler.tick(200.0)[0]
    assert first.counters["completed"] == 5
    assert second.counters["completed"] == 3


def test_process_counters_ride_only_the_primary_row():
    metrics = fake_metrics([outcome(), outcome(),
                            outcome(False, "lock_conflict")])
    sampler = TimelineSampler(100.0, metrics,
                              {2: fake_sched(), 5: fake_sched()})
    rows = sampler.tick(100.0)
    by_server = {r.server: r for r in rows}
    assert sampler.primary == 2
    assert by_server[2].counters["commits"] == 2
    assert by_server[2].counters["aborts"] == 1
    assert by_server[2].counters["aborts.lock_conflict"] == 1
    assert "commits" not in by_server[5].counters


def test_outcome_scan_never_double_counts():
    metrics = fake_metrics([outcome()])
    sampler = TimelineSampler(100.0, metrics, {0: fake_sched()})
    assert sampler.tick(100.0)[0].counters["commits"] == 1
    metrics.outcomes.append(outcome())
    assert sampler.tick(200.0)[0].counters["commits"] == 1


def test_flush_marks_rows_final():
    sampler = TimelineSampler(100.0, fake_metrics(), {0: fake_sched()})
    assert all(not r.final for r in sampler.tick(100.0))
    assert all(r.final for r in sampler.flush(150.0))


def test_a_homeless_process_still_emits_a_liveness_row():
    sampler = TimelineSampler(100.0, fake_metrics([outcome()]), {})
    rows = sampler.tick(100.0)
    assert len(rows) == 1
    assert rows[0].counters["commits"] == 1


def test_source_snapshots_flow_through():
    network = SimpleNamespace(
        timeline_snapshot=lambda: {"wire_bytes": 640.0})
    sampler = TimelineSampler(100.0, fake_metrics(), {0: fake_sched()},
                              network=network,
                              events_fired=lambda: 42)
    first = sampler.tick(100.0)[0]
    assert first.counters["wire_bytes"] == 640.0
    assert first.counters["events"] == 42
    second = sampler.tick(200.0)[0]
    # unchanged sources contribute no delta keys
    assert "wire_bytes" not in second.counters
    assert "events" not in second.counters
