"""Watchdog chaos: SIGKILL an mp worker under a live timeline.

The acceptance cell for the observability layer's hardest claim: the
merged timeline *survives* worker death (already-shipped intervals are
kept, the dead generation's unsent partial is absent, nothing is
double-counted), and the health watchdog turns the kill into typed
events — a ``stall`` (the victim's server goes silent) and a
``leader_flap`` (the victim held the placement lease; a survivor
acquires it) — within the rule window.

Real processes, real SIGKILL, reusing the chaos harness of
``tests/sim/test_mp_recovery.py``.
"""

import multiprocessing

import pytest

from repro.bench import RunConfig
from repro.bench.setups import make_ycsb_run
from repro.workloads.ycsb import YcsbWorkload

INTERVAL_US = 100_000.0  # 100ms wall per sample on the mp backend
VICTIM = 0               # worker 0 owns server 0 = the lease home


def no_leaked_workers() -> bool:
    return not [p for p in multiprocessing.active_children()
                if p.name.startswith("mp-worker-")]


def chaos_config(tmp_path) -> RunConfig:
    return RunConfig(
        n_partitions=2, concurrent_per_engine=2,
        horizon_us=3_000_000.0, warmup_us=0.0, n_replicas=1,
        backend="mp", mp_run_timeout_s=180.0,
        wal="group", wal_dir=str(tmp_path),
        mp_recovery=True, mp_max_restarts=1,
        mp_chaos_kill_worker=VICTIM, mp_chaos_kill_after_s=1.2,
        placement="adaptive",
        metrics_interval=INTERVAL_US)


@pytest.fixture(scope="module")
def chaos_result(tmp_path_factory):
    """One chaos run shared by every assertion below (a real SIGKILL +
    respawn costs seconds; the properties are all facets of the same
    merged timeline)."""
    tmp_path = tmp_path_factory.mktemp("watchdog-chaos")
    config = chaos_config(tmp_path)
    run = make_ycsb_run("2pl", config,
                        workload=YcsbWorkload(n_keys=512))
    result = run.run()
    assert no_leaked_workers()
    return result


def test_run_survives_the_kill(chaos_result):
    assert chaos_result.metrics.commits > 0
    recovery = chaos_result.metrics.recovery_stats
    assert recovery is not None and recovery.recoveries == 1


def test_stall_and_leader_flap_are_detected(chaos_result):
    events = chaos_result.perf_summary()["health"]
    kinds = {event["kind"] for event in events}
    assert "stall" in kinds, events
    assert "leader_flap" in kinds, events
    # the victim's server went silent; detection is typed and
    # attributed, not a generic "run was slow".  (The survivor may
    # *also* stall legitimately — its distributed transactions block
    # on the dead peer — so filter by server.)
    victim_stalls = [e for e in events
                     if e["kind"] == "stall" and e["server"] == VICTIM]
    assert victim_stalls, events
    assert any("silent" in e["message"] for e in victim_stalls)
    flap = next(e for e in events if e["kind"] == "leader_flap")
    assert flap["server"] == -1  # cluster-scoped
    assert flap["value"] >= 1


def test_merged_timeline_spans_both_generations(chaos_result):
    timeline = chaos_result.metrics.timeline
    assert timeline is not None
    assert timeline.servers() == [0, 1]
    gens = {row.gen for row in timeline.rows(VICTIM)}
    # the dead generation's shipped rows survive alongside the
    # replacement's
    assert gens == {0, 1}, gens
    assert timeline.dropped == 0


def test_merged_timeline_is_monotonic(chaos_result):
    timeline = chaos_result.metrics.timeline
    for server in timeline.servers():
        for row in timeline.rows(server):
            assert all(v >= 0 for v in row.counters.values()), \
                f"negative delta on server {server}: {row.counters}"
        for name in ("completed", "commits"):
            values = [v for _, v in timeline.cumulative(name, server)]
            assert values == sorted(values)


def test_no_double_counted_deltas(chaos_result):
    timeline = chaos_result.metrics.timeline
    metrics = chaos_result.metrics
    # the survivor ran one generation: its timeline total must land
    # exactly on its final scheduler stats
    survivor = 1
    completed = sum(r.counters.get("completed", 0)
                    for r in timeline.rows(survivor))
    assert completed == metrics.scheduler_stats[survivor].completed
    # the victim's final stats come from the replacement generation
    # only; its gen-1 rows must land exactly there, with the dead
    # generation's shipped rows strictly additive on top
    gen1 = sum(r.counters.get("completed", 0)
               for r in timeline.rows(VICTIM) if r.gen == 1)
    assert gen1 == metrics.scheduler_stats[VICTIM].completed
    # dead-generation work was shipped live and kept, so the timeline
    # legitimately knows about *more* commits than the final payloads
    # (which lost the dead worker's) — never fewer
    assert timeline.totals().get("commits", 0) >= metrics.commits
