"""Timeline through the harness: sim runs end to end with
``metrics_interval`` set.

The fast (sim-backend) half of the observability acceptance: samples
are collected after fired events, harvested into ``metrics.timeline``,
surfaced in ``perf_summary()["timeline"]`` / ``["health"]``, written
as CSV — and, the load-bearing guarantee, sampling never moves a
simulator event.  The mp half (live shipping, merge under worker
death, overhead bounds) lives in ``tests/obs/test_watchdog_chaos.py``
and ``benchmarks/bench_timeline_overhead.py``.
"""

import pytest

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.obs import HealthEvent, HealthRule, WatchdogAbort
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, TwoPLExecutor
from repro.workloads.bank import BankWorkload


def build(workload, config):
    cluster = Cluster(config.n_partitions, config.network_config())
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(config.n_partitions,
                                   HashScheme(config.n_partitions)),
                  workload.tables(), registry,
                  n_replicas=config.n_replicas)
    workload.populate(db.loader())
    return db


def run_bank(**overrides):
    defaults = dict(n_partitions=2, concurrent_per_engine=2,
                    horizon_us=2_000.0, warmup_us=0.0, n_replicas=0)
    defaults.update(overrides)
    config = RunConfig(**defaults)
    workload = BankWorkload(n_accounts=50)
    db = build(workload, config)
    return run_benchmark(workload, TwoPLExecutor(db), config)


def digest(result):
    metrics = result.metrics
    return (metrics.commits, metrics.aborts, metrics.attempts,
            metrics.events_processed, result.end_time)


def test_timeline_off_allocates_nothing():
    result = run_bank()
    assert result.metrics.timeline is None
    summary = result.perf_summary()
    assert "timeline" not in summary and "health" not in summary


def test_timeline_does_not_perturb_the_sim():
    assert digest(run_bank()) == digest(run_bank(metrics_interval=200.0))


def test_timeline_collects_samples_and_matches_final_metrics():
    result = run_bank(metrics_interval=200.0)
    timeline = result.metrics.timeline
    assert timeline is not None
    assert timeline.servers() == [0, 1]
    # ~10 intervals over the 2ms horizon, plus the final flush
    assert len(timeline.rows()) >= 10
    # the timeline's cumulative view lands exactly on the aggregates
    totals = timeline.totals()
    assert totals["commits"] == result.metrics.commits
    assert totals.get("aborts", 0) == result.metrics.aborts
    for server, stats in result.metrics.scheduler_stats.items():
        completed = sum(r.counters.get("completed", 0)
                        for r in timeline.rows(server))
        assert completed == stats.completed

    summary = result.perf_summary()
    assert summary["timeline"]["samples"] == len(timeline.rows())
    assert summary["timeline"]["commits"] == result.metrics.commits
    assert summary["health"] == []


def test_timeline_csv_lands_on_disk(tmp_path):
    path = tmp_path / "timeline.csv"
    result = run_bank(metrics_interval=200.0, metrics_csv=str(path))
    lines = path.read_text().splitlines()
    assert lines[0].startswith("t_us,server,gen")
    assert len(lines) == len(result.metrics.timeline.rows()) + 1


def test_watchdog_abort_kills_a_wedged_run():
    # a rule that fires on the first sample (any queue depth >= 0):
    # the run must stop at the first interval, not the horizon, and
    # still return its partial metrics with the event on record
    rules = (HealthRule("queue_saturation", threshold=0.0, window=1,
                        fatal=True),)
    result = run_bank(metrics_interval=200.0, health_rules=rules,
                      watchdog_abort=True)
    assert result.end_time < 2_000.0
    health = result.perf_summary()["health"]
    assert health and health[0]["kind"] == "queue_saturation"
    assert result.metrics.timeline.rows()


def test_watchdog_abort_exception_carries_the_event():
    with pytest.raises(WatchdogAbort) as err:
        raise WatchdogAbort(HealthEvent("stall", 1.0, 0, 0.0, 0.0,
                                        "wedged"))
    assert err.value.event.kind == "stall"
    assert "wedged" in str(err.value)


def test_health_events_survive_into_perf_summary():
    rules = (HealthRule("queue_saturation", threshold=0.0, window=1),)
    result = run_bank(metrics_interval=200.0, health_rules=rules)
    health = result.perf_summary()["health"]
    assert health and health[0]["kind"] == "queue_saturation"
    assert result.metrics.timeline.health
