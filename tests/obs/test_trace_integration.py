"""Tracing through the harness: sim runs end to end with trace=True.

The fast (sim-backend) half of the observability acceptance: spans are
collected and harvested into ``metrics.trace``, exemplars attribute
tail latency to a dominant phase, the Perfetto export file is written,
and — the load-bearing guarantee — tracing never moves a simulator
event.  The mp half (cross-process stitching, overhead bounds) lives
in ``benchmarks/bench_trace_overhead.py``.
"""

import json

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.obs import NOOP_TRACER, PHASES
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, TwoPLExecutor
from repro.workloads.bank import BankWorkload


def build(workload, config):
    cluster = Cluster(config.n_partitions, config.network_config())
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(config.n_partitions,
                                   HashScheme(config.n_partitions)),
                  workload.tables(), registry,
                  n_replicas=config.n_replicas)
    workload.populate(db.loader())
    return db


def run_bank(**overrides):
    defaults = dict(n_partitions=2, concurrent_per_engine=2,
                    horizon_us=2_000.0, warmup_us=0.0, n_replicas=0)
    defaults.update(overrides)
    config = RunConfig(**defaults)
    workload = BankWorkload(n_accounts=50)
    db = build(workload, config)
    return run_benchmark(workload, TwoPLExecutor(db), config)


def test_tracing_off_allocates_nothing():
    result = run_bank()
    assert result.metrics.trace is None
    assert result.database.tracer is NOOP_TRACER
    summary = result.perf_summary()
    assert "trace" not in summary and "exemplars" not in summary


def test_tracing_collects_phase_spans_and_exemplars():
    result = run_bank(trace=True)
    trace = result.metrics.trace
    assert trace is not None and len(trace.spans) > 0
    assert trace.dropped == 0
    assert {span[4] for span in trace.spans} <= set(PHASES)
    assert {span[4] for span in trace.spans} >= {"lock", "commit"}

    summary = result.perf_summary()
    assert summary["trace"]["spans"] == len(trace.spans)
    rows = summary["exemplars"]
    assert set(rows) == {"home-0", "home-1"}
    for tenant_rows in rows.values():
        # slowest-first, each attributed to a phase on the critical path
        latencies = [row["latency_us"] for row in tenant_rows]
        assert latencies == sorted(latencies, reverse=True)
        assert all(row["dominant_phase"] in PHASES for row in tenant_rows)


def test_tracing_does_not_perturb_the_sim():
    def digest(result):
        metrics = result.metrics
        return (metrics.commits, metrics.aborts, metrics.attempts,
                metrics.events_processed, result.end_time)

    assert digest(run_bank()) == digest(run_bank(trace=True))


def test_sampling_traces_a_subset():
    full = run_bank(trace=True).metrics.trace
    sampled = run_bank(trace=True, trace_sample=4).metrics.trace
    n_full = full.summary()["traces"]
    n_sampled = sampled.summary()["traces"]
    assert 0 < n_sampled < n_full


def test_trace_out_writes_perfetto_json(tmp_path):
    path = tmp_path / "run.trace.json"
    result = run_bank(trace=True, trace_out=str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == len(result.metrics.trace.spans)
    event = doc["traceEvents"][0]
    assert event["ph"] == "X" and event["name"] in PHASES
    assert doc["otherData"]["dropped_spans"] == 0


def test_open_loop_exemplars_are_per_tenant():
    # conflict-aware admission defers hot-key arrivals, so this cell
    # also exercises the queue_wait span (fifo admits at the arrival
    # instant and legitimately records no waiting)
    result = run_bank(trace=True, arrivals="tenants",
                      offered_load=400_000.0, horizon_us=4_000.0,
                      scheduler="conflict")
    trace = result.metrics.trace
    assert trace is not None and trace.exemplars
    # open-loop exemplars key by traffic tenant, not by home engine
    assert not any(t.startswith("home-") for t in trace.exemplars)
    phases = {span[4] for span in trace.spans}
    assert "queue_wait" in phases
