"""Unit tests for the health watchdog: rules, latching, abort."""

import pytest

from repro.obs import (HealthRule, HealthWatchdog, TimelineSample,
                       WatchdogAbort, default_rules)


INTERVAL = 100.0


def row(t_us, server=0, counters=None, gauges=None, tenants=None,
        final=False):
    return TimelineSample(t_us=t_us, server=server,
                          counters=counters or {}, gauges=gauges or {},
                          tenants=tenants or {}, final=final)


def watchdog(*rules, abort=False):
    return HealthWatchdog(rules=rules or None, interval_us=INTERVAL,
                          abort=abort)


def feed(dog, rows_by_tick, at_us=None):
    """Ingest + evaluate one interval at a time; returns all events."""
    fired = []
    for i, rows in enumerate(rows_by_tick):
        now = INTERVAL * (i + 1)
        dog.ingest(rows, at_us=at_us)
        fired.extend(dog.evaluate(now))
    return fired


# -- stall ------------------------------------------------------------------

def test_stall_fires_after_window_intervals_without_progress():
    dog = watchdog(HealthRule("stall", 0.0, window=3))
    busy = {"admitted": 4.0, "completed": 4.0}
    stuck = {"admitted": 4.0}
    ticks = [[row(INTERVAL * (i + 1), counters=busy if i < 2 else stuck)]
             for i in range(5)]
    events = feed(dog, ticks)
    assert [e.kind for e in events] == ["stall"]
    assert events[0].server == 0
    # detection latency is bounded by the rule window
    assert events[0].t_us == INTERVAL * 5


def test_idle_is_not_a_stall():
    dog = watchdog(HealthRule("stall", 0.0, window=3))
    idle = [[row(INTERVAL * (i + 1))] for i in range(5)]
    assert feed(dog, idle) == []


def test_a_held_queue_with_no_progress_is_a_stall():
    dog = watchdog(HealthRule("stall", 0.0, window=2))
    ticks = [[row(INTERVAL * (i + 1), gauges={"queue_depth": 3.0})]
             for i in range(3)]
    events = feed(dog, ticks)
    assert [e.kind for e in events] == ["stall"]


def test_silence_is_a_stall():
    dog = watchdog(HealthRule("stall", 0.0, window=3))
    dog.ingest([row(INTERVAL, counters={"admitted": 1.0,
                                        "completed": 1.0})])
    assert dog.evaluate(INTERVAL) == []
    # the server ships nothing for >= window intervals
    events = dog.evaluate(INTERVAL * 4)
    assert [e.kind for e in events] == ["stall"]
    assert "silent" in events[0].message


def test_a_finished_server_is_retired_from_silence_detection():
    dog = watchdog(HealthRule("stall", 0.0, window=3))
    dog.ingest([row(INTERVAL, final=True)])
    assert dog.evaluate(INTERVAL * 10) == []


def test_ingest_at_us_overrides_row_clocks():
    # the mp parent stamps last-seen with its own clock: worker sample
    # timestamps start after the build phase, so trusting them would
    # read the whole build time as silence
    dog = watchdog(HealthRule("stall", 0.0, window=3))
    parent_now = 5_000.0
    dog.ingest([row(INTERVAL, counters={"admitted": 1.0,
                                        "completed": 1.0})],
               at_us=parent_now)
    assert dog.evaluate(parent_now) == []
    assert dog.evaluate(parent_now + INTERVAL * 2) == []
    events = dog.evaluate(parent_now + INTERVAL * 3)
    assert [e.kind for e in events] == ["stall"]


# -- queue saturation -------------------------------------------------------

def test_queue_saturation_needs_a_full_window():
    dog = watchdog(HealthRule("queue_saturation", 8.0, window=3))
    deep = {"queue_depth": 9.0}
    ticks = [[row(INTERVAL * (i + 1), gauges=deep)] for i in range(3)]
    events = feed(dog, ticks)
    assert [e.kind for e in events] == ["queue_saturation"]
    assert events[0].value == 9.0


def test_one_shallow_sample_resets_saturation():
    dog = watchdog(HealthRule("queue_saturation", 8.0, window=3))
    depths = [9.0, 9.0, 2.0, 9.0, 9.0]
    ticks = [[row(INTERVAL * (i + 1), gauges={"queue_depth": d})]
             for i, d in enumerate(depths)]
    assert feed(dog, ticks) == []


# -- SLO burn ---------------------------------------------------------------

def test_slo_burn_pools_tenant_counters_across_servers():
    dog = watchdog(HealthRule("slo_burn", 0.5, window=2))
    ticks = [
        [row(INTERVAL * (i + 1), server=s,
             tenants={"gold": {"scheduled": 10.0, "in_slo": 2.0}})
         for s in (0, 1)]
        for i in range(2)
    ]
    events = feed(dog, ticks)
    assert [e.kind for e in events] == ["slo_burn"]
    assert events[0].server == -1
    assert events[0].value == pytest.approx(0.2)
    assert "gold" in events[0].message


def test_slo_burn_scopes_by_tenant_substring():
    dog = watchdog(HealthRule("slo_burn", 0.5, window=2, tenant="gold"))
    ticks = [
        [row(INTERVAL * (i + 1),
             tenants={"bronze": {"scheduled": 10.0, "in_slo": 0.0}})]
        for i in range(3)
    ]
    assert feed(dog, ticks) == []


# -- cluster counters -------------------------------------------------------

def test_leader_flap_counts_failovers_in_the_window():
    dog = watchdog(HealthRule("leader_flap", 1.0, window=3))
    ticks = [[row(INTERVAL * (i + 1),
                  counters={"controller_failovers": 1.0} if i == 1
                  else {})]
             for i in range(3)]
    events = feed(dog, ticks)
    assert [e.kind for e in events] == ["leader_flap"]
    assert events[0].server == -1


def test_restart_storm_needs_threshold_restarts():
    dog = watchdog(HealthRule("restart_storm", 2.0, window=3))
    one = [[row(INTERVAL, counters={"recoveries": 1.0})]]
    assert feed(dog, one) == []
    dog2 = watchdog(HealthRule("restart_storm", 2.0, window=3))
    two = [[row(INTERVAL, counters={"recoveries": 2.0})]]
    assert [e.kind for e in feed(dog2, two)] == ["restart_storm"]


# -- mechanics --------------------------------------------------------------

def test_events_latch_once_per_incident_and_rearm():
    dog = watchdog(HealthRule("queue_saturation", 8.0, window=1))
    depths = [9.0, 9.0, 1.0, 9.0]
    ticks = [[row(INTERVAL * (i + 1), gauges={"queue_depth": d})]
             for i, d in enumerate(depths)]
    events = feed(dog, ticks)
    # two incidents (interval 1 and 4), not three firing intervals
    assert len(events) == 2
    assert dog.summary()[0]["kind"] == "queue_saturation"


def test_fatal_rule_with_abort_raises_watchdog_abort():
    dog = watchdog(HealthRule("stall", 0.0, window=1, fatal=True),
                   abort=True)
    dog.ingest([row(INTERVAL, counters={"admitted": 2.0})])
    with pytest.raises(WatchdogAbort) as err:
        dog.evaluate(INTERVAL)
    assert err.value.event.kind == "stall"
    # harvest-time evaluation never aborts
    dog2 = watchdog(HealthRule("stall", 0.0, window=1, fatal=True),
                    abort=True)
    dog2.ingest([row(INTERVAL, counters={"admitted": 2.0})])
    assert dog2.evaluate(INTERVAL, allow_abort=False)


def test_unknown_rule_kind_is_rejected():
    dog = watchdog(HealthRule("made_up", 1.0))
    with pytest.raises(ValueError, match="made_up"):
        dog.evaluate(INTERVAL)


def test_default_rules_cover_the_stock_kinds():
    kinds = {rule.kind for rule in default_rules()}
    assert kinds == {"stall", "queue_saturation", "slo_burn",
                     "leader_flap", "restart_storm"}
    assert any(rule.fatal for rule in default_rules())
