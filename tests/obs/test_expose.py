"""Unit tests for exposition: Prometheus text, CSV, sparklines, HTTP."""

import urllib.error
import urllib.request

from repro.obs import (HealthEvent, MetricsHttpServer, Timeline,
                       TimelineSample, render_watch, sparkline,
                       timeline_csv, to_prometheus)


def sample_timeline():
    tl = Timeline(100.0)
    tl.add(TimelineSample(
        t_us=100.0, server=0,
        counters={"commits": 5, "aborts": 1,
                  "aborts.lock_conflict": 1, "wire_bytes": 640},
        gauges={"queue_depth": 2.0},
        tenants={"gold": {"scheduled": 4, "in_slo": 3}}))
    tl.add(TimelineSample(t_us=100.0, server=1,
                          counters={"completed": 3},
                          gauges={"queue_depth": 0.0}))
    tl.add(TimelineSample(t_us=200.0, server=0,
                          counters={"commits": 2},
                          gauges={"queue_depth": 1.0}))
    return tl


def event(kind="stall"):
    return HealthEvent(kind=kind, t_us=200.0, server=0, value=0.0,
                       threshold=0.0, message=f"{kind} happened")


# -- Prometheus -------------------------------------------------------------

def test_prometheus_counters_sum_per_server():
    text = to_prometheus(sample_timeline())
    assert 'repro_commits_total{server="0"} 7' in text
    assert 'repro_completed_total{server="1"} 3' in text
    assert "# TYPE repro_commits_total counter" in text


def test_prometheus_dotted_keys_become_reason_labels():
    text = to_prometheus(sample_timeline())
    assert ('repro_aborts_by_reason_total{server="0",'
            'reason="lock_conflict"} 1') in text


def test_prometheus_gauges_report_the_last_value():
    text = to_prometheus(sample_timeline())
    assert 'repro_queue_depth{server="0"} 1' in text
    assert 'repro_queue_depth{server="1"} 0' in text


def test_prometheus_tenants_and_health():
    text = to_prometheus(sample_timeline(), health=[event()])
    assert 'repro_tenant_scheduled_total{tenant="gold"} 4' in text
    assert 'repro_health_events_total{kind="stall"} 1' in text
    empty = to_prometheus(sample_timeline())
    assert 'repro_health_events_total{kind="none"} 0' in empty


def test_prometheus_ends_with_newline_and_sane_names():
    text = to_prometheus(sample_timeline())
    assert text.endswith("\n")
    for line in text.splitlines():
        if line and not line.startswith("#"):
            name = line.split("{")[0].split(" ")[0]
            assert name.replace("_", "").isalnum(), name


# -- CSV --------------------------------------------------------------------

def test_csv_is_wide_with_stable_sorted_columns():
    lines = timeline_csv(sample_timeline()).splitlines()
    header = lines[0].split(",")
    assert header[:3] == ["t_us", "server", "gen"]
    # counter, gauge, and tenant column blocks are each sorted
    counters = [h for h in header if h in
                ("aborts", "aborts.lock_conflict", "commits",
                 "completed", "wire_bytes")]
    assert counters == sorted(counters)
    assert "commits" in header and "queue_depth" in header
    assert "gold/scheduled" in header
    assert len(lines) == 4  # header + three samples
    first = dict(zip(header, lines[1].split(",")))
    assert first["server"] == "0" and first["commits"] == "5"
    # absent columns render as 0, keeping every row the same width
    second = dict(zip(header, lines[2].split(",")))
    assert second["server"] == "1" and second["commits"] == "0"


# -- sparklines / --watch ---------------------------------------------------

def test_sparkline_spans_the_block_alphabet():
    art = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert art[0] == "▁" and art[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([0, 0, 0]) == "▁▁▁"
    # scaled against the series peak, so a flat series reads full
    assert sparkline([5, 5, 5]) == "███"


def test_render_watch_shows_series_and_health():
    out = render_watch(sample_timeline(), health=[event()])
    assert "commits" in out and "queue_depth" in out
    assert "stall happened" in out
    assert "peak 5" in out


# -- HTTP endpoint ----------------------------------------------------------

def test_http_server_scrapes_prometheus_text():
    tl = sample_timeline()
    server = MetricsHttpServer(0, lambda: to_prometheus(tl))
    server.start()
    try:
        assert server.port != 0  # rebound to the ephemeral port
        with urllib.request.urlopen(server.url, timeout=5) as response:
            body = response.read().decode()
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
        assert 'repro_commits_total{server="0"} 7' in body
    finally:
        server.stop()


def test_http_server_404s_other_paths():
    server = MetricsHttpServer(0, lambda: "x 1\n")
    server.start()
    try:
        try:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/other", timeout=5)
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as err:
            assert err.code == 404
    finally:
        server.stop()
