"""Unit tests for the span tracer: rings, sampling, merge, export."""

import json

from repro.obs import (NOOP_TRACER, PHASES, VERB_PHASES, SpanRing,
                       TraceData, Tracer, critical_path, exemplar_summary,
                       to_trace_events, trace_tree, write_trace_json)
from repro.obs.tracer import TRACE_HOME_SHIFT


def span(trace, server=0, phase="lock", t0=0.0, t1=1.0, outcome="ok",
         txn_id=7, attempt=0):
    return (trace, txn_id, attempt, server, phase, t0, t1, outcome)


# -- SpanRing ---------------------------------------------------------------

def test_ring_rounds_capacity_to_power_of_two():
    assert SpanRing(5).mask == 7
    assert SpanRing(8).mask == 7
    assert SpanRing(1).mask == 0


def test_ring_keeps_newest_on_overflow():
    ring = SpanRing(4)
    for i in range(10):
        ring.push(span(1, t0=float(i)))
    assert ring.n == 10
    assert ring.dropped == 6
    # oldest-first order of the surviving (newest) four
    assert [s[5] for s in ring.spans()] == [6.0, 7.0, 8.0, 9.0]


def test_ring_under_capacity_preserves_order():
    ring = SpanRing(8)
    for i in range(3):
        ring.push(span(1, t0=float(i)))
    assert ring.dropped == 0
    assert [s[5] for s in ring.spans()] == [0.0, 1.0, 2.0]


# -- Tracer -----------------------------------------------------------------

def test_trace_ids_encode_home_and_are_never_zero():
    tracer = Tracer()
    first = tracer.new_trace(home=3)
    second = tracer.new_trace(home=3)
    assert first != 0 and second != 0 and first != second
    assert first >> TRACE_HOME_SHIFT == 4  # home + 1: home 0 stays nonzero
    assert Tracer().new_trace(home=0) >> TRACE_HOME_SHIFT == 1


def test_sampling_is_deterministic():
    a = Tracer(sample_every=3)
    b = Tracer(sample_every=3)
    picks_a = [a.new_trace(0) != 0 for _ in range(9)]
    picks_b = [b.new_trace(0) != 0 for _ in range(9)]
    assert picks_a == picks_b
    assert sum(picks_a) == 3


def test_span_with_zero_trace_is_dropped():
    tracer = Tracer()
    tracer.span(0, 1, 0, 0, "lock", 0.0, 1.0)
    assert tracer.harvest().spans == []


def test_spans_route_to_per_server_rings():
    tracer = Tracer()
    trace = tracer.new_trace(0)
    tracer.span(trace, 1, 0, 2, "lock", 0.0, 1.0)
    tracer.span(trace, 1, 0, 0, "commit", 1.0, 2.0)
    data = tracer.harvest()
    # harvest drains rings in server order
    assert [s[3] for s in data.spans] == [0, 2]
    assert tracer.harvest().spans == []  # drained


def test_exemplars_keep_slowest_k_per_tenant():
    tracer = Tracer(exemplar_k=2)
    for latency in (10.0, 50.0, 30.0, 40.0):
        tracer.exemplar("gold", tracer.new_trace(0), latency)
    data = tracer.harvest()
    assert [lat for lat, _ in data.exemplars["gold"]] == [50.0, 40.0]


def test_noop_tracer_records_nothing():
    assert NOOP_TRACER.enabled is False
    assert NOOP_TRACER.new_trace(0) == 0
    NOOP_TRACER.span(1, 1, 0, 0, "lock", 0.0, 1.0)
    NOOP_TRACER.exemplar("t", 1, 5.0)
    assert NOOP_TRACER.harvest().spans == []


def test_verb_phases_name_known_phases():
    assert set(VERB_PHASES.values()) <= set(PHASES)


# -- TraceData merge --------------------------------------------------------

def test_merge_concatenates_spans_and_truncates_exemplars():
    a = TraceData(spans=[span(1)], dropped=2, exemplar_k=2)
    a.exemplars["gold"] = [(50.0, 1), (20.0, 2)]
    b = TraceData(spans=[span(2)], dropped=1, exemplar_k=2)
    b.exemplars["gold"] = [(40.0, 3)]
    b.exemplars["free"] = [(9.0, 4)]
    a.merge_from(b)
    assert len(a.spans) == 2
    assert a.dropped == 3
    assert a.exemplars["gold"] == [(50.0, 1), (40.0, 3)]  # 20.0 evicted
    assert a.exemplars["free"] == [(9.0, 4)]
    assert a.summary() == {"spans": 2, "dropped": 3,
                           "dropped_spans": 3, "traces": 2}


# -- export -----------------------------------------------------------------

def test_trace_tree_groups_and_orders():
    spans = [span(2, t0=5.0, t1=6.0), span(1, t0=1.0, t1=3.0),
             span(1, t0=0.0, t1=4.0, phase="commit")]
    tree = trace_tree(spans)
    assert set(tree) == {1, 2}
    assert [s[5] for s in tree[1]] == [0.0, 1.0]


def test_critical_path_finds_dominant_phase():
    spans = [span(1, phase="lock", t0=0.0, t1=10.0),
             span(1, phase="lock", t0=10.0, t1=15.0, server=1),
             span(1, phase="commit", t0=15.0, t1=17.0)]
    path = critical_path(spans)
    assert path["dominant_phase"] == "lock"
    assert path["phases"]["lock"] == 15.0
    assert path["span_count"] == 3
    assert path["servers"] == [0, 1]


def test_exemplar_summary_attributes_latency():
    data = TraceData(spans=[span(1, phase="replicate", t0=0.0, t1=9.0),
                            span(1, phase="commit", t0=9.0, t1=10.0)])
    data.exemplars["gold"] = [(10.0, 1)]
    rows = exemplar_summary(data)
    assert rows["gold"][0]["latency_us"] == 10.0
    assert rows["gold"][0]["dominant_phase"] == "replicate"


def test_chrome_trace_export_shape(tmp_path):
    data = TraceData(spans=[span(1, t0=2.0, t1=5.0)], dropped=1)
    events = to_trace_events(data.spans)
    assert events[0]["ph"] == "X"
    assert events[0]["ts"] == 2.0 and events[0]["dur"] == 3.0
    assert events[0]["pid"] == 0 and events[0]["tid"] == 1

    path = tmp_path / "trace.json"
    write_trace_json(data, str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == 1
    assert doc["otherData"]["dropped_spans"] == 1
