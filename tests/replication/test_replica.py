"""Tests for replica placement and write application."""

import pytest

from repro.replication import ReplicaManager, ReplicaWrite
from repro.storage import TableSpec

TABLES = [TableSpec("t", n_buckets=64)]


def test_chained_placement_avoids_self():
    manager = ReplicaManager(4, 2, TABLES)
    assert manager.replica_servers(0) == [1, 2]
    assert manager.replica_servers(3) == [0, 1]
    for partition in range(4):
        assert partition not in manager.replica_servers(partition)


def test_replication_degree_zero():
    manager = ReplicaManager(3, 0, TABLES)
    assert manager.replica_servers(1) == []


def test_too_many_replicas_rejected():
    with pytest.raises(ValueError):
        ReplicaManager(2, 2, TABLES)
    with pytest.raises(ValueError):
        ReplicaManager(3, -1, TABLES)


def test_load_seeds_all_replicas():
    manager = ReplicaManager(3, 2, TABLES)
    manager.load(0, "t", 1, {"v": 10})
    for server in manager.replica_servers(0):
        assert manager.store_on(server, 0).read("t", 1)[0] == {"v": 10}


def test_apply_update_insert_delete():
    manager = ReplicaManager(3, 1, TABLES)
    manager.load(0, "t", 1, {"v": 1})
    server = manager.replica_servers(0)[0]
    manager.apply(server, 0, [ReplicaWrite("update", "t", 1, {"v": 2})])
    assert manager.store_on(server, 0).read("t", 1)[0] == {"v": 2}
    manager.apply(server, 0, [ReplicaWrite("insert", "t", 2, {"v": 9})])
    assert manager.store_on(server, 0).read("t", 2)[0] == {"v": 9}
    manager.apply(server, 0, [ReplicaWrite("delete", "t", 1)])
    assert manager.store_on(server, 0).read("t", 1) is None


def test_apply_update_upserts_when_insert_missed():
    manager = ReplicaManager(3, 1, TABLES)
    server = manager.replica_servers(0)[0]
    manager.apply(server, 0, [ReplicaWrite("update", "t", 7, {"v": 3})])
    assert manager.store_on(server, 0).read("t", 7)[0] == {"v": 3}


def test_apply_unknown_kind_rejected():
    manager = ReplicaManager(3, 1, TABLES)
    server = manager.replica_servers(0)[0]
    with pytest.raises(ValueError):
        manager.apply(server, 0, [ReplicaWrite("upsert", "t", 1, {})])


def test_applied_counts_tracked():
    manager = ReplicaManager(3, 1, TABLES)
    server = manager.replica_servers(0)[0]
    manager.apply(server, 0, [ReplicaWrite("insert", "t", 1, {"v": 1})])
    manager.apply(server, 0, [ReplicaWrite("update", "t", 1, {"v": 2})])
    assert manager.applied_counts[(server, 0)] == 2


def test_in_order_application_last_writer_wins():
    """Sequential write-sets must land in order (the FIFO property the
    inner-region protocol relies on)."""
    manager = ReplicaManager(3, 1, TABLES)
    manager.load(0, "t", 1, {"v": 0})
    server = manager.replica_servers(0)[0]
    for i in range(1, 50):
        manager.apply(server, 0, [ReplicaWrite("update", "t", 1,
                                               {"v": i})])
    assert manager.store_on(server, 0).read("t", 1)[0] == {"v": 49}
