"""Protocol-level tests of the Fig. 6 inner-region replication.

Checks the *ordering* guarantees the paper's design rests on: the inner
host commits before replicas apply; replicas ack the coordinator (not
the inner host); the coordinator's outer commit happens only after all
acks; back-to-back inner regions on the same partition replicate in
order.
"""

import pytest

from repro.analysis import ProcedureRegistry
from repro.core import ChillerExecutor, HotRecordTable
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, HistoryRecorder, TxnRequest
from repro.workloads.bank import BankWorkload


def make_db(n_partitions=3, n_replicas=1, hot_accounts=(0, 1)):
    workload = BankWorkload(n_accounts=30)
    cluster = Cluster(n_partitions)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    scheme = HashScheme(n_partitions)
    db = Database(cluster, Catalog(n_partitions, scheme),
                  workload.tables(), registry, n_replicas=n_replicas)
    workload.populate(db.loader())
    hot = HotRecordTable(
        {("accounts", a): scheme.partition_of("accounts", a)
         for a in hot_accounts})
    executor = ChillerExecutor(db, hot, history=HistoryRecorder())
    return db, cluster, executor, scheme


def remote_home(db, acct):
    pid = db.partition_of("accounts", acct)
    return (pid + 1) % db.n_partitions


def test_acks_gate_the_outer_commit():
    """Timeline assertion: every replica of the inner partition applies
    the inner writes strictly before the coordinator's outer commit."""
    db, cluster, executor, scheme = make_db()
    src = 0  # hot -> inner region
    dst = next(a for a in range(2, 30)
               if db.partition_of("accounts", a)
               != db.partition_of("accounts", src))
    home = remote_home(db, src)

    replica_apply_times = []
    original_apply = db.replicas.apply

    def tracking_apply(server, partition, writes):
        original_apply(server, partition, writes)
        replica_apply_times.append(cluster.sim.now)

    db.replicas.apply = tracking_apply

    outer_commit_times = []
    dst_pid = db.partition_of("accounts", dst)
    dst_store = db.store(dst_pid)
    original_write = dst_store.write

    def tracking_write(table, key, updates):
        outer_commit_times.append(cluster.sim.now)
        return original_write(table, key, updates)

    dst_store.write = tracking_write

    outcomes = []
    request = TxnRequest("transfer",
                         {"src": src, "dst": dst, "amount": 5.0},
                         home=home)
    cluster.engine(home).spawn(executor.execute(request), outcomes.append)
    cluster.run()

    assert outcomes[0].committed
    assert outcomes[0].used_two_region
    assert replica_apply_times, "inner region must have replicated"
    assert outer_commit_times, "outer region must have committed"
    assert max(replica_apply_times) <= min(outer_commit_times), (
        "outer commit must wait for all inner-replica acks")


def test_inner_host_commits_before_replicas_apply():
    db, cluster, executor, scheme = make_db()
    src = 0
    dst = next(a for a in range(2, 30)
               if db.partition_of("accounts", a)
               != db.partition_of("accounts", src))
    home = remote_home(db, src)
    src_pid = db.partition_of("accounts", src)

    primary_commit_times = []
    src_store = db.store(src_pid)
    original_write = src_store.write

    def tracking_write(table, key, updates):
        primary_commit_times.append(cluster.sim.now)
        return original_write(table, key, updates)

    src_store.write = tracking_write

    replica_apply_times = []
    original_apply = db.replicas.apply

    def tracking_apply(server, partition, writes):
        original_apply(server, partition, writes)
        replica_apply_times.append(cluster.sim.now)

    db.replicas.apply = tracking_apply

    outcomes = []
    request = TxnRequest("transfer",
                         {"src": src, "dst": dst, "amount": 5.0},
                         home=home)
    cluster.engine(home).spawn(executor.execute(request), outcomes.append)
    cluster.run()

    assert outcomes[0].committed
    assert primary_commit_times and replica_apply_times
    assert max(primary_commit_times) < min(replica_apply_times), (
        "the inner host commits first, replication follows (Fig. 6)")


def test_sequential_inner_regions_replicate_in_order():
    """Back-to-back transactions through the same inner host must reach
    replicas in commit order (FIFO channels = RDMA queue pairs)."""
    db, cluster, executor, scheme = make_db()
    src = 0
    src_pid = db.partition_of("accounts", src)
    home = remote_home(db, src)
    dsts = [a for a in range(2, 30)
            if db.partition_of("accounts", a) != src_pid][:5]

    outcomes = []

    def driver():
        for dst in dsts:
            request = TxnRequest("transfer",
                                 {"src": src, "dst": dst, "amount": 1.0},
                                 home=home)
            outcome = yield from executor.execute(request)
            outcomes.append(outcome)

    cluster.engine(home).spawn(driver())
    cluster.run()
    assert all(o.committed for o in outcomes)
    primary = db.store(src_pid).read("accounts", src)[0]["balance"]
    for rserver in db.replicas.replica_servers(src_pid):
        replica = db.replicas.store_on(rserver, src_pid)
        assert replica.read("accounts", src)[0]["balance"] == (
            pytest.approx(primary))


def test_without_replication_no_acks_are_awaited():
    db, cluster, executor, scheme = make_db(n_replicas=0)
    src, home = 0, remote_home(db, 0)
    dst = next(a for a in range(2, 30)
               if db.partition_of("accounts", a)
               != db.partition_of("accounts", src))
    outcomes = []
    request = TxnRequest("transfer",
                         {"src": src, "dst": dst, "amount": 5.0},
                         home=home)
    cluster.engine(home).spawn(executor.execute(request), outcomes.append)
    cluster.run()
    assert outcomes[0].committed
    assert executor._pending_acks == {}
