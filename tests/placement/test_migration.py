"""Live migration on the deterministic simulator.

The headline property: **a migrating record never loses a committed
write**.  The migration transaction holds the record's exclusive lock
from source-lock to source-delete, so concurrent writers either land
before the value is shipped (and ship with it), abort on the lock
conflict, or commit at the new home after the flip; the counter
invariant at the end of the concurrency test is exactly the number of
committed writes, however the race interleaved.
"""

from repro._util import make_rng
from repro.bench.conformance import (MIGRATION_HOT_KEY, build_conformance_run,
                                     build_migration_conformance_run,
                                     conformance_config)
from repro.bench.metrics import APP_ABORTS
from repro.placement import MigrationExecutor, PlacementSpec, PlacementStats
from repro.sim import Sleep
from repro.txn.common import AbortReason, TxnRequest

HOT = MIGRATION_HOT_KEY


def build_sim_run():
    return build_migration_conformance_run(conformance_config("sim"))


def make_migrator(run):
    stats = PlacementStats(placement="adaptive")
    return MigrationExecutor(run.database, 0,
                             PlacementSpec(kind="adaptive"), stats), stats


def drive(run, gen):
    results = []
    run.database.cluster.engine(0).spawn(
        gen, on_done=lambda value: results.append(value))
    run.database.cluster.run()
    return results


def test_migrate_moves_record_flips_routing_and_replicas():
    run = build_sim_run()
    db = run.database
    migrator, stats = make_migrator(run)
    src = db.partition_of("usertable", HOT)
    dst = (src + 1) % db.n_partitions
    before, _v = db.store(src).read("usertable", HOT)

    (moved,) = drive(run, migrator.migrate("usertable", HOT, dst, epoch=1))
    assert moved and stats.moves_applied == 1

    # storage: value at the new home, source clean
    assert db.store(src).read("usertable", HOT) is None
    after, _v = db.store(dst).read("usertable", HOT)
    assert after == before
    assert not db.store(src).is_locked("usertable", HOT)

    # routing: flipped, epoch-versioned, history answers old epochs
    assert db.partition_of("usertable", HOT) == dst
    assert db.placement_epoch() == 1
    assert db.moved_since("usertable", HOT, 0)
    assert not db.moved_since("usertable", HOT, 1)
    table = db.catalog.scheme.table
    assert table.partition_as_of("usertable", HOT, 0) is None  # pre-move
    assert table.partition_as_of("usertable", HOT, 1) == dst

    # replicas followed the record
    for rserver in db.replicas.replica_servers(dst):
        copied, _v = db.replicas.store_on(rserver, dst).read("usertable",
                                                             HOT)
        assert copied == before
    for rserver in db.replicas.replica_servers(src):
        assert db.replicas.store_on(rserver, src).read("usertable",
                                                       HOT) is None


def test_locked_record_is_skipped_not_waited_on():
    run = build_sim_run()
    db = run.database
    migrator, stats = make_migrator(run)
    src = db.partition_of("usertable", HOT)
    from repro.storage import LockMode
    assert db.store(src).try_lock("usertable", HOT, LockMode.EXCLUSIVE,
                                  owner="live-txn")

    (moved,) = drive(run, migrator.migrate(
        "usertable", HOT, (src + 1) % db.n_partitions, epoch=1))
    assert not moved
    assert stats.moves_conflicted == 1 and stats.moves_applied == 0
    assert db.partition_of("usertable", HOT) == src
    assert db.placement_epoch() == 0


def test_missing_record_is_skipped_without_leaking_its_lock():
    run = build_sim_run()
    db = run.database
    migrator, stats = make_migrator(run)
    pid = db.partition_of("usertable", 9_999)
    (moved,) = drive(run, migrator.migrate(
        "usertable", 9_999, (pid + 1) % db.n_partitions, epoch=1))
    assert not moved
    assert stats.moves_missing == 1
    assert not db.store(pid).is_locked("usertable", 9_999)


def test_migrated_aborts_are_retryable_and_classified():
    assert AbortReason.MIGRATED not in APP_ABORTS
    run = build_sim_run()
    db = run.database
    migrator, _stats = make_migrator(run)
    src = db.partition_of("usertable", HOT)
    drive(run, migrator.migrate("usertable", HOT,
                                (src + 1) % db.n_partitions, epoch=1))
    # a miss on the moved record by an epoch-0 transaction is MIGRATED;
    # a miss on a record that never existed stays READ_MISS
    assert db.moved_since("usertable", HOT, 0)
    assert not db.moved_since("usertable", 9_999, 0)


def test_concurrent_writers_never_lose_a_committed_write():
    """Writers hammer the hot key while it ping-pongs between
    partitions; the final counter equals the committed writes."""
    run = build_sim_run()
    db = run.database
    executor = run.executor
    migrator, stats = make_migrator(run)
    outcomes = []

    def writer(home: int, slot: int):
        rng = make_rng(31, "writer", home, slot)
        for i in range(30):
            cold = 20 + (home * 97 + slot * 31 + i) % 40
            outcome = yield from executor.execute(TxnRequest(
                "ycsb", {"read_keys": [cold], "write_keys": [HOT]},
                home=home))
            outcomes.append(outcome)
            yield Sleep(rng.uniform(2.0, 12.0))

    def ping_pong():
        applied, epoch = 0, 1
        while applied < 4 and epoch < 60:
            yield Sleep(9.0)  # NO_WAIT: keep retrying into lock gaps
            current = db.partition_of("usertable", HOT)
            moved = yield from migrator.migrate(
                "usertable", HOT, (current + 1) % db.n_partitions,
                epoch=epoch)
            epoch += 1
            if moved:
                applied += 1

    cluster = db.cluster
    for home in range(db.n_partitions):
        for slot in range(2):
            cluster.engine(home).spawn(writer(home, slot))
    cluster.engine(0).spawn(ping_pong())
    cluster.run()

    assert stats.moves_applied >= 2, "the race must actually happen"
    commits = sum(1 for o in outcomes if o.committed)
    assert commits > 0
    home = db.partition_of("usertable", HOT)
    fields, _version = db.store(home).read("usertable", HOT)
    assert fields["counter"] == commits, (
        f"{commits} committed writes but the counter shows "
        f"{fields['counter']}: a write was lost (or double-applied) "
        f"across {stats.moves_applied} migrations")
    # the record exists exactly once cluster-wide
    copies = [pid for pid in range(db.n_partitions)
              if db.store(pid).read("usertable", HOT) is not None]
    assert copies == [home]
    # every abort was a retryable race, never a phantom disappearance
    reasons = {o.reason for o in outcomes if not o.committed}
    assert reasons <= {AbortReason.LOCK_CONFLICT, AbortReason.MIGRATED}


def test_static_runs_never_classify_misses_as_migrated():
    run = build_conformance_run(conformance_config("sim"))
    db = run.database
    assert db.placement_epoch() == 0
    assert not db.moved_since("accounts", 1, 0)


def test_lease_failover_is_counted_when_holder_stops_renewing():
    """Deterministic leader-election handover on the simulator.

    Candidate 0 wins the lease and renews every epoch until its (short)
    horizon passes — the sim's stand-in for a dead worker's renewals
    stopping.  Once the TTL lapses, candidate 1's next bid is granted,
    and because earlier "held" replies disclosed who the leader was,
    the grant is counted as a controller failover.  Steady-state
    renewals must never count."""
    from types import SimpleNamespace

    from repro.placement import (MigrationExecutor, PlacementController,
                                 PlacementStats, lease_controller_loop)

    run = build_sim_run()
    db = run.database
    spec = PlacementSpec(kind="adaptive", epoch_us=1_000.0,
                         lease_ttl_us=2_500.0,
                         min_window_commits=10 ** 9)  # bid, never plan

    def candidate(worker_id: int, horizon_us: float):
        stats = PlacementStats(placement="adaptive")
        migrator = MigrationExecutor(db, 0, spec, stats)
        return lease_controller_loop(
            db, {}, spec, PlacementController(spec), migrator, stats,
            horizon_us, SimpleNamespace(worker_id=worker_id))

    cluster = db.cluster
    cluster.engine(0).spawn(candidate(0, horizon_us=5_000.0))
    cluster.engine(0).spawn(candidate(1, horizon_us=20_000.0))
    cluster.run()

    assert db.recovery.controller_failovers == 1
    holder, expires = db.leases[spec.controller_home]
    assert holder == 1 and expires > 5_000.0
