"""PlacementController: scattered co-access moves, co-located stays."""

from repro.core.stats import TxnSample
from repro.placement import (PlacementController, PlacementSpec,
                             as_placement_spec)
from repro.placement.telemetry import TelemetryWindow

import pytest


def window_from(samples, n_repeat=8, duration_us=1_000.0):
    """Repeat a footprint pattern into a telemetry window."""
    reads: dict = {}
    writes: dict = {}
    out = []
    for _ in range(n_repeat):
        for sample in samples:
            out.append(sample)
            for rid in sample.reads:
                reads[rid] = reads.get(rid, 0) + 1
            for rid in sample.writes:
                writes[rid] = writes.get(rid, 0) + 1
    return TelemetryWindow(0.0, duration_us, tuple(out), reads, writes,
                           len(out))


def keyed(*keys):
    return tuple(("t", k) for k in keys)


def spec(**overrides):
    base = dict(kind="adaptive", min_gain=2.0, min_window_commits=4,
                max_moves_per_epoch=8)
    base.update(overrides)
    return PlacementSpec(**base)


def test_scattered_co_access_group_is_consolidated():
    """Records always accessed together but spread across partitions
    must be planned onto one partition."""
    group_a = window_from([
        TxnSample("p", reads=keyed(0, 1), writes=keyed(2, 3)),
        TxnSample("p", reads=keyed(10, 11), writes=keyed(12, 13)),
    ])
    placement = {("t", k): k % 2 for k in range(20)}  # maximally split
    controller = PlacementController(spec())
    plan = controller.plan(group_a, 2,
                           lambda table, key: placement[(table, key)],
                           epoch=1)
    assert plan.moves, "split co-access groups must trigger moves"
    # after applying the plan, each sampled transaction is local
    for move in plan.moves:
        placement[(move.table, move.key)] = move.dst
    for sample in group_a.samples:
        parts = {placement[rid] for rid in sample.records()}
        assert len(parts) == 1, f"{sample} still split across {parts}"


def test_co_located_traffic_is_never_churned():
    """The anti-churn rule: traffic that is already single-partition
    produces zero moves, whatever the fresh cut would prefer."""
    window = window_from([
        TxnSample("p", reads=keyed(0, 1), writes=keyed(2)),
        TxnSample("p", reads=keyed(10, 11), writes=keyed(12)),
    ])
    placement = {("t", k): 0 if k < 10 else 1 for k in range(20)}
    controller = PlacementController(spec())
    plan = controller.plan(window, 2,
                           lambda table, key: placement[(table, key)],
                           epoch=1)
    assert not plan.moves


def test_move_budget_is_bounded():
    samples = [TxnSample("p", reads=keyed(i, i + 100), writes=())
               for i in range(20)]
    placement = {}
    for i in range(20):
        placement[("t", i)] = 0
        placement[("t", i + 100)] = 1  # every sample is split
    controller = PlacementController(spec(max_moves_per_epoch=5))
    plan = controller.plan(window_from(samples), 2,
                           lambda table, key: placement[(table, key)],
                           epoch=1)
    assert 0 < len(plan.moves) <= 5
    gains = [move.gain for move in plan.moves]
    assert gains == sorted(gains, reverse=True)


def test_thin_windows_are_ignored():
    window = window_from([TxnSample("p", reads=keyed(0, 1), writes=())],
                         n_repeat=1)
    controller = PlacementController(spec(min_window_commits=16))
    plan = controller.plan(window, 2, lambda table, key: 0, epoch=1)
    assert not plan.moves


def test_as_placement_spec_normalizes():
    assert as_placement_spec(None).kind == "static"
    assert not as_placement_spec("static").adaptive
    assert as_placement_spec("adaptive").adaptive
    full = PlacementSpec(kind="adaptive", epoch_us=99.0)
    assert as_placement_spec(full) is full
    with pytest.raises(ValueError):
        as_placement_spec("dynamic")
