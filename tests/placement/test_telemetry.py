"""AccessTelemetry: observation, windows, merging, picklability."""

import pickle

from repro.placement import AccessTelemetry, TelemetryWindow
from repro.txn.common import Outcome


def committed(proc="ycsb", reads=(), writes=(), txn_id=1):
    return Outcome(txn_id=txn_id, proc=proc, committed=True,
                   read_set=tuple(reads), write_set=tuple(writes))


R1, R2, W1 = ("t", 1), ("t", 2), ("t", 3)


def test_observe_counts_reads_and_writes():
    telemetry = AccessTelemetry()
    telemetry.observe(committed(reads=[R1, R2], writes=[W1]), now=10.0)
    telemetry.observe(committed(reads=[R1], writes=[W1]), now=20.0)
    assert telemetry.read_counts == {R1: 2, R2: 1}
    assert telemetry.write_counts == {W1: 2}
    assert telemetry.commits_observed == 2
    assert len(telemetry.samples) == 2


def test_footprint_free_outcomes_are_ignored():
    telemetry = AccessTelemetry()
    telemetry.observe(committed(), now=1.0)
    assert telemetry.commits_observed == 0
    assert not telemetry.samples


def test_sample_cap_keeps_the_most_recent_footprints():
    telemetry = AccessTelemetry(max_samples=3)
    for i in range(10):
        telemetry.observe(committed(reads=[("t", i)]), now=float(i))
    assert len(telemetry.samples) == 3
    # counts still cover every commit
    assert telemetry.commits_observed == 10
    kept = {sample.reads[0] for sample in telemetry.samples}
    assert kept == {("t", 7), ("t", 8), ("t", 9)}


def test_sample_every_thins_samples_not_counts():
    telemetry = AccessTelemetry(sample_every=3)
    for i in range(9):
        telemetry.observe(committed(reads=[R1]), now=float(i))
    assert telemetry.commits_observed == 9
    assert telemetry.read_counts[R1] == 9
    assert len(telemetry.samples) == 3


def test_drain_snapshots_and_resets_the_window():
    telemetry = AccessTelemetry()
    telemetry.observe(committed(reads=[R1], writes=[W1]), now=5.0)
    window = telemetry.drain(now=100.0)
    assert isinstance(window, TelemetryWindow)
    assert window.start_us == 0.0 and window.end_us == 100.0
    assert window.commits_observed == 1
    assert window.read_counts == {R1: 1}
    # the collector is fresh, anchored at the drain instant
    assert telemetry.commits_observed == 0
    assert not telemetry.samples and not telemetry.read_counts
    assert telemetry.window_start_us == 100.0
    assert telemetry.commits_total == 1  # lifetime counter survives


def test_window_likelihoods_use_the_poisson_model():
    telemetry = AccessTelemetry()
    for i in range(50):
        telemetry.observe(committed(writes=[W1], reads=[R1]), now=float(i))
    window = telemetry.drain(now=1_000.0)
    likelihoods = window.likelihoods(lock_window_us=10.0)
    assert 0.0 < likelihoods[W1] < 1.0
    # a read-only record never conflicts with itself
    assert likelihoods[R1] == 0.0


def test_merge_and_pickle_round_trip():
    a = AccessTelemetry()
    b = AccessTelemetry()
    a.observe(committed(reads=[R1], writes=[W1]), now=1.0)
    b.observe(committed(reads=[R2], writes=[W1]), now=2.0)
    merged = AccessTelemetry.merged([a, b])
    assert merged.commits_observed == 2
    assert merged.write_counts == {W1: 2}
    assert merged.read_counts == {R1: 1, R2: 1}

    wired = pickle.loads(pickle.dumps(merged))
    assert wired.write_counts == merged.write_counts
    assert len(wired.samples) == len(merged.samples)


def test_merged_windows_combine_counts_and_span():
    w1 = TelemetryWindow(0.0, 50.0, (), {R1: 2}, {W1: 1}, 3)
    w2 = TelemetryWindow(10.0, 80.0, (), {R1: 1, R2: 4}, {}, 5)
    merged = TelemetryWindow.merged([w1, w2])
    assert merged.start_us == 0.0 and merged.end_us == 80.0
    assert merged.read_counts == {R1: 3, R2: 4}
    assert merged.commits_observed == 8
    assert merged.accesses(R1) == 3
