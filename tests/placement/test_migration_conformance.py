"""Migration conformance: one program, one decision sequence, everywhere.

The fixed program interleaves transactions with live record moves
(including a move *back* and a move of a missing record); every
backend — including real worker processes, where the flip RPC and the
shipped record value cross actual sockets — must produce the identical
decision trace and the identical final counter.
"""

import pytest

from repro.bench.conformance import run_migration_conformance


@pytest.mark.parametrize("executor", ["2pl", "occ"])
def test_migration_decisions_identical_across_backends(executor):
    sim = run_migration_conformance("sim", executor)
    assert any(kind == "migrate" and ok for kind, ok, _x in sim), \
        "the program must actually migrate"
    assert run_migration_conformance("aio", executor) == sim
    assert run_migration_conformance("mp", executor) == sim


def test_migration_program_commits_every_write_exactly_once():
    decisions = run_migration_conformance("sim", "2pl")
    committed_writes = 3  # hot-key writes the fixed program commits
    kind, counter, moves = decisions[-1]
    assert kind == "counter"
    assert counter == committed_writes
    assert moves == 2  # there and back again
    # the missing-record move skipped cleanly
    assert ("migrate_missing", False, None) in decisions
