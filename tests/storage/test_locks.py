"""Unit and property tests for the NO_WAIT lock word."""

import pytest
from hypothesis import given, strategies as st

from repro.storage import LockMode, LockWord


def test_shared_locks_are_compatible():
    lock = LockWord()
    assert lock.try_acquire(LockMode.SHARED, "t1")
    assert lock.try_acquire(LockMode.SHARED, "t2")
    assert lock.holders() == {"t1", "t2"}


def test_exclusive_blocks_shared():
    lock = LockWord()
    assert lock.try_acquire(LockMode.EXCLUSIVE, "t1")
    assert not lock.try_acquire(LockMode.SHARED, "t2")


def test_shared_blocks_exclusive():
    lock = LockWord()
    assert lock.try_acquire(LockMode.SHARED, "t1")
    assert not lock.try_acquire(LockMode.EXCLUSIVE, "t2")


def test_exclusive_blocks_exclusive():
    lock = LockWord()
    assert lock.try_acquire(LockMode.EXCLUSIVE, "t1")
    assert not lock.try_acquire(LockMode.EXCLUSIVE, "t2")


def test_reentrant_shared():
    lock = LockWord()
    assert lock.try_acquire(LockMode.SHARED, "t1")
    assert lock.try_acquire(LockMode.SHARED, "t1")
    lock.release("t1")
    assert lock.is_free()


def test_reentrant_exclusive():
    lock = LockWord()
    assert lock.try_acquire(LockMode.EXCLUSIVE, "t1")
    assert lock.try_acquire(LockMode.EXCLUSIVE, "t1")
    lock.release("t1")
    assert lock.is_free()


def test_exclusive_holder_may_request_shared():
    lock = LockWord()
    assert lock.try_acquire(LockMode.EXCLUSIVE, "t1")
    assert lock.try_acquire(LockMode.SHARED, "t1")
    assert lock.held_by("t1") == LockMode.EXCLUSIVE


def test_sole_shared_holder_upgrades():
    lock = LockWord()
    assert lock.try_acquire(LockMode.SHARED, "t1")
    assert lock.try_acquire(LockMode.EXCLUSIVE, "t1")
    assert lock.held_by("t1") == LockMode.EXCLUSIVE


def test_upgrade_fails_with_other_shared_holders():
    lock = LockWord()
    assert lock.try_acquire(LockMode.SHARED, "t1")
    assert lock.try_acquire(LockMode.SHARED, "t2")
    assert not lock.try_acquire(LockMode.EXCLUSIVE, "t1")
    # t1 keeps its shared lock after the failed upgrade
    assert lock.held_by("t1") == LockMode.SHARED


def test_release_frees_for_others():
    lock = LockWord()
    lock.try_acquire(LockMode.EXCLUSIVE, "t1")
    lock.release("t1")
    assert lock.try_acquire(LockMode.EXCLUSIVE, "t2")


def test_release_without_hold_raises():
    lock = LockWord()
    with pytest.raises(KeyError):
        lock.release("nobody")


def test_held_by_reports_mode():
    lock = LockWord()
    assert lock.held_by("t1") is None
    lock.try_acquire(LockMode.SHARED, "t1")
    assert lock.held_by("t1") == LockMode.SHARED


@given(st.lists(st.tuples(st.integers(0, 4),
                          st.sampled_from([LockMode.SHARED,
                                           LockMode.EXCLUSIVE]),
                          st.booleans()),
                max_size=60))
def test_lock_word_safety_invariant(ops):
    """Under any sequence of try/release, the X/S invariant holds:

    - at most one exclusive holder, and
    - never an exclusive holder concurrently with a *different* shared one.
    """
    lock = LockWord()
    held: dict[int, LockMode] = {}
    for owner, mode, do_release in ops:
        if do_release and owner in held:
            lock.release(owner)
            del held[owner]
        elif not do_release:
            if lock.try_acquire(mode, owner):
                prev = held.get(owner)
                if prev != LockMode.EXCLUSIVE:
                    held[owner] = mode
        exclusives = [o for o, m in held.items()
                      if m == LockMode.EXCLUSIVE]
        shareds = [o for o, m in held.items() if m == LockMode.SHARED]
        assert len(exclusives) <= 1
        if exclusives:
            assert all(s == exclusives[0] for s in shareds)
        # the lock word agrees with our model
        assert lock.holders() == set(held)
