"""Per-server write-ahead log tests (storage/wal.py).

The log is the commit FSM's durability substrate, so what matters is
byte-level: every record shape the FSM writes must round-trip through
``pack_record``/``unpack_record``, a torn tail (crash mid-append) must
be silently dropped rather than poison the replay, and the fsync
policy must match the mode (group commit batches, forced syncs don't).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.codec import pack_record, unpack_record
from repro.storage.wal import (R_DECISION, R_END, R_PREPARE,
                               ROLE_COORDINATOR, ROLE_INNER,
                               ROLE_PARTICIPANT, RecoveryStats, WalSpec,
                               WriteAheadLog, as_wal_spec, replay_wal,
                               wal_path)

WRITES = (("update", "accounts", 7, {"balance": 12.5}),
          ("insert", "orders", (3, "x"), {"qty": 2}),
          ("delete", "orders", 9, None))

RECORDS = [
    (R_PREPARE, 501, ROLE_COORDINATOR, 0, ((0, WRITES), (2, WRITES[:1]))),
    (R_PREPARE, 501, ROLE_PARTICIPANT, 0, WRITES),
    (R_PREPARE, 777, ROLE_INNER, 1, WRITES[:2]),
    (R_DECISION, 501, True),
    (R_DECISION, 502, False),
    (R_END, 501),
]


# -- record codec -------------------------------------------------------------


@pytest.mark.parametrize("record", RECORDS)
def test_record_shapes_round_trip(record):
    assert unpack_record(pack_record(record)) == record


scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.integers(min_value=2 ** 63, max_value=2 ** 80),
    st.floats(allow_nan=False),
    st.text(max_size=16), st.binary(max_size=16),
)
values = st.one_of(
    scalars,
    st.dictionaries(st.text(max_size=8), scalars, max_size=4),
    st.tuples(scalars, scalars),
)
records = st.tuples(
    st.sampled_from([R_PREPARE, R_DECISION, R_END]),
    st.integers(min_value=1, max_value=2 ** 62),
    st.tuples(st.sampled_from(["update", "insert", "delete"]),
              st.text(max_size=12), scalars, values),
)


@settings(max_examples=150, deadline=None)
@given(record=records)
def test_arbitrary_records_round_trip(record):
    assert unpack_record(pack_record(record)) == record


def test_records_carry_no_interned_table_ids():
    """WAL files outlive the process that wrote them, so table names
    must ride as plain strings two different builds agree on."""
    body = pack_record((R_PREPARE, 1, ROLE_PARTICIPANT, 0, WRITES))
    assert b"accounts" in body and b"orders" in body


# -- the log file -------------------------------------------------------------


def make_wal(tmp_path, mode="fsync", **kw):
    spec = WalSpec(mode=mode, dir=str(tmp_path), **kw)
    return WriteAheadLog(wal_path(str(tmp_path), 0), spec)


def test_append_replay_round_trip(tmp_path):
    wal = make_wal(tmp_path)
    for record in RECORDS:
        wal.append(record)
    wal.close()
    assert replay_wal(wal.path) == RECORDS


def test_replay_survives_reopen_and_append(tmp_path):
    """A respawned process appends to its predecessor's log."""
    first = make_wal(tmp_path)
    first.append(RECORDS[0])
    first.close()
    second = make_wal(tmp_path)
    second.append(RECORDS[3])
    second.close()
    assert replay_wal(second.path) == [RECORDS[0], RECORDS[3]]


def test_torn_tail_is_dropped(tmp_path):
    wal = make_wal(tmp_path)
    for record in RECORDS[:3]:
        wal.append(record)
    wal.close()
    size = os.path.getsize(wal.path)
    with open(wal.path, "r+b") as fh:
        fh.truncate(size - 3)  # crash mid-append: short final record
    assert replay_wal(wal.path) == RECORDS[:2]


def test_garbage_tail_is_dropped(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(RECORDS[0])
    wal.close()
    with open(wal.path, "ab") as fh:
        fh.write(b"\x06\x00\x00\x00halted")  # well-framed, undecodable
    assert replay_wal(wal.path) == [RECORDS[0]]


def test_replay_missing_file_is_empty():
    assert replay_wal("/nonexistent/server-0.wal") == []


def test_group_commit_batches_fsyncs(tmp_path):
    wal = make_wal(tmp_path, mode="group", group_size=4)
    for _ in range(8):
        wal.append((R_END, 1))
    assert wal.stats.wal_fsyncs == 2
    assert wal.stats.wal_appends == 8
    wal.close()


def test_forced_sync_overrides_group_mode(tmp_path):
    wal = make_wal(tmp_path, mode="group", group_size=100)
    wal.append((R_DECISION, 1, True), sync=True)
    assert wal.stats.wal_fsyncs == 1
    wal.close()


def test_fsync_mode_syncs_every_append(tmp_path):
    wal = make_wal(tmp_path, mode="fsync")
    for _ in range(3):
        wal.append((R_END, 1))
    assert wal.stats.wal_fsyncs == 3
    wal.close()


def test_append_cost_amortizes_group_fsync(tmp_path):
    spec = WalSpec(mode="group", dir=str(tmp_path), group_size=8)
    wal = WriteAheadLog(wal_path(str(tmp_path), 1), spec)
    assert wal.append_cost_us() == pytest.approx(
        spec.append_us + spec.fsync_us / 8)
    assert wal.append_cost_us(sync=True) == pytest.approx(
        spec.append_us + spec.fsync_us)
    wal.close()


# -- spec & stats -------------------------------------------------------------


def test_as_wal_spec_normalizes():
    assert as_wal_spec(None).mode == "off"
    assert not as_wal_spec(None).enabled
    assert as_wal_spec("group").mode == "group"
    spec = WalSpec(mode="fsync", dir="/x")
    assert as_wal_spec(spec) is spec
    with pytest.raises(ValueError, match="unknown wal mode"):
        as_wal_spec("paranoid")


def test_recovery_stats_merge():
    a = RecoveryStats(wal_mode="group", wal_appends=3, wal_fsyncs=1,
                      wal_bytes=90, recoveries=1, txns_redone=2)
    b = RecoveryStats(in_doubt_resolved=1, controller_failovers=2)
    total = RecoveryStats.merged([a, b])
    assert total.wal_mode == "group"
    assert total.wal_appends == 3
    assert total.txns_redone == 2
    assert total.in_doubt_resolved == 1
    assert total.controller_failovers == 2
    assert total.any_activity
    assert total.summary()["recoveries"] == 1
    assert not RecoveryStats().any_activity
