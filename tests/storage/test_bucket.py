"""Unit and property tests for bucket stores."""

import pytest
from hypothesis import given, strategies as st

from repro.storage import BucketStore, Record


def test_put_and_get():
    store = BucketStore("items", n_buckets=4)
    store.put(Record(1, {"name": "banana"}))
    record = store.get(1)
    assert record is not None
    assert record.fields["name"] == "banana"


def test_get_missing_returns_none():
    store = BucketStore("items", n_buckets=4)
    assert store.get(99) is None


def test_insert_rejects_duplicate():
    store = BucketStore("items", n_buckets=4)
    assert store.insert(Record(1, {"v": 1}))
    assert not store.insert(Record(1, {"v": 2}))
    assert store.get(1).fields["v"] == 1


def test_put_overwrites():
    store = BucketStore("items", n_buckets=4)
    store.put(Record(1, {"v": 1}))
    store.put(Record(1, {"v": 2}))
    assert store.get(1).fields["v"] == 2
    assert len(store) == 1


def test_delete():
    store = BucketStore("items", n_buckets=4)
    store.put(Record(1, {"v": 1}))
    assert store.delete(1)
    assert store.get(1) is None
    assert not store.delete(1)


def test_overflow_chains_grow_and_serve_lookups():
    store = BucketStore("items", n_buckets=1, bucket_capacity=2)
    for key in range(10):
        store.put(Record(key, {"v": key}))
    assert len(store) == 10
    assert store.chain_length(0) >= 5
    for key in range(10):
        assert store.get(key).fields["v"] == key


def test_same_bucket_shares_lock_word():
    store = BucketStore("items", n_buckets=1)
    store.put(Record(1, {}))
    store.put(Record(2, {}))
    assert store.lock_for(1) is store.lock_for(2)


def test_distinct_buckets_have_distinct_locks():
    store = BucketStore("items", n_buckets=4096)
    locks = {id(store.lock_for(k)) for k in range(8)}
    assert len(locks) > 1


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        BucketStore("t", n_buckets=0)
    with pytest.raises(ValueError):
        BucketStore("t", bucket_capacity=0)


def test_keys_and_scan():
    store = BucketStore("items", n_buckets=8)
    for key in range(5):
        store.put(Record(key, {"v": key}))
    assert sorted(store.keys()) == [0, 1, 2, 3, 4]
    evens = [r.key for r in store.scan(lambda r: r.key % 2 == 0)]
    assert sorted(evens) == [0, 2, 4]


@given(st.dictionaries(st.integers(0, 10_000), st.integers(), max_size=200),
       st.integers(1, 64), st.integers(1, 8))
def test_store_behaves_like_dict(mapping, n_buckets, capacity):
    """A BucketStore is observationally a dict, whatever its geometry."""
    store = BucketStore("t", n_buckets=n_buckets, bucket_capacity=capacity)
    for key, value in mapping.items():
        store.put(Record(key, {"v": value}))
    assert len(store) == len(mapping)
    assert sorted(store.keys()) == sorted(mapping)
    for key, value in mapping.items():
        assert store.get(key).fields["v"] == value
