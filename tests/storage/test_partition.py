"""Unit tests for PartitionStore: locks, record ops, span tracking."""

import pytest

from repro.storage import LockMode, PartitionStore, TableSpec


def make_store(track_spans=False, now=None):
    clock = {"t": 0.0}

    def now_fn():
        return clock["t"]

    store = PartitionStore(0, [TableSpec("acct", n_buckets=512)],
                           now_fn=now_fn, track_spans=track_spans)
    return store, clock


def test_load_and_read():
    store, _ = make_store()
    store.load("acct", 1, {"balance": 100})
    fields, version = store.read("acct", 1)
    assert fields == {"balance": 100}
    assert version == 0


def test_read_missing_returns_none():
    store, _ = make_store()
    assert store.read("acct", 42) is None


def test_read_returns_copy():
    store, _ = make_store()
    store.load("acct", 1, {"balance": 100})
    fields, _ = store.read("acct", 1)
    fields["balance"] = -1
    assert store.read("acct", 1)[0] == {"balance": 100}


def test_write_bumps_version():
    store, _ = make_store()
    store.load("acct", 1, {"balance": 100})
    assert store.write("acct", 1, {"balance": 90})
    fields, version = store.read("acct", 1)
    assert fields["balance"] == 90
    assert version == 1


def test_write_missing_returns_false():
    store, _ = make_store()
    assert not store.write("acct", 9, {"x": 1})


def test_insert_and_delete():
    store, _ = make_store()
    assert store.insert("acct", 5, {"balance": 0})
    assert not store.insert("acct", 5, {"balance": 1})
    assert store.delete("acct", 5)
    assert not store.delete("acct", 5)


def test_try_lock_conflict_and_release_all():
    store, _ = make_store()
    store.load("acct", 1, {"balance": 100})
    assert store.try_lock("acct", 1, LockMode.EXCLUSIVE, "t1")
    assert not store.try_lock("acct", 1, LockMode.SHARED, "t2")
    assert store.locks_held("t1") == 1
    assert store.release_all("t1") == 1
    assert store.try_lock("acct", 1, LockMode.SHARED, "t2")


def test_unlock_specific_key():
    store, _ = make_store()
    store.load("acct", 1, {})
    store.try_lock("acct", 1, LockMode.EXCLUSIVE, "t1")
    store.unlock("acct", 1, "t1")
    assert not store.is_locked("acct", 1)
    assert store.locks_held("t1") == 0


def test_release_all_handles_same_bucket_reentry():
    """Two keys in the same bucket share a lock; release_all must not
    double-release it."""
    store = PartitionStore(0, [TableSpec("acct", n_buckets=1)])
    store.load("acct", 1, {})
    store.load("acct", 2, {})
    assert store.try_lock("acct", 1, LockMode.EXCLUSIVE, "t1")
    assert store.try_lock("acct", 2, LockMode.EXCLUSIVE, "t1")
    # the shared lock word is tracked (and released) exactly once
    assert store.release_all("t1") == 1
    assert not store.is_locked("acct", 1)
    assert not store.is_locked("acct", 2)


def test_span_tracking_measures_lock_duration():
    store, clock = make_store(track_spans=True)
    store.load("acct", 1, {})
    clock["t"] = 10.0
    store.try_lock("acct", 1, LockMode.EXCLUSIVE, "t1")
    clock["t"] = 25.0
    store.unlock("acct", 1, "t1")
    assert store.spans.mean_span("acct", 1) == pytest.approx(15.0)


def test_unknown_table_raises():
    store, _ = make_store()
    with pytest.raises(KeyError):
        store.read("nope", 1)


def test_duplicate_table_rejected():
    store, _ = make_store()
    with pytest.raises(ValueError):
        store.create_table(TableSpec("acct"))


def test_version_of():
    store, _ = make_store()
    store.load("acct", 1, {"balance": 5})
    assert store.version_of("acct", 1) == 0
    store.write("acct", 1, {"balance": 6})
    assert store.version_of("acct", 1) == 1
    assert store.version_of("acct", 99) is None
