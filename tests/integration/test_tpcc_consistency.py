"""Concurrent full-mix TPC-C: consistency and serializability oracles.

TPC-C's own consistency conditions make sharp executor tests:
* w_ytd equals the sum of its districts' d_ytd (payments hit both);
* d_next_o_id - initial equals the orders actually inserted;
* every executor yields a conflict-serializable history.
"""

import pytest

from repro.bench import RunConfig
from repro.bench.setups import make_tpcc_run
from repro.workloads.tpcc import DISTRICTS_PER_WAREHOUSE


def run_mix(executor_name, concurrent=3, seed=11, n_partitions=2,
            horizon_us=5_000.0, n_replicas=0):
    config = RunConfig(n_partitions=n_partitions,
                       concurrent_per_engine=concurrent,
                       horizon_us=horizon_us, warmup_us=0.0, seed=seed,
                       n_replicas=n_replicas, record_history=True)
    run = make_tpcc_run(executor_name, config)
    result = run.run()
    return result, run


EXECUTORS = ["2pl", "occ", "chiller"]


@pytest.mark.parametrize("executor_name", EXECUTORS)
def test_warehouse_ytd_matches_district_sum(executor_name):
    result, run = run_mix(executor_name)
    assert result.metrics.commits > 50
    db = run.database
    for w in range(run.workload.scale.n_warehouses):
        pid = db.partition_of("warehouse", w)
        w_ytd = db.store(pid).read("warehouse", w)[0]["w_ytd"]
        d_sum = sum(db.store(pid).read("district", (w, d))[0]["d_ytd"]
                    for d in range(DISTRICTS_PER_WAREHOUSE))
        assert w_ytd == pytest.approx(d_sum), (
            f"{executor_name}: warehouse {w} ytd diverged from districts")


@pytest.mark.parametrize("executor_name", EXECUTORS)
def test_order_counter_matches_inserted_orders(executor_name):
    result, run = run_mix(executor_name)
    db = run.database
    scale = run.workload.scale
    for w in range(scale.n_warehouses):
        pid = db.partition_of("warehouse", w)
        for d in range(DISTRICTS_PER_WAREHOUSE):
            next_o = db.store(pid).read("district",
                                        (w, d))[0]["d_next_o_id"]
            for o_id in range(scale.initial_orders, next_o):
                assert db.store(pid).read("order", (w, d, o_id)) \
                    is not None, (
                    f"{executor_name}: order {o_id} missing in "
                    f"district ({w},{d}) though counter reached {next_o}")
            assert db.store(pid).read("order", (w, d, next_o)) is None


@pytest.mark.parametrize("executor_name", EXECUTORS)
def test_history_serializable(executor_name):
    result, _ = run_mix(executor_name)
    assert len(result.history) == result.metrics.commits
    assert result.history.find_cycle() is None


@pytest.mark.parametrize("executor_name", EXECUTORS)
def test_no_lock_leaks_after_run(executor_name):
    result, run = run_mix(executor_name)
    db = run.database
    for w in range(run.workload.scale.n_warehouses):
        pid = db.partition_of("warehouse", w)
        assert not db.store(pid).is_locked("warehouse", w)
        for d in range(DISTRICTS_PER_WAREHOUSE):
            assert not db.store(pid).is_locked("district", (w, d))


@pytest.mark.parametrize("seed", [5, 6])
def test_chiller_serializable_with_replication(seed):
    result, _ = run_mix("chiller", seed=seed, n_replicas=1)
    assert result.history.find_cycle() is None


def test_chiller_uses_two_region_path_heavily():
    result, _ = run_mix("chiller")
    assert result.metrics.two_region_ratio() > 0.8


def test_chiller_fewer_aborts_than_2pl_at_high_concurrency():
    """Fig. 9b's central claim at one operating point."""
    r_chiller, _ = run_mix("chiller", concurrent=4)
    r_2pl, _ = run_mix("2pl", concurrent=4)
    assert (r_chiller.metrics.abort_rate()
            < 0.5 * r_2pl.metrics.abort_rate())


def test_payment_starvation_under_2pl():
    """Fig. 9c: NewOrder's shared warehouse locks starve Payment's
    exclusive requests under 2PL NO_WAIT at high concurrency."""
    result, _ = run_mix("2pl", concurrent=6, horizon_us=4_000.0)
    payment_rate = result.metrics.abort_rate("payment")
    order_status_rate = result.metrics.abort_rate("order_status")
    assert payment_rate > 0.5
    assert payment_rate > order_status_rate


def test_replicas_converge_under_chiller():
    result, run = run_mix("chiller", n_replicas=1)
    db = run.database
    for w in range(run.workload.scale.n_warehouses):
        pid = db.partition_of("warehouse", w)
        primary = db.store(pid).read("warehouse", w)[0]["w_ytd"]
        for rserver in db.replicas.replica_servers(pid):
            replica = db.replicas.store_on(rserver, pid)
            assert replica.read("warehouse", w)[0]["w_ytd"] == (
                pytest.approx(primary))
