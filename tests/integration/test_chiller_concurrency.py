"""Concurrent two-region execution: correctness under contention.

Runs the bank workload with a skewed hot set through the Chiller
executor (hot accounts in the lookup table, hence executed in inner
regions) and checks the same oracles as the baselines: money
conservation, serializability, no lock leaks — plus Chiller-specific
invariants (two-region path actually used, replicas converge).
"""

import pytest

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.core import ChillerExecutor, HotRecordTable
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, HistoryRecorder
from repro.workloads.bank import BankWorkload


def run_chiller_bank(hot_accounts=4, hot_probability=0.7, n_partitions=3,
                     concurrent=3, seed=5, n_replicas=0,
                     horizon_us=4_000.0):
    workload = BankWorkload(n_accounts=60, hot_accounts=hot_accounts,
                            hot_probability=hot_probability)
    config = RunConfig(n_partitions=n_partitions,
                       concurrent_per_engine=concurrent,
                       horizon_us=horizon_us, warmup_us=0.0, seed=seed,
                       n_replicas=n_replicas)
    cluster = Cluster(n_partitions, config.network)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    scheme = HashScheme(n_partitions)
    catalog = Catalog(n_partitions, scheme)
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=n_replicas)
    workload.populate(db.loader())
    hot = HotRecordTable(
        {("accounts", a): scheme.partition_of("accounts", a)
         for a in range(hot_accounts)})
    executor = ChillerExecutor(db, hot, history=HistoryRecorder())
    result = run_benchmark(workload, executor, config)
    return result, workload, db, executor


def total_balance(db, workload):
    return sum(
        db.store(db.partition_of("accounts", a))
        .read("accounts", a)[0]["balance"]
        for a in range(workload.n_accounts))


def test_two_region_path_exercised():
    result, _, _, _ = run_chiller_bank()
    assert result.metrics.commits > 50
    assert result.metrics.two_region_ratio() > 0.3


def test_money_conserved_under_contention():
    result, workload, db, _ = run_chiller_bank()
    assert total_balance(db, workload) == pytest.approx(
        workload.total_balance())


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_serializable_across_seeds(seed):
    result, _, _, _ = run_chiller_bank(seed=seed)
    assert len(result.history) == result.metrics.commits
    assert result.history.find_cycle() is None


def test_no_lock_leaks():
    result, workload, db, _ = run_chiller_bank()
    for acct in range(workload.n_accounts):
        pid = db.partition_of("accounts", acct)
        assert not db.store(pid).is_locked("accounts", acct)


def test_no_pending_ack_leaks():
    _, _, _, executor = run_chiller_bank(n_replicas=1)
    assert executor._pending_acks == {}


def test_replicas_converge_for_hot_partition():
    result, workload, db, _ = run_chiller_bank(n_replicas=1)
    assert result.metrics.commits > 0
    for acct in range(workload.hot_accounts):
        pid = db.partition_of("accounts", acct)
        primary = db.store(pid).read("accounts", acct)[0]["balance"]
        for rserver in db.replicas.replica_servers(pid):
            replica = db.replicas.store_on(rserver, pid)
            assert replica.read("accounts", acct)[0]["balance"] == (
                pytest.approx(primary))


def test_money_conserved_with_replication():
    result, workload, db, _ = run_chiller_bank(n_replicas=1)
    assert total_balance(db, workload) == pytest.approx(
        workload.total_balance())
    assert result.history.find_cycle() is None


def test_chiller_beats_2pl_on_hot_abort_rate():
    """The headline mechanism: hot-record contention spans shrink, so
    Chiller aborts less than 2PL on the same skewed workload."""
    from repro.txn import TwoPLExecutor
    from repro.analysis import ProcedureRegistry as Reg

    def run_2pl():
        workload = BankWorkload(n_accounts=60, hot_accounts=4,
                                hot_probability=0.7)
        config = RunConfig(n_partitions=3, concurrent_per_engine=3,
                           horizon_us=4_000.0, warmup_us=0.0, seed=5,
                           n_replicas=0)
        cluster = Cluster(3, config.network)
        registry = Reg()
        for proc in workload.procedures():
            registry.register(proc)
        db = Database(cluster, Catalog(3, HashScheme(3)),
                      workload.tables(), registry, n_replicas=0)
        workload.populate(db.loader())
        return run_benchmark(workload, TwoPLExecutor(db), config)

    chiller_result, _, _, _ = run_chiller_bank()
    twopl_result = run_2pl()
    assert (chiller_result.metrics.abort_rate()
            <= twopl_result.metrics.abort_rate() + 0.02)
