"""Direct measurement of the paper's core quantity: contention spans.

Fig. 3 argues the whole case: under 2PL+2PC a hot record stays locked
for >= 2 message delays regardless of hotness, while two-region
execution shrinks the span to a local critical section.  We track lock
hold times on the TPC-C warehouse and district rows and check the
ratio.
"""

import pytest

from repro.bench import RunConfig
from repro.bench.setups import make_tpcc_run
from repro.workloads.tpcc import DISTRICTS_PER_WAREHOUSE


def mean_hot_span(executor_name, seed=3):
    config = RunConfig(n_partitions=2, concurrent_per_engine=2,
                       horizon_us=4_000.0, warmup_us=0.0, seed=seed,
                       n_replicas=0, track_spans=True)
    run = make_tpcc_run(executor_name, config)
    run.run()
    db = run.database
    spans = []
    for w in range(run.workload.scale.n_warehouses):
        pid = db.partition_of("warehouse", w)
        tracker = db.store(pid).spans
        if tracker.acquisitions.get(("warehouse", w)):
            spans.append(tracker.mean_span("warehouse", w))
        for d in range(DISTRICTS_PER_WAREHOUSE):
            if tracker.acquisitions.get(("district", (w, d))):
                spans.append(tracker.mean_span("district", (w, d)))
    assert spans, "hot records must have been locked at least once"
    return sum(spans) / len(spans)


def test_two_region_shrinks_hot_contention_spans():
    span_2pl = mean_hot_span("2pl")
    span_chiller = mean_hot_span("chiller")
    # the paper's mechanism: an order-of-magnitude-ish reduction
    assert span_chiller < 0.35 * span_2pl, (
        f"chiller span {span_chiller:.2f}us should be far below "
        f"2PL's {span_2pl:.2f}us")


def test_2pl_span_is_at_least_a_round_trip():
    """Fig. 3a: with piggybacked prepare, the span covers at least the
    commit message delay for remote participants — and for local TPC-C
    transactions at least the local execution rounds."""
    span = mean_hot_span("2pl")
    assert span > 1.0  # microseconds; local rounds + queueing
