"""Concurrent bank runs: atomicity, isolation, and serializability.

These are the strongest correctness tests in the suite: many concurrent
transfer transactions over shared accounts, with money conservation and
precedence-graph acyclicity checked at the end, for both baseline
executors under several contention levels.
"""

import pytest

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import (Database, HistoryRecorder, OccExecutor,
                       TwoPLExecutor)
from repro.workloads.bank import BankWorkload


def run_bank(executor_cls, hot_accounts=0, hot_probability=0.0,
             n_partitions=3, concurrent=3, seed=11,
             horizon_us=4_000.0):
    workload = BankWorkload(n_accounts=60, hot_accounts=hot_accounts,
                            hot_probability=hot_probability)
    config = RunConfig(n_partitions=n_partitions,
                       concurrent_per_engine=concurrent,
                       horizon_us=horizon_us, warmup_us=0.0, seed=seed,
                       n_replicas=0)
    cluster = Cluster(n_partitions, config.network)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    catalog = Catalog(n_partitions, HashScheme(n_partitions))
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=0)
    workload.populate(db.loader())
    history = HistoryRecorder()
    executor = executor_cls(db, history=history)
    result = run_benchmark(workload, executor, config)
    return result, workload, db


def total_balance(db, workload):
    total = 0.0
    for acct in range(workload.n_accounts):
        pid = db.partition_of("accounts", acct)
        total += db.store(pid).read("accounts", acct)[0]["balance"]
    return total


@pytest.mark.parametrize("executor_cls", [TwoPLExecutor, OccExecutor])
def test_money_conserved_low_contention(executor_cls):
    result, workload, db = run_bank(executor_cls)
    assert result.metrics.commits > 50
    assert total_balance(db, workload) == pytest.approx(
        workload.total_balance())


@pytest.mark.parametrize("executor_cls", [TwoPLExecutor, OccExecutor])
def test_money_conserved_high_contention(executor_cls):
    result, workload, db = run_bank(executor_cls, hot_accounts=3,
                                    hot_probability=0.8)
    assert result.metrics.commits > 20
    assert result.metrics.aborts > 0, "high contention must cause aborts"
    assert total_balance(db, workload) == pytest.approx(
        workload.total_balance())


@pytest.mark.parametrize("executor_cls", [TwoPLExecutor, OccExecutor])
def test_history_serializable_low_contention(executor_cls):
    result, _, _ = run_bank(executor_cls)
    assert len(result.history) == result.metrics.commits
    assert result.history.find_cycle() is None


@pytest.mark.parametrize("executor_cls", [TwoPLExecutor, OccExecutor])
def test_history_serializable_high_contention(executor_cls):
    result, _, _ = run_bank(executor_cls, hot_accounts=3,
                            hot_probability=0.8)
    assert result.history.find_cycle() is None


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_serializable_across_seeds_2pl(seed):
    result, _, _ = run_bank(TwoPLExecutor, hot_accounts=5,
                            hot_probability=0.6, seed=seed)
    assert result.history.find_cycle() is None


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_serializable_across_seeds_occ(seed):
    result, _, _ = run_bank(OccExecutor, hot_accounts=5,
                            hot_probability=0.6, seed=seed)
    assert result.history.find_cycle() is None


def test_no_locks_leak_after_run():
    result, workload, db = run_bank(TwoPLExecutor, hot_accounts=3,
                                    hot_probability=0.8)
    for acct in range(workload.n_accounts):
        pid = db.partition_of("accounts", acct)
        assert not db.store(pid).is_locked("accounts", acct)


def test_occ_aborts_more_than_2pl_under_contention():
    """OCC wastes full executions on conflict; under the same hot
    workload its abort rate should be at least comparable to 2PL's
    (the paper finds it worse)."""
    r_2pl, _, _ = run_bank(TwoPLExecutor, hot_accounts=2,
                           hot_probability=0.9, concurrent=4)
    r_occ, _, _ = run_bank(OccExecutor, hot_accounts=2,
                           hot_probability=0.9, concurrent=4)
    assert r_occ.metrics.abort_rate() >= 0.5 * r_2pl.metrics.abort_rate()
