"""Repo-wide test fixtures.

The mp backend moves frames through named shared-memory rings
(``/dev/shm/repro-<run_id>-...``).  Every test that touches the mp
path must leave ``/dev/shm`` exactly as it found it — a leaked segment
is host-global state that outlives the test process and eventually
fills the tmpfs.  The autouse fixture below makes any leak a test
failure at the test that caused it, not a mystery later.
"""

import os

import pytest

_SHM_DIR = "/dev/shm"
_RING_PREFIX = "repro-"


def _ring_segments() -> set:
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # no tmpfs here (macOS, containers without /dev/shm)
        return set()
    return {n for n in names if n.startswith(_RING_PREFIX)}


@pytest.fixture(autouse=True)
def no_leaked_shm_rings():
    """Fail any test that leaves a repro-* shared-memory ring behind."""
    before = _ring_segments()
    yield
    leaked = _ring_segments() - before
    assert not leaked, (
        f"test leaked shared-memory ring segment(s) {sorted(leaked)}; "
        f"mp runs must unlink their rings (transport.stop) or let the "
        f"parent reclaim them via cleanup_rings_by_name")
