"""Ablation — co-optimizing contention and distributed transactions.

Section 4.4: assigning a minimum positive weight to every star-graph
edge makes the cut also pull a transaction's *cold* records toward its
t-vertex, trading a little contention for fewer distributed
transactions.  Larger minimum weight => lower distributed ratio.
"""

from repro.bench.experiments import (min_weight_ablation_rows,
                                     print_min_weight)


def run_ablation():
    return min_weight_ablation_rows(weights=(0.0, 0.2, 0.5),
                                    n_train=800, quick=True)


def test_min_weight_trades_distribution(once):
    rows = once(run_ablation)
    print_min_weight(rows)
    # distributed ratio decreases (weakly) as min_weight grows
    ratios = [row["distributed"] for row in rows]
    assert ratios[-1] <= ratios[0] + 0.02
