"""Wire-path benchmark: mp transport x codec, plus the codec kernel.

Two levels, matching the two halves of the fast wire path:

* **Codec microbench** — encode+decode round trips of a representative
  hot-verb chain and its reply through ``FrameCodec``, packed vs
  pickle.  Single-process and deterministic, so its rate is the
  regression-tracked figure for the codec kernel itself; it also
  reasserts the size claim (the packed chain undercuts half the
  pickle).

* **End-to-end mp cells** — the same multi-key YCSB workload as
  ``bench_effect_runtime.py`` on real worker processes, one cell per
  (transport, codec).  Events/sec here is wall-clock and
  hardware-sensitive: the shm transport trades kernel wakeups for
  polling, which wins exactly when workers have cores to poll on.  On
  a box with fewer cores than worker processes the poller's yield
  keeps shm competitive, but epoll's free doorbell means tcp roughly
  ties — so the cell asserts a conservative floor (shm+packed at least
  half of tcp+pickle events/sec) and *records* the measured ratio;
  set ``REPRO_WIRE_TARGET=2.0`` on dedicated multi-core hardware to
  enforce the fast-path speedup target as a hard assertion.

CLI (full transport x codec grid; CI smoke runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_wire_path.py
    PYTHONPATH=src python benchmarks/bench_wire_path.py --quick
"""

from __future__ import annotations

import os
import sys
import time

from repro.bench import RunConfig, install_summary_json
from repro.bench.setups import make_ycsb_run
from repro.sim.codec import (FRAME_PICKLE, FRAME_VERBS, FrameCodec,
                             WireVerbReply, WireVerbs)
from repro.storage import LockMode
from repro.workloads.ycsb import YcsbWorkload

TABLES = ("usertable",)

HOT_CHAIN = WireVerbs(1234, (
    ("lock_read", 1, "usertable", 7, (LockMode.EXCLUSIVE, 900001)),
    ("lock_read", 1, "usertable", 19, (LockMode.EXCLUSIVE, 900001)),
    ("plain_read", 1, "usertable", 55, ()),
    ("release", 1, None, None, (900001,)),
), True)
"""The doorbell-batched shape the YCSB hot path actually ships."""

HOT_REPLY = WireVerbReply(1234, (("ok", {"counter": 3}, 2),
                                 ("ok", {"counter": 9}, 4)), True)

CODEC_ROUNDS = 2_000


def codec_rates(packed: bool, rounds: int = CODEC_ROUNDS) -> dict:
    """Encode+decode round-trip rate and frame sizes for one codec."""
    codec = FrameCodec(TABLES, packed=packed)
    encode, decode = codec.encode, codec.decode
    start = time.perf_counter()
    for _ in range(rounds):
        chain_body = encode(0, 1, HOT_CHAIN, "chain")
        decode(chain_body)
        reply_body = encode(1, 0, HOT_REPLY, "reply")
        decode(reply_body)
    elapsed = time.perf_counter() - start
    return {
        "roundtrips_per_second": 2 * rounds / elapsed,
        "chain_bytes": len(chain_body),
        "reply_bytes": len(reply_body),
    }


def wire_cell_config(transport: str, codec: str,
                     quick: bool = False) -> RunConfig:
    return RunConfig(n_partitions=2, concurrent_per_engine=4,
                     horizon_us=150_000.0 if quick else 400_000.0,
                     warmup_us=0.0, seed=11, n_replicas=1, backend="mp",
                     mp_transport=transport, mp_codec=codec,
                     mp_run_timeout_s=180.0)


def run_wire_cell(transport: str, codec: str, quick: bool = False):
    workload = YcsbWorkload(n_keys=2_000, reads_per_txn=8,
                            writes_per_txn=2)
    config = wire_cell_config(transport, codec, quick)
    return make_ycsb_run("2pl", config, workload=workload).run()


def grid_rows(quick: bool = False) -> list[dict]:
    rows = []
    for transport in ("tcp", "shm"):
        for codec in ("pickle", "packed"):
            result = run_wire_cell(transport, codec, quick)
            stats = result.database.cluster.network.stats
            rows.append({
                "transport": transport,
                "codec": codec,
                "commits": result.metrics.commits,
                "events_per_second":
                    result.metrics.events_per_wall_second(),
                "wire_bytes": stats.wire_bytes_sent,
            })
    return rows


def print_rows(rows: list[dict]) -> None:
    print("\n== mp wire path: transport x codec (wall-clock) ==")
    print(f"{'transport':>9} {'codec':>7} {'commits':>8} "
          f"{'events/s':>10} {'wire MB':>8}")
    for row in rows:
        print(f"{row['transport']:>9} {row['codec']:>7} "
              f"{row['commits']:>8} {row['events_per_second']:>10,.0f} "
              f"{row['wire_bytes'] / 1e6:>8.2f}")
    base = next(r for r in rows
                if (r["transport"], r["codec"]) == ("tcp", "pickle"))
    fast = next(r for r in rows
                if (r["transport"], r["codec"]) == ("shm", "packed"))
    print(f"shm+packed vs tcp+pickle events/sec: "
          f"{fast['events_per_second'] / base['events_per_second']:.2f}x "
          f"on {os.cpu_count()} cpu(s); wire bytes "
          f"{fast['wire_bytes'] / base['wire_bytes']:.2f}x")


def main(argv=None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    args, flush_summaries = install_summary_json(args)
    quick = "--quick" in args
    for name, rates in (("pickle", codec_rates(False)),
                        ("packed", codec_rates(True))):
        print(f"codec {name:>7}: {rates['roundtrips_per_second']:>9,.0f} "
              f"roundtrips/s  chain {rates['chain_bytes']}B "
              f"reply {rates['reply_bytes']}B")
    try:
        print_rows(grid_rows(quick=quick))
    finally:
        flush_summaries()


# -- pytest-benchmark cells (perf-tracked in BENCH_BASELINE.json) -------------

def test_packed_codec_shrinks_frames(benchmark):
    """The codec kernel: packed frames must stay under half the pickle
    size for the hot chain, and the round-trip rate is perf-tracked."""
    pickle_rates = codec_rates(False)
    packed_rates = benchmark.pedantic(codec_rates, args=(True,),
                                      rounds=1, iterations=1)

    codec = FrameCodec(TABLES, packed=True)
    body = codec.encode(0, 1, HOT_CHAIN, "chain")
    assert body[0] == FRAME_VERBS
    assert codec.decode(body) == (0, 1, HOT_CHAIN)
    assert FrameCodec(TABLES, packed=False).encode(
        0, 1, HOT_CHAIN, "chain")[0] == FRAME_PICKLE

    assert packed_rates["chain_bytes"] < pickle_rates["chain_bytes"] / 2, \
        (packed_rates["chain_bytes"], pickle_rates["chain_bytes"])
    assert packed_rates["reply_bytes"] < pickle_rates["reply_bytes"]

    benchmark.extra_info.update({
        "packed_roundtrips_per_second":
            round(packed_rates["roundtrips_per_second"]),
        "pickle_roundtrips_per_second":
            round(pickle_rates["roundtrips_per_second"]),
        "packed_chain_bytes": packed_rates["chain_bytes"],
        "pickle_chain_bytes": pickle_rates["chain_bytes"],
        "packed_reply_bytes": packed_rates["reply_bytes"],
        "pickle_reply_bytes": pickle_rates["reply_bytes"],
    })


def test_shm_packed_wire_cell(benchmark):
    """The fast-path cell: shm rings + packed frames end to end, with
    the pre-fast-path configuration (tcp + pickle) as its in-test
    baseline.  Records the speed ratio; enforces it as a hard target
    only when ``REPRO_WIRE_TARGET`` says the hardware can take it."""
    baseline = run_wire_cell("tcp", "pickle", quick=True)
    fast = benchmark.pedantic(run_wire_cell, args=("shm", "packed"),
                              kwargs={"quick": True},
                              rounds=1, iterations=1)

    assert fast.metrics.commits > 0
    base_stats = baseline.database.cluster.network.stats
    fast_stats = fast.database.cluster.network.stats
    assert fast_stats.wire_bytes_sent > 0, \
        "the 2-partition YCSB cell must cross the worker boundary"
    # same workload shape: packed frames must ship fewer bytes per
    # commit than pickled ones, whatever the commit counts were
    packed_bpc = fast_stats.wire_bytes_sent / fast.metrics.commits
    pickle_bpc = base_stats.wire_bytes_sent / baseline.metrics.commits
    assert packed_bpc < pickle_bpc, (packed_bpc, pickle_bpc)

    base_rate = baseline.metrics.events_per_wall_second()
    fast_rate = fast.metrics.events_per_wall_second()
    ratio = fast_rate / base_rate
    assert ratio >= 0.5, (
        f"shm+packed collapsed to {ratio:.2f}x of tcp+pickle "
        f"({fast_rate:,.0f} vs {base_rate:,.0f} events/s)")
    target = float(os.environ.get("REPRO_WIRE_TARGET", "0") or 0.0)
    if target:
        assert ratio >= target, (
            f"fast wire path reached {ratio:.2f}x of tcp+pickle, "
            f"target {target:.1f}x ({fast_rate:,.0f} vs "
            f"{base_rate:,.0f} events/s on {os.cpu_count()} cpus)")

    benchmark.extra_info.update({
        "tcp_pickle_events_per_second": round(base_rate),
        "shm_packed_vs_tcp_pickle": round(ratio, 3),
        "packed_wire_bytes_per_commit": round(packed_bpc, 1),
        "pickle_wire_bytes_per_commit": round(pickle_bpc, 1),
        "cpus": os.cpu_count(),
        **{k: round(v, 3) if isinstance(v, float) else v
           for k, v in fast.perf_summary().items()
           if not isinstance(v, dict)},
    })


if __name__ == "__main__":
    main()
