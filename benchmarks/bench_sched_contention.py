"""YCSB hot-key scheduler sweep: conflict-class batching vs blind retry.

The scheduling subsystem's acceptance figure.  A skewed YCSB workload
(zipf-ranked keys, every transaction read-modify-writes several) is
driven through NO_WAIT 2PL and OCC with scheduling off (`fifo`, the
historical raw retry loop bit-for-bit) and on (`conflict`): the
conflict scheduler fingerprints each request's estimated write set,
serializes admissions that share a hot record, and sheds hopeless
queues — so the simulated CPU and network stop burning on doomed lock
acquisitions.  Reported per cell: committed txns/sec, abort rate,
wasted attempts (contention aborts — paid for, nothing to show), and
the scheduler's own counters (queueing delay, deferrals, sheds).

CLI (the EXPERIMENTS.md figure; CI runs `--quick` on sim and mp)::

    PYTHONPATH=src python benchmarks/bench_sched_contention.py
    PYTHONPATH=src python benchmarks/bench_sched_contention.py --quick
    PYTHONPATH=src python benchmarks/bench_sched_contention.py --quick --backend mp

pytest-benchmark cells (regression-tracked in BENCH_BASELINE.json via
``check_perf_regression.py``) assert the headline result: at zipf
θ ≥ 0.9 under NO_WAIT 2PL, `conflict` commits measurably more
transactions than `fifo` while wasting less work.
"""

from __future__ import annotations

import sys

from repro.bench import (RunConfig, build_database,
                         install_summary_json, run_benchmark)
from repro.bench.harness import mp_benchmark_driver, run_mp_benchmark
from repro.partitioning import HashScheme
from repro.sim import MpRunSpec, current_worker_cluster
from repro.storage import Catalog
from repro.txn import OccExecutor, TwoPLExecutor
from repro.workloads.ycsb import YcsbWorkload

THETAS = (0.6, 0.9, 1.2)
SCHEDULERS = ("fifo", "conflict")
EXECUTORS = ("2pl", "occ")


def sched_config(quick: bool = False, backend: str = "sim",
                 scheduler: str = "fifo", seed: int = 11) -> RunConfig:
    return RunConfig(n_partitions=4, concurrent_per_engine=8,
                     horizon_us=4_000.0 if quick else 10_000.0,
                     warmup_us=500.0 if quick else 1_500.0,
                     seed=seed, n_replicas=1, route_by_data=True,
                     scheduler=scheduler, backend=backend)


class _SchedRun:
    """The run-object contract both in-process and mp paths expect."""

    def __init__(self, workload, database, executor, config, mp_spec=None):
        self.workload = workload
        self.database = database
        self.executor = executor
        self.config = config
        self.mp_spec = mp_spec

    def run(self):
        if self.mp_spec is not None:
            return run_mp_benchmark(self.mp_spec, self.config,
                                    database=self.database)
        return run_benchmark(self.workload, self.executor, self.config)


def build_sched_run(theta: float, executor_name: str,
                    config: RunConfig) -> _SchedRun:
    """Module-level (mp-picklable) builder for one sweep cell."""
    workload = YcsbWorkload(n_keys=1_200, reads_per_txn=4,
                            writes_per_txn=4, zipf_exponent=theta)
    db, _cluster = build_database(
        workload, Catalog(config.n_partitions,
                          HashScheme(config.n_partitions)), config)
    if executor_name == "2pl":
        executor = TwoPLExecutor(db)
    elif executor_name == "occ":
        executor = OccExecutor(db)
    else:
        raise ValueError(f"unknown executor {executor_name!r}")
    run = _SchedRun(workload, db, executor, config)
    if config.backend == "mp" and current_worker_cluster() is None:
        run.mp_spec = MpRunSpec(builder=build_sched_run,
                                args=(theta, executor_name, config),
                                driver=mp_benchmark_driver)
    return run


def run_cell(theta: float, scheduler: str, executor_name: str = "2pl",
             quick: bool = False, backend: str = "sim",
             seed: int = 11):
    config = sched_config(quick, backend, scheduler, seed)
    return build_sched_run(theta, executor_name, config).run()


def sweep_rows(thetas=THETAS, schedulers=SCHEDULERS, executors=EXECUTORS,
               quick: bool = False, backend: str = "sim") -> list[dict]:
    rows = []
    for theta in thetas:
        for executor_name in executors:
            row: dict = {"theta": theta, "executor": executor_name}
            for scheduler in schedulers:
                result = run_cell(theta, scheduler, executor_name,
                                  quick, backend)
                metrics = result.metrics
                sched = metrics.scheduler_summary()
                prefix = scheduler
                row[f"{prefix}_throughput"] = result.throughput
                row[f"{prefix}_abort_rate"] = metrics.abort_rate()
                row[f"{prefix}_commits"] = metrics.commits
                row[f"{prefix}_wasted"] = metrics.wasted_attempts()
                row[f"{prefix}_sheds"] = sched.sheds
                row[f"{prefix}_queue_us"] = sched.mean_queueing_delay_us()
                row[f"{prefix}_widenings"] = sched.window_widenings
            rows.append(row)
    return rows


def print_sweep(rows: list[dict]) -> None:
    print("\n== Scheduler sweep: YCSB hot-key (throughput K txns/s | "
          "abort rate | wasted attempts) ==")
    print(f"{'theta':>5} {'exec':>5} "
          f"{'fifo':>20} {'conflict':>20} "
          f"{'tput delta':>10} {'queue us':>9} {'sheds':>6}")
    for row in rows:
        fifo = (f"{row['fifo_throughput'] / 1e3:6.0f}K "
                f"{row['fifo_abort_rate']:5.2f} {row['fifo_wasted']:6d}")
        conf = (f"{row['conflict_throughput'] / 1e3:6.0f}K "
                f"{row['conflict_abort_rate']:5.2f} "
                f"{row['conflict_wasted']:6d}")
        delta = (row["conflict_throughput"] / row["fifo_throughput"] - 1.0
                 if row["fifo_throughput"] > 0 else 0.0)
        print(f"{row['theta']:>5.2f} {row['executor']:>5} {fifo:>20} "
              f"{conf:>20} {delta:>+9.1%} "
              f"{row['conflict_queue_us']:>9.1f} "
              f"{row['conflict_sheds']:>6d}")


def main(argv=None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    args, flush_summaries = install_summary_json(args)
    quick = "--quick" in args
    backend = "sim"
    for i, arg in enumerate(args):
        if arg == "--backend" and i + 1 < len(args):
            backend = args[i + 1]
        elif arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
    if backend != "sim":
        print(f"(backend {backend}: wall-clock figures — see "
              f"EXPERIMENTS.md; sim figures are the calibrated ones)")
    thetas = (0.9, 1.2) if quick else THETAS
    executors = ("2pl",) if quick else EXECUTORS
    try:
        print_sweep(sweep_rows(thetas=thetas, executors=executors,
                               quick=quick, backend=backend))
    finally:
        flush_summaries()


# -- pytest-benchmark cells (perf-tracked in BENCH_BASELINE.json) -------------

def test_conflict_scheduler_beats_fifo_on_hot_keys(benchmark):
    """The acceptance cell: zipf θ=0.9 (and above), NO_WAIT 2PL —
    conflict-class scheduling must commit more per simulated second
    than the blind retry loop, with less wasted work."""
    fifo = run_cell(0.9, "fifo")
    conflict = benchmark.pedantic(run_cell, args=(0.9, "conflict"),
                                  rounds=1, iterations=1)

    sched = conflict.metrics.scheduler_summary()
    assert sched.scheduler == "conflict"
    assert sched.deferrals > 0, "hot keys should force serialization"
    assert conflict.throughput > fifo.throughput, (
        f"conflict scheduling should beat fifo under hot-key skew: "
        f"{conflict.throughput:.0f} vs {fifo.throughput:.0f} txns/s")
    assert (conflict.metrics.wasted_attempts()
            < fifo.metrics.wasted_attempts()), "less work must be wasted"

    benchmark.extra_info.update({
        "fifo_throughput": round(fifo.throughput),
        "conflict_throughput": round(conflict.throughput),
        "fifo_wasted_attempts": fifo.metrics.wasted_attempts(),
        "conflict_wasted_attempts": conflict.metrics.wasted_attempts(),
        "conflict_mean_queueing_delay_us": round(
            sched.mean_queueing_delay_us(), 3),
        **{f"conflict_{k}": round(v, 3) if isinstance(v, float) else v
           for k, v in conflict.perf_summary().items()
           if not isinstance(v, dict)},
    })


def test_fifo_scheduler_run_reports_hot_path_health(benchmark):
    """The mediated fifo path is the new default dispatch loop; its
    event rate is the regression-tracked hot-path figure."""
    result = benchmark.pedantic(run_cell, args=(0.9, "fifo"),
                                rounds=1, iterations=1)
    assert result.wall_seconds > 0.0
    assert result.metrics.events_per_wall_second() > 0.0
    summary = result.metrics.scheduler_summary()
    assert summary.scheduler == "fifo"
    assert summary.deferrals == 0 and summary.sheds == 0
    benchmark.extra_info.update(
        {k: round(v, 3) if isinstance(v, float) else v
         for k, v in result.perf_summary().items()
         if not isinstance(v, dict)})


if __name__ == "__main__":
    main()
