"""Tracing overhead: bit-identical on sim, bounded cost on mp.

The observability layer (:mod:`repro.obs`) rides the hottest paths in
the codebase — every executor phase, the commit FSM, the wire loop —
so its cost contract is part of the perf surface and gets its own
bench:

* **Sim cell** — the same TPC-C cell three times: tracing off twice
  (determinism floor) and tracing on.  All three must produce the
  *same* commits, aborts, event count, and end time: span recording is
  pure Python bookkeeping (no effects, no RNG draws), so the
  discrete-event stream cannot move.  This is the bit-identical
  guarantee the figure sweeps rely on.

* **mp cell** — the wire-path YCSB workload on real worker processes,
  tracing off vs on (sample_every=1, the worst case: every
  transaction's spans recorded and every hot-verb frame carrying the
  8-byte trace id).  Events/sec here is wall-clock and noisy on shared
  CI hardware, so the cell asserts a conservative floor and *records*
  the measured ratio; set ``REPRO_TRACE_TARGET=0.95`` on dedicated
  hardware to enforce the <5% overhead target as a hard assertion.
  The tracing-off rate is the regression-tracked figure (see
  BENCH_BASELINE.json).

CLI (CI smoke runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --quick
"""

from __future__ import annotations

import os
import sys

from repro.bench import RunConfig, install_summary_json
from repro.bench.setups import make_tpcc_run, make_ycsb_run
from repro.obs.export import trace_tree
from repro.workloads.ycsb import YcsbWorkload


def sim_cell_config(trace: bool) -> RunConfig:
    return RunConfig(n_partitions=4, concurrent_per_engine=4,
                     horizon_us=5_000.0, warmup_us=500.0, seed=3,
                     n_replicas=1, trace=trace)


def run_sim_cell(trace: bool):
    return make_tpcc_run("2pl", sim_cell_config(trace)).run()


def sim_digest(result) -> tuple:
    """Everything tracing could have perturbed, in one comparable
    tuple: the committed/aborted work, the simulator's event count,
    and the exact quiescence time."""
    metrics = result.metrics
    return (metrics.commits, metrics.aborts, metrics.attempts,
            metrics.events_processed, result.end_time)


def mp_cell_config(trace: bool, quick: bool = False) -> RunConfig:
    return RunConfig(n_partitions=2, concurrent_per_engine=4,
                     horizon_us=150_000.0 if quick else 400_000.0,
                     warmup_us=0.0, seed=11, n_replicas=1, backend="mp",
                     trace=trace, mp_run_timeout_s=180.0)


def run_mp_cell(trace: bool, quick: bool = False):
    workload = YcsbWorkload(n_keys=2_000, reads_per_txn=8,
                            writes_per_txn=2)
    return make_ycsb_run("2pl", mp_cell_config(trace, quick),
                         workload=workload).run()


def main(argv=None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    args, flush_summaries = install_summary_json(args)
    quick = "--quick" in args
    try:
        off = sim_digest(run_sim_cell(False))
        on_result = run_sim_cell(True)
        on = sim_digest(on_result)
        spans = len(on_result.metrics.trace.spans)
        verdict = "IDENTICAL" if off == on else "DIVERGED"
        print(f"sim cell tracing off vs on: {verdict} "
              f"(commits={off[0]}, events={off[3]}, "
              f"{spans} spans recorded)")

        base = run_mp_cell(False, quick=quick)
        traced = run_mp_cell(True, quick=quick)
        base_rate = base.metrics.events_per_wall_second()
        traced_rate = traced.metrics.events_per_wall_second()
        print(f"mp cell events/s: off {base_rate:,.0f} "
              f"on {traced_rate:,.0f} "
              f"({traced_rate / base_rate:.3f}x, "
              f"{len(traced.metrics.trace.spans)} spans on "
              f"{os.cpu_count()} cpu(s))")
    finally:
        flush_summaries()


# -- pytest-benchmark cells (perf-tracked in BENCH_BASELINE.json) -------------

def test_sim_tracing_is_bit_identical(benchmark):
    """The zero-perturbation cell: tracing on must not move a single
    simulator event — same commits, aborts, attempts, event count, and
    quiescence time as two independent tracing-off runs."""
    off_a = sim_digest(run_sim_cell(False))
    off_b = sim_digest(run_sim_cell(False))
    traced = benchmark.pedantic(run_sim_cell, args=(True,),
                                rounds=1, iterations=1)
    on = sim_digest(traced)

    assert off_a == off_b, \
        f"sim cell is not deterministic on its own: {off_a} vs {off_b}"
    assert on == off_a, \
        f"tracing perturbed the sim event stream: {on} vs {off_a}"

    trace = traced.metrics.trace
    assert trace is not None and len(trace.spans) > 0, \
        "the traced run must actually record spans"
    phases = {span[4] for span in trace.spans}
    assert "lock" in phases and "commit" in phases, phases

    benchmark.extra_info.update({
        "sim_commits": on[0],
        "sim_events": on[3],
        "spans_recorded": len(trace.spans),
        "spans_dropped": trace.dropped,
    })


def test_mp_tracing_overhead(benchmark):
    """The cost cell: worst-case tracing (every txn sampled, trace ids
    on every hot-verb frame) against the identical tracing-off run.
    The off rate is the perf-tracked figure; the on/off ratio is
    recorded, with a conservative floor here and a hard <5% target
    behind ``REPRO_TRACE_TARGET`` for dedicated hardware."""
    base = run_mp_cell(False, quick=True)
    traced = benchmark.pedantic(run_mp_cell, args=(True,),
                                kwargs={"quick": True},
                                rounds=1, iterations=1)

    assert base.metrics.commits > 0 and traced.metrics.commits > 0
    assert base.metrics.trace is None, \
        "tracing off must not allocate trace state"
    trace = traced.metrics.trace
    assert trace is not None and len(trace.spans) > 0

    # the cross-process guarantee: coordinator- and participant-side
    # spans of one transaction stitch under one trace id
    tree = trace_tree(trace.spans)
    stitched = [t for t, spans in tree.items()
                if len({span[3] for span in spans}) > 1]
    assert stitched, \
        "no trace crossed the worker boundary in a 2-partition cell"

    base_rate = base.metrics.events_per_wall_second()
    traced_rate = traced.metrics.events_per_wall_second()
    ratio = traced_rate / base_rate
    assert ratio >= 0.5, (
        f"tracing collapsed mp throughput to {ratio:.2f}x "
        f"({traced_rate:,.0f} vs {base_rate:,.0f} events/s)")
    target = float(os.environ.get("REPRO_TRACE_TARGET", "0") or 0.0)
    if target:
        assert ratio >= target, (
            f"tracing-on reached {ratio:.2f}x of tracing-off, target "
            f"{target:.2f}x ({traced_rate:,.0f} vs {base_rate:,.0f} "
            f"events/s on {os.cpu_count()} cpus)")

    benchmark.extra_info.update({
        "tracing_off_events_per_second": round(base_rate),
        "tracing_on_events_per_second": round(traced_rate),
        "tracing_on_vs_off": round(ratio, 3),
        "spans_recorded": len(trace.spans),
        "traces_stitched_across_workers": len(stitched),
        "cpus": os.cpu_count(),
    })


if __name__ == "__main__":
    main()
