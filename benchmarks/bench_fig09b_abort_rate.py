"""Fig. 9b — TPC-C abort rate vs concurrency.

Paper result: 2PL's and OCC's abort rates climb steeply with the number
of concurrent transactions per warehouse; Chiller's stays near zero
because the two contention points live in inner regions whose lock
spans are microscopic.
"""

from repro.bench.experiments import fig9_rows, print_fig9b


def run_sweep():
    return fig9_rows(concurrency=(1, 4, 8), quick=True)


def test_fig09b_abort_shape(once):
    rows = once(run_sweep)
    print_fig9b(rows)
    by_conc = {row["concurrent"]: row for row in rows}
    assert by_conc[8]["2pl_abort_rate"] > 0.5
    assert by_conc[8]["occ_abort_rate"] > 0.5
    assert by_conc[8]["chiller_abort_rate"] < 0.15
    # 2PL degrades monotonically with concurrency
    assert (by_conc[8]["2pl_abort_rate"]
            > by_conc[4]["2pl_abort_rate"]
            > by_conc[1]["2pl_abort_rate"])
