"""Section 7.2.2 — partitioner cost: Schism ~5x slower than Chiller.

The star representation stores n edges per n-record transaction versus
Schism's n(n-1)/2 clique, so graph construction plus min-cut is several
times cheaper.  Two benchmark entries so pytest-benchmark's comparison
table shows the gap directly.
"""

import pytest

from repro.bench.setups import build_instacart_setup
from repro.core import ChillerPartitionerConfig, partition_workload
from repro.partitioning import SchismConfig, partition_schism


@pytest.fixture(scope="module")
def setup():
    return build_instacart_setup(4, n_train=1200)


def test_cost_chiller_star_cut(benchmark, setup):
    result = benchmark.pedantic(
        partition_workload, args=(setup.samples, setup.likelihoods, 4),
        kwargs={"config": ChillerPartitionerConfig(seed=2)},
        rounds=1, iterations=1)
    print(f"\nstar graph edges: {result.star.graph.n_edges}")
    assert result.lookup_table_size() > 0


def test_cost_schism_clique_cut(benchmark, setup):
    result = benchmark.pedantic(
        partition_schism, args=(setup.samples, 4),
        kwargs={"config": SchismConfig(seed=2)},
        rounds=1, iterations=1)
    print(f"\nco-access graph edges: {result.n_edges}")
    assert result.lookup_table_size() > 0


def test_cost_edge_count_gap(setup):
    """Structural part of the claim, independent of wall time."""
    from repro.core import build_star_graph
    from repro.partitioning import build_coaccess_graph
    star = build_star_graph(setup.samples, setup.likelihoods)
    clique, _ = build_coaccess_graph(setup.samples)
    assert clique.n_edges > 3 * star.graph.n_edges
