"""Microbenchmark of the EffectRuntime's doorbell-batching path.

A multi-key YCSB workload spread over four partitions issues wide
parallel rounds (8 reads + 2 read-modify-writes per transaction), the
shape doorbell batching targets: several one-sided verbs to the same
destination inside one ``All``.  We run the identical workload with
batching off and on and require a measurable simulated-latency
reduction — the coordinator posts one fused chain per destination
instead of per-verb doorbells, so per-round CPU drops and the saved
cycles shorten the queueing delay every concurrent transaction sees.

The batched run also persists the harness's hot-path health figures
(wall seconds, simulator events processed) via ``extra_info`` so the
BENCH_*.json history tracks Python-level perf regressions.
"""

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, TwoPLExecutor
from repro.workloads.ycsb import YcsbWorkload


def run_ycsb(doorbell_batching: bool, seed: int = 11):
    workload = YcsbWorkload(n_keys=2_000, reads_per_txn=8,
                            writes_per_txn=2)
    config = RunConfig(n_partitions=4, concurrent_per_engine=4,
                       horizon_us=6_000.0, warmup_us=1_000.0, seed=seed,
                       n_replicas=1,
                       doorbell_batching=doorbell_batching)
    cluster = Cluster(config.n_partitions, config.network_config())
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(config.n_partitions,
                                   HashScheme(config.n_partitions)),
                  workload.tables(), registry,
                  n_replicas=config.n_replicas)
    workload.populate(db.loader())
    return run_benchmark(workload, TwoPLExecutor(db), config)


def test_doorbell_batching_reduces_latency(benchmark):
    baseline = run_ycsb(doorbell_batching=False)
    batched = benchmark.pedantic(run_ycsb, args=(True,),
                                 rounds=1, iterations=1)

    stats = batched.database.cluster.network.stats
    assert stats.one_sided_batches > 0, "no fused round trips were issued"
    assert stats.one_sided_batched_verbs > 2 * stats.one_sided_batches

    base_lat = baseline.metrics.mean_latency()
    batch_lat = batched.metrics.mean_latency()
    assert batch_lat < base_lat, (
        f"batching should cut mean latency: {batch_lat:.2f}us "
        f"vs {base_lat:.2f}us unbatched")
    assert batched.throughput >= baseline.throughput

    benchmark.extra_info.update({
        "unbatched_mean_latency_us": round(base_lat, 3),
        "batched_mean_latency_us": round(batch_lat, 3),
        "unbatched_throughput": round(baseline.throughput),
        "batched_throughput": round(batched.throughput),
        "fused_round_trips": stats.one_sided_batches,
        "fused_verbs": stats.one_sided_batched_verbs,
        **{f"batched_{k}": round(v, 3) if isinstance(v, float) else v
           for k, v in batched.perf_summary().items()},
    })


def test_unbatched_run_reports_hot_path_health(benchmark):
    """The harness now measures its own Python hot path every run."""
    result = benchmark.pedantic(run_ycsb, args=(False,),
                                rounds=1, iterations=1)
    assert result.wall_seconds > 0.0
    assert result.events_processed > 0
    assert result.metrics.events_per_wall_second() > 0.0
    benchmark.extra_info.update(
        {k: round(v, 3) if isinstance(v, float) else v
         for k, v in result.perf_summary().items()})
