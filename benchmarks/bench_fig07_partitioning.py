"""Fig. 7 — throughput of Hashing vs Schism vs Chiller on Instacart.

Paper result: Schism beats hashing (~+50%) but neither scales with the
number of partitions; Chiller is highest and scales almost linearly.
This bench regenerates a scaled-down sweep and asserts the ordering.
Full-resolution sweep: ``python -m repro.bench.experiments fig7``.
"""

from repro.bench.experiments import instacart_sweep, print_fig7
from repro.workloads.instacart import InstacartWorkload


def small_catalog():
    # coverage-appropriate catalog for the quick training trace
    return InstacartWorkload(n_products=2000, tail_exponent=0.9)


def run_sweep():
    return instacart_sweep(partitions=(2, 4, 8), n_train=1200,
                           quick=True, workload_factory=small_catalog)


def test_fig07_throughput_ordering(once):
    rows = once(run_sweep)
    print_fig7(rows)
    last = rows[-1]
    # Chiller wins at scale...
    assert last["chiller_throughput"] > last["schism_throughput"]
    assert last["chiller_throughput"] > last["hashing_throughput"]
    # ...and actually scales across the sweep
    first = rows[0]
    chiller_scaling = (last["chiller_throughput"]
                       / first["chiller_throughput"])
    hashing_scaling = (last["hashing_throughput"]
                       / first["hashing_throughput"])
    assert chiller_scaling > hashing_scaling
