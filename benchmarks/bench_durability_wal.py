"""Durability-cost benchmark: the WAL grid on the mp fast path.

One cell per WAL mode over the same multi-key YCSB workload as
``bench_wire_path.py`` (shm rings + packed frames, real worker
processes):

* ``off``   — the baseline; the commit FSM runs but logs nothing.
* ``fsync`` — every append forces a disk sync: the paper-strict
  durability bound, dominated by fsync latency on the commit path.
* ``group`` — group commit: appends are flushed to the OS buffer
  (enough to survive a SIGKILL'd worker, which is what the recovery
  path defends against) and fsync'd every ``wal_group_size`` records;
  only the coordinator's commit decision forces a sync.

The perf-tracked cell checks the headline claim: group-commit
durability costs at most 25% of wal-off throughput on the mp backend.
Wall-clock comparability caveats are the same as bench_wire_path.py —
single-core containers are noisy and the quick horizon under-amortises
the per-worker WAL file setup, so the cell runs the full horizon,
asserts a conservative in-test floor (group at least 0.6x of wal-off)
and *records* the measured ratio; set ``REPRO_WAL_TARGET=0.75`` on
dedicated hardware to enforce the 25%-overhead bound as a hard
assertion.

CLI (full grid; CI smoke runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_durability_wal.py --quick
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.bench import RunConfig, install_summary_json
from repro.bench.setups import make_ycsb_run
from repro.workloads.ycsb import YcsbWorkload

WAL_GRID = ("off", "fsync", "group")


def wal_cell_config(wal: str, wal_dir: str | None,
                    quick: bool = False) -> RunConfig:
    return RunConfig(n_partitions=2, concurrent_per_engine=4,
                     horizon_us=150_000.0 if quick else 400_000.0,
                     warmup_us=0.0, seed=11, n_replicas=1, backend="mp",
                     mp_transport="shm", mp_codec="packed",
                     wal=wal, wal_dir=wal_dir,
                     mp_run_timeout_s=180.0)


def run_wal_cell(wal: str, quick: bool = False):
    workload = YcsbWorkload(n_keys=2_000, reads_per_txn=8,
                            writes_per_txn=2)
    with tempfile.TemporaryDirectory(prefix="repro-walbench-") as wal_dir:
        config = wal_cell_config(wal, wal_dir if wal != "off" else None,
                                 quick)
        return make_ycsb_run("2pl", config, workload=workload).run()


def grid_rows(quick: bool = False) -> list[dict]:
    rows = []
    for wal in WAL_GRID:
        result = run_wal_cell(wal, quick)
        recovery = result.metrics.recovery_stats
        rows.append({
            "wal": wal,
            "commits": result.metrics.commits,
            "events_per_second": result.metrics.events_per_wall_second(),
            "wal_appends": 0 if recovery is None else recovery.wal_appends,
            "wal_fsyncs": 0 if recovery is None else recovery.wal_fsyncs,
        })
    return rows


def print_rows(rows: list[dict]) -> None:
    print("\n== durability cost: WAL mode grid (mp, shm+packed) ==")
    print(f"{'wal':>6} {'commits':>8} {'events/s':>10} "
          f"{'appends':>8} {'fsyncs':>7}")
    for row in rows:
        print(f"{row['wal']:>6} {row['commits']:>8} "
              f"{row['events_per_second']:>10,.0f} "
              f"{row['wal_appends']:>8} {row['wal_fsyncs']:>7}")
    base = next(r for r in rows if r["wal"] == "off")
    for row in rows:
        if row["wal"] != "off":
            ratio = row["events_per_second"] / base["events_per_second"]
            print(f"wal={row['wal']} runs at {ratio:.2f}x of wal-off")


# -- pytest-benchmark cell (perf-tracked in BENCH_BASELINE.json) --------------

def test_group_commit_wal_cell(benchmark):
    """Group-commit durability on the mp fast path, with wal-off as its
    in-test baseline: the WAL must actually write (appends + batched
    fsyncs observed) without collapsing throughput.  Runs the full
    horizon so the per-worker WAL setup cost is amortised."""
    baseline = run_wal_cell("off")
    durable = benchmark.pedantic(run_wal_cell, args=("group",),
                                 rounds=1, iterations=1)

    assert durable.metrics.commits > 0
    recovery = durable.metrics.recovery_stats
    assert recovery is not None and recovery.wal_appends > 0
    # group commit batches: far fewer syncs than appends
    assert recovery.wal_fsyncs < recovery.wal_appends
    assert baseline.metrics.recovery_stats is None or \
        baseline.metrics.recovery_stats.wal_appends == 0

    base_rate = baseline.metrics.events_per_wall_second()
    wal_rate = durable.metrics.events_per_wall_second()
    ratio = wal_rate / base_rate
    assert ratio >= 0.6, (
        f"group-commit WAL collapsed to {ratio:.2f}x of wal-off "
        f"({wal_rate:,.0f} vs {base_rate:,.0f} events/s)")
    target = float(os.environ.get("REPRO_WAL_TARGET", "0") or 0.0)
    if target:
        assert ratio >= target, (
            f"group-commit WAL costs more than allowed: {ratio:.2f}x of "
            f"wal-off, target {target:.2f}x ({wal_rate:,.0f} vs "
            f"{base_rate:,.0f} events/s)")

    benchmark.extra_info.update({
        "events_per_wall_second": round(wal_rate),
        "wal_off_events_per_second": round(base_rate),
        "wal_group_vs_off": round(ratio, 3),
        "wal_appends": recovery.wal_appends,
        "wal_fsyncs": recovery.wal_fsyncs,
    })


def main(argv=None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    args, flush_summaries = install_summary_json(args)
    try:
        print_rows(grid_rows(quick="--quick" in args))
    finally:
        flush_summaries()


if __name__ == "__main__":
    main()
