"""Fig. 8 — ratio of distributed transactions per partitioning scheme.

Paper result: Schism is lowest (it optimizes exactly this); Chiller has
noticeably more distributed transactions (~60% more at 2 partitions),
with the gap narrowing as partitions increase — and yet wins on
throughput (Fig. 7): the paper's core argument that minimizing
distributed transactions is the wrong objective on fast networks.
"""

from repro.bench.experiments import instacart_sweep, print_fig8
from repro.workloads.instacart import InstacartWorkload


def small_catalog():
    # a catalog the 1200-basket quick trace can actually cover: without
    # coverage Schism places unseen records by fallback and its
    # locality advantage disappears into noise
    return InstacartWorkload(n_products=2000, tail_exponent=0.9)


def run_sweep():
    return instacart_sweep(partitions=(2, 4, 8), n_train=1200,
                           quick=True, workload_factory=small_catalog)


def test_fig08_distributed_ratio_ordering(once):
    rows = once(run_sweep)
    print_fig8(rows)
    for row in rows:
        # Schism has the fewest distributed transactions...
        assert (row["schism_distributed"]
                <= row["hashing_distributed"] + 0.02)
        assert (row["schism_distributed"]
                <= row["chiller_distributed"] + 0.02)
    # ...with a clear gap at few partitions (paper: ~60% more for
    # Chiller at 2 partitions)
    assert (rows[0]["chiller_distributed"]
            > rows[0]["schism_distributed"] + 0.1)
    # ...narrowing as partitions increase
    first_gap = rows[0]["chiller_distributed"] - rows[0]["schism_distributed"]
    last_gap = rows[-1]["chiller_distributed"] - rows[-1]["schism_distributed"]
    assert last_gap <= first_gap + 0.05
