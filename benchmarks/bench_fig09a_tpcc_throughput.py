"""Fig. 9a — TPC-C throughput vs concurrent transactions per warehouse.

Paper result: at 1 concurrent transaction 2PL and Chiller are on par;
as concurrency rises, 2PL and OCC decline (contention on the district
counter and the warehouse ytd) while Chiller keeps climbing until its
cores saturate.  OCC is the worst hit (wasted work on validation-time
aborts).
"""

from repro.bench.experiments import fig9_rows, print_fig9a


def run_sweep():
    return fig9_rows(concurrency=(1, 4, 8), quick=True)


def test_fig09a_throughput_shape(once):
    rows = once(run_sweep)
    print_fig9a(rows)
    by_conc = {row["concurrent"]: row for row in rows}
    # near-parity at 1 concurrent transaction
    ratio = (by_conc[1]["chiller_throughput"]
             / by_conc[1]["2pl_throughput"])
    assert 0.5 < ratio < 1.5
    # at high concurrency Chiller wins big; 2PL beats OCC
    assert (by_conc[8]["chiller_throughput"]
            > 1.5 * by_conc[8]["2pl_throughput"])
    assert by_conc[8]["2pl_throughput"] > by_conc[8]["occ_throughput"]
    # Chiller gains from concurrency; 2PL loses
    assert (by_conc[8]["chiller_throughput"]
            > by_conc[1]["chiller_throughput"])
    assert by_conc[8]["2pl_throughput"] < by_conc[1]["2pl_throughput"]
