"""Ablation — re-ordering without contention-aware partitioning.

The paper's Section 1: "re-ordering operations without re-considering
the partitioning scheme only leads to limited performance improvements;
the challenge lies in optimizing both at the same time."  We run
two-region execution over the hashing and Schism layouts and compare
with full Chiller.
"""

from repro.bench.experiments import print_reorder, reorder_ablation_rows


def run_ablation():
    return reorder_ablation_rows(n_train=800, quick=True)


def test_reorder_only_is_not_enough(once):
    rows = once(run_ablation)
    print_reorder(rows)
    by_label = {row["label"]: row for row in rows}
    full = by_label["full Chiller"]["throughput"]
    reorder_hash = by_label["two-region on hashing"]["throughput"]
    plain = by_label["2PL on hashing"]["throughput"]
    # the full system beats plain 2PL decisively...
    assert full > 1.1 * plain
    # ...and is at least competitive with reorder-only (on our
    # synthetic calibration the execution model carries most of the
    # gain; see EXPERIMENTS.md for the honest comparison)
    assert full >= 0.85 * reorder_hash
