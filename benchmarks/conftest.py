"""Shared benchmark configuration.

Every benchmark regenerates (a scaled-down cell of) one of the paper's
tables or figures; the full sweeps live behind
``python -m repro.bench.experiments``.  ``rounds=1`` everywhere: each
"iteration" is a whole simulated experiment, not a microsecond kernel.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a whole-experiment callable exactly once under timing."""
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return run
