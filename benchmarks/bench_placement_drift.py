"""Workload-drift benchmark: adaptive placement vs a stale layout.

The adaptive-placement subsystem's acceptance figure — and the first
benchmark in the repo where the *workload changes under the system*.
A group-structured YCSB workload (every transaction's keys come from
one zipf-ranked key group) runs over a layout trained offline on the
pre-shift distribution, exactly like Chiller's offline partitioner
would produce.  Mid-run the hot set rotates: previously cold groups
become the traffic, and the trained layout degenerates to scattered,
multi-partition transactions.

``--placement static`` (the paper's offline model) stays degraded for
the rest of the run.  ``--placement adaptive`` closes the loop: access
telemetry feeds the periodic star-graph re-partition, and the
migration executor moves the new hot groups — a bounded top-K budget
per epoch, each move an ordinary locking transaction — until the new
hot set is co-located again and throughput recovers.

CLI (the EXPERIMENTS.md figure; CI runs `--quick` on sim and mp)::

    PYTHONPATH=src python benchmarks/bench_placement_drift.py
    PYTHONPATH=src python benchmarks/bench_placement_drift.py --quick
    PYTHONPATH=src python benchmarks/bench_placement_drift.py --quick --backend mp

The pytest-benchmark cell (regression-tracked in BENCH_BASELINE.json)
asserts the headline result: after the shift, adaptive placement
recovers at least half of the committed-txns/s gap between the
pre-shift rate and the degraded static rate.
"""

from __future__ import annotations

import sys

from repro.analysis import ProcedureRegistry
from repro.bench import (RunConfig, build_database,
                         install_summary_json, run_benchmark)
from repro.bench.harness import mp_benchmark_driver, run_mp_benchmark
from repro.core import (ChillerPartitionerConfig, HotRecordTable,
                        StatsService, partition_workload,
                        sample_from_request)
from repro.partitioning import HashScheme
from repro.placement import PlacementSpec
from repro.sim import MpRunSpec, current_worker_cluster
from repro.storage import Catalog
from repro.txn import TwoPLExecutor
from repro.workloads.ycsb import DriftingYcsbWorkload

N_PARTITIONS = 4
N_GROUPS = 96
GROUP_SIZE = 8
ZIPF_EXPONENT = 1.4
"""Head-heavy ranks: the hot head dominates traffic, and the offline
trace barely observes the tail — so the post-shift hot set (drawn
from yesterday's tail) is genuinely unplaced, as in production."""

TRAIN_SAMPLES = 300
TRAIN_SEED = 23


def drift_shape(quick: bool = False) -> dict:
    """The run's time geometry: horizon, shift instant, windows."""
    horizon = 14_000.0 if quick else 30_000.0
    shift = 0.4 * horizon
    return {
        "horizon_us": horizon,
        "shift_at_us": shift,
        "pre_window": (1_500.0, shift),
        # measure well after the shift so the adaptive arm's migration
        # epochs have run; the static arm is flat, so a late window
        # only makes the comparison fairer to it
        "post_window": (shift + 0.3 * (horizon - shift), horizon),
    }


def drift_config(quick: bool = False, backend: str = "sim",
                 placement: str = "static", seed: int = 19) -> RunConfig:
    shape = drift_shape(quick)
    spec: object = placement
    if placement == "adaptive":
        # YCSB footprints are tiny (6 records), so the planner can
        # afford a much larger window than its TPC-C-safe defaults
        spec = PlacementSpec(kind="adaptive",
                             epoch_us=1_000.0 if quick else 1_500.0,
                             max_moves_per_epoch=32,
                             min_window_commits=12,
                             min_gain=6.0,
                             plan_sample_cap=512,
                             plan_record_cap=2_048)
    return RunConfig(n_partitions=N_PARTITIONS, concurrent_per_engine=4,
                     horizon_us=shape["horizon_us"], warmup_us=1_500.0,
                     seed=seed, n_replicas=1, route_by_data=True,
                     backend=backend, placement=spec)


class _DriftRun:
    """The run-object contract both in-process and mp paths expect."""

    def __init__(self, workload, database, executor, config, mp_spec=None):
        self.workload = workload
        self.database = database
        self.executor = executor
        self.config = config
        self.mp_spec = mp_spec

    def run(self):
        if self.mp_spec is not None:
            return run_mp_benchmark(self.mp_spec, self.config,
                                    database=self.database)
        return run_benchmark(self.workload, self.executor, self.config)


def trained_hot_table(workload: DriftingYcsbWorkload,
                      n_partitions: int) -> HotRecordTable:
    """Train the initial layout offline on the *pre-shift* trace.

    Every observed record's placement is kept (Schism-style full
    table) so the trained layout genuinely co-locates yesterday's hot
    groups; unobserved records fall through to hash.
    """
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    stats = StatsService(sample_rate=1.0, lock_window_us=10.0)
    for request in workload.trace(TRAIN_SAMPLES, n_partitions,
                                  phase="pre", seed=TRAIN_SEED):
        stats.record(sample_from_request(registry, request))
    likelihoods = stats.likelihoods_from_txn_rate(
        100_000.0 * n_partitions)
    partitioning = partition_workload(
        stats.samples, likelihoods, n_partitions,
        ChillerPartitionerConfig(eps=0.15, seed=TRAIN_SEED,
                                 keep_all_records=True))
    return HotRecordTable(partitioning.record_assignment)


def build_drift_run(config: RunConfig, quick: bool = False) -> _DriftRun:
    """Module-level (mp-picklable) builder for one drift cell.

    Both arms build the identical pre-shift-trained layout; only
    ``config.placement`` differs.
    """
    shape = drift_shape(quick)
    workload = DriftingYcsbWorkload(n_groups=N_GROUPS,
                                    group_size=GROUP_SIZE,
                                    reads_per_txn=4, writes_per_txn=2,
                                    zipf_exponent=ZIPF_EXPONENT,
                                    shift_at_us=shape["shift_at_us"])
    hot_table = trained_hot_table(workload, config.n_partitions)
    catalog = Catalog(config.n_partitions,
                      hot_table.live_scheme(HashScheme(config.n_partitions)))
    db, cluster = build_database(workload, catalog, config)
    workload.bind_clock(lambda: cluster.sim.now)
    executor = TwoPLExecutor(db)
    run = _DriftRun(workload, db, executor, config)
    if config.backend == "mp" and current_worker_cluster() is None:
        run.mp_spec = MpRunSpec(builder=build_drift_run,
                                args=(config,), kwargs={"quick": quick},
                                driver=mp_benchmark_driver)
    return run


def run_cell(placement: str, quick: bool = False, backend: str = "sim",
             seed: int = 19):
    config = drift_config(quick, backend, placement, seed)
    return build_drift_run(config, quick=quick).run()


def windowed_throughputs(result, quick: bool = False) -> dict:
    shape = drift_shape(quick)
    metrics = result.metrics
    return {
        "pre": metrics.throughput(*shape["pre_window"]),
        "post": metrics.throughput(*shape["post_window"]),
    }


def drift_rows(quick: bool = False, backend: str = "sim") -> list[dict]:
    rows = []
    for placement in ("static", "adaptive"):
        result = run_cell(placement, quick, backend)
        windows = windowed_throughputs(result, quick)
        placement_stats = result.metrics.placement_stats
        rows.append({
            "placement": placement,
            "pre_throughput": windows["pre"],
            "post_throughput": windows["post"],
            "abort_rate": result.metrics.abort_rate(),
            "moves_applied": (placement_stats.moves_applied
                              if placement_stats else 0),
            "epochs": placement_stats.epochs if placement_stats else 0,
        })
    return rows


def recovery_fraction(rows: list[dict]) -> float:
    """How much of the (pre-shift - degraded-static) gap adaptive wins
    back in the post-shift window."""
    static = next(r for r in rows if r["placement"] == "static")
    adaptive = next(r for r in rows if r["placement"] == "adaptive")
    gap = static["pre_throughput"] - static["post_throughput"]
    if gap <= 0:
        return 1.0  # nothing degraded: nothing to recover
    return (adaptive["post_throughput"]
            - static["post_throughput"]) / gap


def print_rows(rows: list[dict]) -> None:
    print("\n== Placement drift: hot set shifts mid-run "
          "(K committed txns/s) ==")
    print(f"{'placement':>9} {'pre-shift':>10} {'post-shift':>11} "
          f"{'moves':>6} {'epochs':>7}")
    for row in rows:
        print(f"{row['placement']:>9} "
              f"{row['pre_throughput'] / 1e3:>9.0f}K "
              f"{row['post_throughput'] / 1e3:>10.0f}K "
              f"{row['moves_applied']:>6d} {row['epochs']:>7d}")
    print(f"gap recovered by adaptive placement: "
          f"{recovery_fraction(rows):.0%}")


def main(argv=None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    args, flush_summaries = install_summary_json(args)
    quick = "--quick" in args
    backend = "sim"
    for i, arg in enumerate(args):
        if arg == "--backend" and i + 1 < len(args):
            backend = args[i + 1]
        elif arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
    if backend != "sim":
        print(f"(backend {backend}: wall-clock figures — see "
              f"EXPERIMENTS.md; sim figures are the calibrated ones)")
    try:
        print_rows(drift_rows(quick=quick, backend=backend))
    finally:
        flush_summaries()


# -- pytest-benchmark cells (perf-tracked in BENCH_BASELINE.json) -------------

def test_adaptive_placement_recovers_after_drift(benchmark):
    """The acceptance cell: after the mid-run hot-set shift, adaptive
    placement must win back >= 50% of the committed-txns/s gap between
    the pre-shift rate and the degraded static rate."""
    static = run_cell("static")
    adaptive = benchmark.pedantic(run_cell, args=("adaptive",),
                                  rounds=1, iterations=1)

    placement_stats = adaptive.metrics.placement_stats
    assert placement_stats is not None
    assert placement_stats.moves_applied > 0, \
        "the drifted hot set must trigger migrations"
    assert static.metrics.placement_stats is None, \
        "the static arm must not grow a controller"

    rows = []
    for placement, result in (("static", static), ("adaptive", adaptive)):
        windows = windowed_throughputs(result)
        rows.append({"placement": placement,
                     "pre_throughput": windows["pre"],
                     "post_throughput": windows["post"]})
    static_row = rows[0]
    assert static_row["post_throughput"] < static_row["pre_throughput"], \
        "the shift must degrade the trained static layout"
    recovered = recovery_fraction(rows)
    assert recovered >= 0.5, (
        f"adaptive placement must recover >= 50% of the drift gap, "
        f"got {recovered:.0%} "
        f"(static {static_row['pre_throughput']:.0f} -> "
        f"{static_row['post_throughput']:.0f}, adaptive post "
        f"{rows[1]['post_throughput']:.0f} txns/s)")

    benchmark.extra_info.update({
        "static_pre_throughput": round(static_row["pre_throughput"]),
        "static_post_throughput": round(static_row["post_throughput"]),
        "adaptive_post_throughput": round(rows[1]["post_throughput"]),
        "recovered_fraction": round(recovered, 3),
        "moves_applied": placement_stats.moves_applied,
        **{k: round(v, 3) if isinstance(v, float) else v
           for k, v in adaptive.perf_summary().items()
           if not isinstance(v, dict)},
    })


def test_static_drift_run_reports_hot_path_health(benchmark):
    """The static arm doubles as the subsystem's hot-path cell: its
    event rate is regression-tracked like the other benchmarks."""
    result = benchmark.pedantic(run_cell, args=("static",),
                                rounds=1, iterations=1)
    assert result.wall_seconds > 0.0
    assert result.metrics.events_per_wall_second() > 0.0
    assert result.metrics.placement_stats is None
    benchmark.extra_info.update(
        {k: round(v, 3) if isinstance(v, float) else v
         for k, v in result.perf_summary().items()
         if not isinstance(v, dict)})


if __name__ == "__main__":
    main()
