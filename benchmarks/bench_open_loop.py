"""Open-loop saturation sweep: the latency-vs-offered-load knee figure.

The traffic subsystem's acceptance figure.  A YCSB workload is driven
*open-loop* (:mod:`repro.traffic`): requests enter on a seeded Poisson
schedule at a configured offered load whether or not the system keeps
up, and latency is measured from the **scheduled** arrival — so
queueing delay under overload lands in the percentiles instead of
being absorbed by a polite closed-loop generator (coordinated
omission).  Swept: offered load × {fifo, conflict} scheduler ×
{static, adaptive} placement.  Below the saturation knee p50/p99 sit
near the service time; past it they grow without bound — the shape the
closed-loop figures structurally cannot show.

A second cell rides the ``tenants`` mix past the knee (1.5× the knee
load) and asserts the point of deadline-aware admission
(:class:`repro.sched.DeadlineAdmission`): shedding the least valuable
work first keeps the high-priority tenant's SLO attainment ≥ 90% while
admit-everything drowns every tenant equally.

CLI (the EXPERIMENTS.md figure; CI runs ``--quick`` on sim and mp)::

    PYTHONPATH=src python benchmarks/bench_open_loop.py
    PYTHONPATH=src python benchmarks/bench_open_loop.py --quick
    PYTHONPATH=src python benchmarks/bench_open_loop.py --quick --backend mp

pytest-benchmark cells (regression-tracked in BENCH_BASELINE.json via
``check_perf_regression.py``; the ``*_latency_us`` figures gate
lower-is-better) assert the knee shape and the SLO protection result
on the deterministic sim backend.
"""

from __future__ import annotations

import sys

from repro.bench import RunConfig, install_summary_json
from repro.bench.setups import make_ycsb_run
from repro.traffic import ArrivalSpec

OFFERED_LOADS = (100_000.0, 200_000.0, 400_000.0, 800_000.0, 1_200_000.0)
QUICK_LOADS = (100_000.0, 400_000.0, 1_200_000.0)
SCHEDULERS = ("fifo", "conflict")
PLACEMENTS = (None, "adaptive")
DEADLINE_US = 4_000.0
KNEE_LOAD = 600_000.0
"""Operational knee of this YCSB cell on the sim backend: the lowest
offered load whose p99 exceeds twice the low-load p99 lies between
400k/s (p99 within 2x) and 800k/s (well past 2x)."""

ADMISSION_LOAD = 1.5 * KNEE_LOAD
"""The SLO-protection cell runs at 1.5x the knee."""


def open_loop_config(offered_load: float, quick: bool = False,
                     backend: str = "sim", scheduler: str | None = None,
                     placement: str | None = None,
                     process: str = "poisson",
                     admission: str = "none",
                     deadline_us: float = DEADLINE_US,
                     seed: int = 13) -> RunConfig:
    return RunConfig(n_partitions=4,
                     horizon_us=8_000.0 if quick else 30_000.0,
                     warmup_us=1_000.0 if quick else 2_000.0,
                     seed=seed, n_replicas=1,
                     scheduler=scheduler, placement=placement,
                     backend=backend,
                     arrivals=ArrivalSpec(process=process,
                                          offered_load=offered_load,
                                          deadline_us=deadline_us,
                                          admission=admission))


def run_cell(offered_load: float, quick: bool = False,
             backend: str = "sim", scheduler: str | None = None,
             placement: str | None = None, process: str = "poisson",
             admission: str = "none",
             deadline_us: float = DEADLINE_US, seed: int = 13):
    config = open_loop_config(offered_load, quick, backend, scheduler,
                              placement, process, admission,
                              deadline_us, seed)
    return make_ycsb_run("2pl", config).run()


def sweep_rows(loads=OFFERED_LOADS, schedulers=SCHEDULERS,
               placements=PLACEMENTS, quick: bool = False,
               backend: str = "sim") -> list[dict]:
    rows = []
    for scheduler in schedulers:
        for placement in placements:
            for offered in loads:
                result = run_cell(offered, quick, backend, scheduler,
                                  placement)
                latency = result.metrics.open_loop.overall().summary()
                rows.append({
                    "scheduler": scheduler,
                    "placement": placement or "static",
                    "offered": offered,
                    "throughput": result.throughput,
                    "scheduled": result.metrics.open_loop.scheduled,
                    "shed": result.metrics.open_loop.shed,
                    "p50_us": latency["p50_us"],
                    "p99_us": latency["p99_us"],
                    "p999_us": latency["p999_us"],
                })
    return rows


def find_knee(rows: list[dict], factor: float = 2.0) -> float | None:
    """Lowest offered load whose p99 exceeds ``factor`` x the p99 at
    the lowest load of the same (scheduler, placement) series."""
    base = rows[0]["p99_us"]
    for row in rows:
        if row["p99_us"] > factor * base:
            return row["offered"]
    return None


def print_sweep(rows: list[dict]) -> None:
    print("\n== Open-loop saturation: latency vs offered load "
          "(p50/p99/p999 us from scheduled arrival) ==")
    print(f"{'sched':>8} {'placement':>9} {'offered/s':>10} "
          f"{'tput/s':>9} {'p50':>9} {'p99':>10} {'p999':>10}")
    series: dict[tuple, list[dict]] = {}
    for row in rows:
        series.setdefault((row["scheduler"], row["placement"]),
                          []).append(row)
    for (scheduler, placement), cells in series.items():
        for row in cells:
            print(f"{scheduler:>8} {placement:>9} {row['offered']:>10.0f} "
                  f"{row['throughput']:>9.0f} {row['p50_us']:>9.1f} "
                  f"{row['p99_us']:>10.1f} {row['p999_us']:>10.1f}")
        knee = find_knee(cells)
        print(f"{'':>8} {'':>9} knee (p99 > 2x base): "
              + (f"{knee:.0f}/s" if knee else "past sweep range"))


def admission_rows(quick: bool = False, backend: str = "sim",
                   offered: float = ADMISSION_LOAD) -> list[dict]:
    """Gold/standard SLO attainment at 1.5x knee, with and without
    deadline-aware admission."""
    rows = []
    for admission in ("none", "deadline"):
        result = run_cell(offered, quick, backend, process="tenants",
                          admission=admission)
        summary = result.metrics.open_loop.summary()
        for name, tenant in summary["tenants"].items():
            rows.append({"admission": admission, "tenant": name,
                         **tenant})
    return rows


def print_admission(rows: list[dict]) -> None:
    print(f"\n== Deadline admission at 1.5x knee "
          f"({ADMISSION_LOAD:.0f}/s, deadline {DEADLINE_US:.0f}us) ==")
    print(f"{'admission':>9} {'tenant':>9} {'scheduled':>9} {'shed':>7} "
          f"{'committed':>9} {'SLO':>6} {'p99 us':>10}")
    for row in rows:
        print(f"{row['admission']:>9} {row['tenant']:>9} "
              f"{row['scheduled']:>9} {row['shed']:>7} "
              f"{row['committed']:>9} {row['slo_attainment']:>6.3f} "
              f"{row['p99_us']:>10.1f}")


def main(argv=None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    args, flush_summaries = install_summary_json(args)
    quick = "--quick" in args
    backend = "sim"
    for i, arg in enumerate(args):
        if arg == "--backend" and i + 1 < len(args):
            backend = args[i + 1]
        elif arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
    if backend != "sim":
        print(f"(backend {backend}: wall-clock figures — the schedule "
              f"is identical but service times are this machine's; sim "
              f"figures are the calibrated ones)")
    loads = QUICK_LOADS if quick else OFFERED_LOADS
    schedulers = ("fifo",) if quick else SCHEDULERS
    placements = (None,) if quick else PLACEMENTS
    try:
        print_sweep(sweep_rows(loads=loads, schedulers=schedulers,
                               placements=placements, quick=quick,
                               backend=backend))
        print_admission(admission_rows(quick=quick, backend=backend))
    finally:
        flush_summaries()


# -- pytest-benchmark cells (perf-tracked in BENCH_BASELINE.json) -------------

def test_open_loop_saturation_knee(benchmark):
    """The knee cell: below the knee p99 stays within 2x of the
    low-load p99; past it latency is queueing-dominated (superlinear —
    orders of magnitude, not a constant factor)."""
    base = run_cell(100_000.0)
    below_knee = benchmark.pedantic(run_cell, args=(400_000.0,),
                                    rounds=1, iterations=1)
    overload = run_cell(1_200_000.0)

    base_lat = base.metrics.open_loop.overall().summary()
    below_lat = below_knee.metrics.open_loop.overall().summary()
    over_lat = overload.metrics.open_loop.overall().summary()
    assert below_lat["p99_us"] <= 2.0 * base_lat["p99_us"], (
        f"below the knee p99 must stay near the service time: "
        f"{below_lat['p99_us']:.1f} vs base {base_lat['p99_us']:.1f}")
    assert over_lat["p99_us"] > 10.0 * below_lat["p99_us"], (
        f"past the knee p99 must be queueing-dominated: "
        f"{over_lat['p99_us']:.1f} vs {below_lat['p99_us']:.1f}")
    assert over_lat["p50_us"] > base_lat["p99_us"], (
        "under overload even the median must exceed the unloaded tail "
        "(coordinated-omission-safe accounting)")

    benchmark.extra_info.update({
        "open_loop_base_p50_latency_us": base_lat["p50_us"],
        "open_loop_base_p99_latency_us": base_lat["p99_us"],
        "open_loop_below_knee_p99_latency_us": below_lat["p99_us"],
        "open_loop_below_knee_p999_latency_us": below_lat["p999_us"],
        "open_loop_overload_p50_over_base_p99":
            round(over_lat["p50_us"] / max(base_lat["p99_us"], 1e-9), 1),
        **{k: round(v, 3) if isinstance(v, float) else v
           for k, v in below_knee.perf_summary().items()
           if not isinstance(v, dict)},
    })


def test_deadline_admission_protects_high_priority(benchmark):
    """The SLO cell: at 1.5x the knee, deadline/priority-aware
    admission keeps the gold tenant >= 90% in-SLO; admit-everything
    drowns gold and standard alike."""
    unprotected = run_cell(ADMISSION_LOAD, process="tenants",
                           admission="none")
    protected = benchmark.pedantic(
        run_cell, args=(ADMISSION_LOAD,),
        kwargs={"process": "tenants", "admission": "deadline"},
        rounds=1, iterations=1)

    drowned = unprotected.metrics.open_loop.summary()["tenants"]
    shielded = protected.metrics.open_loop.summary()["tenants"]
    assert shielded["gold"]["slo_attainment"] >= 0.9, (
        f"deadline admission must hold the gold SLO at 1.5x knee: "
        f"{shielded['gold']['slo_attainment']:.3f}")
    assert drowned["gold"]["slo_attainment"] < 0.9, (
        f"without admission the gold tenant should drown: "
        f"{drowned['gold']['slo_attainment']:.3f}")
    assert (shielded["standard"]["shed"]
            > shielded["gold"]["shed"]), (
        "shedding must be by value: standard sheds more than gold")
    sheds = protected.metrics.scheduler_summary().summary()
    assert "tenant_sheds" in sheds, "typed per-tenant shed reasons"

    benchmark.extra_info.update({
        "gold_slo_attainment_protected":
            round(shielded["gold"]["slo_attainment"], 4),
        "gold_slo_attainment_unprotected":
            round(drowned["gold"]["slo_attainment"], 4),
        "standard_slo_attainment_protected":
            round(shielded["standard"]["slo_attainment"], 4),
        "gold_admitted_p99_latency_us": shielded["gold"]["p99_us"],
        **{k: round(v, 3) if isinstance(v, float) else v
           for k, v in protected.perf_summary().items()
           if not isinstance(v, dict)},
    })


if __name__ == "__main__":
    main()
