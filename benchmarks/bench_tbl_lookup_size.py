"""Section 7.2.2 — lookup table size: Schism ~10x larger than Chiller.

Chiller only stores placements for records above the contention
threshold; Schism must remember where every record it placed lives.
"""

from repro.bench.setups import build_instacart_layout, build_instacart_setup


def build_layouts():
    setup = build_instacart_setup(4, n_train=1200)
    schism = build_instacart_layout(setup, "schism")
    chiller = build_instacart_layout(setup, "chiller")
    return schism, chiller


def test_lookup_table_sizes(once):
    schism, chiller = once(build_layouts)
    print(f"\nSchism lookup entries:  {schism.lookup_table_size}")
    print(f"Chiller lookup entries: {chiller.lookup_table_size}")
    ratio = schism.lookup_table_size / max(1, chiller.lookup_table_size)
    print(f"ratio: {ratio:.1f}x (paper: ~10x)")
    assert chiller.lookup_table_size > 0
    assert ratio >= 5.0, "Chiller's lookup table should be ~10x smaller"
