"""Fig. 10 — impact of the fraction of distributed transactions.

Paper result (NewOrder+Payment 50/50, remote probability swept 0-100%):
2PL and OCC degrade steeply as more transactions cross partitions —
badly at 5 concurrent transactions where prolonged lock spans compound
conflicts; Chiller (5 concurrent) stays highest and degrades less than
20% end to end.
"""

from repro.bench.experiments import fig10_rows, print_fig10


def run_sweep():
    return fig10_rows(percents=(0, 50, 100), quick=True)


def test_fig10_degradation_shape(once):
    rows = once(run_sweep)
    print_fig10(rows)
    first, last = rows[0], rows[-1]
    # Chiller wins at every distribution level
    for row in rows:
        assert (row["chiller_5_throughput"]
                >= row["2pl_5_throughput"])
        assert (row["chiller_5_throughput"]
                >= row["occ_5_throughput"])
    # Chiller's end-to-end degradation is gentle (paper: < 20%; allow
    # some slack for the scaled-down simulation)
    chiller_drop = 1 - (last["chiller_5_throughput"]
                        / first["chiller_5_throughput"])
    assert chiller_drop < 0.35
    # the latency-bound baselines (1 concurrent txn: every remote
    # access directly extends the transaction) degrade much more.
    # 2PL(5)'s *relative* drop can look small only because contention
    # has already crushed its 0% point (Fig. 9a).
    twopl1_drop = 1 - last["2pl_1_throughput"] / first["2pl_1_throughput"]
    occ1_drop = 1 - last["occ_1_throughput"] / first["occ_1_throughput"]
    assert max(twopl1_drop, occ1_drop) > chiller_drop
