"""Micro-benchmarks of the core primitives.

Includes the paper's Section 4.1 sizing claim: computing contention
likelihoods "even for a sample with one million records ... can be
performed in a matter of a few seconds."
"""

from repro._util import make_rng
from repro.core import contention_likelihood
from repro.graph import WeightedGraph, part_graph
from repro.storage import LockMode, LockWord


def test_contention_likelihood_1m_records(benchmark):
    def compute_million():
        out = 0.0
        for i in range(1_000_000):
            out += contention_likelihood(i * 1e-6, (i % 97) * 1e-5)
        return out

    result = benchmark.pedantic(compute_million, rounds=1, iterations=1)
    assert result > 0


def test_lock_word_acquire_release(benchmark):
    lock = LockWord()

    def cycle():
        for i in range(10_000):
            assert lock.try_acquire(LockMode.EXCLUSIVE, i)
            lock.release(i)

    benchmark.pedantic(cycle, rounds=1, iterations=1)


def test_multilevel_partitioner_medium_graph(benchmark):
    rng = make_rng(11, "bench-graph")
    graph = WeightedGraph()
    n = 3000
    for _ in range(n):
        graph.add_vertex(1.0)
    for _ in range(4 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, rng.uniform(0.1, 2.0))

    assignment = benchmark.pedantic(
        part_graph, args=(graph, 8),
        kwargs={"seed": 4, "n_tries": 2}, rounds=1, iterations=1)
    assert graph.is_balanced(assignment, 8, 0.10)
