"""Validation of the Section 4.1 contention model against measurement.

The partitioner trusts ``Pc = 1 - e^{-lw} - lw e^{-lw} e^{-lr}`` to rank
records by conflict risk.  Here we run a skewed bank workload under
2PL, *measure* each hot account's NO_WAIT conflict rate at the lock
table, and check that the model's ranking agrees with reality: records
the model calls hotter do conflict more.
"""

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.core import StatsService, sample_from_request
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, TwoPLExecutor
from repro.workloads.bank import BankWorkload

HOT = 6


def run_and_compare():
    workload = BankWorkload(n_accounts=120, hot_accounts=HOT,
                            hot_probability=0.6)
    config = RunConfig(n_partitions=2, concurrent_per_engine=4,
                       horizon_us=8_000.0, warmup_us=0.0, seed=9,
                       n_replicas=0, track_spans=True)
    cluster = Cluster(config.n_partitions)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(2, HashScheme(2)), workload.tables(),
                  registry, n_replicas=0, track_spans=True)
    workload.populate(db.loader())
    result = run_benchmark(workload, TwoPLExecutor(db), config)

    # model prediction from a fresh trace of the same distribution
    stats = StatsService(sample_rate=1.0, lock_window_us=8.0)
    from repro._util import make_rng
    rng = make_rng(9, "model")
    for _ in range(2000):
        stats.record(sample_from_request(registry,
                                         workload.next_request(0, rng)))
    predicted = stats.likelihoods_from_txn_rate(
        txns_per_second=result.throughput)

    rows = []
    for account in range(HOT + 4):
        rid = ("accounts", account)
        pid = db.partition_of("accounts", account)
        measured = db.store(pid).spans.conflict_rate("accounts", account)
        rows.append((account, predicted.get(rid, 0.0), measured))
    return rows


def test_model_ranking_matches_measured_conflicts(once):
    rows = once(run_and_compare)
    print(f"\n{'account':>8} {'predicted Pc':>13} {'measured':>9}")
    for account, predicted, measured in rows:
        print(f"{account:>8} {predicted:>13.4f} {measured:>9.4f}")
    hot_predicted = [p for a, p, m in rows if a < HOT]
    cold_predicted = [p for a, p, m in rows if a >= HOT]
    hot_measured = [m for a, p, m in rows if a < HOT]
    cold_measured = [m for a, p, m in rows if a >= HOT]
    # the model separates hot from cold, and so does reality
    assert min(hot_predicted) > max(cold_predicted)
    assert (sum(hot_measured) / len(hot_measured)
            > sum(cold_measured) / max(1, len(cold_measured)))
