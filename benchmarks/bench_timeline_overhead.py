"""Timeline overhead: bit-identical on sim, bounded cost on mp.

The live metrics timeline (:mod:`repro.obs.timeline`) hooks the
simulator's per-event probe and the mp workers' wall-clock timers, so
its cost contract is part of the perf surface and gets its own bench,
mirroring ``bench_trace_overhead.py``:

* **Sim cell** — the same TPC-C cell three times: timeline off twice
  (determinism floor) and timeline on.  All three must produce the
  *same* commits, aborts, event count, and end time: sampling is pure
  Python bookkeeping (no effects, no RNG draws), so the discrete-event
  stream cannot move.  This is the bit-identical guarantee the figure
  sweeps rely on.

* **mp cell** — the wire-path YCSB workload on real worker processes,
  timeline off vs on (50ms sampling plus live shipping of every row
  over the control pipe).  Events/sec here is wall-clock and noisy on
  shared CI hardware, so the cell asserts a conservative floor and
  *records* the measured ratio; set ``REPRO_TIMELINE_TARGET=0.95`` on
  dedicated hardware to enforce the <5% overhead target as a hard
  assertion.  The timeline-off rate is the regression-tracked figure,
  and the ``timeline_*`` count cells (dropped samples, stall count)
  are zero-baseline invariants (see BENCH_BASELINE.json).

CLI (CI smoke runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_timeline_overhead.py
    PYTHONPATH=src python benchmarks/bench_timeline_overhead.py --quick
"""

from __future__ import annotations

import os
import sys

from repro.bench import RunConfig, install_summary_json
from repro.bench.setups import make_tpcc_run, make_ycsb_run
from repro.workloads.ycsb import YcsbWorkload


def sim_cell_config(timeline: bool) -> RunConfig:
    return RunConfig(n_partitions=4, concurrent_per_engine=4,
                     horizon_us=5_000.0, warmup_us=500.0, seed=3,
                     n_replicas=1,
                     metrics_interval=500.0 if timeline else None)


def run_sim_cell(timeline: bool):
    return make_tpcc_run("2pl", sim_cell_config(timeline)).run()


def sim_digest(result) -> tuple:
    """Everything sampling could have perturbed, in one comparable
    tuple: the committed/aborted work, the simulator's event count,
    and the exact quiescence time."""
    metrics = result.metrics
    return (metrics.commits, metrics.aborts, metrics.attempts,
            metrics.events_processed, result.end_time)


def mp_cell_config(timeline: bool, quick: bool = False) -> RunConfig:
    return RunConfig(n_partitions=2, concurrent_per_engine=4,
                     horizon_us=150_000.0 if quick else 400_000.0,
                     warmup_us=0.0, seed=11, n_replicas=1, backend="mp",
                     mp_run_timeout_s=180.0,
                     metrics_interval=50_000.0 if timeline else None)


def run_mp_cell(timeline: bool, quick: bool = False):
    workload = YcsbWorkload(n_keys=2_000, reads_per_txn=8,
                            writes_per_txn=2)
    return make_ycsb_run("2pl", mp_cell_config(timeline, quick),
                         workload=workload).run()


def main(argv=None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    args, flush_summaries = install_summary_json(args)
    quick = "--quick" in args
    try:
        off = sim_digest(run_sim_cell(False))
        on_result = run_sim_cell(True)
        on = sim_digest(on_result)
        samples = len(on_result.metrics.timeline.rows())
        verdict = "IDENTICAL" if off == on else "DIVERGED"
        print(f"sim cell timeline off vs on: {verdict} "
              f"(commits={off[0]}, events={off[3]}, "
              f"{samples} samples recorded)")

        base = run_mp_cell(False, quick=quick)
        sampled = run_mp_cell(True, quick=quick)
        base_rate = base.metrics.events_per_wall_second()
        sampled_rate = sampled.metrics.events_per_wall_second()
        print(f"mp cell events/s: off {base_rate:,.0f} "
              f"on {sampled_rate:,.0f} "
              f"({sampled_rate / base_rate:.3f}x, "
              f"{len(sampled.metrics.timeline.rows())} samples on "
              f"{os.cpu_count()} cpu(s))")
    finally:
        flush_summaries()


# -- pytest-benchmark cells (perf-tracked in BENCH_BASELINE.json) -------------

def test_sim_timeline_is_bit_identical(benchmark):
    """The zero-perturbation cell: sampling on must not move a single
    simulator event — same commits, aborts, attempts, event count, and
    quiescence time as two independent timeline-off runs."""
    off_a = sim_digest(run_sim_cell(False))
    off_b = sim_digest(run_sim_cell(False))
    sampled = benchmark.pedantic(run_sim_cell, args=(True,),
                                 rounds=1, iterations=1)
    on = sim_digest(sampled)

    assert off_a == off_b, \
        f"sim cell is not deterministic on its own: {off_a} vs {off_b}"
    assert on == off_a, \
        f"sampling perturbed the sim event stream: {on} vs {off_a}"

    timeline = sampled.metrics.timeline
    assert timeline is not None and timeline.rows(), \
        "the sampled run must actually record timeline rows"
    assert timeline.totals()["commits"] == sampled.metrics.commits

    benchmark.extra_info.update({
        "sim_commits": on[0],
        "sim_events": on[3],
        "timeline_recorded_samples": len(timeline.rows()),
        "timeline_dropped_samples": timeline.dropped,
        # deterministic on sim, so the gate is exact: any drift means
        # admission behaviour changed
        "timeline_max_queue_depth": int(
            timeline.gauge_max("max_queue_depth")),
    })


def test_mp_timeline_overhead(benchmark):
    """The cost cell: 50ms sampling with live row shipping against the
    identical timeline-off run.  The off rate is the perf-tracked
    figure; the on/off ratio is recorded, with a conservative floor
    here and a hard <5% target behind ``REPRO_TIMELINE_TARGET`` for
    dedicated hardware."""
    base = run_mp_cell(False, quick=True)
    sampled = benchmark.pedantic(run_mp_cell, args=(True,),
                                 kwargs={"quick": True},
                                 rounds=1, iterations=1)

    assert base.metrics.commits > 0 and sampled.metrics.commits > 0
    assert base.metrics.timeline is None, \
        "timeline off must not allocate timeline state"
    timeline = sampled.metrics.timeline
    assert timeline is not None and timeline.rows()

    # the cross-process guarantee: the parent's merged timeline lands
    # exactly on the workers' final aggregates — live shipping lost
    # nothing and double-counted nothing
    assert timeline.totals()["commits"] == sampled.metrics.commits
    assert timeline.servers() == sorted(
        sampled.metrics.scheduler_stats)
    # a healthy run raises no health events and drops no samples
    stalls = [e for e in timeline.health if e.kind == "stall"]
    assert not stalls, [e.message for e in stalls]

    base_rate = base.metrics.events_per_wall_second()
    sampled_rate = sampled.metrics.events_per_wall_second()
    ratio = sampled_rate / base_rate
    assert ratio >= 0.5, (
        f"sampling collapsed mp throughput to {ratio:.2f}x "
        f"({sampled_rate:,.0f} vs {base_rate:,.0f} events/s)")
    target = float(os.environ.get("REPRO_TIMELINE_TARGET", "0") or 0.0)
    if target:
        assert ratio >= target, (
            f"timeline-on reached {ratio:.2f}x of timeline-off, target "
            f"{target:.2f}x ({sampled_rate:,.0f} vs {base_rate:,.0f} "
            f"events/s on {os.cpu_count()} cpus)")

    benchmark.extra_info.update({
        "timeline_off_events_per_second": round(base_rate),
        "timeline_on_events_per_second": round(sampled_rate),
        "timeline_on_vs_off": round(ratio, 3),
        "timeline_dropped_samples": timeline.dropped,
        "timeline_stall_count": len(stalls),
        "cpus": os.cpu_count(),
    })


if __name__ == "__main__":
    main()
