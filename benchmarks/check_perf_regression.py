#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

The tracked figure is the harness's hot-path speed:
``events_per_wall_second`` from ``RunResult.perf_summary()``, persisted
into every benchmark's ``extra_info``.  CI's ``perf-tracking`` job runs
``benchmarks/bench_effect_runtime.py --benchmark-json``, uploads the
JSON artifact, then fails the build if the event rate regressed more
than ``--max-regression`` (default 30%) below ``BENCH_BASELINE.json``.

Re-baselining (after an intentional change, or when CI hardware moves):

    PYTHONPATH=src python -m pytest benchmarks/bench_effect_runtime.py \
        --benchmark-json bench_results.json -q
    python benchmarks/check_perf_regression.py bench_results.json \
        --write-baseline BENCH_BASELINE.json

and commit the refreshed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys


def extract_event_rates(results: dict) -> dict[str, float]:
    """Rate figures per benchmark: any ``*_per_second`` /
    ``*_per_wall_second`` entry in ``extra_info`` is a tracked rate
    (events, codec round trips, ...)."""
    rates: dict[str, float] = {}
    for bench in results.get("benchmarks", []):
        for key, value in bench.get("extra_info", {}).items():
            if (key.endswith("_per_wall_second")
                    or key.endswith("_per_second")) and value > 0:
                rates[f"{bench['name']}:{key}"] = float(value)
    return rates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="pytest-benchmark JSON output")
    parser.add_argument("baseline", nargs="?", default="BENCH_BASELINE.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="fail if any rate drops more than this "
                             "fraction below baseline (default 0.30)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write PATH from the results instead of "
                             "comparing")
    args = parser.parse_args(argv)

    with open(args.results) as fh:
        rates = extract_event_rates(json.load(fh))
    if not rates:
        print("error: results carry no events_per_wall_second extra_info")
        return 2

    if args.write_baseline:
        baseline = {
            "tracked": rates,
            "note": "harness hot-path event rates; regenerate with "
                    "check_perf_regression.py --write-baseline after "
                    "intentional perf changes",
        }
        with open(args.write_baseline, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write_baseline}: "
              + ", ".join(f"{k}={v:,.0f}" for k, v in rates.items()))
        return 0

    with open(args.baseline) as fh:
        baseline_doc = json.load(fh)
    tracked = baseline_doc.get("tracked")
    if not isinstance(tracked, dict) or not tracked:
        print(f"error: baseline {args.baseline} has no 'tracked' table "
              f"of rates (found top-level keys "
              f"{sorted(baseline_doc) if isinstance(baseline_doc, dict) else type(baseline_doc).__name__}); "
              f"regenerate it with --write-baseline")
        return 2

    failed = False
    for name, base in sorted(tracked.items()):
        current = rates.get(name)
        if current is None:
            print(f"MISSING  {name}: baseline {base:,.0f} ev/s, no "
                  f"current measurement (benchmark renamed? re-baseline)")
            failed = True
            continue
        change = (current - base) / base
        floor = base * (1.0 - args.max_regression)
        status = "OK" if current >= floor else "REGRESSED"
        print(f"{status:9} {name}: {current:,.0f} ev/s vs baseline "
              f"{base:,.0f} ({change:+.1%}, floor {floor:,.0f})")
        if current < floor:
            failed = True
    for name in sorted(set(rates) - set(tracked)):
        print(f"UNTRACKED {name}: {rates[name]:,.0f} ev/s measured but "
              f"no baseline cell exists — register it by re-baselining "
              f"(--write-baseline) so future regressions are caught")
        failed = True
    if failed:
        print(f"\nperf check failed: >{args.max_regression:.0%} below "
              f"baseline. If intentional (or CI hardware changed), "
              f"re-baseline per the module docstring.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
