#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

Two families of tracked figures, both read from each benchmark's
``extra_info`` (fed by ``RunResult.perf_summary()``):

* **rates** (higher is better): any ``*_per_second`` /
  ``*_per_wall_second`` entry — the harness's hot-path speed.  Fails
  when a rate drops more than ``--max-regression`` below baseline.
* **latencies** (lower is better): any ``*_latency_us`` entry — the
  open-loop percentile cells from ``bench_open_loop.py``, which are
  deterministic on the sim backend.  Fails when a latency rises more
  than ``--max-regression`` above baseline.

CI's ``perf-tracking`` job runs the benchmark files with
``--benchmark-json``, uploads the JSON artifact, then fails the build
on any regressed, missing, or untracked cell.

Re-baselining (after an intentional change, or when CI hardware moves):

    PYTHONPATH=src python -m pytest benchmarks/bench_effect_runtime.py \
        --benchmark-json bench_results.json -q
    python benchmarks/check_perf_regression.py bench_results.json \
        --write-baseline BENCH_BASELINE.json

and commit the refreshed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys


def extract_event_rates(results: dict) -> dict[str, float]:
    """Rate figures per benchmark: any ``*_per_second`` /
    ``*_per_wall_second`` entry in ``extra_info`` is a tracked rate
    (events, codec round trips, ...).  Higher is better."""
    rates: dict[str, float] = {}
    for bench in results.get("benchmarks", []):
        for key, value in bench.get("extra_info", {}).items():
            if (key.endswith("_per_wall_second")
                    or key.endswith("_per_second")) and value > 0:
                rates[f"{bench['name']}:{key}"] = float(value)
    return rates


def extract_latency_cells(results: dict) -> dict[str, float]:
    """Latency figures per benchmark: any ``*_latency_us`` entry in
    ``extra_info`` is a tracked percentile cell.  Lower is better."""
    cells: dict[str, float] = {}
    for bench in results.get("benchmarks", []):
        for key, value in bench.get("extra_info", {}).items():
            if key.endswith("_latency_us") and value > 0:
                cells[f"{bench['name']}:{key}"] = float(value)
    return cells


def compare(tracked: dict, current: dict, max_regression: float,
            lower_is_better: bool, unit: str) -> bool:
    """Print one line per cell; True when anything fails the gate."""
    failed = False
    for name, base in sorted(tracked.items()):
        got = current.get(name)
        if got is None:
            print(f"MISSING  {name}: baseline {base:,.1f} {unit}, no "
                  f"current measurement (benchmark renamed? re-baseline)")
            failed = True
            continue
        change = (got - base) / base
        if lower_is_better:
            ceiling = base * (1.0 + max_regression)
            ok = got <= ceiling
            bound = f"ceiling {ceiling:,.1f}"
        else:
            floor = base * (1.0 - max_regression)
            ok = got >= floor
            bound = f"floor {floor:,.1f}"
        status = "OK" if ok else "REGRESSED"
        print(f"{status:9} {name}: {got:,.1f} {unit} vs baseline "
              f"{base:,.1f} ({change:+.1%}, {bound})")
        if not ok:
            failed = True
    for name in sorted(set(current) - set(tracked)):
        print(f"UNTRACKED {name}: {current[name]:,.1f} {unit} measured "
              f"but no baseline cell exists — register it by "
              f"re-baselining (--write-baseline) so future regressions "
              f"are caught")
        failed = True
    return failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="pytest-benchmark JSON output")
    parser.add_argument("baseline", nargs="?", default="BENCH_BASELINE.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="fail if any rate drops (or latency rises) "
                             "more than this fraction from baseline "
                             "(default 0.30)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write PATH from the results instead of "
                             "comparing")
    args = parser.parse_args(argv)

    with open(args.results) as fh:
        results = json.load(fh)
    rates = extract_event_rates(results)
    latencies = extract_latency_cells(results)
    if not rates and not latencies:
        print("error: results carry no *_per_second or *_latency_us "
              "extra_info")
        return 2

    if args.write_baseline:
        baseline = {
            "tracked": rates,
            "tracked_latency": latencies,
            "note": "harness hot-path event rates (higher is better) "
                    "and open-loop latency cells (lower is better); "
                    "regenerate with check_perf_regression.py "
                    "--write-baseline after intentional perf changes",
        }
        with open(args.write_baseline, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write_baseline}: "
              + ", ".join(f"{k}={v:,.0f}"
                          for k, v in {**rates, **latencies}.items()))
        return 0

    with open(args.baseline) as fh:
        baseline_doc = json.load(fh)
    tracked = baseline_doc.get("tracked")
    if not isinstance(tracked, dict) or not tracked:
        print(f"error: baseline {args.baseline} has no 'tracked' table "
              f"of rates (found top-level keys "
              f"{sorted(baseline_doc) if isinstance(baseline_doc, dict) else type(baseline_doc).__name__}); "
              f"regenerate it with --write-baseline")
        return 2
    # absent in baselines written before latency tracking existed; an
    # empty table simply marks every measured latency cell UNTRACKED
    tracked_latency = baseline_doc.get("tracked_latency") or {}

    failed = compare(tracked, rates, args.max_regression,
                     lower_is_better=False, unit="ev/s")
    failed |= compare(tracked_latency, latencies, args.max_regression,
                      lower_is_better=True, unit="us")
    if failed:
        print(f"\nperf check failed: beyond {args.max_regression:.0%} "
              f"of baseline. If intentional (or CI hardware changed), "
              f"re-baseline per the module docstring.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
