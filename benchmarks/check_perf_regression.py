#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

Three families of tracked figures, all read from each benchmark's
``extra_info`` (fed by ``RunResult.perf_summary()``):

* **rates** (higher is better): any ``*_per_second`` /
  ``*_per_wall_second`` entry — the harness's hot-path speed.  Fails
  when a rate drops more than ``--max-regression`` below baseline.
* **latencies** (lower is better): any ``*_latency_us`` entry — the
  open-loop percentile cells from ``bench_open_loop.py``, which are
  deterministic on the sim backend.  Fails when a latency rises more
  than ``--max-regression`` above baseline.
* **timeline counts** (lower is better, zero-safe): any
  ``timeline_*_depth`` / ``timeline_*_count`` / ``timeline_*_samples``
  entry — figures derived from the live metrics timeline
  (``bench_timeline_overhead.py``), e.g. max queue depth, watchdog
  stall count, dropped samples.  A zero baseline is a hard invariant:
  the cell fails on *any* nonzero observation (a stall or a dropped
  sample is a regression no matter how small), so these cells cannot
  use the ratio math of the other two families.

CI's ``perf-tracking`` job runs the benchmark files with
``--benchmark-json``, uploads the JSON artifact, then fails the build
on any regressed, missing, or untracked cell.  Every failure line
carries the offending cell's baseline and observed values.

Re-baselining (after an intentional change, or when CI hardware moves):

    PYTHONPATH=src python -m pytest benchmarks/bench_effect_runtime.py \
        --benchmark-json bench_results.json -q
    python benchmarks/check_perf_regression.py bench_results.json \
        --write-baseline BENCH_BASELINE.json

and commit the refreshed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys

TIMELINE_SUFFIXES = ("_depth", "_count", "_samples")


def extract_event_rates(results: dict) -> dict[str, float]:
    """Rate figures per benchmark: any ``*_per_second`` /
    ``*_per_wall_second`` entry in ``extra_info`` is a tracked rate
    (events, codec round trips, ...).  Higher is better."""
    rates: dict[str, float] = {}
    for bench in results.get("benchmarks", []):
        for key, value in bench.get("extra_info", {}).items():
            if (key.endswith("_per_wall_second")
                    or key.endswith("_per_second")) and value > 0:
                rates[f"{bench['name']}:{key}"] = float(value)
    return rates


def extract_latency_cells(results: dict) -> dict[str, float]:
    """Latency figures per benchmark: any ``*_latency_us`` entry in
    ``extra_info`` is a tracked percentile cell.  Lower is better."""
    cells: dict[str, float] = {}
    for bench in results.get("benchmarks", []):
        for key, value in bench.get("extra_info", {}).items():
            if key.endswith("_latency_us") and value > 0:
                cells[f"{bench['name']}:{key}"] = float(value)
    return cells


def extract_timeline_cells(results: dict) -> dict[str, float]:
    """Timeline-derived count figures: any ``timeline_*`` entry ending
    in ``_depth`` / ``_count`` / ``_samples``.  Lower is better, and —
    unlike rates and latencies — zero is a meaningful (and common)
    value, so zeros are tracked rather than skipped."""
    cells: dict[str, float] = {}
    for bench in results.get("benchmarks", []):
        for key, value in bench.get("extra_info", {}).items():
            if (key.startswith("timeline_")
                    and key.endswith(TIMELINE_SUFFIXES) and value >= 0):
                cells[f"{bench['name']}:{key}"] = float(value)
    return cells


def compare(tracked: dict, current: dict, max_regression: float,
            lower_is_better: bool, unit: str) -> list[str]:
    """Print one line per cell; returns a failure string (baseline vs
    observed) per cell that fails the gate."""
    failures: list[str] = []
    for name, base in sorted(tracked.items()):
        got = current.get(name)
        if got is None:
            print(f"MISSING  {name}: baseline {base:,.1f} {unit}, no "
                  f"current measurement (benchmark renamed? re-baseline)")
            failures.append(f"{name}: baseline {base:,.1f} {unit}, "
                            f"observed nothing (cell missing)")
            continue
        change = (got - base) / base
        if lower_is_better:
            ceiling = base * (1.0 + max_regression)
            ok = got <= ceiling
            bound = f"ceiling {ceiling:,.1f}"
        else:
            floor = base * (1.0 - max_regression)
            ok = got >= floor
            bound = f"floor {floor:,.1f}"
        status = "OK" if ok else "REGRESSED"
        print(f"{status:9} {name}: {got:,.1f} {unit} vs baseline "
              f"{base:,.1f} ({change:+.1%}, {bound})")
        if not ok:
            failures.append(f"{name}: baseline {base:,.1f} {unit}, "
                            f"observed {got:,.1f} ({change:+.1%}, "
                            f"{bound})")
    failures.extend(report_untracked(tracked, current, unit))
    return failures


def compare_counts(tracked: dict, current: dict,
                   max_regression: float) -> list[str]:
    """The zero-safe lower-is-better gate for timeline count cells.

    A positive baseline gets the usual ceiling
    (``base * (1 + max_regression)``); a **zero** baseline is an
    invariant — any nonzero observation fails, with no ratio math
    (which would divide by zero) involved."""
    failures: list[str] = []
    for name, base in sorted(tracked.items()):
        got = current.get(name)
        if got is None:
            print(f"MISSING  {name}: baseline {base:,.1f}, no current "
                  f"measurement (benchmark renamed? re-baseline)")
            failures.append(f"{name}: baseline {base:,.1f}, observed "
                            f"nothing (cell missing)")
            continue
        ceiling = base * (1.0 + max_regression)
        ok = got <= ceiling
        status = "OK" if ok else "REGRESSED"
        if base > 0:
            detail = f"({(got - base) / base:+.1%}, ceiling {ceiling:,.1f}"
        else:
            detail = "(baseline 0 is an invariant: any occurrence fails"
        print(f"{status:9} {name}: {got:,.1f} vs baseline {base:,.1f} "
              f"{detail})")
        if not ok:
            failures.append(f"{name}: baseline {base:,.1f}, observed "
                            f"{got:,.1f} {detail})")
    failures.extend(report_untracked(tracked, current, "count"))
    return failures


def report_untracked(tracked: dict, current: dict,
                     unit: str) -> list[str]:
    failures = []
    for name in sorted(set(current) - set(tracked)):
        print(f"UNTRACKED {name}: {current[name]:,.1f} {unit} measured "
              f"but no baseline cell exists — register it by "
              f"re-baselining (--write-baseline) so future regressions "
              f"are caught")
        failures.append(f"{name}: no baseline, observed "
                        f"{current[name]:,.1f} {unit} (untracked cell)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="pytest-benchmark JSON output")
    parser.add_argument("baseline", nargs="?", default="BENCH_BASELINE.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="fail if any rate drops (or latency/count "
                             "rises) more than this fraction from "
                             "baseline (default 0.30)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write PATH from the results instead of "
                             "comparing")
    args = parser.parse_args(argv)

    with open(args.results) as fh:
        results = json.load(fh)
    rates = extract_event_rates(results)
    latencies = extract_latency_cells(results)
    timeline = extract_timeline_cells(results)
    if not rates and not latencies and not timeline:
        print("error: results carry no *_per_second, *_latency_us, or "
              "timeline_* extra_info")
        return 2

    if args.write_baseline:
        baseline = {
            "tracked": rates,
            "tracked_latency": latencies,
            "tracked_timeline": timeline,
            "note": "harness hot-path event rates (higher is better), "
                    "open-loop latency cells (lower is better), and "
                    "timeline count cells (lower is better, zero "
                    "baseline = invariant); regenerate with "
                    "check_perf_regression.py --write-baseline after "
                    "intentional perf changes",
        }
        with open(args.write_baseline, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write_baseline}: "
              + ", ".join(f"{k}={v:,.0f}"
                          for k, v in {**rates, **latencies,
                                       **timeline}.items()))
        return 0

    with open(args.baseline) as fh:
        baseline_doc = json.load(fh)
    tracked = baseline_doc.get("tracked")
    if not isinstance(tracked, dict) or not tracked:
        print(f"error: baseline {args.baseline} has no 'tracked' table "
              f"of rates (found top-level keys "
              f"{sorted(baseline_doc) if isinstance(baseline_doc, dict) else type(baseline_doc).__name__}); "
              f"regenerate it with --write-baseline")
        return 2
    # absent in baselines written before latency/timeline tracking
    # existed; an empty table simply marks every measured cell of that
    # family UNTRACKED
    tracked_latency = baseline_doc.get("tracked_latency") or {}
    tracked_timeline = baseline_doc.get("tracked_timeline") or {}

    failures = compare(tracked, rates, args.max_regression,
                       lower_is_better=False, unit="ev/s")
    failures += compare(tracked_latency, latencies, args.max_regression,
                        lower_is_better=True, unit="us")
    failures += compare_counts(tracked_timeline, timeline,
                               args.max_regression)
    if failures:
        print(f"\nperf check failed: {len(failures)} cell(s) beyond "
              f"{args.max_regression:.0%} of baseline:")
        for failure in failures:
            print(f"  - {failure}")
        print("If intentional (or CI hardware changed), re-baseline "
              "per the module docstring.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
