"""Fig. 9c — 2PL abort-rate breakdown by transaction class.

Paper result: Payment starves.  NewOrder transactions keep a shared
lock rotating on the warehouse row, so Payment's exclusive request
almost never succeeds — close to 100% aborts at >= 4 concurrent
transactions, far above NewOrder's own rate.  (Chiller fixes this by
shrinking the shared-lock spans: the "commit fairness" discussion.)
"""

from repro.bench.experiments import fig9_rows, print_fig9c


def run_sweep():
    return fig9_rows(concurrency=(1, 4, 8), quick=True)


def test_fig09c_payment_starvation(once):
    rows = once(run_sweep)
    print_fig9c(rows)
    by_conc = {row["concurrent"]: row for row in rows}
    high = by_conc[8]
    assert high["2pl_payment_abort"] > 0.7
    assert high["2pl_payment_abort"] > high["2pl_new_order_abort"]
    assert high["2pl_payment_abort"] > high["2pl_stock_level_abort"]
    # starvation grows with concurrency
    assert (by_conc[8]["2pl_payment_abort"]
            >= by_conc[4]["2pl_payment_abort"]
            >= by_conc[1]["2pl_payment_abort"])
