"""Chiller's two-region transaction executor (paper Sections 3 and 5).

Protocol per transaction (Fig. 3b):

1. Plan regions (:class:`~repro.core.regions.RegionPlanner`).  No
   admissible hot record -> run the plain 2PL+2PC path.
2. **Outer phase 1**: lock+read every outer record (dependency-layered
   parallel rounds), evaluating outer CHECKs as they become ready.  Any
   failure aborts normally.
3. **Inner region**: delegate the inner ops to the inner host via one
   RPC carrying all outer bindings.  The inner host locks, reads,
   checks, applies, and *commits unilaterally* — its locks are released
   after a purely local critical section, which is the whole point: the
   hot records' contention span shrinks from >= 2 network round trips to
   microseconds.  On success it fires the Fig. 6 replication protocol
   (replicas apply in channel order and acknowledge the *coordinator*,
   not the inner host, which has already moved on).
4. **Outer phase 2**: after the inner reply *and* all inner-replica
   acks, evaluate outer writes (they may consume values computed in the
   inner region, e.g. the flight example's ``cost``), replicate them,
   apply, and release.  Nothing can abort past the inner commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Mapping

from ..analysis import OpInstance, OpKind
from ..replication import InnerReplicaAck, InnerReplicate, ReplicaWrite
from ..sim import Await, Compute, OneSided, Rpc, Signal
from ..storage import LockMode
from ..storage.wal import R_DECISION, R_END, R_PREPARE, ROLE_INNER
from ..txn import Database, ExecConfig, HistoryRecorder
from ..txn.commit_fsm import CommitFsm, apply_wire_writes, crash_point
from ..txn.common import AbortReason, TxnRequest
from ..txn.executor import BaseExecutor, TxnState
from .lookup import HotRecordTable
from .regions import RegionPlan, RegionPlanner

RPC_INNER = "chiller_inner"
RPC_REPLICATE = "chiller_replicate"
RPC_ACK = "chiller_ack"

_ABORT_BY_STATUS = {
    "conflict": AbortReason.INNER_CONFLICT,
    "missing": AbortReason.READ_MISS,
    "duplicate": AbortReason.DUPLICATE_KEY,
    "logical": AbortReason.LOGICAL,
}


@dataclass(frozen=True)
class InnerRequest:
    """Coordinator -> inner host: execute and commit these operations."""

    txn_id: int
    proc: str
    params: Mapping[str, Any]
    inner_names: tuple[str, ...]
    ctx: Mapping[str, Any]
    coordinator: int


class _AckState:
    __slots__ = ("signal", "expected", "received")

    def __init__(self, expected: int):
        self.signal = Signal()
        self.expected = expected
        self.received = 0


class ChillerExecutor(BaseExecutor):
    """Two-region execution over a contention-aware layout."""

    name = "chiller"

    def __init__(self, db: Database, hot_table: HotRecordTable,
                 config: ExecConfig | None = None,
                 history: HistoryRecorder | None = None):
        super().__init__(db, config, history)
        self.hot_table = hot_table
        self._pending_acks: dict[int, _AckState] = {}
        db.register_rpc(RPC_INNER, self._inner_handler)
        db.register_rpc(RPC_REPLICATE, self._replicate_handler)
        db.register_rpc(RPC_ACK, self._ack_handler)

    def make_planner(self, home: int) -> RegionPlanner:
        return RegionPlanner(
            self.hot_table,
            lambda table, key: self.db.partition_of(table, key,
                                                    reader=home))

    # -- coordinator ---------------------------------------------------------

    def execute(self, request: TxnRequest, trace: int = 0,
                attempt: int = 0) -> Generator:
        state = self.new_state(request, trace, attempt)
        plan = self.make_planner(request.home).plan(state.instances,
                                                    request.params)
        if not plan.two_region:
            return (yield from self._execute_normal(state))
        return (yield from self._execute_two_region(state, plan))

    def _execute_normal(self, state: TxnState) -> Generator:
        """Cold transactions run exactly like the 2PL baseline."""
        fsm = CommitFsm(self, state)
        ok = yield from self.lock_read_phase(state)
        if not ok:
            yield from fsm.abort()
            return self.finish(state)
        writes = self.evaluate_writes(state)
        ok = yield from fsm.prepare(writes)
        if not ok:
            yield from fsm.abort()
            return self.finish(state)
        yield from fsm.commit()
        return self.finish(state)

    def _execute_two_region(self, state: TxnState,
                            plan: RegionPlan) -> Generator:
        state.used_two_region = True
        state.inner_host = plan.inner_host
        assert plan.inner_host is not None
        state.pending_checks = [inst for inst in plan.outer
                                if inst.spec.kind is OpKind.CHECK]
        fsm = CommitFsm(self, state)

        ok = yield from self.lock_read_phase(state, ops=plan.outer)
        if not ok:
            yield from fsm.abort()
            return self.finish(state)

        expected_acks = self._expected_acks(plan.inner_host)
        if expected_acks:
            self._pending_acks[state.txn_id] = _AckState(expected_acks)
        inner_request = InnerRequest(
            txn_id=state.txn_id, proc=state.request.proc,
            params=state.request.params,
            inner_names=tuple(inst.name for inst in plan.inner),
            ctx=dict(state.ctx), coordinator=state.request.home)
        if plan.inner_host == state.request.home:
            # the coordinator is the inner host: run it inline on this
            # engine (still consuming this core's CPU)
            reply = yield from self._inner_body(plan.inner_host,
                                                inner_request)
        else:
            reply = yield Rpc(plan.inner_host, (RPC_INNER, inner_request))

        status, ctx_delta, inner_reads, inner_versions = reply
        if status != "ok":
            self._pending_acks.pop(state.txn_id, None)
            state.abort_reason = _ABORT_BY_STATUS[status]
            yield from fsm.abort()
            return self.finish(state)

        state.ctx.update(ctx_delta)
        state.reads.extend(inner_reads)
        state.write_versions.extend(inner_versions)

        if expected_acks:
            acks = self._pending_acks[state.txn_id]
            yield Await(acks.signal)
            del self._pending_acks[state.txn_id]

        writes = self.evaluate_writes(state, ops=plan.outer)
        ok = yield from fsm.prepare(writes)
        if not ok:
            # nothing can abort past the inner commit in the fault-free
            # protocol; a dead participant can.  The inner region stays
            # committed (it was unilateral); the outer writes abort.
            yield from fsm.abort()
            return self.finish(state)
        yield from fsm.commit()
        state.touched.add(plan.inner_host)
        return self.finish(state)

    def _expected_acks(self, inner_host: int) -> int:
        if not self.cfg.replicate or self.db.replicas is None:
            return 0
        return len(self.db.replicas.replica_servers(inner_host))

    # -- inner host ------------------------------------------------------------

    def _inner_handler(self, server_id: int, src: int,
                       body: InnerRequest) -> Generator:
        return (yield from self._inner_body(server_id, body))

    def _inner_body(self, server_id: int, req: InnerRequest) -> Generator:
        """Execute the inner region locally; commit unilaterally.

        The inner region runs "from beginning to end with no stall"
        (Section 3.3): one contiguous CPU block for its logic, then one
        atomic local critical section that locks, reads, checks,
        applies, and releases.  Concurrent inner regions on the same
        partition are therefore serialized by the host's core instead
        of conflicting — the paper's "conflicts are most likely handled
        sequentially in the inner region".
        """
        cfg = self.cfg
        tr = self.db.tracer
        # the inner host's span joins the coordinator's tree via the
        # task trace context (carried by the RPC envelope on every
        # backend), read while this handler task is current
        trace = (self.db.cluster.engine(server_id).runtime.current_trace
                 if tr.enabled else 0)
        t0 = self.db.cluster.sim.now if trace else 0.0
        store = self.db.store(server_id)
        proc = self.db.registry.get(req.proc)
        by_name = {inst.name: inst
                   for inst in proc.instantiate(req.params)}
        instances = [by_name[name] for name in req.inner_names]

        n_record_ops = sum(1 for inst in instances
                           if inst.spec.kind is not OpKind.CHECK)
        n_checks = len(instances) - n_record_ops
        n_writes = sum(1 for inst in instances if inst.spec.is_write())
        # every inner operation is local to this host by construction
        yield Compute(cfg.cpu_local_op_us * n_record_ops
                      + cfg.cpu_check_us * n_checks
                      + cfg.cpu_apply_us * max(1, n_writes))
        result = yield OneSided(
            server_id,
            lambda: self._inner_critical_section(store, instances, req),
            kind="inner_commit")
        status, ctx_delta, reads, versions, writes = result
        if trace:
            tr.span(trace, req.txn_id, 0, server_id, "commit", t0,
                    self.db.cluster.sim.now,
                    "ok" if status == "ok" else status)
        if status == "ok":
            self._replicate_inner(server_id, req, writes)
        return (status, ctx_delta, reads, versions)

    def _inner_critical_section(self, store, instances: list[OpInstance],
                                req: InnerRequest) -> tuple:
        """Lock, read, check, apply, and release — one atomic event.

        With ``bypass_inner_locks`` the section does not *acquire*
        locks (H-store style); it still refuses to proceed past a lock
        someone else holds (an outer region owns the record).
        """
        ctx: dict[str, Any] = dict(req.ctx)
        owner = ("inner", req.txn_id)
        bypass = self.cfg.bypass_inner_locks
        reads: list[tuple[tuple[str, Any], int]] = []
        locations: dict[str, tuple[str, Any]] = {}

        def fail(status: str) -> tuple:
            store.release_all(owner)
            return (status, {}, [], [], [])

        def acquire(table: str, key: Any, mode) -> bool:
            if bypass:
                lock = store.table(table).lock_for(key)
                return lock.is_free() or lock.held_by(owner) is not None
            return store.try_lock(table, key, mode, owner)

        for inst in instances:
            kind = inst.spec.kind
            if kind is OpKind.READ:
                table = inst.spec.table
                key = inst.concrete_key(req.params, ctx)
                if not acquire(table, key, inst.lock_mode()):
                    return fail("conflict")
                result = store.read(table, key)
                if result is None:
                    return fail("missing")
                fields, version = result
                ctx[inst.name] = fields
                locations[inst.name] = (table, key)
                reads.append(((table, key), version))
            elif kind is OpKind.INSERT:
                table = inst.spec.table
                key = inst.concrete_key(req.params, ctx)
                locations[inst.name] = (table, key)
                if not acquire(table, key, LockMode.EXCLUSIVE):
                    return fail("conflict")
                if store.read(table, key) is not None:
                    return fail("duplicate")
            elif kind is OpKind.CHECK:
                if not inst.run_check(req.params, ctx):
                    return fail("logical")
            # UPDATE/DELETE: applied below at the commit point

        writes = []
        for inst in instances:
            kind = inst.spec.kind
            if kind is OpKind.UPDATE:
                target = inst.target_instance()
                if target not in locations:
                    raise RuntimeError(
                        f"inner update {inst.name!r} has no inner target "
                        f"read {target!r}; region planner bug")
                table, key = locations[target]
                writes.append(("update", table, key,
                               inst.run_update(req.params, ctx)))
            elif kind is OpKind.INSERT:
                table, key = locations[inst.name]
                writes.append(("insert", table, key,
                               inst.run_insert_fields(req.params, ctx)))
            elif kind is OpKind.DELETE:
                table, key = locations[inst.target_instance()]
                writes.append(("delete", table, key, None))

        wal = self.db.wal_of(store.partition_id)
        if wal is not None:
            # the unilateral inner commit logs prepare+decision in one
            # go — there is no voting phase to survive, only the redo
            crash_point("inner:before_commit")
            wal.append((R_PREPARE, req.txn_id, ROLE_INNER,
                        req.coordinator, tuple(writes)))
            wal.append((R_DECISION, req.txn_id, True), sync=True)
        versions = _inner_commit_op(store, writes, owner)()
        if wal is not None:
            wal.append((R_END, req.txn_id))
        ctx_delta = {name: ctx[name] for name in req.inner_names
                     if name in ctx}
        return ("ok", ctx_delta, reads, versions, writes)

    def _replicate_inner(self, server_id: int, req: InnerRequest,
                         writes: list[tuple]) -> None:
        """Fig. 6: fire replication messages and move on immediately."""
        if not self.cfg.replicate or self.db.replicas is None:
            return
        shipped = tuple(ReplicaWrite(kind, table, key, values)
                        for kind, table, key, values in writes)
        message = InnerReplicate(txn_id=req.txn_id, partition=server_id,
                                 writes=shipped,
                                 coordinator=req.coordinator)
        engine = self.db.cluster.engine(server_id)
        for rserver in self.db.replicas.replica_servers(server_id):
            engine.post(rserver, (RPC_REPLICATE, message))

    # -- replica and ack handlers --------------------------------------------

    def _replicate_handler(self, server_id: int, src: int,
                           body: InnerReplicate) -> Generator:
        """Apply the inner write-set on a replica, ack the coordinator."""
        yield Compute(self.cfg.cpu_replica_apply_us
                      * max(1, len(body.writes)))
        self.db.replicas.apply(server_id, body.partition, body.writes)
        self.db.cluster.engine(server_id).post(
            body.coordinator,
            (RPC_ACK, InnerReplicaAck(body.txn_id, server_id)))
        return None

    def _ack_handler(self, server_id: int, src: int,
                     body: InnerReplicaAck) -> Generator:
        acks = self._pending_acks.get(body.txn_id)
        if acks is not None:
            acks.received += 1
            if acks.received == acks.expected:
                acks.signal.fire()
        return None
        yield  # pragma: no cover - generator marker


def _inner_commit_op(store, writes: list[tuple], owner):
    """Apply the inner region's writes and release its locks atomically."""
    def op() -> list:
        versions = apply_wire_writes(store, writes)
        store.release_all(owner)
        return versions
    return op
