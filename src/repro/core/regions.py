"""The run-time region decision (paper Section 3.3).

Given a transaction's concrete operation instances, the hot-record
table, and the dependency structure, decide:

1. whether to run as a *two-region* transaction at all (any admissible
   hot record?) — otherwise fall back to plain 2PL+2PC;
2. the **inner host**: the partition holding the most admissible hot
   records (only one partition may commit unilaterally);
3. the split: every operation whose record provably lives on the inner
   host — *and* whose pk-descendants all provably live there too — runs
   in the inner region; everything else is outer.  CHECKs run in the
   outer region when all their inputs come from outer reads (cheap early
   abort at the coordinator), otherwise inside the inner region.

A hot record h is *admissible* (step 1's rule) iff every operation
pk-dependent on h has a known placement on h's own partition; a child
whose key is still unknown, or known to live elsewhere, blocks h — it
could not be locked after the inner region committed unilaterally.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..analysis import OpInstance, OpKind
from .lookup import HotRecordTable

PlacementFn = Callable[[str, Any], int]
"""(table, key) -> partition id, with replicated tables pre-bound."""


@dataclass
class RegionPlan:
    """The outer/inner split for one transaction."""

    two_region: bool
    inner_host: int | None
    inner: list[OpInstance] = field(default_factory=list)
    outer: list[OpInstance] = field(default_factory=list)
    hot_inner_records: int = 0
    blocked_hot_records: int = 0

    def inner_names(self) -> list[str]:
        return [inst.name for inst in self.inner]


class RegionPlanner:
    """Plans two-region execution for instantiated transactions."""

    def __init__(self, hot_table: HotRecordTable,
                 placement: PlacementFn):
        self.hot_table = hot_table
        self.placement = placement

    def plan(self, instances: list[OpInstance],
             params: Mapping[str, Any]) -> RegionPlan:
        placements = self._placements(instances, params)
        children = _pk_children(instances)
        by_name = {inst.name: inst for inst in instances}

        hot_reads: list[tuple[OpInstance, int]] = []
        blocked = 0
        for inst in instances:
            if inst.spec.kind is not OpKind.READ:
                continue
            info = placements.get(inst.name)
            if info is None or not info[2]:
                continue  # unknown or inexact: cannot be a hot candidate
            table, key, _exact, pid = info[0], info[1], info[2], info[3]
            if not self.hot_table.is_hot(table, key):
                continue
            if self._subtree_on(inst.name, pid, children, placements):
                hot_reads.append((inst, pid))
            else:
                blocked += 1

        if not hot_reads:
            return RegionPlan(two_region=False, inner_host=None,
                              outer=list(instances),
                              blocked_hot_records=blocked)

        votes = Counter(pid for _inst, pid in hot_reads)
        inner_host = min(votes, key=lambda pid: (-votes[pid], pid))

        inner_names: set[str] = set()
        for inst in instances:
            info = placements.get(inst.name)
            if info is None or info[3] != inner_host:
                continue
            if self._subtree_on(inst.name, inner_host, children,
                                placements):
                inner_names.add(inst.name)
        # updates/deletes ride with their target read's region
        for inst in instances:
            if inst.spec.kind in (OpKind.UPDATE, OpKind.DELETE):
                if inst.target_instance() in inner_names:
                    inner_names.add(inst.name)
                else:
                    inner_names.discard(inst.name)

        inner, outer = [], []
        outer_bindings = {
            inst.name for inst in instances
            if inst.spec.kind is OpKind.READ
            and inst.name not in inner_names}
        for inst in instances:
            if inst.spec.kind is OpKind.CHECK:
                deps = set(inst.dep_instance_names())
                if deps <= outer_bindings:
                    outer.append(inst)
                else:
                    inner.append(inst)
            elif inst.name in inner_names:
                inner.append(inst)
            else:
                outer.append(inst)

        hot_on_host = {inst.name for inst, pid in hot_reads
                       if pid == inner_host}
        inner = self._reorder_hot_last(inner, hot_on_host, children)
        self._assert_no_inner_to_outer_pk_edge(inner, outer, by_name)
        return RegionPlan(two_region=True, inner_host=inner_host,
                          inner=inner, outer=outer,
                          hot_inner_records=votes[inner_host],
                          blocked_hot_records=blocked)

    @staticmethod
    def _reorder_hot_last(inner: list[OpInstance], hot_names: set[str],
                          children: Mapping[str, list[str]],
                          ) -> list[OpInstance]:
        """The paper's idea (1): postpone the hot records' lock
        acquisition to the very end of the inner region.

        The late set is the hot reads plus everything that *must*
        follow them: pk-descendants (their keys need the hot values)
        and any op value-depending on a late op (CHECK predicates,
        updates of hot reads).  Relative program order is preserved
        inside both groups, so every dependency stays forward.
        """
        late = set(hot_names)
        stack = list(hot_names)
        while stack:
            for child in children.get(stack.pop(), ()):
                if child not in late:
                    late.add(child)
                    stack.append(child)
        changed = True
        while changed:
            changed = False
            for inst in inner:
                if inst.name in late:
                    continue
                if any(dep in late for dep in inst.dep_instance_names()):
                    late.add(inst.name)
                    changed = True
        early = [inst for inst in inner if inst.name not in late]
        tail = [inst for inst in inner if inst.name in late]
        return early + tail

    # -- internals ---------------------------------------------------------

    def _placements(self, instances: list[OpInstance],
                    params: Mapping[str, Any],
                    ) -> dict[str, tuple[str, Any, bool, int]]:
        """name -> (table, key-or-hint, exact, partition); absent when
        the location is unknowable before execution."""
        out: dict[str, tuple[str, Any, bool, int]] = {}
        for inst in instances:
            placement = inst.placement(params)
            if placement is None or not placement.known():
                continue
            pid = self.placement(placement.table, placement.key)
            out[inst.name] = (placement.table, placement.key,
                              placement.exact, pid)
        return out

    def _subtree_on(self, name: str, pid: int,
                    children: Mapping[str, list[str]],
                    placements: Mapping[str, tuple],
                    ) -> bool:
        """All pk-descendants of ``name`` provably live on ``pid``."""
        stack = list(children.get(name, ()))
        while stack:
            descendant = stack.pop()
            info = placements.get(descendant)
            if info is None or info[3] != pid:
                return False
            stack.extend(children.get(descendant, ()))
        return True

    @staticmethod
    def _assert_no_inner_to_outer_pk_edge(inner, outer, by_name) -> None:
        inner_names = {inst.name for inst in inner}
        for inst in outer:
            for parent in inst.pk_source_instances():
                if parent in inner_names:
                    raise RuntimeError(
                        f"illegal region split: outer op {inst.name!r} "
                        f"pk-depends on inner op {parent!r}")


def _pk_children(instances: list[OpInstance]) -> dict[str, list[str]]:
    children: dict[str, list[str]] = defaultdict(list)
    for inst in instances:
        for parent in inst.pk_source_instances():
            children[parent].append(inst.name)
    return children
