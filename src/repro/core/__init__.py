"""Chiller's core: contention model, partitioner, two-region execution."""

from .chiller import ChillerExecutor, InnerRequest
from .contention import contention_likelihood, likelihoods_from_rates, normalize
from .lookup import EpochLookupScheme, HotRecordTable
from .partitioner import (ChillerPartitionerConfig, ChillerPartitioning,
                          partition_workload)
from .regions import RegionPlan, RegionPlanner
from .stargraph import StarGraph, build_star_graph, partition_star_graph
from .stats import StatsService, TxnSample, sample_from_request

__all__ = [
    "ChillerExecutor",
    "ChillerPartitionerConfig",
    "ChillerPartitioning",
    "EpochLookupScheme",
    "HotRecordTable",
    "InnerRequest",
    "RegionPlan",
    "RegionPlanner",
    "StarGraph",
    "StatsService",
    "TxnSample",
    "build_star_graph",
    "contention_likelihood",
    "likelihoods_from_rates",
    "normalize",
    "partition_star_graph",
    "partition_workload",
    "sample_from_request",
]
