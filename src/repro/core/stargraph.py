"""The star workload-graph representation (paper Section 4.2).

Every sampled transaction becomes a dummy *t-vertex* connected to the
*r-vertices* of the records it touched — n edges per transaction instead
of the n(n-1)/2 a co-access clique (Schism) needs.  All edges of an
r-vertex carry the same weight: the record's (normalized) contention
likelihood — how bad it would be to access this record in an outer
region.  An optional ``min_weight`` on every edge co-optimizes for fewer
distributed transactions (Section 4.4).

Vertex weights encode the load-balance metric:

* ``"transactions"`` — t-vertices weigh 1, r-vertices 0;
* ``"records"``      — r-vertices weigh 1, t-vertices 0;
* ``"accesses"``     — r-vertices weigh their read+write count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..graph import WeightedGraph, part_graph
from ..storage.record import RecordId
from .contention import normalize
from .stats import TxnSample

LOAD_METRICS = ("transactions", "records", "accesses")


@dataclass
class StarGraph:
    """The built graph plus both vertex directories."""

    graph: WeightedGraph
    t_vertex_of: list[int]                  # sample index -> vertex id
    r_vertex_of: dict[RecordId, int]        # record id -> vertex id
    samples: list[TxnSample]
    edge_weight_of: dict[RecordId, float]   # the (normalized) Pc used

    @property
    def n_transactions(self) -> int:
        return len(self.t_vertex_of)

    @property
    def n_records(self) -> int:
        return len(self.r_vertex_of)

    def record_assignment(self, assignment: Sequence[int],
                          ) -> dict[RecordId, int]:
        """Record placements implied by a graph partitioning."""
        return {rid: assignment[v] for rid, v in self.r_vertex_of.items()}

    def inner_host_assignment(self, assignment: Sequence[int],
                              ) -> list[int]:
        """Per-sample inner host (the partition of each t-vertex)."""
        return [assignment[v] for v in self.t_vertex_of]

    def cut_weight(self, assignment: Sequence[int]) -> float:
        """Total weight of outer-region (cut, green) edges."""
        return self.graph.edge_cut(assignment)


def build_star_graph(samples: Iterable[TxnSample],
                     likelihoods: Mapping[RecordId, float],
                     load_metric: str = "transactions",
                     min_weight: float = 0.0,
                     normalize_weights: bool = True) -> StarGraph:
    """Construct the star graph for a batch of sampled transactions."""
    if load_metric not in LOAD_METRICS:
        raise ValueError(f"unknown load metric {load_metric!r}; "
                         f"choose from {LOAD_METRICS}")
    if min_weight < 0:
        raise ValueError("min_weight must be non-negative")
    sample_list = list(samples)
    weights = (normalize(dict(likelihoods)) if normalize_weights
               else dict(likelihoods))

    graph = WeightedGraph()
    r_vertex_of: dict[RecordId, int] = {}
    access_counts: dict[RecordId, int] = {}
    t_vertex_of: list[int] = []
    edge_weight_of: dict[RecordId, float] = {}

    t_weight = 1.0 if load_metric == "transactions" else 0.0
    for sample in sample_list:
        t_vertex_of.append(graph.add_vertex(t_weight))

    for index, sample in enumerate(sample_list):
        t_vertex = t_vertex_of[index]
        for rid in sample.records():
            r_vertex = r_vertex_of.get(rid)
            if r_vertex is None:
                r_vertex = graph.add_vertex(0.0)
                r_vertex_of[rid] = r_vertex
            access_counts[rid] = access_counts.get(rid, 0) + 1
            weight = max(weights.get(rid, 0.0), min_weight)
            edge_weight_of[rid] = weight
            graph.add_edge(t_vertex, r_vertex, weight)

    if load_metric == "records":
        for rid, vertex in r_vertex_of.items():
            graph.vertex_weights[vertex] = 1.0
    elif load_metric == "accesses":
        for rid, vertex in r_vertex_of.items():
            graph.vertex_weights[vertex] = float(access_counts[rid])
    return StarGraph(graph, t_vertex_of, r_vertex_of, sample_list,
                     edge_weight_of)


def partition_star_graph(star: StarGraph, n_partitions: int,
                         eps: float = 0.10, seed: int = 1) -> list[int]:
    """Balanced min-cut over the star graph (cut weight = contention)."""
    return part_graph(star.graph, n_partitions, eps=eps, seed=seed)
