"""The contention-likelihood model (paper Section 4.1).

Reads and writes to a record within a *lock window* (the average time a
lock is held) are modeled as independent Poisson processes with rates
``lambda_r`` and ``lambda_w``.  A conflicting access is either
write-write (at least two writes, no reads) or read-write (at least one
of each); the two cases are disjoint, and the paper's closed form is

    Pc = 1 - e^{-lw} - lw * e^{-lw} * e^{-lr}

With ``lambda_w = 0`` the likelihood is exactly 0: shared locks never
conflict with each other.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..storage.record import RecordId


def contention_likelihood(lambda_w: float, lambda_r: float) -> float:
    """Conflict probability for one record within one lock window."""
    if lambda_w < 0 or lambda_r < 0:
        raise ValueError("arrival rates must be non-negative")
    return 1.0 - math.exp(-lambda_w) - (
        lambda_w * math.exp(-lambda_w) * math.exp(-lambda_r))


def likelihoods_from_rates(
        rates: Mapping[RecordId, tuple[float, float]],
) -> dict[RecordId, float]:
    """Vectorized convenience: {rid: (lambda_w, lambda_r)} -> {rid: Pc}."""
    return {rid: contention_likelihood(lw, lr)
            for rid, (lw, lr) in rates.items()}


def normalize(likelihoods: Mapping[RecordId, float],
              ) -> dict[RecordId, float]:
    """Scale likelihoods so the hottest record is 1.0 (paper Fig. 5c)."""
    if not likelihoods:
        return {}
    peak = max(likelihoods.values())
    if peak <= 0.0:
        return {rid: 0.0 for rid in likelihoods}
    return {rid: value / peak for rid, value in likelihoods.items()}
