"""Chiller's contention-aware partitioner (paper Section 4.3).

Pipeline: sampled transaction footprints -> contention likelihoods
(Poisson model) -> star graph -> balanced min-cut (our multilevel
partitioner standing in for METIS) -> a hot-record lookup table over a
hash/range fallback.  The cut solution simultaneously decides where hot
records live and which partition would serve each sampled transaction's
inner region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..storage.record import RecordId
from .contention import normalize
from .lookup import HotRecordTable
from .stargraph import StarGraph, build_star_graph, partition_star_graph
from .stats import TxnSample


@dataclass(frozen=True)
class ChillerPartitionerConfig:
    """Knobs of the partitioning pipeline."""

    eps: float = 0.10
    """Balance slack: L(p) <= (1 + eps) * mu."""

    hot_threshold: float = 0.05
    """Normalized likelihood above which a record enters the lookup
    table (everything below falls back to hash/range placement)."""

    load_metric: str = "transactions"
    min_weight: float = 0.0
    """Minimum edge weight; > 0 co-optimizes for fewer distributed
    transactions (Section 4.4)."""

    seed: int = 1
    keep_all_records: bool = False
    """Store every record's placement (Schism-style full lookup table).
    Used by the lookup-size experiment to quantify the saving."""


@dataclass
class ChillerPartitioning:
    """The partitioner's full output."""

    hot_table: HotRecordTable
    record_assignment: dict[RecordId, int]
    inner_hosts: list[int]
    star: StarGraph
    assignment: list[int]
    likelihoods: dict[RecordId, float] = field(default_factory=dict)

    @property
    def cut_weight(self) -> float:
        return self.star.cut_weight(self.assignment)

    def lookup_table_size(self) -> int:
        return len(self.hot_table)

    def scheme(self, fallback):
        """Placement scheme for the catalog."""
        return self.hot_table.scheme(fallback)


def partition_workload(samples: Iterable[TxnSample],
                       likelihoods: Mapping[RecordId, float],
                       n_partitions: int,
                       config: ChillerPartitionerConfig | None = None,
                       ) -> ChillerPartitioning:
    """Run the full Chiller partitioning pipeline."""
    config = config or ChillerPartitionerConfig()
    star = build_star_graph(samples, likelihoods,
                            load_metric=config.load_metric,
                            min_weight=config.min_weight)
    assignment = partition_star_graph(star, n_partitions,
                                      eps=config.eps, seed=config.seed)
    record_assignment = star.record_assignment(assignment)
    normalized = normalize(dict(likelihoods))
    threshold = 0.0 if config.keep_all_records else config.hot_threshold
    hot_table = HotRecordTable.from_assignment(record_assignment,
                                               normalized, threshold)
    return ChillerPartitioning(
        hot_table=hot_table,
        record_assignment=record_assignment,
        inner_hosts=star.inner_host_assignment(assignment),
        star=star,
        assignment=assignment,
        likelihoods=dict(likelihoods))
