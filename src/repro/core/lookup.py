"""The hot-record lookup table (paper Section 4.4).

Chiller stores explicit placements only for records whose contention
likelihood clears a threshold; everything else falls through to an
orthogonal default partitioner (hash/range), keeping the table tiny —
the paper measures ~10x smaller than Schism's per-record table.  The
same structure answers the region planner's "is this record hot?" test
(run-time decision step 1).
"""

from __future__ import annotations

from typing import Mapping

from ..partitioning.base import LookupScheme
from ..storage.record import RecordId


class HotRecordTable:
    """Placements (and hotness) of the contended records."""

    def __init__(self, entries: Mapping[RecordId, int]):
        self._entries = dict(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rid: RecordId) -> bool:
        return rid in self._entries

    def is_hot(self, table: str, key) -> bool:
        return (table, key) in self._entries

    def partition(self, table: str, key) -> int | None:
        return self._entries.get((table, key))

    def entries(self) -> dict[RecordId, int]:
        return dict(self._entries)

    def scheme(self, fallback) -> LookupScheme:
        """A catalog placement scheme: hot entries over ``fallback``."""
        return LookupScheme(self._entries, fallback)

    @classmethod
    def from_assignment(cls, record_assignment: Mapping[RecordId, int],
                        likelihoods: Mapping[RecordId, float],
                        threshold: float) -> "HotRecordTable":
        """Keep only records whose likelihood clears ``threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        return cls({rid: part
                    for rid, part in record_assignment.items()
                    if likelihoods.get(rid, 0.0) >= threshold})

    @classmethod
    def from_stats(cls, likelihoods: Mapping[RecordId, float],
                   threshold: float, placement) -> "HotRecordTable":
        """Hot records under an *existing* layout (e.g. TPC-C warehouse
        partitioning): placements come from ``placement(table, key)``
        instead of a fresh graph cut.  This is how the Fig. 9/10
        experiments run Chiller's execution model over the same
        partitioning as the baselines."""
        from .contention import normalize
        normalized = normalize(dict(likelihoods))
        return cls({rid: placement(rid[0], rid[1])
                    for rid, value in normalized.items()
                    if value >= threshold})

    @classmethod
    def empty(cls) -> "HotRecordTable":
        return cls({})
