"""The hot-record lookup table (paper Section 4.4).

Chiller stores explicit placements only for records whose contention
likelihood clears a threshold; everything else falls through to an
orthogonal default partitioner (hash/range), keeping the table tiny —
the paper measures ~10x smaller than Schism's per-record table.  The
same structure answers the region planner's "is this record hot?" test
(run-time decision step 1).

Since the adaptive-placement subsystem (:mod:`repro.placement`) landed,
the table is also **epoch-versioned**: live record migrations flip an
entry via :meth:`HotRecordTable.apply_move`, which bumps the table's
epoch and remembers the move history.  A transaction captures the
epoch at start; when one of its reads later misses, the executor asks
:meth:`moved_since` to distinguish "this record never existed"
(a genuine READ_MISS, an application abort) from "this record moved
under me" (a retryable MIGRATED abort — the retry re-resolves against
the current epoch).  Static runs never call :meth:`apply_move`, so the
epoch stays 0 and every path below behaves exactly as before.
"""

from __future__ import annotations

from typing import Mapping

from ..partitioning.base import LookupScheme
from ..storage.record import RecordId


class HotRecordTable:
    """Placements (and hotness) of the contended records."""

    def __init__(self, entries: Mapping[RecordId, int]):
        self._entries = dict(entries)
        self._epoch = 0
        # rid -> [(epoch, partition), ...] placement history; only
        # records that actually migrated carry an entry, so static
        # tables pay nothing
        self._history: dict[RecordId, list[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rid: RecordId) -> bool:
        return rid in self._entries

    def is_hot(self, table: str, key) -> bool:
        return (table, key) in self._entries

    def partition(self, table: str, key) -> int | None:
        return self._entries.get((table, key))

    def entries(self) -> dict[RecordId, int]:
        return dict(self._entries)

    def scheme(self, fallback) -> LookupScheme:
        """A catalog placement scheme: hot entries over ``fallback``.

        The scheme holds a *snapshot* of the entries; later
        :meth:`apply_move` flips are invisible to it.  Adaptive runs
        use :meth:`live_scheme` instead.
        """
        return LookupScheme(self._entries, fallback)

    def live_scheme(self, fallback) -> "EpochLookupScheme":
        """A placement scheme that reads *through* this table.

        Unlike :meth:`scheme`, placements follow the table as records
        migrate — this is what an adaptive run installs in its catalog
        so routing flips take effect the moment an epoch advances.
        """
        return EpochLookupScheme(self, fallback)

    # -- epoch-versioned migration support ---------------------------------

    @property
    def current_epoch(self) -> int:
        """Epoch of the newest applied placement flip (0: never moved)."""
        return self._epoch

    def apply_move(self, table: str, key, partition: int,
                   epoch: int) -> None:
        """Flip one record's placement as part of placement ``epoch``.

        Idempotent: re-applying the same (record, epoch, partition)
        flip — which happens when the flip is broadcast to every server
        and several of them share one catalog object — is a no-op, so
        both the single-process backends (one shared table) and the
        multiprocess workers (one table per process, several owned
        servers each) converge to the same state.
        """
        if epoch <= 0:
            raise ValueError("placement epochs start at 1")
        rid = (table, key)
        history = self._history.get(rid)
        if history is None:
            # seed with the pre-migration placement (if the table had
            # one) so partition_as_of can answer for old epochs
            history = self._history[rid] = (
                [(0, self._entries[rid])] if rid in self._entries else [])
        if not (history and history[-1] == (epoch, partition)):
            history.append((epoch, partition))
        self._entries[rid] = partition
        self._epoch = max(self._epoch, epoch)

    def moved_since(self, table: str, key, epoch: int) -> bool:
        """Did this record migrate after placement epoch ``epoch``?

        This is what turns a read miss into a retryable MIGRATED abort:
        a transaction that captured ``epoch`` at start and later missed
        the record at its old home should re-resolve, not give up.
        """
        history = self._history.get((table, key))
        return bool(history) and history[-1][0] > epoch

    def partition_as_of(self, table: str, key, epoch: int) -> int | None:
        """The record's explicit placement as of placement ``epoch``.

        ``None`` means the table had no entry at that epoch (the record
        fell through to the fallback scheme).  Note that live
        transactions always resolve against the *current* placement —
        they capture their start epoch only to classify late read
        misses (:meth:`moved_since`); this historical view exists for
        debugging and migration audits, and only records that actually
        migrated carry any history.
        """
        rid = (table, key)
        history = self._history.get(rid)
        if not history:
            return self._entries.get(rid)
        placed: int | None = None
        for move_epoch, partition in history:
            if move_epoch <= epoch:
                placed = partition
        return placed

    @classmethod
    def from_assignment(cls, record_assignment: Mapping[RecordId, int],
                        likelihoods: Mapping[RecordId, float],
                        threshold: float) -> "HotRecordTable":
        """Keep only records whose likelihood clears ``threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        return cls({rid: part
                    for rid, part in record_assignment.items()
                    if likelihoods.get(rid, 0.0) >= threshold})

    @classmethod
    def from_stats(cls, likelihoods: Mapping[RecordId, float],
                   threshold: float, placement) -> "HotRecordTable":
        """Hot records under an *existing* layout (e.g. TPC-C warehouse
        partitioning): placements come from ``placement(table, key)``
        instead of a fresh graph cut.  This is how the Fig. 9/10
        experiments run Chiller's execution model over the same
        partitioning as the baselines."""
        from .contention import normalize
        normalized = normalize(dict(likelihoods))
        return cls({rid: placement(rid[0], rid[1])
                    for rid, value in normalized.items()
                    if value >= threshold})

    @classmethod
    def empty(cls) -> "HotRecordTable":
        return cls({})


class EpochLookupScheme:
    """A live, epoch-versioned catalog placement scheme.

    Same contract as :class:`~repro.partitioning.base.LookupScheme`,
    but placements read *through* a :class:`HotRecordTable` so the
    migration executor's :meth:`HotRecordTable.apply_move` flips are
    visible to routing immediately.  The extra surface
    (``current_epoch`` / ``moved_since`` / ``apply_move``) is what the
    database layer duck-types to decide whether a read miss might be a
    record that migrated mid-flight.
    """

    def __init__(self, table: HotRecordTable, fallback):
        self.table = table
        self.fallback = fallback

    @property
    def entries(self) -> dict[RecordId, int]:
        """Explicit per-record placements (the hot set + migrations).

        Exposed so worker-build pruning can keep explicitly-placed
        records everywhere, like :class:`LookupScheme` does.
        """
        return self.table._entries

    @property
    def current_epoch(self) -> int:
        return self.table.current_epoch

    def apply_move(self, table: str, key, partition: int,
                   epoch: int) -> None:
        self.table.apply_move(table, key, partition, epoch)

    def moved_since(self, table: str, key, epoch: int) -> bool:
        return self.table.moved_since(table, key, epoch)

    def partition_of(self, table: str, key) -> int:
        placed = self.table.partition(table, key)
        if placed is not None:
            return placed
        return self.fallback.partition_of(table, key)

    def lookup_table_size(self) -> int:
        return len(self.table) + self.fallback.lookup_table_size()
