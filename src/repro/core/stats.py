"""The global statistics service (paper Section 4.1).

Partition managers sample a small fraction of running transactions and
report their read- and write-sets; the service aggregates per-record
access frequencies over a time window and converts them into per-record
contention likelihoods via the Poisson model.  0.1% sampling is enough
in the paper; sampling here is driven by the workload trace the
experiments feed in.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..analysis import ProcedureRegistry
from ..storage.record import RecordId
from ..txn.common import TxnRequest
from .contention import contention_likelihood


@dataclass(frozen=True)
class TxnSample:
    """One sampled transaction's record footprint."""

    proc: str
    reads: tuple[RecordId, ...]
    writes: tuple[RecordId, ...]

    def records(self) -> tuple[RecordId, ...]:
        seen: dict[RecordId, None] = {}
        for rid in self.reads + self.writes:
            seen.setdefault(rid)
        return tuple(seen)


def sample_from_request(registry: ProcedureRegistry,
                        request: TxnRequest) -> TxnSample:
    """Extract the statically-knowable record footprint of a request.

    Records whose keys derive from values read at run time (fresh order
    ids, etc.) are skipped: they are new or unpredictable records, which
    by construction cannot be *frequently* accessed, so the contention
    model never needs them.
    """
    proc = registry.get(request.proc)
    reads: list[RecordId] = []
    writes: list[RecordId] = []
    written_reads: set[str] = set()
    instances = proc.instantiate(request.params)
    for inst in instances:
        target = inst.target_instance()
        if target is not None:
            written_reads.add(target)
    for inst in instances:
        placement = inst.placement(request.params)
        if placement is None or not placement.exact:
            continue
        rid = (placement.table, placement.key)
        kind = inst.spec.kind.value
        if kind == "read":
            if inst.name in written_reads:
                writes.append(rid)
            else:
                reads.append(rid)
        elif kind in ("update", "delete"):
            continue  # counted through their target read
        elif kind == "insert":
            writes.append(rid)
    return TxnSample(request.proc, tuple(reads), tuple(writes))


@dataclass
class StatsService:
    """Aggregates sampled footprints into contention likelihoods.

    ``lock_window_us`` is the average lock-hold duration; together with
    the observed transaction rate it converts access counts into the
    per-window Poisson arrival rates the model needs.
    """

    sample_rate: float = 1.0
    lock_window_us: float = 10.0
    samples: list[TxnSample] = field(default_factory=list)
    _read_counts: Counter = field(default_factory=Counter)
    _write_counts: Counter = field(default_factory=Counter)

    def record(self, sample: TxnSample) -> None:
        self.samples.append(sample)
        self._read_counts.update(sample.reads)
        self._write_counts.update(sample.writes)

    def __len__(self) -> int:
        return len(self.samples)

    def access_counts(self, rid: RecordId) -> tuple[int, int]:
        """(writes, reads) observed for one record."""
        return self._write_counts[rid], self._read_counts[rid]

    def arrival_rates(self, observed_duration_us: float,
                      ) -> dict[RecordId, tuple[float, float]]:
        """Per-record (lambda_w, lambda_r) within one lock window."""
        if observed_duration_us <= 0:
            raise ValueError("observation window must be positive")
        scale = self.lock_window_us / (observed_duration_us
                                       * self.sample_rate)
        rids = set(self._read_counts) | set(self._write_counts)
        return {rid: (self._write_counts[rid] * scale,
                      self._read_counts[rid] * scale)
                for rid in rids}

    def likelihoods(self, observed_duration_us: float,
                    ) -> dict[RecordId, float]:
        """Contention likelihood of every observed record."""
        return {rid: contention_likelihood(lw, lr)
                for rid, (lw, lr)
                in self.arrival_rates(observed_duration_us).items()}

    def likelihoods_from_txn_rate(self, txns_per_second: float,
                                  ) -> dict[RecordId, float]:
        """Offline variant: derive the window from an assumed load."""
        if txns_per_second <= 0:
            raise ValueError("transaction rate must be positive")
        implied_duration_us = (len(self.samples) / self.sample_rate
                               / txns_per_second * 1e6)
        return self.likelihoods(implied_duration_us)
