"""chiller-repro: a reproduction of Chiller (SIGMOD 2020).

Zamanian, Shun, Binnig, Kraska - *Chiller: Contention-centric
Transaction Execution and Data Partitioning for Fast Networks.*

The package layers, bottom-up:

* :mod:`repro.sim` - discrete-event cluster (cores, RDMA-style network,
  coroutine engines);
* :mod:`repro.storage` - records, NO_WAIT lock words in hash buckets,
  partitions, placement catalog;
* :mod:`repro.analysis` - stored-procedure IR and dependency graphs;
* :mod:`repro.txn` - database wiring plus the 2PL+2PC and OCC baselines;
* :mod:`repro.graph` - multilevel balanced min-cut (METIS substitute);
* :mod:`repro.partitioning` - hash/range/lookup schemes and Schism;
* :mod:`repro.core` - Chiller itself: contention model, star-graph
  partitioner, hot-record table, region planner, two-region executor;
* :mod:`repro.replication` - replicas and the Fig. 6 inner protocol;
* :mod:`repro.workloads` - TPC-C, synthetic Instacart, YCSB, demos;
* :mod:`repro.bench` - driver, metrics, per-figure experiments.

Quick start: see README.md or ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

from .bench import RunConfig, run_benchmark
from .core import ChillerExecutor, HotRecordTable, partition_workload
from .sim import Cluster, NetworkConfig
from .storage import Catalog
from .txn import Database, OccExecutor, TwoPLExecutor, TxnRequest

__all__ = [
    "Catalog",
    "ChillerExecutor",
    "Cluster",
    "Database",
    "HotRecordTable",
    "NetworkConfig",
    "OccExecutor",
    "RunConfig",
    "TwoPLExecutor",
    "TxnRequest",
    "__version__",
    "partition_workload",
    "run_benchmark",
]
