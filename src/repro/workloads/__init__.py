"""Workloads: TPC-C, synthetic Instacart, YCSB, bank, flight booking."""

from .bank import BankWorkload, audit_procedure, transfer_procedure
from .base import Workload
from .flightbooking import (FLIGHT_TABLES, flight_booking_procedure,
                            flight_routing, populate)
from .instacart import InstacartWorkload, grocery_order_procedure
from .tpcc import TpccScale, TpccWorkload
from .ycsb import YcsbWorkload, ycsb_procedure

__all__ = [
    "BankWorkload",
    "FLIGHT_TABLES",
    "InstacartWorkload",
    "TpccScale",
    "TpccWorkload",
    "Workload",
    "YcsbWorkload",
    "audit_procedure",
    "flight_booking_procedure",
    "flight_routing",
    "grocery_order_procedure",
    "populate",
    "transfer_procedure",
    "ycsb_procedure",
]
