"""Power-law popularity weights with pinned head shares.

The Instacart calibration needs "top product in ~15% of baskets, second
in ~8%" — with a basket of ~10 independent draws, that means per-draw
probabilities of ~0.016 and ~0.0085 (1 - (1-p)^10).  The head
probabilities are pinned exactly; the tail *continues the curve
downward* from the last pinned share (so no tail item outranks the
head) and a uniform background absorbs the remaining probability mass,
mimicking the long flat tail of real purchase data.
"""

from __future__ import annotations

import math


def power_law_weights(n: int, top_shares: tuple[float, ...] = (),
                      tail_exponent: float = 1.0) -> list[float]:
    """Per-draw probabilities over ``n`` ranked items, summing to 1.

    The head shares are pinned exactly; normalization error from the
    tail construction (including the rescale branch, whose float drift
    used to leave the vector summing to ≠ 1) is folded back into the
    tail, so ``math.fsum(weights)`` is 1 to within a few ulps.
    """
    if n <= len(top_shares):
        raise ValueError("need more items than pinned head shares")
    if any(share <= 0.0 for share in top_shares):
        raise ValueError("pinned head shares must be positive")
    head_mass = math.fsum(top_shares)
    if head_mass >= 1.0:
        raise ValueError("pinned head shares must sum below 1")
    if any(a < b for a, b in zip(top_shares, top_shares[1:])):
        raise ValueError("pinned head shares must be non-increasing")

    n_head = len(top_shares)
    n_tail = n - n_head
    if not top_shares:
        anchor = 1.0
    else:
        anchor = top_shares[-1]
    # continue the curve: tail rank r gets anchor * (n_head/(n_head+r))^s
    base = max(1, n_head)
    tail = [anchor * (base / (base + rank)) ** tail_exponent
            for rank in range(1, n_tail + 1)]
    tail_mass = math.fsum(tail)
    spare = 1.0 - head_mass - tail_mass
    if spare < 0:
        # curve carries too much mass for the pinned head: shrink it
        tail = [w * (1.0 - head_mass) / tail_mass for w in tail]
        spare = 0.0
    background = spare / n_tail
    weights = list(top_shares)
    weights.extend(w + background for w in tail)
    # exact renormalization: fold the residual float drift into the
    # largest tail weight (the head stays pinned bit-for-bit)
    residual = 1.0 - math.fsum(weights)
    weights[n_head] += residual
    return weights
