"""The paper's running example: a simplified ticket-purchase procedure.

This is the stored procedure of Fig. 4, transcribed into the op IR::

    f = read(flight, key=flight_id)            # hot, updated
    c = read(customer, key=cust_id)            # updated
    t = read(tax, key=c.state)                 # pk-dep on c
    cost = f.price * (1 + t.rate)
    if c.balance >= cost and f.seats > 0:
        update(f, seats -= 1)
        update(c, balance -= cost)             # v-dep on inner 'cost'
        insert(seats, key=(flight_id, seat_id))  # pk-dep on f (seat_id)
    else: abort

With a hot flight record, static analysis + the region planner put
``{f, f_upd, s_ins}`` in the inner region and keep the customer and tax
accesses in the outer region — the exact split shown in the paper.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..analysis import (StoredProcedure, check, derived_key, insert,
                        param_key, read, update)
from ..storage import TableSpec

FLIGHT_TABLES = [
    TableSpec("flight", n_buckets=4096),
    TableSpec("customer", n_buckets=4096),
    TableSpec("tax", n_buckets=64),
    TableSpec("seats", n_buckets=4096),
]


def ticket_cost(ctx: Mapping[str, Any]) -> float:
    """cost = flight price plus tax (the paper's calculate_cost)."""
    return ctx["f"]["price"] * (1.0 + ctx["t"]["rate"])


def flight_booking_procedure() -> StoredProcedure:
    """Build the Fig. 4 stored procedure."""
    return StoredProcedure(
        "book_flight",
        params=("flight_id", "cust_id"),
        ops=[
            read("f", "flight", key=param_key("flight_id"),
                 for_update=True),
            read("c", "customer", key=param_key("cust_id"),
                 for_update=True),
            read("t", "tax",
                 key=derived_key(("c",),
                                 lambda p, ctx, item: ctx["c"]["state"])),
            check("ok", deps=("f", "c", "t"),
                  predicate=lambda p, ctx, item:
                      ctx["c"]["balance"] >= ticket_cost(ctx)
                      and ctx["f"]["seats"] > 0),
            update("f_upd", target="f",
                   set_fn=lambda p, ctx, item:
                       {"seats": ctx["f"]["seats"] - 1},
                   conditional=True),
            update("c_upd", target="c",
                   set_fn=lambda p, ctx, item:
                       {"balance": ctx["c"]["balance"] - ticket_cost(ctx)},
                   value_deps=("f", "t"), conditional=True),
            insert("s_ins", "seats",
                   key=derived_key(
                       ("f",),
                       lambda p, ctx, item:
                           (p["flight_id"], ctx["f"]["seats"]),
                       partition_hint=lambda p, item: (p["flight_id"], 0)),
                   fields_fn=lambda p, ctx, item:
                       {"cust": p["cust_id"], "name": ctx["c"]["name"]},
                   value_deps=("c",), conditional=True),
        ])


def seats_routing_key(key: Any) -> Any:
    """Seats rows co-locate with their flight: route by flight id."""
    return key[0]


def flight_routing(table: str, key: Any) -> Any:
    """Routing function for hash placement: seats rows follow their
    flight (which makes the insert's partition hint trustworthy)."""
    if table == "seats":
        return seats_routing_key(key)
    return key


def populate(load, n_flights: int = 100, n_customers: int = 1000,
             n_states: int = 10, seats_per_flight: int = 200,
             balance: float = 10_000.0) -> None:
    """Load the three base tables through ``load(table, key, fields)``."""
    for flight_id in range(n_flights):
        load("flight", flight_id,
             {"price": 100.0 + flight_id, "seats": seats_per_flight})
    for cust_id in range(n_customers):
        load("customer", cust_id,
             {"balance": balance, "name": f"cust-{cust_id}",
              "state": cust_id % n_states})
    for state in range(n_states):
        load("tax", state, {"rate": 0.05 + 0.005 * state})
