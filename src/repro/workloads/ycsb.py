"""A minimal YCSB-style key-value micro-workload.

Useful for focused contention experiments: every transaction reads and
optionally updates a handful of keys drawn either uniformly or from a
zipf-like skewed distribution.  This is the scalpel version of the bank
workload — no transfers, no invariants, just tunable conflict rates.
"""

from __future__ import annotations

import random

from ..analysis import StoredProcedure, param_key, read, update
from ..storage import TableSpec
from ..txn.common import TxnRequest
from ._zipf import power_law_weights
from .base import Workload


def ycsb_procedure() -> StoredProcedure:
    """Read ``read_keys``; read-modify-write ``write_keys``."""
    return StoredProcedure(
        "ycsb", params=("read_keys", "write_keys"),
        ops=[
            read("r", "usertable",
                 key=param_key(lambda p, k: k), foreach="read_keys"),
            read("w", "usertable",
                 key=param_key(lambda p, k: k), for_update=True,
                 foreach="write_keys"),
            update("w_upd", target="w", foreach="write_keys",
                   set_fn=lambda p, ctx, k:
                       {"counter": ctx["w"]["counter"] + 1}),
        ])


class YcsbWorkload(Workload):
    """Configurable read/write mix over one table."""

    def __init__(self, n_keys: int = 10_000,
                 reads_per_txn: int = 8,
                 writes_per_txn: int = 2,
                 zipf_exponent: float = 0.0,
                 seed: int = 1):
        self.n_keys = n_keys
        self.reads_per_txn = reads_per_txn
        self.writes_per_txn = writes_per_txn
        self.zipf_exponent = zipf_exponent
        if zipf_exponent > 0.0:
            import itertools
            weights = power_law_weights(n_keys,
                                        tail_exponent=zipf_exponent)
            self._cum_weights = list(itertools.accumulate(weights))
        else:
            self._cum_weights = None

    def tables(self) -> list[TableSpec]:
        return [TableSpec("usertable", n_buckets=4 * self.n_keys)]

    def procedures(self) -> list[StoredProcedure]:
        return [ycsb_procedure()]

    def populate(self, load) -> None:
        for key in range(self.n_keys):
            load("usertable", key, {"counter": 0})

    def next_request(self, home: int, rng: random.Random) -> TxnRequest:
        total = self.reads_per_txn + self.writes_per_txn
        keys: list[int] = []
        seen: set[int] = set()
        while len(keys) < total:
            key = self._pick(rng)
            if key not in seen:
                keys.append(key)
                seen.add(key)
        return TxnRequest("ycsb", {
            "read_keys": keys[:self.reads_per_txn],
            "write_keys": keys[self.reads_per_txn:],
        }, home=home)

    def _pick(self, rng: random.Random) -> int:
        if self._cum_weights is None:
            return rng.randrange(self.n_keys)
        return rng.choices(range(self.n_keys),
                           cum_weights=self._cum_weights, k=1)[0]

    # -- data-affinity routing (``RunConfig.route_by_data``) ----------------

    def route(self, request: TxnRequest, partition_of) -> int:
        """The partition owning most of the write set (ties: lowest id).

        Routing conflicting transactions to one coordinator is what
        makes *engine-local* conflict-class scheduling globally
        effective under hot-key skew: the hot record's writers all meet
        the same scheduler instead of racing across engines.
        """
        votes: dict[int, int] = {}
        for key in request.params["write_keys"]:
            pid = partition_of("usertable", key)
            votes[pid] = votes.get(pid, 0) + 1
        if not votes:
            return request.home
        return min(votes, key=lambda pid: (-votes[pid], pid))

    def rebind(self, request: TxnRequest, home: int) -> TxnRequest:
        """Re-home a request (YCSB params carry no home-derived keys)."""
        return TxnRequest(request.proc, request.params, home=home)


class DriftingYcsbWorkload(YcsbWorkload):
    """YCSB with group-structured co-access and a mid-run hot-set shift.

    Keys are organized into ``n_groups`` groups of ``group_size``
    consecutive keys; every transaction draws *all* its keys from one
    group, chosen by a zipf distribution over group ranks.  Groups are
    the co-access signal a partitioner can exploit: co-locating a
    group makes its transactions single-partition.

    At ``shift_at_us`` (on the bound cluster clock — simulated µs on
    sim, wall-clock µs on aio/mp) the rank→group mapping rotates by
    ``shift_offset``: a previously cold slice of the key space becomes
    the hot set, and any layout trained on the pre-shift distribution
    is suddenly stale.  This is the first workload in the repo that
    *changes under the system* — the scenario the adaptive placement
    subsystem (:mod:`repro.placement`) exists for.
    """

    def __init__(self, n_groups: int = 64, group_size: int = 8,
                 reads_per_txn: int = 4, writes_per_txn: int = 2,
                 zipf_exponent: float = 1.05,
                 shift_at_us: float | None = None,
                 shift_offset: int | None = None):
        if reads_per_txn + writes_per_txn > group_size:
            raise ValueError("a transaction's keys must fit in one group")
        super().__init__(n_keys=n_groups * group_size,
                         reads_per_txn=reads_per_txn,
                         writes_per_txn=writes_per_txn,
                         zipf_exponent=0.0)
        self.n_groups = n_groups
        self.group_size = group_size
        self.shift_at_us = shift_at_us
        self.shift_offset = (shift_offset if shift_offset is not None
                             else n_groups // 2)
        import itertools
        weights = power_law_weights(n_groups, tail_exponent=zipf_exponent)
        self._group_cum = list(itertools.accumulate(weights))
        self._now = None

    def bind_clock(self, now_fn) -> None:
        """Attach the run's clock (done by the benchmark builder once
        the cluster exists); without a clock the workload never
        shifts."""
        self._now = now_fn

    @property
    def shifted(self) -> bool:
        return (self._now is not None and self.shift_at_us is not None
                and self._now() >= self.shift_at_us)

    def next_request(self, home: int, rng: random.Random) -> TxnRequest:
        return self._request(home, rng, self.shifted)

    def _request(self, home: int, rng: random.Random,
                 shifted: bool) -> TxnRequest:
        rank = rng.choices(range(self.n_groups),
                           cum_weights=self._group_cum, k=1)[0]
        group = ((rank + self.shift_offset) % self.n_groups if shifted
                 else rank)
        base = group * self.group_size
        keys = rng.sample(range(base, base + self.group_size),
                          self.reads_per_txn + self.writes_per_txn)
        return TxnRequest("ycsb", {
            "read_keys": keys[:self.reads_per_txn],
            "write_keys": keys[self.reads_per_txn:],
        }, home=home)

    def trace(self, n: int, n_partitions: int, phase: str = "pre",
              seed: int = 1) -> list[TxnRequest]:
        """An offline request trace from one phase's distribution —
        what the drift benchmark trains its initial layout on."""
        if phase not in ("pre", "post"):
            raise ValueError(f"unknown phase {phase!r}")
        from .._util import make_rng
        rng = make_rng(seed, "drift-trace", phase)
        return [self._request(i % n_partitions, rng, phase == "post")
                for i in range(n)]


def expected_counter_total(db, n_keys: int) -> int:
    """Sum of all counters (equals total committed write ops)."""
    total = 0
    for key in range(n_keys):
        pid = db.partition_of("usertable", key)
        total += db.store(pid).read("usertable", key)[0]["counter"]
    return total
