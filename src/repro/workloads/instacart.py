"""Synthetic Instacart-like grocery workload (paper Section 7.2).

The paper feeds real Instacart baskets (3M orders, ~50k products) into
a TPC-C-NewOrder-like stored procedure: read each purchased product's
stock row, decrement it, insert an order row.  We cannot ship that
dataset, so this generator reproduces the distributional properties the
experiment depends on (see DESIGN.md, Substitutions):

* heavy skew — the top product appears in ~15% of baskets, the second
  in ~8% (bananas and strawberries in the real data), with a smooth
  power-law tail behind them;
* mean basket size ~10 products;
* correlated co-purchase — products belong to categories (dairy,
  produce, ...) and baskets mix a handful of categories, so frequently
  co-bought hot items exist for the partitioner to exploit;
* hard to range-partition: product ids carry no locality.

The access skew turns the top stock rows into exactly the kind of hot
records the contention model flags.
"""

from __future__ import annotations

import itertools
import random

from ..analysis import StoredProcedure, insert, param_key, read, update
from ..storage import TableSpec
from ..txn.common import TxnRequest
from ._zipf import power_law_weights
from .base import Workload


def grocery_order_procedure() -> StoredProcedure:
    """The NewOrder-like procedure: decrement stocks, insert an order."""
    return StoredProcedure(
        "grocery_order",
        params=("order_id", "customer_id", "items"),
        ops=[
            read("stock", "stock",
                 key=param_key(lambda p, i_id: i_id),
                 for_update=True, foreach="items"),
            update("stock_upd", target="stock", foreach="items",
                   set_fn=_decrement_stock),
            insert("order_ins", "orders", key=param_key("order_id"),
                   fields_fn=lambda p, ctx, i: {
                       "customer_id": p["customer_id"],
                       "n_items": len(p["items"]),
                   }),
        ])


def _decrement_stock(p, ctx, i_id):
    quantity = ctx["stock"]["quantity"] - 1
    if quantity < 0:
        quantity += 1000  # restock rather than abort (as in the paper's
        #                   NewOrder adaptation, orders never fail)
    return {"quantity": quantity}


class InstacartWorkload(Workload):
    """Synthetic skewed-basket generator."""

    def __init__(self, n_products: int = 10_000,
                 n_customers: int = 2000,
                 mean_basket_size: int = 10,
                 top_shares: tuple[float, ...] = (0.016, 0.0085),
                 tail_exponent: float = 0.55,
                 n_categories: int = 40,
                 categories_per_basket: int = 2,
                 seed: int = 42):
        if n_products < 10:
            raise ValueError("need at least 10 products")
        self.n_products = n_products
        self.n_customers = n_customers
        self.mean_basket_size = mean_basket_size
        self.weights = power_law_weights(n_products, top_shares,
                                         tail_exponent)
        self.n_categories = n_categories
        self.categories_per_basket = categories_per_basket
        self._category_of = [self._assign_category(p, seed)
                             for p in range(n_products)]
        self._products_by_category: dict[int, list[int]] = {}
        for product, category in enumerate(self._category_of):
            self._products_by_category.setdefault(category,
                                                  []).append(product)
        self._order_id = itertools.count(1)
        # two-stage sampling: head products (always available, exact
        # popularity) vs category-restricted tail
        self.n_head = min(20, n_products)
        self._head_mass = sum(self.weights[:self.n_head])
        self._head_cum = list(itertools.accumulate(
            self.weights[:self.n_head]))
        self._category_cum: dict[int, list[float]] = {}
        for category, products in self._products_by_category.items():
            tail = [p for p in products if p >= self.n_head]
            self._products_by_category[category] = tail
            self._category_cum[category] = list(itertools.accumulate(
                self.weights[p] for p in tail))

    def _assign_category(self, product: int, seed: int) -> int:
        from .._util import stable_hash
        return stable_hash((seed, "category", product)) % self.n_categories

    # -- Workload interface ---------------------------------------------------

    def tables(self) -> list[TableSpec]:
        return [TableSpec("stock", n_buckets=4 * self.n_products),
                TableSpec("orders", n_buckets=8192)]

    def procedures(self) -> list[StoredProcedure]:
        return [grocery_order_procedure()]

    def populate(self, load) -> None:
        for product in range(self.n_products):
            load("stock", product, {"quantity": 1000})

    def next_request(self, home: int, rng: random.Random) -> TxnRequest:
        customer = rng.randrange(self.n_customers)
        return TxnRequest("grocery_order", {
            "order_id": (home, next(self._order_id)),
            "customer_id": customer,
            "items": self.sample_basket(rng, customer),
        }, home=home)

    # -- basket model ------------------------------------------------------------

    def customer_categories(self, customer: int) -> list[int]:
        """A customer's habitual categories (stable across orders).

        Real Instacart customers place ~15 orders each and keep buying
        from the same aisles; this recurring structure is what makes
        the workload *learnable* for a trace-driven partitioner while
        still being hard to partition (the popular head cuts across
        all customers).
        """
        from .._util import stable_hash
        return sorted({stable_hash(("cust-cat", customer, j))
                       % self.n_categories
                       for j in range(self.categories_per_basket)})

    def sample_basket(self, rng: random.Random,
                      customer: int = 0) -> list[int]:
        """A basket of popularity-weighted picks.

        Each pick is a two-stage draw: with the head's total mass, one
        of the ~20 universally popular products (bananas are in
        everyone's cart regardless of what else they buy); otherwise a
        popularity-weighted product from one of the customer's habitual
        categories — giving the correlated co-purchase structure.
        """
        size = max(1, int(rng.gauss(self.mean_basket_size, 2.0)))
        categories = self.customer_categories(customer)
        basket: list[int] = []
        seen: set[int] = set()
        attempts = 0
        while len(basket) < size and attempts < size * 30:
            attempts += 1
            product = self._draw(rng, categories)
            if product is not None and product not in seen:
                basket.append(product)
                seen.add(product)
        return basket

    def _draw(self, rng: random.Random,
              categories: list[int]) -> int | None:
        if rng.random() < self._head_mass:
            return rng.choices(range(self.n_head),
                               cum_weights=self._head_cum, k=1)[0]
        category = categories[rng.randrange(len(categories))]
        products = self._products_by_category.get(category, ())
        if not products:
            return None
        cum = self._category_cum[category]
        return rng.choices(products, cum_weights=cum, k=1)[0]

    # -- data-affinity routing ------------------------------------------------

    def route(self, request: TxnRequest, partition_of) -> int:
        """The partition owning most of the basket's stock rows: where a
        real deployment's transaction router would send this order."""
        votes: dict[int, int] = {}
        for product in request.params["items"]:
            pid = partition_of("stock", product)
            votes[pid] = votes.get(pid, 0) + 1
        return min(votes, key=lambda pid: (-votes[pid], pid))

    def rebind(self, request: TxnRequest, home: int) -> TxnRequest:
        """Re-home a request: the order row follows the coordinator."""
        params = dict(request.params)
        params["order_id"] = (home, params["order_id"][1])
        return TxnRequest(request.proc, params, home=home)

    def trace(self, n_orders: int, n_partitions: int,
              seed: int = 7) -> list[TxnRequest]:
        """A fixed workload trace (used to train the partitioners)."""
        from .._util import make_rng
        rng = make_rng(seed, "instacart-trace")
        return [self.next_request(i % n_partitions, rng)
                for i in range(n_orders)]
