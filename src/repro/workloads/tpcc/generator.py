"""TPC-C transaction mix and request generation.

Standard mix (the evaluation's Section 7.3 "full TPC-C mix"):
NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%.

Cross-warehouse knobs follow the spec's defaults and the Fig. 10 sweep:

* ``payment_remote_prob`` — probability the paying customer belongs to
  a remote warehouse (spec: 15%);
* ``new_order_remote_prob`` — probability the order contains at least
  one item supplied by a remote warehouse (spec: ~10%);
* 1% of NewOrders reference an unused item id and roll back (spec).

Each engine generates transactions for the warehouses it hosts
(``w_id % n_partitions == home``).
"""

from __future__ import annotations

import itertools
import random

from ...analysis import StoredProcedure
from ...storage import TableSpec
from ...txn.common import TxnRequest
from ..base import Workload
from .loader import TpccScale, load_tpcc
from .procedures import all_procedures
from .schema import DISTRICTS_PER_WAREHOUSE, tpcc_tables

STANDARD_MIX = (("new_order", 0.45), ("payment", 0.43),
                ("order_status", 0.04), ("delivery", 0.04),
                ("stock_level", 0.04))

INVALID_ITEM_ID = -1


class TpccWorkload(Workload):
    """Full TPC-C over warehouse partitioning."""

    def __init__(self, scale: TpccScale | None = None,
                 n_partitions: int = 4,
                 mix: tuple[tuple[str, float], ...] = STANDARD_MIX,
                 payment_remote_prob: float = 0.15,
                 new_order_remote_prob: float = 0.10,
                 rollback_prob: float = 0.01,
                 items_per_order: tuple[int, int] = (5, 15)):
        self.scale = scale or TpccScale(n_warehouses=n_partitions)
        if self.scale.n_warehouses < n_partitions:
            raise ValueError("need at least one warehouse per partition")
        self.n_partitions = n_partitions
        self.mix = mix
        total = sum(share for _name, share in mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix shares sum to {total}, expected 1.0")
        self.payment_remote_prob = payment_remote_prob
        self.new_order_remote_prob = new_order_remote_prob
        self.rollback_prob = rollback_prob
        self.items_per_order = items_per_order
        self._h_id = itertools.count(1)

    # -- Workload interface -------------------------------------------------

    def tables(self) -> list[TableSpec]:
        return tpcc_tables(self.scale.n_items,
                           self.scale.customers_per_district)

    def procedures(self) -> list[StoredProcedure]:
        return all_procedures()

    def populate(self, load) -> None:
        load_tpcc(load, self.scale)

    def next_request(self, home: int, rng: random.Random) -> TxnRequest:
        name = self._pick_proc(rng)
        w_id = self._home_warehouse(home, rng)
        builder = getattr(self, f"_gen_{name}")
        return builder(w_id, home, rng)

    # -- generators ----------------------------------------------------------

    def _pick_proc(self, rng: random.Random) -> str:
        roll = rng.random()
        cumulative = 0.0
        for name, share in self.mix:
            cumulative += share
            if roll < cumulative:
                return name
        return self.mix[-1][0]

    def _home_warehouse(self, home: int, rng: random.Random) -> int:
        locals_ = [w for w in range(self.scale.n_warehouses)
                   if w % self.n_partitions == home]
        return rng.choice(locals_)

    def _remote_warehouse(self, w_id: int, rng: random.Random) -> int:
        if self.scale.n_warehouses == 1:
            return w_id
        other = rng.randrange(self.scale.n_warehouses - 1)
        return other if other < w_id else other + 1

    def _gen_new_order(self, w_id: int, home: int,
                       rng: random.Random) -> TxnRequest:
        n_items = rng.randint(*self.items_per_order)
        remote_txn = rng.random() < self.new_order_remote_prob
        items = []
        chosen: set[int] = set()
        for number in range(n_items):
            i_id = rng.randrange(self.scale.n_items)
            while i_id in chosen:
                i_id = rng.randrange(self.scale.n_items)
            chosen.add(i_id)
            supply = w_id
            if remote_txn and number == 0:
                supply = self._remote_warehouse(w_id, rng)
            items.append({"i_id": i_id, "supply_w_id": supply,
                          "qty": rng.randint(1, 10),
                          "ol_number": number})
        if rng.random() < self.rollback_prob:
            items[-1] = dict(items[-1], i_id=INVALID_ITEM_ID)
        return TxnRequest("new_order", {
            "w_id": w_id,
            "d_id": rng.randrange(DISTRICTS_PER_WAREHOUSE),
            "c_id": rng.randrange(self.scale.customers_per_district),
            "items": items,
            "entry_d": 1,
        }, home=home)

    def _gen_payment(self, w_id: int, home: int,
                     rng: random.Random) -> TxnRequest:
        c_w_id = w_id
        if rng.random() < self.payment_remote_prob:
            c_w_id = self._remote_warehouse(w_id, rng)
        return TxnRequest("payment", {
            "w_id": w_id,
            "d_id": rng.randrange(DISTRICTS_PER_WAREHOUSE),
            "c_w_id": c_w_id,
            "c_d_id": rng.randrange(DISTRICTS_PER_WAREHOUSE),
            "c_id": rng.randrange(self.scale.customers_per_district),
            "amount": round(rng.uniform(1.0, 5000.0), 2),
            "h_id": next(self._h_id),
        }, home=home)

    def _gen_order_status(self, w_id: int, home: int,
                          rng: random.Random) -> TxnRequest:
        return TxnRequest("order_status", {
            "w_id": w_id,
            "d_id": rng.randrange(DISTRICTS_PER_WAREHOUSE),
            "c_id": rng.randrange(self.scale.customers_per_district),
        }, home=home)

    def _gen_delivery(self, w_id: int, home: int,
                      rng: random.Random) -> TxnRequest:
        return TxnRequest("delivery", {
            "w_id": w_id,
            "d_id": rng.randrange(DISTRICTS_PER_WAREHOUSE),
            "carrier_id": rng.randint(1, 10),
            "delivery_d": 1,
        }, home=home)

    def _gen_stock_level(self, w_id: int, home: int,
                         rng: random.Random) -> TxnRequest:
        n_checks = rng.randint(5, 10)
        return TxnRequest("stock_level", {
            "w_id": w_id,
            "d_id": rng.randrange(DISTRICTS_PER_WAREHOUSE),
            "threshold": rng.randint(10, 20),
            "check_items": rng.sample(range(self.scale.n_items),
                                      n_checks),
        }, home=home)
