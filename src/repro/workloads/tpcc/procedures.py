"""The five TPC-C stored procedures in the operation IR.

Faithful to the spec's data flow where it matters for contention, with
documented simplifications (see DESIGN.md):

* customers are always selected by id (the 60%-by-last-name path needs
  a secondary index that adds nothing to the contention study);
* OrderStatus reads the customer's district's most recent order instead
  of walking a per-customer index, and skips its order lines;
* Delivery processes one district per invocation (the spec does all
  ten) and credits the order's stored total instead of summing lines;
* StockLevel samples ``check_items`` provided by the generator instead
  of scanning the last 20 orders' lines.

The two contention points the paper leans on are intact: every NewOrder
increments ``d_next_o_id`` on one of ten district rows, and every
Payment updates ``w_ytd`` on the single warehouse row that all
NewOrders also read-share (Section 7.3.2, Fig. 9c's starvation).
"""

from __future__ import annotations

from typing import Any, Mapping

from ...analysis import (StoredProcedure, check, delete, derived_key,
                         insert, param_key, read, update)


def _wd(p: Mapping[str, Any], item: Any) -> tuple:
    return (p["w_id"], p["d_id"])


def _order_total(p: Mapping[str, Any], ctx: Mapping[str, Any]) -> float:
    total = 0.0
    for i, line in enumerate(p["items"]):
        total += ctx[f"item[{i}]"]["i_price"] * line["qty"]
    return total


def new_order_procedure() -> StoredProcedure:
    """Place an order: the district increment is contention point #1."""
    return StoredProcedure(
        "new_order",
        params=("w_id", "d_id", "c_id", "items", "entry_d"),
        ops=[
            read("warehouse", "warehouse", key=param_key("w_id")),
            read("district", "district", key=param_key(_wd),
                 for_update=True),
            read("customer", "customer",
                 key=param_key(lambda p, i:
                               (p["w_id"], p["d_id"], p["c_id"]))),
            # 1% of requests carry an unused item id -> read miss ->
            # rollback, per the spec
            read("item", "item",
                 key=param_key(lambda p, line: line["i_id"]),
                 foreach="items"),
            read("stock", "stock",
                 key=param_key(lambda p, line:
                               (line["supply_w_id"], line["i_id"])),
                 for_update=True, foreach="items"),
            update("stock_upd", target="stock", foreach="items",
                   set_fn=_stock_update),
            update("district_upd", target="district",
                   set_fn=lambda p, ctx, i:
                       {"d_next_o_id": ctx["district"]["d_next_o_id"] + 1}),
            insert("order_ins", "order",
                   key=derived_key(
                       ("district",),
                       lambda p, ctx, i: (p["w_id"], p["d_id"],
                                          ctx["district"]["d_next_o_id"]),
                       partition_hint=lambda p, i:
                           (p["w_id"], p["d_id"], 0)),
                   fields_fn=lambda p, ctx, i: {
                       "o_c_id": p["c_id"],
                       "o_entry_d": p["entry_d"],
                       "o_carrier_id": None,
                       "o_ol_cnt": len(p["items"]),
                       "o_total": _order_total(p, ctx),
                   }),
            insert("new_order_ins", "new_order",
                   key=derived_key(
                       ("district",),
                       lambda p, ctx, i: (p["w_id"], p["d_id"],
                                          ctx["district"]["d_next_o_id"]),
                       partition_hint=lambda p, i:
                           (p["w_id"], p["d_id"], 0)),
                   fields_fn=lambda p, ctx, i: {}),
            insert("order_line_ins", "order_line", foreach="items",
                   key=derived_key(
                       ("district",),
                       lambda p, ctx, line: (
                           p["w_id"], p["d_id"],
                           ctx["district"]["d_next_o_id"],
                           line["ol_number"]),
                       partition_hint=lambda p, line:
                           (p["w_id"], p["d_id"], 0, 0)),
                   fields_fn=lambda p, ctx, line: {
                       "ol_i_id": line["i_id"],
                       "ol_supply_w_id": line["supply_w_id"],
                       "ol_qty": line["qty"],
                       "ol_amount": ctx["item"]["i_price"] * line["qty"],
                       "ol_delivery_d": None,
                   },
                   value_deps=("item",)),
        ])


def _stock_update(p: Mapping[str, Any], ctx: Mapping[str, Any],
                  line: Mapping[str, Any]) -> dict[str, Any]:
    stock = ctx["stock"]
    quantity = stock["s_quantity"] - line["qty"]
    if quantity < 10:
        quantity += 91
    return {
        "s_quantity": quantity,
        "s_ytd": stock["s_ytd"] + line["qty"],
        "s_order_cnt": stock["s_order_cnt"] + 1,
        "s_remote_cnt": stock["s_remote_cnt"]
        + (1 if line["supply_w_id"] != p["w_id"] else 0),
    }


def payment_procedure() -> StoredProcedure:
    """Pay a customer: the w_ytd update is contention point #2."""
    return StoredProcedure(
        "payment",
        params=("w_id", "d_id", "c_w_id", "c_d_id", "c_id", "amount",
                "h_id"),
        ops=[
            read("warehouse", "warehouse", key=param_key("w_id"),
                 for_update=True),
            read("district", "district", key=param_key(_wd),
                 for_update=True),
            read("customer", "customer",
                 key=param_key(lambda p, i:
                               (p["c_w_id"], p["c_d_id"], p["c_id"])),
                 for_update=True),
            update("warehouse_upd", target="warehouse",
                   set_fn=lambda p, ctx, i:
                       {"w_ytd": ctx["warehouse"]["w_ytd"] + p["amount"]}),
            update("district_upd", target="district",
                   set_fn=lambda p, ctx, i:
                       {"d_ytd": ctx["district"]["d_ytd"] + p["amount"]}),
            update("customer_upd", target="customer",
                   set_fn=lambda p, ctx, i: {
                       "c_balance": ctx["customer"]["c_balance"]
                       - p["amount"],
                       "c_ytd_payment": ctx["customer"]["c_ytd_payment"]
                       + p["amount"],
                       "c_payment_cnt": ctx["customer"]["c_payment_cnt"]
                       + 1,
                   }),
            insert("history_ins", "history",
                   key=param_key(lambda p, i:
                                 (p["w_id"], p["d_id"], p["c_id"],
                                  p["h_id"])),
                   fields_fn=lambda p, ctx, i: {
                       "h_amount": p["amount"],
                       "h_c_w_id": p["c_w_id"],
                       "h_c_name": ctx["customer"].get("c_last", ""),
                   },
                   value_deps=("customer",)),
        ])


def order_status_procedure() -> StoredProcedure:
    """Read a customer and the district's most recent order."""
    return StoredProcedure(
        "order_status",
        params=("w_id", "d_id", "c_id"),
        ops=[
            read("customer", "customer",
                 key=param_key(lambda p, i:
                               (p["w_id"], p["d_id"], p["c_id"]))),
            read("district", "district", key=param_key(_wd)),
            read("order", "order",
                 key=derived_key(
                     ("district",),
                     lambda p, ctx, i: (p["w_id"], p["d_id"],
                                        ctx["district"]["d_next_o_id"]
                                        - 1),
                     partition_hint=lambda p, i:
                         (p["w_id"], p["d_id"], 0))),
        ])


def delivery_procedure() -> StoredProcedure:
    """Deliver one district's oldest undelivered order."""
    return StoredProcedure(
        "delivery",
        params=("w_id", "d_id", "carrier_id", "delivery_d"),
        ops=[
            read("district", "district", key=param_key(_wd),
                 for_update=True),
            check("has_undelivered", deps=("district",),
                  predicate=lambda p, ctx, i:
                      ctx["district"]["d_next_del_o_id"]
                      < ctx["district"]["d_next_o_id"]),
            read("new_order", "new_order",
                 key=derived_key(
                     ("district",),
                     lambda p, ctx, i: (p["w_id"], p["d_id"],
                                        ctx["district"]
                                        ["d_next_del_o_id"]),
                     partition_hint=lambda p, i:
                         (p["w_id"], p["d_id"], 0)),
                 for_update=True),
            read("order", "order",
                 key=derived_key(
                     ("district",),
                     lambda p, ctx, i: (p["w_id"], p["d_id"],
                                        ctx["district"]
                                        ["d_next_del_o_id"]),
                     partition_hint=lambda p, i:
                         (p["w_id"], p["d_id"], 0)),
                 for_update=True),
            read("customer", "customer",
                 key=derived_key(
                     ("order",),
                     lambda p, ctx, i: (p["w_id"], p["d_id"],
                                        ctx["order"]["o_c_id"]),
                     partition_hint=lambda p, i:
                         (p["w_id"], p["d_id"], 0)),
                 for_update=True),
            delete("new_order_del", target="new_order"),
            update("order_upd", target="order",
                   set_fn=lambda p, ctx, i:
                       {"o_carrier_id": p["carrier_id"]}),
            update("customer_upd", target="customer",
                   set_fn=lambda p, ctx, i: {
                       "c_balance": ctx["customer"]["c_balance"]
                       + ctx["order"]["o_total"],
                       "c_delivery_cnt": ctx["customer"]
                       ["c_delivery_cnt"] + 1,
                   },
                   value_deps=("order",)),
            update("district_upd", target="district",
                   set_fn=lambda p, ctx, i: {
                       "d_next_del_o_id": ctx["district"]
                       ["d_next_del_o_id"] + 1}),
        ])


def stock_level_procedure() -> StoredProcedure:
    """Read the district cursor and a sample of stock rows."""
    return StoredProcedure(
        "stock_level",
        params=("w_id", "d_id", "threshold", "check_items"),
        ops=[
            read("district", "district", key=param_key(_wd)),
            read("stock", "stock",
                 key=param_key(lambda p, i_id: (p["w_id"], i_id)),
                 foreach="check_items"),
        ])


def all_procedures() -> list[StoredProcedure]:
    return [new_order_procedure(), payment_procedure(),
            order_status_procedure(), delivery_procedure(),
            stock_level_procedure()]
