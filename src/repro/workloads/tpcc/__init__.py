"""Full TPC-C workload: schema, loader, procedures, generator."""

from .generator import INVALID_ITEM_ID, STANDARD_MIX, TpccWorkload
from .loader import TpccScale, load_tpcc
from .procedures import (all_procedures, delivery_procedure,
                         new_order_procedure, order_status_procedure,
                         payment_procedure, stock_level_procedure)
from .schema import (DISTRICTS_PER_WAREHOUSE, REPLICATED_TABLES,
                     tpcc_routing, tpcc_tables)

__all__ = [
    "DISTRICTS_PER_WAREHOUSE",
    "INVALID_ITEM_ID",
    "REPLICATED_TABLES",
    "STANDARD_MIX",
    "TpccScale",
    "TpccWorkload",
    "all_procedures",
    "delivery_procedure",
    "load_tpcc",
    "new_order_procedure",
    "order_status_procedure",
    "payment_procedure",
    "stock_level_procedure",
    "tpcc_routing",
    "tpcc_tables",
]
