"""TPC-C initial population (scaled-down cardinalities, configurable).

Spec cardinalities (100k items, 3k customers/district, 3k orders) are
scaled to laptop-simulation size by default; every knob is adjustable.
Each district starts with ``initial_orders`` existing orders, the most
recent ``undelivered_orders`` of which still have new_order rows — so
OrderStatus always finds an order and Delivery has work from the start.
"""

from __future__ import annotations

from dataclasses import dataclass

from .schema import DISTRICTS_PER_WAREHOUSE


@dataclass(frozen=True)
class TpccScale:
    n_warehouses: int = 4
    n_items: int = 1000
    customers_per_district: int = 30
    initial_orders: int = 10
    undelivered_orders: int = 5
    initial_stock: int = 50


def load_tpcc(load, scale: TpccScale) -> None:
    """Populate all nine tables through ``load(table, key, fields)``."""
    for i_id in range(scale.n_items):
        load("item", i_id, {
            "i_price": 1.0 + (i_id % 100) * 0.5,
            "i_name": f"item-{i_id}",
        })
    for w_id in range(scale.n_warehouses):
        _load_warehouse(load, scale, w_id)


def _load_warehouse(load, scale: TpccScale, w_id: int) -> None:
    load("warehouse", w_id, {
        "w_name": f"wh-{w_id}",
        "w_tax": 0.05 + (w_id % 10) * 0.005,
        "w_ytd": 0.0,
    })
    for i_id in range(scale.n_items):
        load("stock", (w_id, i_id), {
            "s_quantity": scale.initial_stock,
            "s_ytd": 0,
            "s_order_cnt": 0,
            "s_remote_cnt": 0,
        })
    for d_id in range(DISTRICTS_PER_WAREHOUSE):
        _load_district(load, scale, w_id, d_id)


def _load_district(load, scale: TpccScale, w_id: int, d_id: int) -> None:
    first = scale.initial_orders - scale.undelivered_orders
    load("district", (w_id, d_id), {
        "d_tax": 0.05 + (d_id % 10) * 0.002,
        "d_ytd": 0.0,
        "d_next_o_id": scale.initial_orders,
        "d_next_del_o_id": first,
    })
    for c_id in range(scale.customers_per_district):
        load("customer", (w_id, d_id, c_id), {
            "c_balance": 1000.0,
            "c_ytd_payment": 0.0,
            "c_payment_cnt": 0,
            "c_delivery_cnt": 0,
            "c_credit": "GC",
            "c_last": f"cust-{w_id}-{d_id}-{c_id}",
        })
    for o_id in range(scale.initial_orders):
        c_id = o_id % scale.customers_per_district
        load("order", (w_id, d_id, o_id), {
            "o_c_id": c_id,
            "o_entry_d": 0,
            "o_carrier_id": 1 if o_id < first else None,
            "o_ol_cnt": 5,
            "o_total": 100.0,
        })
        if o_id >= first:
            load("new_order", (w_id, d_id, o_id), {})
