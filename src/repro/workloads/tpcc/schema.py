"""TPC-C schema: the nine tables, keyed for warehouse partitioning.

Primary keys (all routed by their first component, the warehouse id,
except ``item`` which is read-only and replicated to every partition):

==============  =======================================
table           primary key
==============  =======================================
warehouse       w_id
district        (w_id, d_id)
customer        (w_id, d_id, c_id)
history         (w_id, d_id, c_id, h_id)
order           (w_id, d_id, o_id)
new_order       (w_id, d_id, o_id)
order_line      (w_id, d_id, o_id, ol_number)
item            i_id            (replicated, read-only)
stock           (w_id, i_id)
==============  =======================================
"""

from __future__ import annotations

from typing import Any

from ...storage import TableSpec

DISTRICTS_PER_WAREHOUSE = 10

REPLICATED_TABLES = frozenset({"item"})


def tpcc_tables(n_items: int = 1000,
                customers_per_district: int = 30) -> list[TableSpec]:
    """Table specs sized so hot rows rarely share buckets."""
    return [
        TableSpec("warehouse", n_buckets=64),
        TableSpec("district", n_buckets=256),
        TableSpec("customer",
                  n_buckets=4 * DISTRICTS_PER_WAREHOUSE
                  * customers_per_district),
        TableSpec("history", n_buckets=4096),
        TableSpec("order", n_buckets=4096),
        TableSpec("new_order", n_buckets=4096),
        TableSpec("order_line", n_buckets=8192),
        TableSpec("item", n_buckets=4 * n_items),
        TableSpec("stock", n_buckets=4 * n_items),
    ]


def tpcc_routing(table: str, key: Any) -> Any:
    """Route every row by its warehouse id (item never routes: it is
    replicated and resolved to the reader's partition by the catalog)."""
    if isinstance(key, tuple):
        return key[0]
    return key
