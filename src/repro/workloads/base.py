"""Workload interface shared by TPC-C, Instacart, YCSB, and bank demos.

A workload owns its schema (table specs), its stored procedures, its
initial data, and a request generator.  The driver
(:mod:`repro.bench.harness`) asks each execution engine's generator for
the next :class:`~repro.txn.common.TxnRequest` to run.
"""

from __future__ import annotations

import random
from typing import Protocol

from ..analysis import StoredProcedure
from ..storage import TableSpec
from ..txn.common import TxnRequest


class Workload(Protocol):
    """What the harness needs from a benchmark workload."""

    def tables(self) -> list[TableSpec]:
        """Table specs instantiated in every partition."""
        ...  # pragma: no cover - protocol

    def procedures(self) -> list[StoredProcedure]:
        """Stored procedures to register."""
        ...  # pragma: no cover - protocol

    def populate(self, load) -> None:
        """Load initial records through ``load(table, key, fields)``."""
        ...  # pragma: no cover - protocol

    def next_request(self, home: int, rng: random.Random) -> TxnRequest:
        """Generate the next transaction for engine ``home``."""
        ...  # pragma: no cover - protocol
