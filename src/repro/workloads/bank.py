"""A bank micro-workload: the correctness crucible for executors.

Transfers move money between accounts; the global balance is invariant
under any serializable execution, which makes this workload the
sharpest oracle we have for executor bugs (atomicity violations and lost
updates move money out of thin air).  A ``hot_accounts`` knob
concentrates traffic to create contention on demand.
"""

from __future__ import annotations

import random

from ..analysis import StoredProcedure, check, param_key, read, update
from ..storage import TableSpec
from ..txn.common import TxnRequest
from .base import Workload


def transfer_procedure() -> StoredProcedure:
    """Move ``amount`` from ``src`` to ``dst`` if funds suffice."""
    return StoredProcedure(
        "transfer", params=("src", "dst", "amount"),
        ops=[
            read("src_acct", "accounts", key=param_key("src"),
                 for_update=True),
            read("dst_acct", "accounts", key=param_key("dst"),
                 for_update=True),
            check("funded", deps=("src_acct",),
                  predicate=lambda p, ctx, item:
                      ctx["src_acct"]["balance"] >= p["amount"]),
            update("debit", target="src_acct",
                   set_fn=lambda p, ctx, item:
                       {"balance": ctx["src_acct"]["balance"]
                        - p["amount"]},
                   conditional=True),
            update("credit", target="dst_acct",
                   set_fn=lambda p, ctx, item:
                       {"balance": ctx["dst_acct"]["balance"]
                        + p["amount"]},
                   conditional=True),
        ])


def audit_procedure() -> StoredProcedure:
    """Read a set of accounts (shared locks only)."""
    return StoredProcedure(
        "audit", params=("accounts",),
        ops=[
            read("acct", "accounts",
                 key=param_key(lambda p, item: item),
                 foreach="accounts"),
        ])


class BankWorkload(Workload):
    """Random transfers (optionally skewed to a hot set) plus audits."""

    def __init__(self, n_accounts: int = 1000,
                 initial_balance: float = 1000.0,
                 hot_accounts: int = 0,
                 hot_probability: float = 0.0,
                 audit_fraction: float = 0.0,
                 amount: float = 10.0):
        if hot_accounts > n_accounts:
            raise ValueError("hot set larger than the account population")
        self.n_accounts = n_accounts
        self.initial_balance = initial_balance
        self.hot_accounts = hot_accounts
        self.hot_probability = hot_probability
        self.audit_fraction = audit_fraction
        self.amount = amount

    def tables(self) -> list[TableSpec]:
        return [TableSpec("accounts", n_buckets=4 * self.n_accounts)]

    def procedures(self) -> list[StoredProcedure]:
        return [transfer_procedure(), audit_procedure()]

    def populate(self, load) -> None:
        for acct in range(self.n_accounts):
            load("accounts", acct, {"balance": self.initial_balance})

    def total_balance(self) -> float:
        return self.n_accounts * self.initial_balance

    def next_request(self, home: int, rng: random.Random) -> TxnRequest:
        if self.audit_fraction and rng.random() < self.audit_fraction:
            accounts = rng.sample(range(self.n_accounts),
                                  min(5, self.n_accounts))
            return TxnRequest("audit", {"accounts": accounts}, home=home)
        src = self._pick_account(rng)
        dst = self._pick_account(rng)
        while dst == src:
            dst = self._pick_account(rng)
        return TxnRequest("transfer",
                          {"src": src, "dst": dst, "amount": self.amount},
                          home=home)

    def _pick_account(self, rng: random.Random) -> int:
        if self.hot_accounts and rng.random() < self.hot_probability:
            return rng.randrange(self.hot_accounts)
        return rng.randrange(self.n_accounts)
