"""Open-loop traffic generation (the millions-of-users layer).

Seeded arrival processes (:mod:`~repro.traffic.arrivals`) drive the
benchmark harness open-loop — requests enter at generated timestamps
regardless of completion (:mod:`~repro.traffic.openloop`) — with
coordinated-omission-safe latency percentiles and per-tenant SLO
attainment recorded in :class:`~repro.bench.metrics.OpenLoopStats`.
Selected via ``RunConfig.arrivals`` / ``--arrivals``; see
ARCHITECTURE.md "Traffic layer".
"""

from .arrivals import (ADMISSIONS, ARRIVAL_PROCESSES, Arrival, ArrivalSpec,
                       TenantSpec, as_arrival_spec, schedule_for_home)
from .openloop import spawn_open_loop

__all__ = [
    "ADMISSIONS",
    "ARRIVAL_PROCESSES",
    "Arrival",
    "ArrivalSpec",
    "TenantSpec",
    "as_arrival_spec",
    "schedule_for_home",
    "spawn_open_loop",
]
