"""Open-loop load generation: the arrival-schedule dispatch mode.

The harness's closed-loop mode keeps ``concurrent_per_engine`` worker
coroutines saturated; this module replaces them with one **dispatcher**
coroutine per home engine that walks a pre-generated arrival schedule
(:func:`~repro.traffic.arrivals.schedule_for_home`), sleeping until
each scheduled instant and then spawning a request task — *without*
waiting for it to finish.  Requests therefore enter at the offered
rate whether or not the system keeps up, which is what exposes the
saturation knee.

Latency accounting is coordinated-omission-safe by construction: every
request task records ``completion − scheduled arrival`` into its
tenant's :class:`~repro.bench.metrics.LatencyHistogram`, so dispatch
lag, admission queueing, scheduler deferrals, and retry backoffs all
land in the percentiles.  Request *content* stays deterministic across
backends because the dispatcher draws every workload request from a
per-home RNG in schedule order, before any concurrency fans out.

The same cross-transaction schedulers (:mod:`repro.sched`) mediate
execution exactly as in closed-loop mode; ``admission="deadline"``
additionally puts a :class:`~repro.sched.DeadlineAdmission` front door
ahead of each engine, shedding unpayable and low-value arrivals before
they consume capacity.
"""

from __future__ import annotations

import random
from typing import Iterable

from .._util import make_rng
from ..bench.metrics import APP_ABORTS, Metrics, OpenLoopStats
from ..sched import DeadlineAdmission, SchedAction, Scheduler
from ..sim import Sleep
from .arrivals import Arrival, ArrivalSpec, schedule_for_home


def spawn_open_loop(workload, executor, config, spec: ArrivalSpec,
                    cluster, metrics: Metrics, homes: Iterable[int],
                    schedulers: dict[int, Scheduler],
                    telemetry) -> OpenLoopStats:
    """Spawn one open-loop dispatcher per home engine.

    Installs the run's :class:`OpenLoopStats` into ``metrics`` and
    returns it.  ``schedulers`` and ``telemetry`` are the same wiring
    the closed-loop path builds — open-loop runs compose with conflict
    scheduling and adaptive placement unchanged.
    """
    stats = OpenLoopStats()
    metrics.open_loop = stats
    # tenants registered eagerly so a fully-shed tenant still reports
    # its 0% attainment instead of vanishing from the summary
    for tenant in spec.effective_tenants():
        stats.tenant(tenant.name, tenant.deadline_us)
    max_priority = spec.max_priority()
    # divisor is the *global* load-generating home count (mp workers
    # each see only their subset, but must split the offered load the
    # same way the single-process run does)
    n_homes = (len(config.homes) if config.homes is not None
               else config.n_partitions)
    for home in homes:
        schedule = schedule_for_home(spec, home, n_homes,
                                     config.seed, config.horizon_us)
        admission = None
        if spec.admission == "deadline":
            admission = DeadlineAdmission(
                schedulers[home].stats, max_priority=max_priority,
                max_in_flight=spec.max_in_flight,
                init_gap_us=spec.init_gap_us,
                gap_ewma_alpha=spec.gap_ewma_alpha)
        cluster.engine(home).spawn(
            _dispatcher(workload, executor, config, cluster, metrics,
                        stats, schedule, home, schedulers[home],
                        admission, telemetry))
    return stats


def _dispatcher(workload, executor, config, cluster, metrics: Metrics,
                stats: OpenLoopStats, schedule: list[Arrival], home: int,
                scheduler: Scheduler, admission: DeadlineAdmission | None,
                telemetry):
    """Walk the schedule, admitting or shedding each arrival on time."""
    rng = make_rng(config.seed, "open-loop", home)
    engine = cluster.engine(home)
    tracer = executor.db.tracer
    for index, arrival in enumerate(schedule):
        tenant = stats.tenant(arrival.tenant, arrival.deadline_us)
        tenant.scheduled += 1
        delay = arrival.at - cluster.sim.now
        if delay > 0:
            yield Sleep(delay)
        # drawn in schedule order on the dispatcher, so the request
        # sequence is deterministic however execution interleaves
        request = workload.next_request(home, rng)
        trace = tracer.new_trace(home) if tracer.enabled else 0
        if admission is not None:
            if admission.admit(arrival, cluster.sim.now) is not None:
                tenant.shed += 1
                if trace:
                    tracer.span(trace, 0, 0, home, "shed", arrival.at,
                                cluster.sim.now, "shed")
                continue
            admission.on_start()
        task_rng = make_rng(config.seed, "open-loop-task", home, index)
        engine.spawn(_request_task(request, arrival, executor, config,
                                   cluster, metrics, stats, home,
                                   scheduler, admission, telemetry,
                                   task_rng, trace))


def _request_task(request, arrival: Arrival, executor, config, cluster,
                  metrics: Metrics, stats: OpenLoopStats, home: int,
                  scheduler: Scheduler,
                  admission: DeadlineAdmission | None, telemetry,
                  rng: random.Random, trace: int = 0):
    """Execute one admitted arrival to completion; settle its SLO."""
    tenant = stats.tenants[arrival.tenant]
    tracer = executor.db.tracer
    decision = scheduler.admit(request, cluster.sim.now)
    while decision.action is SchedAction.DEFER:
        yield decision.wait_effect()
        decision = scheduler.readmit(request, decision, cluster.sim.now)
    if decision.action is SchedAction.SHED:
        tenant.shed += 1
        if trace:
            tracer.span(trace, 0, 0, home, "shed", arrival.at,
                        cluster.sim.now, "shed")
        if admission is not None:
            admission.on_finish(cluster.sim.now)
        return
    if trace and cluster.sim.now > arrival.at:
        # dispatch lag + admission queueing, measured from the
        # *scheduled* arrival so exemplars explain CO-safe latency
        tracer.span(trace, 0, 0, home, "queue_wait", arrival.at,
                    cluster.sim.now)
    attempts = 0
    while True:
        outcome = yield from executor.execute(request, trace=trace,
                                              attempt=attempts)
        metrics.add(outcome)
        if telemetry is not None and outcome.committed:
            telemetry[home].observe(outcome, cluster.sim.now)
        attempts += 1
        retryable = (not outcome.committed
                     and outcome.reason not in APP_ABORTS
                     and config.retry_aborts
                     and attempts < config.max_attempts
                     and cluster.sim.now < config.horizon_us)
        scheduler.on_outcome(decision, outcome, cluster.sim.now,
                             will_retry=retryable)
        if not retryable:
            break
        yield Sleep(scheduler.retry_backoff_us(
            decision, rng, config.retry_backoff_us))
    now = cluster.sim.now
    latency_us = now - arrival.at
    tenant.histogram.record(latency_us)
    if trace:
        # top-K slowest traces per tenant: what perf_summary() uses to
        # attribute p99/p999 to a dominant phase
        tracer.exemplar(arrival.tenant, trace, latency_us)
    if outcome.committed:
        tenant.committed += 1
        if arrival.deadline_us <= 0 or latency_us <= arrival.deadline_us:
            tenant.in_slo += 1
    else:
        tenant.failed += 1
    if admission is not None:
        admission.on_finish(now)
