"""Seeded open-loop arrival processes.

A closed-loop benchmark (N workers, each issuing its next request the
moment the previous one finishes) can never show a saturation knee:
when the system slows down, the load generator politely slows down
with it — the classic *coordinated omission* trap.  This module
generates **arrival schedules**: per-engine lists of timestamps at
which requests enter the system *regardless of completion*.  The
harness's open-loop mode (:mod:`repro.traffic.openloop`) dispatches a
request at each scheduled instant and measures its latency from that
instant, so queueing delay under overload is charged to the system,
not silently absorbed by the generator.

Schedules are a pure function of ``(spec, home, n_homes, seed,
horizon_us)`` — they touch no clock and no global state — so the same
run configuration produces bit-identical arrivals on the simulator, the
asyncio backend, and every multiprocess worker (each worker generates
the schedules for the homes it owns).

Processes:

* ``poisson`` — memoryless arrivals at a constant mean rate.
* ``diurnal`` — a sinusoidal day/night curve; ``offered_load`` is the
  *peak* rate, the trough sits at ``diurnal_trough`` of it.
* ``flash`` — a flash-crowd step: quiet at ``offered_load /
  flash_ratio`` until ``flash_at_frac`` of the horizon, then the full
  rate hits at once.
* ``tenants`` — a multi-tenant mix: independent Poisson streams per
  tenant with per-tenant shares, priorities, and SLO deadlines,
  merged into one schedule.

Non-constant rates use Lewis–Shedler thinning: candidates are drawn
from a homogeneous process at the peak rate and accepted with
probability ``rate(t) / peak``, which keeps the schedule exact for any
bounded rate curve while staying a deterministic function of the RNG
stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, NamedTuple

from .._util import make_rng

ARRIVAL_PROCESSES = ("poisson", "diurnal", "flash", "tenants")
"""Arrival processes a run can select (``RunConfig.arrivals``)."""

ADMISSIONS = ("none", "deadline")
"""Open-loop admission policies: admit every arrival, or shed by
deadline and priority (see :class:`repro.sched.DeadlineAdmission`)."""


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class inside a multi-tenant mix.

    Tenants are *traffic* classes, not data classes: they share the
    workload's key space and differ only in rate share, value
    (priority), and SLO deadline.
    """

    name: str
    share: float = 1.0
    """Relative slice of the aggregate offered load (normalized over
    all tenants, so shares need not sum to 1)."""

    priority: float = 1.0
    """Value of this tenant's work; under overload the deadline-aware
    admission controller sheds lower-priority tenants first."""

    deadline_us: float | None = None
    """SLO deadline measured from the *scheduled* arrival; None uses
    the spec-level default."""


DEFAULT_TENANT_MIX = (TenantSpec("gold", share=0.2, priority=4.0),
                      TenantSpec("standard", share=0.8, priority=1.0))
"""The stock two-tier mix the ``tenants`` process uses when the spec
does not name its own: a small high-value slice over a bulk tier."""


class Arrival(NamedTuple):
    """One scheduled request: when it enters, and on whose behalf."""

    at: float
    """Scheduled entry time in backend microseconds (simulated µs on
    sim, wall-clock µs on aio/mp)."""

    tenant: str
    deadline_us: float
    priority: float


@dataclass(frozen=True)
class ArrivalSpec:
    """Picklable recipe for one run's open-loop traffic.

    This is what ``RunConfig.arrivals`` holds; it crosses into mp
    worker processes inside the config, and each process regenerates
    its homes' schedules locally (schedules are deterministic, so
    nothing needs to ship).
    """

    process: str = "poisson"
    offered_load: float = 20_000.0
    """Aggregate arrival rate in txns/sec across all load-generating
    homes (the peak rate for ``diurnal``/``flash``)."""

    deadline_us: float = 4_000.0
    """Default SLO deadline from scheduled arrival to commit."""

    admission: str = "none"
    """``"none"`` admits every arrival (the honest overload baseline);
    ``"deadline"`` sheds arrivals whose predicted wait exceeds their
    deadline budget, lowest-priority first."""

    tenants: tuple[TenantSpec, ...] = ()
    """Traffic classes; empty means one anonymous tenant (or, for the
    ``tenants`` process, :data:`DEFAULT_TENANT_MIX`)."""

    diurnal_period_us: float = 20_000.0
    diurnal_trough: float = 0.25
    """Trough rate as a fraction of the peak ``offered_load``."""

    flash_at_frac: float = 0.5
    """Where in the horizon the flash-crowd step hits (fraction)."""

    flash_ratio: float = 4.0
    """Peak-to-quiet rate ratio of the flash step."""

    max_in_flight: int = 4096
    """Hard in-flight cap per engine under deadline admission (the
    last-ditch queue bound; 0 disables)."""

    init_gap_us: float = 100.0
    """Prior for the admission controller's completion-gap EWMA before
    any completion has been observed."""

    gap_ewma_alpha: float = 0.2

    def effective_tenants(self) -> tuple[TenantSpec, ...]:
        """The tenant set with spec defaults resolved."""
        tenants = self.tenants
        if not tenants:
            tenants = (DEFAULT_TENANT_MIX if self.process == "tenants"
                       else (TenantSpec("all"),))
        return tuple(
            replace(t, deadline_us=(t.deadline_us if t.deadline_us
                                    is not None else self.deadline_us))
            for t in tenants)

    def max_priority(self) -> float:
        return max(t.priority for t in self.effective_tenants())


def as_arrival_spec(value: "ArrivalSpec | str | None",
                    ) -> ArrivalSpec | None:
    """Normalize ``RunConfig.arrivals`` (None, a process name, or a
    full spec).  None means closed-loop — the historical behavior."""
    if value is None:
        return None
    if isinstance(value, str):
        if value not in ARRIVAL_PROCESSES:
            raise ValueError(f"unknown arrival process {value!r} "
                             f"(expected one of {ARRIVAL_PROCESSES})")
        return ArrivalSpec(process=value)
    if value.process not in ARRIVAL_PROCESSES:
        raise ValueError(f"unknown arrival process {value.process!r} "
                         f"(expected one of {ARRIVAL_PROCESSES})")
    if value.admission not in ADMISSIONS:
        raise ValueError(f"unknown admission policy {value.admission!r} "
                         f"(expected one of {ADMISSIONS})")
    return value


def _rate_curve(spec: ArrivalSpec,
                horizon_us: float) -> Callable[[float], float]:
    """Relative rate ``r(t) in (0, 1]`` against the peak offered load."""
    if spec.process == "diurnal":
        trough = min(max(spec.diurnal_trough, 0.0), 1.0)
        period = spec.diurnal_period_us

        def diurnal(t: float) -> float:
            phase = 0.5 * (1.0 + math.sin(2.0 * math.pi * t / period))
            return trough + (1.0 - trough) * phase

        return diurnal
    if spec.process == "flash":
        step_at = spec.flash_at_frac * horizon_us
        quiet = 1.0 / max(spec.flash_ratio, 1.0)
        return lambda t: 1.0 if t >= step_at else quiet
    return lambda t: 1.0


def schedule_for_home(spec: ArrivalSpec, home: int, n_homes: int,
                      seed: int, horizon_us: float) -> list[Arrival]:
    """This home's arrival schedule, sorted by entry time.

    Deterministic in ``(spec, home, n_homes, seed, horizon_us)`` and
    nothing else: each ``(home, tenant)`` stream draws from its own
    :func:`~repro._util.make_rng` stream, so schedules are identical
    across backends and across mp worker topologies (a worker owning
    homes {1, 3} generates exactly the schedules the single-process
    run generates for those homes).
    """
    if n_homes <= 0:
        raise ValueError("schedule needs at least one home")
    if spec.offered_load <= 0.0:
        raise ValueError("offered_load must be positive")
    rate = _rate_curve(spec, horizon_us)
    tenants = spec.effective_tenants()
    total_share = sum(t.share for t in tenants)
    arrivals: list[Arrival] = []
    for tenant in tenants:
        peak_per_us = (spec.offered_load * tenant.share
                       / total_share / n_homes / 1e6)
        rng = make_rng(seed, "arrivals", spec.process, home, tenant.name)
        t = 0.0
        while True:
            t += rng.expovariate(peak_per_us)
            if t >= horizon_us:
                break
            # Lewis-Shedler thinning against the peak rate
            if rng.random() < rate(t):
                arrivals.append(Arrival(t, tenant.name,
                                        tenant.deadline_us,
                                        tenant.priority))
    arrivals.sort(key=lambda a: (a.at, a.tenant))
    return arrivals
