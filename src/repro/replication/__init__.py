"""Replication: replica placement/state and the Fig. 6 inner protocol."""

from .common_types import InnerReplicaAck, InnerReplicate, ReplicaWrite
from .replica import ReplicaManager

__all__ = [
    "InnerReplicaAck",
    "InnerReplicate",
    "ReplicaManager",
    "ReplicaWrite",
]
