"""Wire-level types shared by the replication protocols."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ReplicaWrite:
    """One record mutation shipped to a replica."""

    kind: str               # "update" | "insert" | "delete"
    table: str
    key: Any
    values: dict[str, Any] | None = None


@dataclass(frozen=True)
class InnerReplicate:
    """Inner host -> replica: apply this inner-region write-set, then
    acknowledge directly to the *coordinator* (paper Fig. 6)."""

    txn_id: int
    partition: int
    writes: tuple[ReplicaWrite, ...]
    coordinator: int


@dataclass(frozen=True)
class InnerReplicaAck:
    """Replica -> coordinator: inner-region writes are durable here."""

    txn_id: int
    replica_server: int
