"""Replica placement and state.

Each partition has ``n_replicas`` copies beyond the primary (the paper's
experiments use replication degree 2: one primary plus one copy).  The
replica of partition ``p`` number ``j`` lives on server
``(p + 1 + j) mod n`` — chained placement, so no server replicates
itself.  Replicas hold full :class:`~repro.storage.partition.PartitionStore`
state and apply write-sets in the order they arrive (channel FIFO-ness
gives the in-order guarantee the paper assumes of RDMA queue pairs).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..storage import PartitionStore, TableSpec
from .common_types import ReplicaWrite


class ReplicaManager:
    """Creates, places, and applies writes to partition replicas."""

    def __init__(self, n_servers: int, n_replicas: int,
                 tables: Iterable[TableSpec],
                 now_fn: Callable[[], float] | None = None):
        if n_replicas < 0:
            raise ValueError("n_replicas must be >= 0")
        if n_replicas >= n_servers:
            raise ValueError(
                f"cannot place {n_replicas} replicas of each partition on "
                f"{n_servers} servers without self-replication")
        self.n_servers = n_servers
        self.n_replicas = n_replicas
        table_list = list(tables)
        # (hosting server, partition id) -> replica store
        self._stores: dict[tuple[int, int], PartitionStore] = {}
        for partition in range(n_servers):
            for server in self.replica_servers(partition):
                self._stores[(server, partition)] = PartitionStore(
                    partition, table_list, now_fn=now_fn)
        self.applied_counts: dict[tuple[int, int], int] = {
            key: 0 for key in self._stores}

    def replica_servers(self, partition: int) -> list[int]:
        """Servers hosting replicas of ``partition`` (primary excluded)."""
        return [(partition + 1 + j) % self.n_servers
                for j in range(self.n_replicas)]

    def store_on(self, server: int, partition: int) -> PartitionStore:
        """The replica store of ``partition`` hosted on ``server``."""
        return self._stores[(server, partition)]

    def load(self, partition: int, table: str, key: Any,
             fields: dict[str, Any], server_filter=None) -> None:
        """Seed all replicas of a record (initial load path).

        ``server_filter`` (an ``owns(server_id)`` predicate) restricts
        loading to replica stores hosted on the caller's servers — how
        multiprocess workers skip seeding replicas they never apply to.
        """
        for server in self.replica_servers(partition):
            if server_filter is None or server_filter(server):
                self._stores[(server, partition)].load(table, key, fields)

    def apply(self, server: int, partition: int,
              writes: Iterable[ReplicaWrite]) -> None:
        """Apply a committed write-set to one replica, in order."""
        store = self._stores[(server, partition)]
        for write in writes:
            if write.kind == "update":
                applied = store.write(write.table, write.key, write.values)
                if not applied:
                    # replica missed the insert this update refers to;
                    # treat as upsert so replicas converge
                    store.insert(write.table, write.key, write.values)
            elif write.kind == "insert":
                if not store.insert(write.table, write.key, write.values):
                    store.write(write.table, write.key, write.values)
            elif write.kind == "delete":
                store.delete(write.table, write.key)
            else:
                raise ValueError(f"unknown replica write kind {write.kind!r}")
        self.applied_counts[(server, partition)] += 1
