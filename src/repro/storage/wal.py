"""Per-server write-ahead log for the commit path.

Each server a process owns gets one append-only log file recording the
coordinator/participant state transitions of the commit FSM
(:mod:`repro.txn.commit_fsm`).  The format deliberately reuses the wire
codec's struct machinery: a record is a flat tuple packed by
:func:`repro.sim.codec.pack_record`, framed by a 4-byte little-endian
length prefix.  No table interning, no atoms that depend on import
order — a WAL file is readable by any later process of the same build.

Record shapes (first element is the record type):

``(R_PREPARE, txn_id, role, peer, payload)``
    The txn reached PREPARED here.  ``role`` says whose log this is for
    the txn: the coordinator logs its full write-set (``payload`` is a
    tuple of ``(partition, wire_writes)`` pairs, ``peer`` is the home
    server); a participant logs only the writes stashed for it
    (``payload`` is its wire_writes tuple, ``peer`` is the coordinator
    server that will decide).

``(R_DECISION, txn_id, committed)``
    The commit/abort decision.  At the coordinator this record *is* the
    commit point and is always synced before the decision is announced;
    participants log it unsynced (the coordinator's copy is
    authoritative — that is what presumed abort queries).

``(R_END, txn_id)``
    The txn is fully resolved here; recovery may skip it.

**Durability model.**  ``mode="fsync"`` syncs every append;
``mode="group"`` batches fsyncs (every ``group_size`` appends), but a
*forced* append — the coordinator's decision record — always syncs:
group commit trades latency of non-decision records, never the commit
point.  Note that surviving a SIGKILL'd worker process only requires
``flush()`` (the page cache outlives the process); fsync is what models
the cost of surviving a machine crash, which is the durability level
the paper's replicated in-memory design targets.

Recovery is redo-only: writes are buffered at the coordinator until the
decision, so an aborted txn has nothing to undo, and redo is idempotent
because wire writes carry absolute evaluated values.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from struct import Struct

from ..sim.codec import pack_record, unpack_record

WAL_MODES = ("off", "fsync", "group")
"""Durability modes a run can select (``RunConfig.wal``)."""

R_PREPARE = 1
R_DECISION = 2
R_END = 3

ROLE_COORDINATOR = 0
ROLE_PARTICIPANT = 1
ROLE_INNER = 2
"""A Chiller inner region's unilateral local commit: prepare and
decision land back-to-back in the host's log (there is no vote), and a
prepare without a decision means the critical section never committed
— nothing is in doubt."""

_S_LEN = Struct("<I")


@dataclass(frozen=True)
class WalSpec:
    """Picklable recipe for a run's durability policy."""

    mode: str = "off"
    dir: str | None = None
    """Directory holding ``server-<id>.wal`` files.  On the mp backend
    the parent assigns one shared directory before spawning, so a
    respawned worker finds its predecessor's logs."""

    group_size: int = 8
    """Appends per fsync under group commit (forced syncs reset it)."""

    append_us: float = 0.9
    """Modeled coordinator CPU/device time per WAL append."""

    fsync_us: float = 18.0
    """Modeled device time per fsync (NVMe-class flush)."""

    @property
    def enabled(self) -> bool:
        return self.mode != "off"


def as_wal_spec(wal: "WalSpec | str | None") -> WalSpec:
    """Normalize ``RunConfig.wal`` (None, a mode name, or a full spec)."""
    if wal is None:
        return WalSpec(mode="off")
    if isinstance(wal, str):
        if wal not in WAL_MODES:
            raise ValueError(f"unknown wal mode {wal!r} "
                             f"(expected one of {WAL_MODES})")
        return WalSpec(mode=wal)
    return wal


@dataclass
class RecoveryStats:
    """Durability/recovery counters, surfaced through ``Metrics``.

    Picklable and mergeable like ``PlacementStats``: multiprocess
    workers ship theirs back to the parent, which folds them.
    """

    wal_mode: str = "off"
    wal_appends: int = 0
    wal_fsyncs: int = 0
    wal_bytes: int = 0
    recoveries: int = 0
    """WAL replays performed (one per restarted process that found
    logs to replay)."""

    txns_redone: int = 0
    """Committed txns whose writes were re-applied from the log."""

    in_doubt_resolved: int = 0
    """Prepared-but-undecided txns resolved at recovery (by a
    coordinator query or presumed abort)."""

    controller_failovers: int = 0
    """Times the placement-controller lease moved to a new leader."""

    def merge_from(self, other: "RecoveryStats") -> None:
        if other.wal_mode != "off":
            self.wal_mode = other.wal_mode
        self.wal_appends += other.wal_appends
        self.wal_fsyncs += other.wal_fsyncs
        self.wal_bytes += other.wal_bytes
        self.recoveries += other.recoveries
        self.txns_redone += other.txns_redone
        self.in_doubt_resolved += other.in_doubt_resolved
        self.controller_failovers += other.controller_failovers

    @classmethod
    def merged(cls, parts: list["RecoveryStats"]) -> "RecoveryStats":
        total = cls()
        for part in parts:
            total.merge_from(part)
        return total

    @property
    def any_activity(self) -> bool:
        return (self.wal_appends > 0 or self.recoveries > 0
                or self.controller_failovers > 0)

    def timeline_snapshot(self) -> dict[str, float]:
        """Cumulative counters for the live metrics timeline."""
        return {"wal_appends": self.wal_appends,
                "wal_fsyncs": self.wal_fsyncs,
                "wal_bytes": self.wal_bytes,
                "recoveries": self.recoveries,
                "txns_redone": self.txns_redone,
                "in_doubt_resolved": self.in_doubt_resolved,
                "controller_failovers": self.controller_failovers}

    def summary(self) -> dict:
        """Flat report fields for ``RunResult.perf_summary()``."""
        return {
            "wal_mode": self.wal_mode,
            "wal_appends": self.wal_appends,
            "wal_fsyncs": self.wal_fsyncs,
            "wal_bytes": self.wal_bytes,
            "recoveries": self.recoveries,
            "txns_redone": self.txns_redone,
            "in_doubt_resolved": self.in_doubt_resolved,
            "controller_failovers": self.controller_failovers,
        }


def wal_path(directory: str, server_id: int) -> str:
    return os.path.join(directory, f"server-{server_id}.wal")


class WriteAheadLog:
    """One server's append-only log."""

    __slots__ = ("path", "spec", "stats", "_fh", "_pending")

    def __init__(self, path: str, spec: WalSpec,
                 stats: RecoveryStats | None = None):
        self.path = path
        self.spec = spec
        self.stats = stats if stats is not None else RecoveryStats()
        self.stats.wal_mode = spec.mode
        self._fh = open(path, "ab")
        self._pending = 0

    def append(self, record: tuple, sync: bool | None = None) -> None:
        """Append one record; durability per the spec's mode.

        ``sync=True`` forces an fsync regardless of mode (the
        coordinator's decision record — the commit point).
        """
        body = pack_record(record)
        self._fh.write(_S_LEN.pack(len(body)))
        self._fh.write(body)
        self.stats.wal_appends += 1
        self.stats.wal_bytes += _S_LEN.size + len(body)
        self._pending += 1
        if sync or self.spec.mode == "fsync" or (
                self.spec.mode == "group"
                and self._pending >= self.spec.group_size):
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.stats.wal_fsyncs += 1
            self._pending = 0
        else:
            # a flush (no fsync) is all process-crash durability needs:
            # the page cache outlives a SIGKILL'd writer
            self._fh.flush()

    def append_cost_us(self, sync: bool = False) -> float:
        """Modeled time one append charges the coordinator."""
        cost = self.spec.append_us
        if sync or self.spec.mode == "fsync":
            cost += self.spec.fsync_us
        elif self.spec.mode == "group":
            # amortized: each append carries 1/group_size of an fsync
            cost += self.spec.fsync_us / max(1, self.spec.group_size)
        return cost

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass


def replay_wal(path: str) -> list[tuple]:
    """All decodable records of one log, in append order.

    Tolerates a torn tail — a crash mid-append leaves a short or
    undecodable final record, which simply was not durable yet.
    """
    records: list[tuple] = []
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return records
    offset = 0
    while offset + _S_LEN.size <= len(data):
        (length,) = _S_LEN.unpack_from(data, offset)
        start = offset + _S_LEN.size
        if start + length > len(data):
            break  # torn tail
        try:
            record = unpack_record(data[start:start + length])
        except Exception:
            break  # torn/corrupt tail: nothing after it is trustworthy
        records.append(record)
        offset = start + length
    return records
