"""A partition: per-table bucket stores plus lock bookkeeping.

``PartitionStore`` exposes exactly the operations that execution engines
ship to (possibly remote) partitions — lock/unlock via the bucket's
embedded lock word, record read/write/insert/delete — and records
*contention spans* (time from lock acquisition to release) so experiments
can report how long hot records stay locked.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from .bucket import BucketStore
from .locks import LockMode, LockWord
from .record import Key, Record


class TableSpec:
    """Configuration for creating one table inside every partition."""

    __slots__ = ("name", "n_buckets", "bucket_capacity")

    def __init__(self, name: str, n_buckets: int = 1024,
                 bucket_capacity: int = 8):
        self.name = name
        self.n_buckets = n_buckets
        self.bucket_capacity = bucket_capacity


class ContentionSpanTracker:
    """Per-record lock statistics: hold times and conflict outcomes.

    Besides contention spans (lock-hold durations), it counts lock
    attempts and NO_WAIT conflicts, which lets experiments compare the
    *measured* per-record conflict probability against the Poisson
    model's prediction (Section 4.1).
    """

    def __init__(self) -> None:
        self.total_span: dict[tuple[str, Key], float] = {}
        self.acquisitions: dict[tuple[str, Key], int] = {}
        self.attempts: dict[tuple[str, Key], int] = {}
        self.conflicts: dict[tuple[str, Key], int] = {}

    def record(self, table: str, key: Key, span: float) -> None:
        rid = (table, key)
        self.total_span[rid] = self.total_span.get(rid, 0.0) + span
        self.acquisitions[rid] = self.acquisitions.get(rid, 0) + 1

    def record_attempt(self, table: str, key: Key,
                       conflicted: bool) -> None:
        rid = (table, key)
        self.attempts[rid] = self.attempts.get(rid, 0) + 1
        if conflicted:
            self.conflicts[rid] = self.conflicts.get(rid, 0) + 1

    def mean_span(self, table: str, key: Key) -> float:
        rid = (table, key)
        count = self.acquisitions.get(rid, 0)
        if count == 0:
            return 0.0
        return self.total_span[rid] / count

    def conflict_rate(self, table: str, key: Key) -> float:
        """Measured P(lock attempt fails) for one record."""
        rid = (table, key)
        attempts = self.attempts.get(rid, 0)
        if attempts == 0:
            return 0.0
        return self.conflicts.get(rid, 0) / attempts


class PartitionStore:
    """All tables of one partition, with NO_WAIT lock operations."""

    def __init__(self, partition_id: int,
                 tables: Iterable[TableSpec],
                 now_fn: Callable[[], float] | None = None,
                 track_spans: bool = False):
        self.partition_id = partition_id
        self._tables: dict[str, BucketStore] = {}
        for spec in tables:
            self.create_table(spec)
        self._now = now_fn or (lambda: 0.0)
        self.spans = ContentionSpanTracker() if track_spans else None
        # owner -> list of (table, key, lock_word, acquire_time)
        self._held: dict[object, list[tuple[str, Key, LockWord, float]]] = {}

    # -- schema ---------------------------------------------------------

    def create_table(self, spec: TableSpec) -> None:
        if spec.name in self._tables:
            raise ValueError(f"table {spec.name!r} already exists")
        self._tables[spec.name] = BucketStore(
            spec.name, spec.n_buckets, spec.bucket_capacity)

    def table(self, name: str) -> BucketStore:
        store = self._tables.get(name)
        if store is None:
            raise KeyError(f"no table {name!r} in partition "
                           f"{self.partition_id}")
        return store

    def table_names(self) -> list[str]:
        return list(self._tables)

    # -- loading ----------------------------------------------------------

    def load(self, table: str, key: Key, fields: dict[str, Any]) -> None:
        """Bulk-load one record (no locking; used before the run starts)."""
        self.table(table).put(Record(key, dict(fields)))

    # -- lock operations (shipped as one-sided verbs) ---------------------

    def try_lock(self, table: str, key: Key, mode: LockMode,
                 owner: object) -> bool:
        """NO_WAIT acquire on the bucket lock guarding ``key``."""
        lock = self.table(table).lock_for(key)
        already = lock.held_by(owner) is not None
        acquired = lock.try_acquire(mode, owner)
        if self.spans is not None:
            self.spans.record_attempt(table, key, not acquired)
        if not acquired:
            return False
        if not already:
            self._held.setdefault(owner, []).append(
                (table, key, lock, self._now()))
        return True

    def unlock(self, table: str, key: Key, owner: object) -> None:
        lock = self.table(table).lock_for(key)
        lock.release(owner)
        entries = self._held.get(owner, [])
        for i, (tbl, k, word, acquired) in enumerate(entries):
            if word is lock and tbl == table:
                if self.spans is not None:
                    self.spans.record(tbl, k, self._now() - acquired)
                entries.pop(i)
                break
        if not entries:
            self._held.pop(owner, None)

    def release_all(self, owner: object) -> int:
        """Release every lock ``owner`` holds here; returns count released."""
        entries = self._held.pop(owner, [])
        released = set()
        for table, key, lock, acquired in entries:
            if id(lock) not in released:
                lock.release(owner)
                released.add(id(lock))
            if self.spans is not None:
                self.spans.record(table, key, self._now() - acquired)
        return len(entries)

    def release_where(self, predicate: Callable[[object], bool]) -> int:
        """Release all locks of every owner ``predicate`` selects.

        The recovery path uses this to reap locks stranded by a dead
        worker: the owner ids (transaction ids) of a crashed process
        never come back, so nothing else will ever release them.
        Returns the number of lock entries released.
        """
        released = 0
        for owner in [o for o in self._held if predicate(o)]:
            released += self.release_all(owner)
        return released

    def owners_holding(self) -> list[object]:
        """Owners currently holding at least one lock here."""
        return list(self._held)

    def locks_held(self, owner: object) -> int:
        return len(self._held.get(owner, []))

    def is_locked(self, table: str, key: Key) -> bool:
        return not self.table(table).lock_for(key).is_free()

    # -- record operations (shipped as one-sided verbs) --------------------

    def read(self, table: str, key: Key) -> tuple[dict[str, Any], int] | None:
        """Return (fields copy, version), or None if the key is absent."""
        record = self.table(table).get(key)
        if record is None:
            return None
        return record.snapshot(), record.version

    def version_of(self, table: str, key: Key) -> int | None:
        record = self.table(table).get(key)
        return None if record is None else record.version

    def write(self, table: str, key: Key, updates: dict[str, Any]) -> bool:
        """Apply ``updates`` in place; returns False if key is absent."""
        record = self.table(table).get(key)
        if record is None:
            return False
        record.apply(updates)
        return True

    def insert(self, table: str, key: Key, fields: dict[str, Any]) -> bool:
        """Insert a new record; False if it already exists."""
        return self.table(table).insert(Record(key, dict(fields)))

    def delete(self, table: str, key: Key) -> bool:
        return self.table(table).delete(key)

    def __repr__(self) -> str:
        sizes = {name: len(store) for name, store in self._tables.items()}
        return f"PartitionStore(p{self.partition_id}, {sizes})"
