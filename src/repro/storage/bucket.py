"""Hash buckets embedding their own lock word.

Partitions are split into buckets; a record's bucket is derived from a
stable hash of its primary key.  Each bucket hosts multiple records and
chains an overflow bucket when full.  The *head* bucket carries the lock
word guarding every record in the chain — the paper's locking granularity
("buckets are locked when any of their records are being accessed").
"""

from __future__ import annotations

from typing import Any, Iterator

from .._util import stable_hash
from .locks import LockWord
from .record import Key, Record


class Bucket:
    """One bucket: a small record map plus an optional overflow chain."""

    __slots__ = ("records", "overflow", "lock")

    def __init__(self) -> None:
        self.records: dict[Key, Record] = {}
        self.overflow: Bucket | None = None
        self.lock = LockWord()  # only meaningful on head buckets

    def chain(self) -> Iterator["Bucket"]:
        node: Bucket | None = self
        while node is not None:
            yield node
            node = node.overflow


class BucketStore:
    """All buckets of one table within one partition."""

    def __init__(self, table: str, n_buckets: int = 1024,
                 bucket_capacity: int = 8):
        if n_buckets <= 0:
            raise ValueError("need at least one bucket")
        if bucket_capacity <= 0:
            raise ValueError("bucket capacity must be positive")
        self.table = table
        self.bucket_capacity = bucket_capacity
        self._buckets = [Bucket() for _ in range(n_buckets)]

    def __len__(self) -> int:
        return sum(len(b.records)
                   for head in self._buckets for b in head.chain())

    def head_bucket(self, key: Key) -> Bucket:
        """The head bucket (and lock word) responsible for ``key``."""
        return self._buckets[stable_hash(key) % len(self._buckets)]

    def lock_for(self, key: Key) -> LockWord:
        return self.head_bucket(key).lock

    def get(self, key: Key) -> Record | None:
        for bucket in self.head_bucket(key).chain():
            record = bucket.records.get(key)
            if record is not None:
                return record
        return None

    def put(self, record: Record) -> None:
        """Insert or overwrite ``record`` (loader path)."""
        head = self.head_bucket(record.key)
        for bucket in head.chain():
            if record.key in bucket.records:
                bucket.records[record.key] = record
                return
        self._insert_new(head, record)

    def insert(self, record: Record) -> bool:
        """Insert a *new* record; returns False if the key already exists."""
        head = self.head_bucket(record.key)
        for bucket in head.chain():
            if record.key in bucket.records:
                return False
        self._insert_new(head, record)
        return True

    def delete(self, key: Key) -> bool:
        for bucket in self.head_bucket(key).chain():
            if key in bucket.records:
                del bucket.records[key]
                return True
        return False

    def keys(self) -> Iterator[Key]:
        for head in self._buckets:
            for bucket in head.chain():
                yield from bucket.records

    def chain_length(self, key: Key) -> int:
        """Number of buckets in the chain serving ``key`` (diagnostics)."""
        return sum(1 for _ in self.head_bucket(key).chain())

    def _insert_new(self, head: Bucket, record: Record) -> None:
        bucket = head
        while len(bucket.records) >= self.bucket_capacity:
            if bucket.overflow is None:
                bucket.overflow = Bucket()
            bucket = bucket.overflow
        bucket.records[record.key] = record

    def scan(self, predicate: Any = None) -> Iterator[Record]:
        """Iterate all records (optionally filtered); used by loaders/tests."""
        for head in self._buckets:
            for bucket in head.chain():
                for record in bucket.records.values():
                    if predicate is None or predicate(record):
                        yield record
