"""The catalog maps records to partitions via a pluggable placement scheme.

Placement is split exactly as in the paper (Section 4.4): a small lookup
table knows where the *hot* records live; everything else falls through
to an orthogonal default partitioner (hash or range).  Baseline schemes
(pure hashing, Schism) implement the same interface in
:mod:`repro.partitioning`.
"""

from __future__ import annotations

from typing import Protocol

from .record import Key


class PlacementScheme(Protocol):
    """Anything that can answer "which partition owns this record?"."""

    def partition_of(self, table: str, key: Key) -> int:
        """Partition id hosting the primary copy of (table, key)."""
        ...  # pragma: no cover - protocol

    def lookup_table_size(self) -> int:
        """Number of explicit per-record entries the scheme must store."""
        ...  # pragma: no cover - protocol


class Catalog:
    """Cluster-wide placement metadata.

    ``replicated_tables`` are read-only tables fully copied to every
    partition (e.g. the TPC-C item table, which every practical
    warehouse-partitioned deployment replicates); reads of those resolve
    to the *reader's* partition.
    """

    def __init__(self, n_partitions: int, scheme: PlacementScheme,
                 replicated_tables: frozenset[str] = frozenset()):
        if n_partitions <= 0:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self.scheme = scheme
        self.replicated_tables = frozenset(replicated_tables)

    def partition_of(self, table: str, key: Key,
                     reader: int | None = None) -> int:
        if table in self.replicated_tables:
            if reader is None:
                raise ValueError(
                    f"table {table!r} is replicated everywhere; placement "
                    f"needs the reader's partition")
            return reader
        partition = self.scheme.partition_of(table, key)
        if not 0 <= partition < self.n_partitions:
            raise ValueError(
                f"scheme placed ({table!r}, {key!r}) on partition "
                f"{partition}, outside [0, {self.n_partitions})")
        return partition

    def lookup_table_size(self) -> int:
        return self.scheme.lookup_table_size()
