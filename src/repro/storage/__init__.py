"""NAM-DB-style storage: records, lock-embedding buckets, partitions."""

from .bucket import Bucket, BucketStore
from .catalog import Catalog, PlacementScheme
from .locks import LockMode, LockWord
from .partition import ContentionSpanTracker, PartitionStore, TableSpec
from .record import Key, Record, RecordId, record_id
from .wal import (RecoveryStats, WalSpec, WriteAheadLog, as_wal_spec,
                  replay_wal, wal_path)

__all__ = [
    "Bucket",
    "BucketStore",
    "Catalog",
    "ContentionSpanTracker",
    "Key",
    "LockMode",
    "LockWord",
    "PartitionStore",
    "PlacementScheme",
    "Record",
    "RecordId",
    "RecoveryStats",
    "TableSpec",
    "WalSpec",
    "WriteAheadLog",
    "as_wal_spec",
    "record_id",
    "replay_wal",
    "wal_path",
]
