"""Shared/exclusive lock words with NO_WAIT semantics.

Chiller embeds the lock directly in the bucket header so remote engines
can manipulate it with one-sided RDMA atomics instead of messaging a lock
manager (Section 6).  We model that lock word here: acquisition either
succeeds immediately or fails immediately (NO_WAIT — the caller must
abort), which also rules out deadlocks, as in the paper.
"""

from __future__ import annotations

import enum


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockWord:
    """A shared/exclusive lock with owner tracking and NO_WAIT acquire."""

    __slots__ = ("_shared", "_exclusive")

    def __init__(self) -> None:
        self._shared: set[object] = set()
        self._exclusive: object | None = None

    def try_acquire(self, mode: LockMode, owner: object) -> bool:
        """Attempt to acquire; returns False (caller aborts) on conflict.

        Re-entrant for the same owner.  A sole shared holder may upgrade
        to exclusive.
        """
        if mode is LockMode.SHARED:
            if self._exclusive is not None and self._exclusive != owner:
                return False
            self._shared.add(owner)
            return True
        if self._exclusive == owner:
            return True
        if self._exclusive is not None:
            return False
        others = self._shared - {owner}
        if others:
            return False
        self._exclusive = owner
        self._shared.discard(owner)
        return True

    def release(self, owner: object) -> None:
        """Release whatever ``owner`` holds; raises if it holds nothing."""
        held = False
        if self._exclusive == owner:
            self._exclusive = None
            held = True
        if owner in self._shared:
            self._shared.discard(owner)
            held = True
        if not held:
            raise KeyError(f"{owner!r} does not hold this lock")

    def held_by(self, owner: object) -> LockMode | None:
        """The mode ``owner`` currently holds, or None."""
        if self._exclusive == owner:
            return LockMode.EXCLUSIVE
        if owner in self._shared:
            return LockMode.SHARED
        return None

    def is_free(self) -> bool:
        return self._exclusive is None and not self._shared

    def holders(self) -> set[object]:
        """All owners currently holding the lock (any mode)."""
        out = set(self._shared)
        if self._exclusive is not None:
            out.add(self._exclusive)
        return out

    def __repr__(self) -> str:
        if self._exclusive is not None:
            return f"LockWord(X by {self._exclusive!r})"
        if self._shared:
            return f"LockWord(S by {len(self._shared)})"
        return "LockWord(free)"
