"""Records and record identifiers.

A record is a primary key plus a flat dict of named fields and a version
counter (bumped on every write; used by the OCC validator).  Records are
identified globally by ``RecordId = (table_name, primary_key)``.
"""

from __future__ import annotations

from typing import Any

Key = Any
RecordId = tuple[str, Key]


class Record:
    """One row of a table."""

    __slots__ = ("key", "fields", "version")

    def __init__(self, key: Key, fields: dict[str, Any],
                 version: int = 0):
        self.key = key
        self.fields = fields
        self.version = version

    def snapshot(self) -> dict[str, Any]:
        """A defensive copy of the fields (value semantics for readers)."""
        return dict(self.fields)

    def apply(self, updates: dict[str, Any]) -> None:
        """Merge ``updates`` into the fields and bump the version."""
        self.fields.update(updates)
        self.version += 1

    def __repr__(self) -> str:
        return f"Record({self.key!r}, v{self.version})"


def record_id(table: str, key: Key) -> RecordId:
    """Canonical global identifier of a record."""
    return (table, key)
