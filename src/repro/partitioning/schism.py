"""Schism [Curino et al., VLDB 2010] — the paper's main baseline.

Schism models the workload as a *co-access graph*: one vertex per
record, one edge (weight = co-access frequency) between every pair of
records touched by the same transaction — n(n-1)/2 edges per n-record
transaction, versus the star graph's n.  A balanced min-cut then
minimizes the number of transactions whose records straddle partitions,
i.e. the number of *distributed transactions* — the objective Chiller
argues is obsolete on fast networks.

We partition with the same multilevel tool Chiller uses (as the paper
does with METIS for both), and skip Schism's replicated-tuple and
range-predicate post-processing phases, which its own evaluation does
not exercise here.  Schism must remember where *every* record went:
its lookup table has one entry per record (the ~10x size gap of
Section 7.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.stats import TxnSample
from ..graph import WeightedGraph, part_graph
from ..storage.record import RecordId
from .base import LookupScheme


@dataclass(frozen=True)
class SchismConfig:
    eps: float = 0.10
    seed: int = 1
    load_metric: str = "records"
    """Schism balances record counts (or access counts)."""


@dataclass
class SchismPartitioning:
    """Schism's output: a full per-record placement."""

    record_assignment: dict[RecordId, int]
    graph: WeightedGraph
    assignment: list[int] = field(default_factory=list)
    n_edges: int = 0

    def lookup_table_size(self) -> int:
        return len(self.record_assignment)

    def scheme(self, fallback) -> LookupScheme:
        """Every known record is in the table; only unseen records (for
        example, rows inserted later) fall through to ``fallback``."""
        return LookupScheme(self.record_assignment, fallback)

    def cut_weight(self) -> float:
        return self.graph.edge_cut(self.assignment)


def build_coaccess_graph(samples: Iterable[TxnSample],
                         load_metric: str = "records",
                         ) -> tuple[WeightedGraph, dict[RecordId, int]]:
    """The clique-per-transaction workload graph."""
    graph = WeightedGraph()
    vertex_of: dict[RecordId, int] = {}
    access_counts: dict[RecordId, int] = {}
    for sample in samples:
        records = sample.records()
        for rid in records:
            if rid not in vertex_of:
                vertex_of[rid] = graph.add_vertex(1.0)
            access_counts[rid] = access_counts.get(rid, 0) + 1
        for i in range(len(records)):
            for j in range(i + 1, len(records)):
                graph.add_edge(vertex_of[records[i]],
                               vertex_of[records[j]], 1.0)
    if load_metric == "accesses":
        for rid, vertex in vertex_of.items():
            graph.vertex_weights[vertex] = float(access_counts[rid])
    elif load_metric != "records":
        raise ValueError(f"unknown Schism load metric {load_metric!r}")
    return graph, vertex_of


def partition_schism(samples: Iterable[TxnSample], n_partitions: int,
                     config: SchismConfig | None = None,
                     ) -> SchismPartitioning:
    """Run the Schism pipeline: co-access graph -> balanced min-cut."""
    config = config or SchismConfig()
    sample_list = list(samples)
    graph, vertex_of = build_coaccess_graph(sample_list,
                                            config.load_metric)
    if graph.n_vertices == 0:
        return SchismPartitioning({}, graph, [], 0)
    assignment = part_graph(graph, n_partitions, eps=config.eps,
                            seed=config.seed)
    record_assignment = {rid: assignment[v]
                         for rid, v in vertex_of.items()}
    return SchismPartitioning(record_assignment, graph, assignment,
                              graph.n_edges)
