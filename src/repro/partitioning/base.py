"""Placement schemes: how records map to partitions.

Three building blocks:

* :class:`HashScheme` — stateless hashing of a routing key (a table-aware
  projection of the primary key, so composite-keyed rows can co-locate
  with their parent, e.g. TPC-C rows route by warehouse id).
* :class:`RangeScheme` — contiguous key ranges per partition.
* :class:`LookupScheme` — an explicit per-record lookup table over a
  fallback scheme.  This is the paper's Section 4.4 structure: Chiller
  stores only *hot* records in the lookup table, while Schism needs an
  entry for every record it places — the source of the ~10x lookup-table
  size difference the evaluation reports.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from .._util import stable_hash

RoutingFn = Callable[[str, Any], Any]
"""Project (table, key) to the value that determines placement."""


def identity_routing(table: str, key: Any) -> Any:
    """Route by the full primary key."""
    return key


def first_component_routing(table: str, key: Any) -> Any:
    """Route composite keys by their first component (co-location)."""
    if isinstance(key, tuple):
        return key[0]
    return key


class HashScheme:
    """Hash partitioning over a routing key.  Zero lookup-table space."""

    def __init__(self, n_partitions: int,
                 routing: RoutingFn = identity_routing):
        if n_partitions <= 0:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self.routing = routing

    def partition_of(self, table: str, key: Any) -> int:
        return stable_hash(self.routing(table, key)) % self.n_partitions

    def lookup_table_size(self) -> int:
        return 0


class ModuloScheme:
    """Direct modulo placement for integer routing keys.

    Gives the paper's TPC-C layout: warehouse ``w`` (and everything
    routed by it) lands on partition ``w mod n`` — one warehouse per
    engine, deterministic and alignment-friendly.
    """

    def __init__(self, n_partitions: int,
                 routing: RoutingFn = first_component_routing):
        if n_partitions <= 0:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self.routing = routing

    def partition_of(self, table: str, key: Any) -> int:
        routed = self.routing(table, key)
        if not isinstance(routed, int):
            raise TypeError(
                f"ModuloScheme needs integer routing keys, got "
                f"{routed!r} for ({table!r}, {key!r})")
        return routed % self.n_partitions

    def lookup_table_size(self) -> int:
        return 0


class RangeScheme:
    """Range partitioning: per-table sorted boundary lists.

    ``boundaries[table] = [b1, b2, ..., b_{k-1}]`` assigns routing keys
    ``< b1`` to partition 0, ``[b1, b2)`` to partition 1, and so on.
    """

    def __init__(self, n_partitions: int,
                 boundaries: Mapping[str, list[Any]],
                 routing: RoutingFn = identity_routing):
        if n_partitions <= 0:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self.routing = routing
        self._boundaries = dict(boundaries)
        for table, bounds in self._boundaries.items():
            if len(bounds) != n_partitions - 1:
                raise ValueError(
                    f"table {table!r}: {n_partitions} partitions need "
                    f"{n_partitions - 1} boundaries, got {len(bounds)}")
            if sorted(bounds) != list(bounds):
                raise ValueError(f"table {table!r}: boundaries not sorted")

    def partition_of(self, table: str, key: Any) -> int:
        bounds = self._boundaries.get(table)
        if bounds is None:
            raise KeyError(f"no range boundaries for table {table!r}")
        routed = self.routing(table, key)
        for i, bound in enumerate(bounds):
            if routed < bound:
                return i
        return self.n_partitions - 1

    def lookup_table_size(self) -> int:
        # boundaries, not per-record entries: essentially free
        return 0


class LookupScheme:
    """Explicit per-record placements over a fallback scheme."""

    def __init__(self, entries: Mapping[tuple[str, Any], int],
                 fallback: Any):
        self.entries = dict(entries)
        self.fallback = fallback

    def partition_of(self, table: str, key: Any) -> int:
        placed = self.entries.get((table, key))
        if placed is not None:
            return placed
        return self.fallback.partition_of(table, key)

    def lookup_table_size(self) -> int:
        return len(self.entries) + self.fallback.lookup_table_size()
