"""Placement schemes: hash, range, lookup-table, and Schism baseline."""

from .base import (HashScheme, LookupScheme, ModuloScheme, RangeScheme,
                   first_component_routing, identity_routing)
from .schism import (SchismConfig, SchismPartitioning,
                     build_coaccess_graph, partition_schism)

__all__ = [
    "HashScheme",
    "SchismConfig",
    "SchismPartitioning",
    "build_coaccess_graph",
    "partition_schism",
    "LookupScheme",
    "ModuloScheme",
    "RangeScheme",
    "first_component_routing",
    "identity_routing",
]
