"""A weighted undirected graph for balanced min-cut partitioning.

Vertices carry weights (the load-balance dimension), edges carry weights
(the objective: total weight of cut edges).  Both may be floats — unlike
METIS we need no integer scaling for the contention likelihoods.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class WeightedGraph:
    """Adjacency-map graph with vertex and edge weights."""

    def __init__(self) -> None:
        self.vertex_weights: list[float] = []
        self.adjacency: list[dict[int, float]] = []

    # -- construction -----------------------------------------------------

    def add_vertex(self, weight: float = 1.0) -> int:
        """Add a vertex; returns its id (dense, starting at 0)."""
        self.vertex_weights.append(weight)
        self.adjacency.append({})
        return len(self.vertex_weights) - 1

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge (u, v)."""
        if u == v:
            raise ValueError(f"self-loop on vertex {u}")
        if weight < 0:
            raise ValueError("negative edge weight")
        self._check(u)
        self._check(v)
        self.adjacency[u][v] = self.adjacency[u].get(v, 0.0) + weight
        self.adjacency[v][u] = self.adjacency[v].get(u, 0.0) + weight

    def _check(self, v: int) -> None:
        if not 0 <= v < len(self.vertex_weights):
            raise IndexError(f"vertex {v} does not exist")

    # -- queries -----------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return len(self.vertex_weights)

    @property
    def n_edges(self) -> int:
        return sum(len(adj) for adj in self.adjacency) // 2

    def neighbors(self, v: int) -> dict[int, float]:
        return self.adjacency[v]

    def total_vertex_weight(self) -> float:
        return sum(self.vertex_weights)

    def total_edge_weight(self) -> float:
        return sum(w for adj in self.adjacency for w in adj.values()) / 2.0

    # -- partition evaluation --------------------------------------------------

    def edge_cut(self, assignment: Sequence[int]) -> float:
        """Total weight of edges whose endpoints land in different parts."""
        if len(assignment) != self.n_vertices:
            raise ValueError("assignment length != vertex count")
        cut = 0.0
        for u, adj in enumerate(self.adjacency):
            for v, weight in adj.items():
                if u < v and assignment[u] != assignment[v]:
                    cut += weight
        return cut

    def part_loads(self, assignment: Sequence[int],
                   k: int) -> list[float]:
        """Sum of vertex weights per partition."""
        loads = [0.0] * k
        for v, part in enumerate(assignment):
            if not 0 <= part < k:
                raise ValueError(f"vertex {v} assigned to invalid part "
                                 f"{part}")
            loads[part] += self.vertex_weights[v]
        return loads

    def is_balanced(self, assignment: Sequence[int], k: int,
                    eps: float) -> bool:
        """The paper's constraint: every L(p) <= (1 + eps) * mu."""
        loads = self.part_loads(assignment, k)
        mu = self.total_vertex_weight() / k
        return all(load <= (1.0 + eps) * mu + 1e-9 for load in loads)

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int, float]],
                   vertex_weights: Sequence[float] | None = None,
                   ) -> "WeightedGraph":
        """Convenience constructor for tests and small examples."""
        graph = cls()
        for i in range(n):
            weight = 1.0 if vertex_weights is None else vertex_weights[i]
            graph.add_vertex(weight)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph
