"""Greedy k-way boundary refinement (Fiduccia–Mattheyses style).

After each uncoarsening projection, repeatedly move boundary vertices to
the neighboring partition with the highest *gain* (cut-weight reduction)
subject to the balance cap.  Zero-gain moves are allowed when they
improve balance, which lets the refiner walk out of plateaus.
"""

from __future__ import annotations

from .graph import WeightedGraph


def refine(graph: WeightedGraph, assignment: list[int], k: int,
           eps: float, max_passes: int = 8) -> list[int]:
    """Improve ``assignment`` in place; returns it for convenience."""
    mu = graph.total_vertex_weight() / k
    capacity = (1.0 + eps) * mu
    loads = graph.part_loads(assignment, k)

    for _ in range(max_passes):
        improved = False
        for v in range(graph.n_vertices):
            current = assignment[v]
            weight = graph.vertex_weights[v]
            internal = 0.0
            external: dict[int, float] = {}
            for u, edge_weight in graph.neighbors(v).items():
                part = assignment[u]
                if part == current:
                    internal += edge_weight
                else:
                    external[part] = external.get(part, 0.0) + edge_weight
            best_part, best_gain = current, 0.0
            for part, ext_weight in external.items():
                gain = ext_weight - internal
                if loads[part] + weight > capacity:
                    continue
                better = gain > best_gain + 1e-12
                ties_better_balance = (
                    abs(gain - best_gain) <= 1e-12
                    and gain >= 0.0
                    and loads[part] + weight < loads[current] - 1e-12
                    and best_part == current)
                if better or ties_better_balance:
                    best_part, best_gain = part, gain
            if best_part != current:
                assignment[v] = best_part
                loads[current] -= weight
                loads[best_part] += weight
                improved = True
        if not improved:
            break
    return assignment


def swap_refine(graph: WeightedGraph, assignment: list[int], k: int,
                eps: float, max_passes: int = 4) -> list[int]:
    """Kernighan–Lin style pairwise swaps.

    Single moves cannot escape configurations where the balance cap is
    tight (every move overloads the target), but exchanging two vertices
    keeps loads nearly unchanged.  Quadratic in vertex count, so the
    driver only applies it to small graphs (the coarsest level and small
    inputs), where it matters most.
    """
    mu = graph.total_vertex_weight() / k
    capacity = (1.0 + eps) * mu
    loads = graph.part_loads(assignment, k)

    def move_gain(v: int, target: int) -> float:
        gain = 0.0
        for u, weight in graph.neighbors(v).items():
            if assignment[u] == assignment[v]:
                gain -= weight
            elif assignment[u] == target:
                gain += weight
        return gain

    n = graph.n_vertices
    for _ in range(max_passes):
        improved = False
        for u in range(n):
            for v in range(u + 1, n):
                pu, pv = assignment[u], assignment[v]
                if pu == pv:
                    continue
                gain = (move_gain(u, pv) + move_gain(v, pu)
                        - 2.0 * graph.neighbors(u).get(v, 0.0))
                if gain <= 1e-12:
                    continue
                wu, wv = graph.vertex_weights[u], graph.vertex_weights[v]
                if (loads[pu] - wu + wv > capacity
                        or loads[pv] - wv + wu > capacity):
                    continue
                assignment[u], assignment[v] = pv, pu
                loads[pu] += wv - wu
                loads[pv] += wu - wv
                improved = True
        if not improved:
            break
    return assignment


def rebalance(graph: WeightedGraph, assignment: list[int], k: int,
              eps: float) -> list[int]:
    """Force the balance constraint by evicting cheapest vertices from
    overloaded partitions (used if projection broke the cap)."""
    mu = graph.total_vertex_weight() / k
    capacity = (1.0 + eps) * mu
    loads = graph.part_loads(assignment, k)
    order = sorted(range(graph.n_vertices),
                   key=lambda v: graph.vertex_weights[v])
    for v in order:
        part = assignment[v]
        if loads[part] <= capacity:
            continue
        weight = graph.vertex_weights[v]
        if weight == 0.0:
            continue
        target = min(range(k), key=lambda p: loads[p])
        if target != part and loads[target] + weight <= capacity:
            assignment[v] = target
            loads[part] -= weight
            loads[target] += weight
    return assignment
