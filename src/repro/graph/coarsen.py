"""Multilevel coarsening via heavy-edge matching (as in METIS [14]).

Each level matches every vertex with the unmatched neighbor it shares
its heaviest edge with; matched pairs merge into one coarse vertex whose
weight is the pair's sum.  Edge weights between coarse vertices
accumulate, so the coarse graph's cuts correspond exactly to fine-graph
cuts — partitioning the small graph and projecting back preserves the
objective.
"""

from __future__ import annotations

import random

from .graph import WeightedGraph


class CoarseLevel:
    """One coarsening step: the coarse graph plus the fine->coarse map."""

    __slots__ = ("graph", "fine_to_coarse")

    def __init__(self, graph: WeightedGraph, fine_to_coarse: list[int]):
        self.graph = graph
        self.fine_to_coarse = fine_to_coarse

    def project(self, coarse_assignment: list[int]) -> list[int]:
        """Expand a coarse-graph assignment to the fine graph."""
        return [coarse_assignment[c] for c in self.fine_to_coarse]


def heavy_edge_matching(graph: WeightedGraph,
                        rng: random.Random) -> list[int]:
    """Match each vertex with its heaviest-edge unmatched neighbor.

    Returns ``match[v]`` = partner vertex (or v itself when unmatched).
    """
    n = graph.n_vertices
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    for v in order:
        if match[v] != -1:
            continue
        best, best_weight = v, -1.0
        for u, weight in graph.neighbors(v).items():
            if match[u] == -1 and weight > best_weight:
                best, best_weight = u, weight
        match[v] = best
        match[best] = v
    return match


def coarsen_once(graph: WeightedGraph,
                 rng: random.Random) -> CoarseLevel:
    """Build the next-coarser graph from one heavy-edge matching."""
    match = heavy_edge_matching(graph, rng)
    fine_to_coarse = [-1] * graph.n_vertices
    coarse = WeightedGraph()
    for v in range(graph.n_vertices):
        if fine_to_coarse[v] != -1:
            continue
        partner = match[v]
        weight = graph.vertex_weights[v]
        if partner != v:
            weight += graph.vertex_weights[partner]
        cid = coarse.add_vertex(weight)
        fine_to_coarse[v] = cid
        if partner != v:
            fine_to_coarse[partner] = cid
    for u in range(graph.n_vertices):
        cu = fine_to_coarse[u]
        for v, weight in graph.neighbors(u).items():
            cv = fine_to_coarse[v]
            if u < v and cu != cv:
                coarse.add_edge(cu, cv, weight)
    return CoarseLevel(coarse, fine_to_coarse)


def coarsen(graph: WeightedGraph, target_vertices: int,
            rng: random.Random,
            min_shrink: float = 0.95) -> list[CoarseLevel]:
    """Coarsen repeatedly until small enough or progress stalls.

    Returns the levels finest-first; an empty list means the input was
    already small enough.
    """
    levels: list[CoarseLevel] = []
    current = graph
    while current.n_vertices > target_vertices:
        level = coarsen_once(current, rng)
        if level.graph.n_vertices >= current.n_vertices * min_shrink:
            break  # matching found almost nothing to merge
        levels.append(level)
        current = level.graph
    return levels
