"""Initial k-way partitioning of the coarsest graph (greedy growing).

Seeds one region per partition, then repeatedly assigns the unassigned
vertex with the strongest connection to a non-full partition.  Quality
is rough — the FM refinement pass during uncoarsening does the real
work — but greedy growing gives it a connected, roughly balanced start.
"""

from __future__ import annotations

import random

from .graph import WeightedGraph


def initial_partition(graph: WeightedGraph, k: int, eps: float,
                      rng: random.Random) -> list[int]:
    """Greedy-growing k-way assignment honoring the balance cap."""
    n = graph.n_vertices
    if k <= 0:
        raise ValueError("k must be positive")
    if k == 1:
        return [0] * n
    capacity = _capacity(graph, k, eps)
    assignment = [-1] * n
    loads = [0.0] * k

    seeds = rng.sample(range(n), min(k, n))
    for part, seed in enumerate(seeds):
        assignment[seed] = part
        loads[part] += graph.vertex_weights[seed]

    # connection[v][p] = total edge weight from v into partition p
    connection: list[dict[int, float]] = [{} for _ in range(n)]
    frontier: set[int] = set()
    for seed in seeds:
        for u, weight in graph.neighbors(seed).items():
            if assignment[u] == -1:
                part = assignment[seed]
                connection[u][part] = connection[u].get(part, 0.0) + weight
                frontier.add(u)

    unassigned = [v for v in range(n) if assignment[v] == -1]
    rng.shuffle(unassigned)
    remaining = set(unassigned)

    while remaining:
        candidate, best_part = _pick(frontier, remaining, connection,
                                     loads, graph, capacity)
        if candidate is None:
            # frontier exhausted or every connected part full:
            # place the heaviest remaining vertex on the lightest part
            candidate = max(remaining,
                            key=lambda v: graph.vertex_weights[v])
            best_part = min(range(k), key=lambda p: loads[p])
        assignment[candidate] = best_part
        loads[best_part] += graph.vertex_weights[candidate]
        remaining.discard(candidate)
        frontier.discard(candidate)
        for u, weight in graph.neighbors(candidate).items():
            if assignment[u] == -1:
                connection[u][best_part] = (
                    connection[u].get(best_part, 0.0) + weight)
                frontier.add(u)
    return assignment


def _capacity(graph: WeightedGraph, k: int, eps: float) -> float:
    mu = graph.total_vertex_weight() / k
    return (1.0 + eps) * mu


def _pick(frontier: set[int], remaining: set[int],
          connection: list[dict[int, float]], loads: list[float],
          graph: WeightedGraph, capacity: float):
    """Strongest (vertex, partition) attachment that respects capacity."""
    best_vertex, best_part, best_weight = None, None, -1.0
    for v in frontier:
        if v not in remaining:
            continue
        for part, weight in connection[v].items():
            if weight > best_weight and (
                    loads[part] + graph.vertex_weights[v] <= capacity):
                best_vertex, best_part, best_weight = v, part, weight
    return best_vertex, best_part
