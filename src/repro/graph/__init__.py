"""Multilevel balanced graph partitioning (the METIS substitute)."""

from .coarsen import CoarseLevel, coarsen, coarsen_once, heavy_edge_matching
from .graph import WeightedGraph
from .initial import initial_partition
from .partition import part_graph
from .refine import rebalance, refine, swap_refine

__all__ = [
    "CoarseLevel",
    "WeightedGraph",
    "coarsen",
    "coarsen_once",
    "heavy_edge_matching",
    "initial_partition",
    "part_graph",
    "rebalance",
    "refine",
    "swap_refine",
]
