"""The multilevel k-way partitioner driver (our METIS substitute).

``part_graph(graph, k, eps, seed)`` returns a balanced assignment with a
small edge cut: coarsen by heavy-edge matching, partition the coarsest
graph by greedy growing, then project back level by level with FM-style
boundary refinement at each step.  Multiple seeded tries keep the best
cut, trading (configurable) time for quality exactly like METIS's
multiple initial partitions.
"""

from __future__ import annotations

from .._util import make_rng
from .coarsen import coarsen
from .graph import WeightedGraph
from .initial import initial_partition
from .refine import rebalance, refine, swap_refine

_SWAP_LIMIT = 600
"""Pairwise-swap refinement is quadratic; only run it below this size."""


def part_graph(graph: WeightedGraph, k: int, eps: float = 0.10,
               seed: int = 1, n_tries: int = 4,
               coarsen_to: int | None = None) -> list[int]:
    """Partition ``graph`` into ``k`` parts minimizing the edge cut.

    The balance constraint is the paper's: each part's vertex-weight sum
    is at most ``(1 + eps)`` times the average.  Returns the vertex ->
    partition assignment.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if graph.n_vertices == 0:
        return []
    if k == 1:
        return [0] * graph.n_vertices
    if k > graph.n_vertices:
        raise ValueError(f"cannot split {graph.n_vertices} vertices into "
                         f"{k} non-empty parts")
    target = coarsen_to if coarsen_to is not None else max(16 * k, 64)

    best_assignment: list[int] | None = None
    best_cut = float("inf")
    for attempt in range(max(1, n_tries)):
        rng = make_rng(seed, "part", attempt)
        levels = coarsen(graph, target, rng)
        coarsest = levels[-1].graph if levels else graph
        assignment = initial_partition(coarsest, k, eps, rng)
        assignment = refine(coarsest, assignment, k, eps)
        assignment = swap_refine(coarsest, assignment, k, eps)
        for level in reversed(levels):
            assignment = level.project(assignment)
            fine_graph = _finer_graph(graph, levels, level)
            assignment = refine(fine_graph, assignment, k, eps)
        assignment = rebalance(graph, assignment, k, eps)
        assignment = refine(graph, assignment, k, eps)
        if graph.n_vertices <= _SWAP_LIMIT:
            assignment = swap_refine(graph, assignment, k, eps)
        cut = graph.edge_cut(assignment)
        if cut < best_cut or (cut == best_cut
                              and best_assignment is None):
            best_cut = cut
            best_assignment = assignment
    assert best_assignment is not None
    return best_assignment


def _finer_graph(original: WeightedGraph, levels, level) -> WeightedGraph:
    """The graph one step finer than ``level`` (the original for the
    first level)."""
    index = levels.index(level)
    if index == 0:
        return original
    return levels[index - 1].graph
