"""Conflict-class scheduling: serialize within, parallelize across.

Prasaad et al. ("Improving High Contention OLTP Performance via
Transaction Scheduling") group transactions whose write sets intersect
into *conflict classes* and run each class serially while classes run
in parallel: under NO_WAIT, two transactions racing for the same hot
record means one of them burns a full round of lock acquisitions just
to abort, so scheduling the loser behind the winner converts wasted
work into queueing delay.

Here a class key is one *estimated* record of the request's write set
(from the executor's pre-execution ``estimate_rw_sets`` hook — the
static-analysis placements of :mod:`repro.analysis.keys`); a request
belongs to every class its writes touch and is admitted only when all
of them have a free slot (all-or-nothing, so partial holds can never
deadlock).  Unestimatable requests (derived keys without hints) simply
run unconstrained — the scheduler degrades to FIFO, never blocks on
what it cannot see.

Abort feedback: when a class keeps aborting *despite* serialization
(readers racing its writers, or cross-engine conflicts this engine
cannot see), its serialization window widens — after the current
holder releases, the class stays closed for ``window_us`` so the
record's lock word actually goes quiet before the next admission.
Commits shrink the window back.  The admission-control half (queue
caps, shedding) lives in :mod:`repro.sched.admission`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from ..sim.effects import Signal
from ..txn.common import AbortReason, Outcome, TxnRequest
from .admission import AdmissionController
from .base import (AdmitDecision, Fingerprint, SchedAction, SchedReason,
                   Scheduler, SchedulerSpec)

CONTENTION_ABORTS = frozenset({AbortReason.LOCK_CONFLICT,
                               AbortReason.VALIDATION,
                               AbortReason.INNER_CONFLICT})
"""Abort reasons that feed the per-class abort-rate feedback loop."""


@dataclass
class _ClassState:
    """One conflict class's live scheduling state."""

    running: int = 0
    peak: int = 0
    waiters: deque = field(default_factory=deque)  # of Signal
    abort_ewma: float = 0.0
    window_us: float = 0.0
    reopen_at: float = 0.0


class ConflictClassScheduler(Scheduler):
    """Serialize admissions within a conflict class, parallelize across."""

    name = "conflict"

    def __init__(self, fingerprint: Fingerprint,
                 spec: SchedulerSpec | None = None):
        super().__init__()
        self.spec = spec or SchedulerSpec(kind="conflict")
        self.fingerprint = fingerprint
        self.admission = AdmissionController(self.spec, self.stats)
        self._classes: dict[Hashable, _ClassState] = {}

    # -- admission ---------------------------------------------------------

    def admit(self, request: TxnRequest, now: float,
              keys: tuple[Hashable, ...] | None = None) -> AdmitDecision:
        if keys is None:
            keys = self._request_classes(request)
        if not keys:
            decision = AdmitDecision(SchedAction.RUN)
            self._admitted(decision, now)
            return decision
        states = [self._class_state(key) for key in keys]
        for key, state in zip(keys, states):
            if state.running >= self.spec.class_width:
                return self._hold(keys, key, state, now)
        for key, state in zip(keys, states):
            if now < state.reopen_at:
                return self._cooldown(keys, state, now)
        for state in states:
            state.running += 1
            state.peak = max(state.peak, state.running)
            self.stats.max_class_occupancy = max(
                self.stats.max_class_occupancy, state.running)
        decision = AdmitDecision(SchedAction.RUN, class_keys=keys)
        self._admitted(decision, now)
        return decision

    def _hold(self, keys: tuple[Hashable, ...], busy_key: Hashable,
              state: _ClassState, now: float) -> AdmitDecision:
        shed = self.admission.check_queue(busy_key, len(state.waiters))
        if shed is not None:
            return shed
        signal = Signal()
        state.waiters.append(signal)
        decision = AdmitDecision(SchedAction.DEFER, class_keys=keys,
                                 reason=SchedReason.CLASS_SERIALIZED,
                                 signal=signal, deferred_at=now)
        self.stats.count_defer(decision.reason)
        return decision

    def _cooldown(self, keys: tuple[Hashable, ...], state: _ClassState,
                  now: float) -> AdmitDecision:
        decision = AdmitDecision(SchedAction.DEFER, class_keys=keys,
                                 reason=SchedReason.CLASS_COOLDOWN,
                                 delay_us=max(state.reopen_at - now, 0.1),
                                 deferred_at=now)
        self.stats.count_defer(decision.reason)
        return decision

    def readmit(self, request: TxnRequest, prior: AdmitDecision,
                now: float) -> AdmitDecision:
        self.stats.queue_depth -= 1
        # the prior decision already carries the fingerprint; waking up
        # (the hottest path under skew) must not re-instantiate the
        # procedure just to recompute identical class keys
        return self._finish_readmit(
            self.admit(request, now, keys=prior.class_keys), prior, now)

    # -- feedback ----------------------------------------------------------

    def on_outcome(self, decision: AdmitDecision, outcome: Outcome,
                   now: float, will_retry: bool) -> None:
        alpha = self.spec.abort_ewma_alpha
        contended = (not outcome.committed
                     and outcome.reason in CONTENTION_ABORTS)
        for key in decision.class_keys:
            state = self._classes[key]
            state.abort_ewma += alpha * ((1.0 if contended else 0.0)
                                         - state.abort_ewma)
            if contended:
                self._maybe_widen(state)
            elif (outcome.committed and state.window_us > 0.0
                  and state.abort_ewma
                  < self.spec.abort_spike_threshold / 2):
                state.window_us /= 2.0
                if state.window_us <= self.spec.window_init_us / 2:
                    state.window_us = 0.0
        if not will_retry:
            self._release(decision, now)
        super().on_outcome(decision, outcome, now, will_retry)

    def _maybe_widen(self, state: _ClassState) -> None:
        if state.abort_ewma < self.spec.abort_spike_threshold:
            return
        widened = (self.spec.window_init_us if state.window_us == 0.0
                   else min(state.window_us * 2.0, self.spec.window_max_us))
        if widened > state.window_us:
            state.window_us = widened
            self.stats.window_widenings += 1
        state.abort_ewma /= 2.0  # spike consumed; demand fresh evidence

    def _release(self, decision: AdmitDecision, now: float) -> None:
        for key in decision.class_keys:
            state = self._classes[key]
            state.running -= 1
            if state.window_us > 0.0:
                state.reopen_at = now + state.window_us
            if state.running < self.spec.class_width:
                self._wake_all(state)

    def _wake_all(self, state: _ClassState) -> None:
        """Wake every waiter, FIFO.  The first to re-admit wins the
        slot; the rest re-enqueue in wake order (their queueing delay
        keeps accumulating from the original admission)."""
        waiters, state.waiters = state.waiters, deque()
        for signal in waiters:
            signal.fire()

    # -- fingerprinting ----------------------------------------------------

    def _request_classes(self, request: TxnRequest) -> tuple[Hashable, ...]:
        """Sorted, deduplicated class keys of one request.

        Sorting makes multi-class admission order deterministic (and
        matches release order); dedup keeps a request from holding two
        slots of the same class."""
        return tuple(sorted(set(self.fingerprint(request)), key=repr))

    def _class_state(self, key: Hashable) -> _ClassState:
        state = self._classes.get(key)
        if state is None:
            state = _ClassState()
            self._classes[key] = state
            self.stats.n_classes += 1
        return state
