"""Admission control: backpressure for hot conflict classes.

Serializing a hot class bounds *wasted work* but not *queue growth*:
under heavy skew every engine worker can end up parked behind the same
record, at which point the honest answer is to shed load, not to let
the queue (and every queued transaction's latency) grow without bound
— the optimistic-abort argument of Jepsen et al.: when a transaction
is doomed or unpayable, abort it *early*, before it spends round trips.

The controller owns the two caps the conflict scheduler consults:

* ``class_width`` — concurrent in-flight transactions per class (the
  serialization degree, enforced by the scheduler's slot accounting).
* ``max_queue_per_class`` — waiters a class may park before further
  admissions are **shed** with a typed
  :class:`~repro.sched.base.SchedReason` recorded in the stats (and
  thus in ``Metrics``), instead of silently joining a hopeless queue.

Shed requests never execute: the generating worker drops them and
moves on, which is exactly what an overloaded front door should do.
"""

from __future__ import annotations

from typing import Hashable

from .base import (AdmitDecision, SchedAction, SchedReason, SchedulerSpec,
                   SchedulerStats)


class AdmissionController:
    """Queue-cap backpressure shared by class-aware schedulers."""

    def __init__(self, spec: SchedulerSpec, stats: SchedulerStats):
        self.spec = spec
        self.stats = stats

    def check_queue(self, class_key: Hashable,
                    queue_len: int) -> AdmitDecision | None:
        """Shed verdict for one more waiter on ``class_key``, or None.

        ``max_queue_per_class == 0`` disables shedding entirely (defer
        forever); otherwise a class whose queue is full rejects the
        admission outright.
        """
        cap = self.spec.max_queue_per_class
        if cap <= 0 or queue_len < cap:
            return None
        decision = AdmitDecision(SchedAction.SHED,
                                 class_keys=(class_key,),
                                 reason=SchedReason.CLASS_OVERLOAD)
        self.stats.count_shed(decision.reason)
        return decision
