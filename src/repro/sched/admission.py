"""Admission control: backpressure for hot conflict classes.

Serializing a hot class bounds *wasted work* but not *queue growth*:
under heavy skew every engine worker can end up parked behind the same
record, at which point the honest answer is to shed load, not to let
the queue (and every queued transaction's latency) grow without bound
— the optimistic-abort argument of Jepsen et al.: when a transaction
is doomed or unpayable, abort it *early*, before it spends round trips.

The controller owns the two caps the conflict scheduler consults:

* ``class_width`` — concurrent in-flight transactions per class (the
  serialization degree, enforced by the scheduler's slot accounting).
* ``max_queue_per_class`` — waiters a class may park before further
  admissions are **shed** with a typed
  :class:`~repro.sched.base.SchedReason` recorded in the stats (and
  thus in ``Metrics``), instead of silently joining a hopeless queue.

Shed requests never execute: the generating worker drops them and
moves on, which is exactly what an overloaded front door should do.

Open-loop runs add a second, *value-aware* front door:
:class:`DeadlineAdmission`.  Under open-loop arrivals the queue grows
whether or not anyone is watching, so once the system saturates, the
question stops being "how many requests do we shed" and becomes
"**which** requests do we shed" (Prasaad et al.): drop the work least
likely to be worth finishing — arrivals whose deadline is already
unpayable, then the lowest-priority tenants — and keep the remaining
capacity for the traffic that still can meet its SLO.
"""

from __future__ import annotations

from typing import Hashable

from .base import (AdmitDecision, SchedAction, SchedReason, SchedulerSpec,
                   SchedulerStats)


class AdmissionController:
    """Queue-cap backpressure shared by class-aware schedulers."""

    def __init__(self, spec: SchedulerSpec, stats: SchedulerStats):
        self.spec = spec
        self.stats = stats

    def check_queue(self, class_key: Hashable,
                    queue_len: int) -> AdmitDecision | None:
        """Shed verdict for one more waiter on ``class_key``, or None.

        ``max_queue_per_class == 0`` disables shedding entirely (defer
        forever); otherwise a class whose queue is full rejects the
        admission outright.
        """
        cap = self.spec.max_queue_per_class
        if cap <= 0 or queue_len < cap:
            return None
        decision = AdmitDecision(SchedAction.SHED,
                                 class_keys=(class_key,),
                                 reason=SchedReason.CLASS_OVERLOAD)
        self.stats.count_shed(decision.reason)
        return decision


class DeadlineAdmission:
    """Deadline- and priority-aware shedding for open-loop arrivals.

    One instance per engine.  The wait predictor is Little's-law flavored
    and deliberately self-measuring: an EWMA of the gap between request
    *completions* estimates how fast this engine currently drains work,
    so ``in_flight * gap`` approximates how long a new arrival would
    wait behind everything already admitted.  Under overload the gap
    converges to the engine's service limit while ``in_flight`` grows,
    so the predictor crosses deadlines exactly when queues start
    building — no offline capacity calibration needed, which matters
    because the same controller runs on simulated and wall-clock
    backends.

    Shedding is by value, most-worthless first:

    * ``QUEUE_FULL`` — the hard in-flight cap (``max_in_flight``).
    * ``DEADLINE_HOPELESS`` — the predicted wait exceeds the arrival's
      *remaining* deadline budget (scheduled arrival + deadline − now):
      even a top-priority request is shed rather than guaranteed-missed.
    * ``PRIORITY_SHED`` — the predicted wait exceeds the arrival's
      priority-scaled slice of its budget (``budget * priority /
      max_priority``).  Low-priority tenants hit this wall early, which
      is what reserves capacity for the high-priority tenant while the
      system rides past its knee.

    Every shed is recorded with its typed reason per tenant in the
    engine's :class:`~repro.sched.base.SchedulerStats`.
    """

    def __init__(self, stats: SchedulerStats, max_priority: float = 1.0,
                 max_in_flight: int = 4096,
                 init_gap_us: float = 100.0,
                 gap_ewma_alpha: float = 0.2):
        self.stats = stats
        self.max_priority = max(max_priority, 1e-9)
        self.max_in_flight = max_in_flight
        self.gap_ewma_us = init_gap_us
        self.gap_ewma_alpha = gap_ewma_alpha
        self.in_flight = 0
        self._last_done_at: float | None = None

    def predicted_wait_us(self) -> float:
        """Estimated queueing delay for one more admission: everything
        in flight, drained at the currently observed completion rate."""
        return self.in_flight * self.gap_ewma_us

    def admit(self, arrival, now: float) -> SchedReason | None:
        """Shed verdict for ``arrival`` (an
        :class:`~repro.traffic.Arrival`), or None to admit.

        Dispatch lag counts against the budget: an arrival picked up
        late (the dispatcher itself queued behind a busy engine) has
        already spent part of its deadline.
        """
        reason = None
        if 0 < self.max_in_flight <= self.in_flight:
            reason = SchedReason.QUEUE_FULL
        else:
            budget = arrival.deadline_us - (now - arrival.at)
            wait = self.predicted_wait_us()
            if wait > budget:
                reason = SchedReason.DEADLINE_HOPELESS
            elif wait > budget * (arrival.priority / self.max_priority):
                reason = SchedReason.PRIORITY_SHED
        if reason is not None:
            self.stats.count_shed(reason, tenant=arrival.tenant)
        return reason

    def on_start(self) -> None:
        """An admitted request entered execution."""
        self.in_flight += 1

    def on_finish(self, now: float) -> None:
        """An admitted request left the system (committed or gave up)."""
        self.in_flight -= 1
        if self._last_done_at is not None:
            gap = max(0.0, now - self._last_done_at)
            alpha = self.gap_ewma_alpha
            self.gap_ewma_us += alpha * (gap - self.gap_ewma_us)
        self._last_done_at = now
