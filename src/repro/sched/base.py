"""Scheduler interface: cross-transaction admission decisions.

Everything below the scheduler attacks contention *inside* one
transaction (Chiller's regions, doorbell batching); the scheduler is
the first layer that looks *across* transactions.  Each execution
engine owns one scheduler instance; worker coroutines ask it for an
:class:`AdmitDecision` before executing a request and report every
attempt's :class:`~repro.txn.common.Outcome` back, so the scheduler can
serialize known-conflicting work instead of letting NO_WAIT burn CPU
and network on doomed lock acquisitions.

The contract is deliberately effect-free: ``admit``/``on_outcome`` are
plain calls that never touch the clock, and a decision tells the
*worker coroutine* what to yield (an :class:`~repro.sim.effects.Await`
on a wake-up signal, or a :class:`~repro.sim.effects.Sleep`).  That
keeps schedulers backend-neutral — the same instance runs unchanged on
the simulator, the asyncio loop, and inside each multiprocess worker —
and lets :class:`FifoScheduler` reproduce the historical raw retry loop
bit-for-bit: it makes no decision other than "run now" and injects no
effects at all.

Schedulers are engine-local by construction: on the multiprocess
backend there is no shared heap to coordinate through, so each engine
schedules the transactions *it* coordinates (pair with
``route_by_data`` to send conflicting requests to the same engine when
cross-engine serialization matters).  Instances are built per engine
from a picklable :class:`SchedulerSpec`, which is what crosses into mp
worker processes inside ``RunConfig``.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..sim.effects import Await, Effect, Signal, Sleep
from ..txn.common import Outcome, TxnRequest

SCHEDULERS = ("fifo", "conflict")
"""Scheduler kinds a run can select (``RunConfig.scheduler``)."""


class SchedAction(enum.Enum):
    RUN = "run"
    DEFER = "defer"
    SHED = "shed"


class SchedReason(enum.Enum):
    """Typed reason attached to every defer/shed decision.

    Recorded per reason in :class:`SchedulerStats` (and thus in
    ``Metrics``), so backpressure is visible in run reports instead of
    hiding inside silent retries.
    """

    CLASS_SERIALIZED = "class_serialized"
    """Another transaction of the same conflict class is in flight."""

    CLASS_COOLDOWN = "class_cooldown"
    """The class's serialization window is open after an abort spike."""

    CLASS_OVERLOAD = "class_overload"
    """The class's wait queue hit the admission-control cap."""

    DEADLINE_HOPELESS = "deadline_hopeless"
    """The predicted wait exceeds the arrival's whole deadline budget —
    executing it would only waste capacity on a guaranteed SLO miss."""

    PRIORITY_SHED = "priority_shed"
    """Shed to preserve capacity for higher-value work: the predicted
    wait exceeds this arrival's priority-scaled deadline slice, though
    a top-priority arrival would still have been admitted."""

    QUEUE_FULL = "queue_full"
    """The engine's open-loop in-flight cap was reached (the last-ditch
    queue bound behind the deadline predictor)."""


@dataclass
class AdmitDecision:
    """One admission verdict for one request.

    ``RUN`` tickets stay live for the whole request (including retries)
    and must be closed with :meth:`Scheduler.on_outcome`; ``DEFER``
    carries the effect to yield before re-admitting; ``SHED`` drops the
    request entirely.
    """

    action: SchedAction
    class_keys: tuple[Hashable, ...] = ()
    reason: SchedReason | None = None
    signal: Signal | None = None
    delay_us: float = 0.0
    deferred_at: float | None = None
    """When this DEFER was issued (None: not a deferral).  Optional
    rather than 0.0 — engines legitimately defer at sim time 0.0."""

    first_admit_at: float | None = None
    """Original admission time carried across re-admissions."""

    def wait_effect(self) -> Effect:
        """What the worker coroutine yields before re-admitting."""
        assert self.action is SchedAction.DEFER
        if self.signal is not None:
            return Await(self.signal)
        return Sleep(self.delay_us)


@dataclass
class SchedulerStats:
    """Per-engine scheduling counters, surfaced through ``Metrics``.

    Picklable and mergeable: multiprocess workers ship their engines'
    stats back to the parent, which folds them with
    :meth:`merge_from` (queue depth merges as a max — the engines ran
    concurrently, their queues never shared a waiter).
    """

    scheduler: str = "fifo"
    admitted: int = 0
    completed: int = 0
    deferrals: int = 0
    sheds: int = 0
    defer_reasons: dict[str, int] = field(default_factory=dict)
    shed_reasons: dict[str, int] = field(default_factory=dict)
    tenant_sheds: dict[str, dict[str, int]] = field(default_factory=dict)
    """Typed shed reasons per traffic tenant (open-loop runs only):
    ``{tenant: {reason: count}}``.  Empty on closed-loop runs."""
    queue_depth: int = 0
    """Waiters deferred right now (ends at 0 for a drained run)."""

    max_queue_depth: int = 0
    queueing_delay_us: float = 0.0
    """Total time admitted requests spent deferred before running."""

    queued_admissions: int = 0
    """Admitted requests that were deferred at least once."""

    n_classes: int = 0
    """Distinct conflict classes this engine observed."""

    max_class_occupancy: int = 0
    """Peak concurrently-running transactions sharing one class."""

    window_widenings: int = 0
    """Times abort feedback widened a class's serialization window."""

    def count_defer(self, reason: SchedReason) -> None:
        self.deferrals += 1
        self.queue_depth += 1
        self.max_queue_depth = max(self.max_queue_depth, self.queue_depth)
        book = self.defer_reasons
        book[reason.value] = book.get(reason.value, 0) + 1

    def count_shed(self, reason: SchedReason,
                   tenant: str | None = None) -> None:
        self.sheds += 1
        book = self.shed_reasons
        book[reason.value] = book.get(reason.value, 0) + 1
        if tenant is not None:
            by_tenant = self.tenant_sheds.setdefault(tenant, {})
            by_tenant[reason.value] = by_tenant.get(reason.value, 0) + 1

    def mean_queueing_delay_us(self) -> float:
        if self.queued_admissions == 0:
            return 0.0
        return self.queueing_delay_us / self.queued_admissions

    def merge_from(self, other: "SchedulerStats") -> None:
        self.scheduler = other.scheduler
        self.admitted += other.admitted
        self.completed += other.completed
        self.deferrals += other.deferrals
        self.sheds += other.sheds
        for book, theirs in ((self.defer_reasons, other.defer_reasons),
                             (self.shed_reasons, other.shed_reasons)):
            for reason, count in theirs.items():
                book[reason] = book.get(reason, 0) + count
        for tenant, theirs in other.tenant_sheds.items():
            book = self.tenant_sheds.setdefault(tenant, {})
            for reason, count in theirs.items():
                book[reason] = book.get(reason, 0) + count
        self.queue_depth = max(self.queue_depth, other.queue_depth)
        self.max_queue_depth = max(self.max_queue_depth,
                                   other.max_queue_depth)
        self.queueing_delay_us += other.queueing_delay_us
        self.queued_admissions += other.queued_admissions
        self.n_classes += other.n_classes
        self.max_class_occupancy = max(self.max_class_occupancy,
                                       other.max_class_occupancy)
        self.window_widenings += other.window_widenings

    @classmethod
    def merged(cls, parts: list["SchedulerStats"]) -> "SchedulerStats":
        total = cls()
        for part in parts:
            total.merge_from(part)
        return total

    def timeline_snapshot(self) -> dict[str, float]:
        """Cumulative counters for the live metrics timeline
        (:mod:`repro.obs.timeline` diffs successive snapshots into
        per-interval deltas; gauges are read directly)."""
        return {"admitted": self.admitted,
                "completed": self.completed,
                "deferrals": self.deferrals,
                "sheds": self.sheds}

    def summary(self) -> dict:
        """Flat report fields for ``RunResult.perf_summary()``."""
        report = {
            "scheduler": self.scheduler,
            "admitted": self.admitted,
            "deferrals": self.deferrals,
            "sheds": self.sheds,
            "max_queue_depth": self.max_queue_depth,
            "mean_queueing_delay_us": round(
                self.mean_queueing_delay_us(), 3),
            "conflict_classes": self.n_classes,
            "max_class_occupancy": self.max_class_occupancy,
            "window_widenings": self.window_widenings,
        }
        if self.tenant_sheds:
            report["tenant_sheds"] = {
                tenant: dict(book)
                for tenant, book in sorted(self.tenant_sheds.items())}
        return report


Fingerprint = Callable[[TxnRequest], tuple[Hashable, ...]]
"""Estimated conflict classes of one request (empty: unconstrained)."""


class Scheduler:
    """Base class; engines call this surface, subclasses decide."""

    name = "base"

    def __init__(self) -> None:
        self.stats = SchedulerStats(scheduler=self.name)

    def admit(self, request: TxnRequest, now: float) -> AdmitDecision:
        """Fresh admission attempt; plain call, never touches the clock."""
        raise NotImplementedError

    def readmit(self, request: TxnRequest, prior: AdmitDecision,
                now: float) -> AdmitDecision:
        """Re-admission after a DEFER's wait effect completed.

        Carries the original admission timestamp forward so queueing
        delay measures the full wait, however many wake-ups it took.
        """
        return self._finish_readmit(self.admit(request, now), prior, now)

    def _finish_readmit(self, decision: AdmitDecision,
                        prior: AdmitDecision, now: float) -> AdmitDecision:
        """Thread the original admission time through and account the
        queueing delay once the request finally runs."""
        first = (prior.first_admit_at if prior.first_admit_at is not None
                 else prior.deferred_at)
        if first is None:
            first = now
        decision.first_admit_at = first
        if decision.action is SchedAction.RUN:
            self.stats.queued_admissions += 1
            self.stats.queueing_delay_us += now - first
        return decision

    def on_outcome(self, decision: AdmitDecision, outcome: Outcome,
                   now: float, will_retry: bool) -> None:
        """One attempt of an admitted request finished.

        ``will_retry=False`` closes the ticket (the request is done:
        committed, gave up, or hit an application abort).
        """
        if not will_retry:
            self.stats.completed += 1

    def retry_backoff_us(self, decision: AdmitDecision,
                         rng: random.Random, backoff_us: float) -> float:
        """Delay before retrying an aborted attempt.

        The base policy is the historical blind randomized backoff; it
        draws from ``rng`` exactly once so schedulers that keep it stay
        RNG-compatible with the raw loop.
        """
        return rng.uniform(0.0, backoff_us)

    # -- bookkeeping helpers for subclasses --------------------------------

    def _admitted(self, decision: AdmitDecision, now: float) -> None:
        self.stats.admitted += 1


class FifoScheduler(Scheduler):
    """Today's behavior as a scheduler: admit everything immediately.

    Selected explicitly (``--scheduler fifo``) or by default; the
    mediated dispatch loop with this scheduler is bit-identical to the
    historical raw retry loop — no extra effects, no extra RNG draws.
    """

    name = "fifo"

    def admit(self, request: TxnRequest, now: float) -> AdmitDecision:
        decision = AdmitDecision(SchedAction.RUN)
        self._admitted(decision, now)
        return decision


@dataclass(frozen=True)
class SchedulerSpec:
    """Picklable recipe for building one engine's scheduler.

    This is what ``RunConfig.scheduler`` holds and what multiprocess
    workers receive; each engine builds its own instance via
    :meth:`build` (schedulers hold live Signals and queues, so the
    *instances* never cross a process boundary).
    """

    kind: str = "fifo"
    class_width: int = 1
    """Concurrent transactions admitted per conflict class."""

    max_queue_per_class: int = 16
    """Waiters per class before admission control sheds (0: never)."""

    window_init_us: float = 20.0
    """First serialization window opened when a class's abort rate
    spikes; later spikes double it up to ``window_max_us``."""

    window_max_us: float = 400.0
    abort_ewma_alpha: float = 0.25
    abort_spike_threshold: float = 0.5
    include_reads: bool = False
    """Fingerprint estimated read records too (serializes readers of a
    hot class alongside its writers)."""

    def build(self, fingerprint: Fingerprint | None = None) -> Scheduler:
        if self.kind == "fifo":
            return FifoScheduler()
        if self.kind == "conflict":
            from .conflict import ConflictClassScheduler
            if fingerprint is None:
                raise ValueError(
                    "conflict scheduling needs a fingerprint function "
                    "(the harness derives one from the executor's "
                    "estimate_rw_sets hook)")
            return ConflictClassScheduler(fingerprint, self)
        raise ValueError(f"unknown scheduler kind {self.kind!r} "
                         f"(expected one of {SCHEDULERS})")


def as_spec(scheduler: "SchedulerSpec | str | None") -> SchedulerSpec:
    """Normalize ``RunConfig.scheduler`` (None, a kind name, or a full
    spec) into a :class:`SchedulerSpec`."""
    if scheduler is None:
        return SchedulerSpec(kind="fifo")
    if isinstance(scheduler, str):
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r} "
                             f"(expected one of {SCHEDULERS})")
        return SchedulerSpec(kind=scheduler)
    return scheduler
