"""Contention-aware transaction scheduling (the cross-transaction layer).

Sits between workload generation and the execution engines: every
request an engine's workers generate passes through that engine's
:class:`Scheduler` before any effect is emitted, so scheduling works
identically on the sim, aio, and mp backends (mp workers build their
schedulers from the picklable :class:`SchedulerSpec` carried in
``RunConfig``).  See ARCHITECTURE.md "Scheduling layer".
"""

from .admission import AdmissionController, DeadlineAdmission
from .base import (SCHEDULERS, AdmitDecision, FifoScheduler, SchedAction,
                   SchedReason, Scheduler, SchedulerSpec, SchedulerStats,
                   as_spec)
from .conflict import CONTENTION_ABORTS, ConflictClassScheduler

__all__ = [
    "AdmissionController",
    "AdmitDecision",
    "CONTENTION_ABORTS",
    "ConflictClassScheduler",
    "DeadlineAdmission",
    "FifoScheduler",
    "SCHEDULERS",
    "SchedAction",
    "SchedReason",
    "Scheduler",
    "SchedulerSpec",
    "SchedulerStats",
    "as_spec",
]
