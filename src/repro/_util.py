"""Small shared utilities: deterministic hashing and seeded RNG helpers.

Python's built-in ``hash`` is randomized per process for strings, which
would make partition placement non-deterministic across runs.  Everything
in this package that needs a hash of a key uses :func:`stable_hash`.
"""

from __future__ import annotations

import random
import zlib

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer (deterministic, well-distributed)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def stable_hash(obj: object) -> int:
    """Deterministic 64-bit hash of ints, strings, bytes, and tuples thereof."""
    if isinstance(obj, bool):
        return _splitmix64(int(obj) + 0x5BF0)
    if isinstance(obj, int):
        return _splitmix64(obj & _MASK64)
    if isinstance(obj, str):
        return _splitmix64(zlib.crc32(obj.encode("utf-8")))
    if isinstance(obj, bytes):
        return _splitmix64(zlib.crc32(obj))
    if isinstance(obj, tuple):
        acc = 0x243F6A8885A308D3
        for item in obj:
            acc = _splitmix64(acc ^ stable_hash(item))
        return acc
    raise TypeError(f"stable_hash does not support {type(obj).__name__}")


def make_rng(seed: int, *salt: object) -> random.Random:
    """Create an independent RNG stream derived from ``seed`` and ``salt``."""
    return random.Random(stable_hash((seed,) + salt))
