"""Trace reduction and export: triage tooling over harvested spans.

Spans come out of :meth:`~repro.obs.tracer.Tracer.harvest` as flat
tuples ``(trace, txn_id, attempt, server, phase, t_start_us,
t_end_us, outcome)``.  This module turns them into the three artefacts
the tail-latency workflow needs:

* :func:`trace_tree` / :func:`critical_path` — group a run's spans by
  trace id and attribute each trace's time to its dominant phase,
  which is the one-line answer to "why was this commit slow?".
* :func:`exemplar_summary` — join the open-loop dispatcher's
  slowest-K exemplar tags against the span log, giving
  ``perf_summary()["exemplars"]`` a per-phase breakdown of exactly
  the requests that made p99/p999.
* :func:`to_trace_events` / :func:`write_trace_json` — Chrome/Perfetto
  ``trace_event`` JSON ("X" complete events; pid = server, tid =
  trace id) so ``--trace-out`` files load directly in
  ``ui.perfetto.dev`` or ``chrome://tracing``.
"""

from __future__ import annotations

import json

from .tracer import TraceData

# span tuple field offsets
_TRACE, _TXN, _ATTEMPT, _SERVER, _PHASE, _T0, _T1, _OUTCOME = range(8)


def trace_tree(spans) -> dict[int, list]:
    """Group spans by trace id; each trace's spans sorted by start."""
    tree: dict[int, list] = {}
    for span in spans:
        tree.setdefault(span[_TRACE], []).append(span)
    for entries in tree.values():
        entries.sort(key=lambda s: (s[_T0], s[_T1]))
    return tree


def critical_path(spans) -> dict:
    """Attribute one trace's latency to its phases.

    Returns ``{"phases": {phase: total_us}, "dominant_phase": str,
    "span_count": int, "servers": [ids]}``.  Wall overlap between
    servers is *not* subtracted — the figure is "where was work (or
    waiting) booked", the right attribution for lock/queue triage.
    """
    phases: dict[str, float] = {}
    servers = set()
    for span in spans:
        phases[span[_PHASE]] = (phases.get(span[_PHASE], 0.0)
                                + (span[_T1] - span[_T0]))
        servers.add(span[_SERVER])
    dominant = max(phases, key=phases.get) if phases else None
    return {"phases": {k: round(v, 3) for k, v in phases.items()},
            "dominant_phase": dominant,
            "span_count": len(spans),
            "servers": sorted(servers)}


def exemplar_summary(trace_data: TraceData) -> dict:
    """Per-tenant slowest-K traces, each with its phase breakdown."""
    tree = trace_tree(trace_data.spans)
    out: dict[str, list] = {}
    for tenant, entries in sorted(trace_data.exemplars.items()):
        rows = []
        for latency_us, trace in entries:
            row = {"trace": trace, "latency_us": round(latency_us, 3)}
            row.update(critical_path(tree.get(trace, ())))
            rows.append(row)
        out[tenant] = rows
    return out


def to_trace_events(spans) -> list[dict]:
    """Chrome ``trace_event`` "X" (complete) events, one per span."""
    events = []
    for span in spans:
        events.append({
            "name": span[_PHASE],
            "cat": "txn",
            "ph": "X",
            "ts": span[_T0],
            "dur": max(0.0, span[_T1] - span[_T0]),
            "pid": span[_SERVER],
            "tid": span[_TRACE],
            "args": {"txn_id": span[_TXN], "attempt": span[_ATTEMPT],
                     "outcome": span[_OUTCOME]},
        })
    return events


def write_trace_json(trace_data: TraceData, path: str) -> None:
    """Write a Perfetto-loadable ``{"traceEvents": [...]}`` file."""
    payload = {
        "traceEvents": to_trace_events(trace_data.spans),
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_spans": trace_data.dropped,
            "exemplars": exemplar_summary(trace_data),
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
