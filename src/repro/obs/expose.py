"""Exposition for the live metrics timeline: Prometheus, CSV, sparklines.

Three renderings of one :class:`~repro.obs.timeline.Timeline`:

* :func:`to_prometheus` — the text exposition format scrapers expect:
  cumulative counters as ``*_total`` with ``server`` (and ``reason`` /
  ``tenant``) labels, gauges as last-seen values.  On the aio/mp
  backends ``RunConfig(metrics_port=...)`` serves it live from a
  stdlib :class:`MetricsHttpServer` during the run; the sim backend
  has no wall clock to scrape against, so there it is an end-of-run
  artifact only.
* :func:`timeline_csv` / :func:`write_timeline_csv` — one wide row per
  sample for pandas/gnuplot post-processing
  (``RunConfig(metrics_csv=...)``).
* :func:`render_watch` — a compact terminal dashboard of Unicode
  sparklines (``RunConfig(metrics_watch=True)`` / ``--watch``), the
  thirty-second answer to "when did this run go bad?".

Everything here is read-only over an already-collected timeline; no
rendering path touches the run's hot loops.
"""

from __future__ import annotations

import io
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

WATCH_SERIES = ("commits", "aborts", "completed", "sheds",
                "queue_depth", "wal_fsyncs", "wire_bytes")


def _metric_name(key: str, prefix: str) -> str:
    return f"{prefix}_{_NAME_RE.sub('_', key)}"


def to_prometheus(timeline, health: Iterable = (),
                  prefix: str = "repro") -> str:
    """Render the timeline in Prometheus text exposition format.

    Counter keys containing a ``.`` split into a labeled family:
    ``aborts.lock_timeout`` becomes
    ``repro_aborts_by_reason_total{reason="lock_timeout"}``.
    """
    out = io.StringIO()

    # cumulative counters, per server
    plain: dict[str, dict[int, float]] = {}
    labeled: dict[str, dict[tuple[int, str], float]] = {}
    for server in timeline.servers():
        for row in timeline.rows(server):
            for key, value in row.counters.items():
                if "." in key:
                    family, label = key.split(".", 1)
                    book = labeled.setdefault(family, {})
                    book[(server, label)] = \
                        book.get((server, label), 0.0) + value
                else:
                    book = plain.setdefault(key, {})
                    book[server] = book.get(server, 0.0) + value

    for key in sorted(plain):
        name = _metric_name(key, prefix) + "_total"
        out.write(f"# TYPE {name} counter\n")
        for server in sorted(plain[key]):
            out.write(f'{name}{{server="{server}"}} '
                      f'{plain[key][server]:g}\n')
    for family in sorted(labeled):
        name = _metric_name(family, prefix) + "_by_reason_total"
        out.write(f"# TYPE {name} counter\n")
        for server, label in sorted(labeled[family]):
            out.write(f'{name}{{server="{server}",'
                      f'reason="{label}"}} '
                      f'{labeled[family][(server, label)]:g}\n')

    # gauges: last observed value per server
    gauge_keys = sorted({key for row in timeline.rows()
                         for key in row.gauges})
    for key in gauge_keys:
        name = _metric_name(key, prefix)
        out.write(f"# TYPE {name} gauge\n")
        for server in timeline.servers():
            out.write(f'{name}{{server="{server}"}} '
                      f'{timeline.gauge_last(key, server):g}\n')

    # per-tenant open-loop counters
    tenants = timeline.tenant_totals()
    if tenants:
        keys = sorted({key for book in tenants.values()
                       for key in book})
        for key in keys:
            name = _metric_name(f"tenant_{key}", prefix) + "_total"
            out.write(f"# TYPE {name} counter\n")
            for tenant in sorted(tenants):
                value = tenants[tenant].get(key, 0.0)
                out.write(f'{name}{{tenant="{tenant}"}} {value:g}\n')

    # watchdog events, by kind
    kinds: dict[str, int] = {}
    for event in health:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    name = f"{prefix}_health_events_total"
    out.write(f"# TYPE {name} counter\n")
    if kinds:
        for kind in sorted(kinds):
            out.write(f'{name}{{kind="{kind}"}} {kinds[kind]}\n')
    else:
        out.write(f'{name}{{kind="none"}} 0\n')

    name = f"{prefix}_timeline_dropped_samples_total"
    out.write(f"# TYPE {name} counter\n")
    out.write(f"{name} {timeline.dropped}\n")
    return out.getvalue()


# -- CSV ----------------------------------------------------------------------

def timeline_csv(timeline) -> str:
    """One wide row per sample: ``t_us,server,gen`` then the union of
    counter, gauge, and flattened ``tenant/counter`` columns."""
    rows = timeline.rows()
    counter_keys: set[str] = set()
    gauge_keys: set[str] = set()
    tenant_keys: set[str] = set()
    for row in rows:
        counter_keys.update(row.counters)
        gauge_keys.update(row.gauges)
        for tenant, book in row.tenants.items():
            tenant_keys.update(f"{tenant}/{key}" for key in book)
    columns = (sorted(counter_keys) + sorted(gauge_keys)
               + sorted(tenant_keys))
    out = io.StringIO()
    out.write(",".join(["t_us", "server", "gen"] + columns) + "\n")
    for row in rows:
        cells = [f"{row.t_us:g}", str(row.server), str(row.gen)]
        for key in sorted(counter_keys):
            cells.append(f"{row.counters.get(key, 0):g}")
        for key in sorted(gauge_keys):
            cells.append(f"{row.gauges.get(key, 0):g}")
        for key in sorted(tenant_keys):
            tenant, _, counter = key.partition("/")
            cells.append(
                f"{row.tenants.get(tenant, {}).get(counter, 0):g}")
        out.write(",".join(cells) + "\n")
    return out.getvalue()


def write_timeline_csv(timeline, path: str) -> None:
    with open(path, "w") as f:
        f.write(timeline_csv(timeline))


# -- terminal sparklines ------------------------------------------------------

def sparkline(values: Iterable[float]) -> str:
    values = list(values)
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return SPARK_BLOCKS[0] * len(values)
    scale = len(SPARK_BLOCKS) - 1
    return "".join(SPARK_BLOCKS[min(scale, int(v / top * scale))]
                   for v in values)


def _binned(timeline, name: str) -> list[float]:
    """Sum one series across servers into interval-aligned bins."""
    bins: dict[int, float] = {}
    for t_us, value in timeline.series(name):
        index = int(t_us // timeline.interval_us)
        bins[index] = bins.get(index, 0.0) + value
    if not bins:
        return []
    lo, hi = min(bins), max(bins)
    return [bins.get(i, 0.0) for i in range(lo, hi + 1)]


def render_watch(timeline, health: Iterable = (),
                 width: int = 60) -> str:
    """The ``--watch`` dashboard: one sparkline per key series."""
    lines = [f"timeline: {len(timeline.rows())} samples x "
             f"{timeline.interval_us:g}us across "
             f"{len(timeline.servers())} server(s)"
             + (f", {timeline.dropped} dropped" if timeline.dropped
                else "")]
    for name in WATCH_SERIES:
        values = _binned(timeline, name)
        if not values or not any(values):
            continue
        if len(values) > width:     # downsample by summing runs
            step = -(-len(values) // width)
            values = [sum(values[i:i + step])
                      for i in range(0, len(values), step)]
        lines.append(f"  {name:>12} |{sparkline(values)}| "
                     f"peak {max(values):,.0f}")
    health = list(health)
    if health:
        lines.append(f"  health: {len(health)} event(s)")
        for event in health[:8]:
            lines.append(f"    [{event.kind}] t={event.t_us:,.0f}us "
                         f"{event.message}")
        if len(health) > 8:
            lines.append(f"    ... and {len(health) - 8} more")
    else:
        lines.append("  health: ok")
    return "\n".join(lines)


# -- live HTTP endpoint (aio/mp) ----------------------------------------------

class MetricsHttpServer:
    """Serves ``GET /metrics`` from a provider callable.

    Stdlib-only (``http.server``), daemon-threaded, bound to
    localhost.  Port 0 binds an ephemeral port (the scrape tests use
    this); ``url`` reports the bound address.
    """

    def __init__(self, port: int, provider: Callable[[], str],
                 host: str = "127.0.0.1"):
        self.provider = provider
        self.host = host
        self.port = port
        self._httpd = None
        self._thread = None

    def start(self) -> int:
        provider = self.provider

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                body = provider().encode()
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4; "
                                 "charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        self._httpd = ThreadingHTTPServer((self.host, self.port),
                                          Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="metrics-http",
                                        daemon=True)
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
