"""Health watchdog: declarative rules over the live metrics timeline.

A :class:`HealthWatchdog` watches the stream of
:class:`~repro.obs.timeline.TimelineSample` rows and turns sustained
bad intervals into typed :class:`HealthEvent` records — the difference
between "the run finished with 12% fewer commits" and "server 1
stopped committing at t=2.3s while its queue sat at 64".  Rules are
declarative (:class:`HealthRule`: a kind, a threshold, a window of
consecutive intervals) and evaluated once per interval, so detection
latency is bounded by ``window * metrics_interval`` — the acceptance
bar for the chaos tests.

Built-in rule kinds:

``stall``
    A server admitted work (or holds a queue) but completed nothing
    for ``window`` consecutive intervals — or went *silent* (no sample
    for ``window`` intervals of timeline time), which is how a
    SIGKILLed mp worker first manifests before its replacement
    resumes shipping.
``queue_saturation``
    A server's admission queue depth sat at/above ``threshold`` for
    ``window`` consecutive samples: the open-loop saturation signature.
``slo_burn``
    A tenant's windowed SLO attainment (in_slo / scheduled) fell below
    ``threshold``; ``tenant`` scopes the rule (substring match, e.g.
    ``"gold"``).
``leader_flap``
    ``controller_failovers`` advanced by at least ``threshold`` within
    the window: the placement lease changed hands.
``restart_storm``
    ``recoveries`` advanced by at least ``threshold`` within the
    window: workers are dying faster than steady state allows.

Events latch on the rising edge (one event per incident, not one per
interval) and re-arm when the condition clears.  A rule marked
``fatal`` plus ``abort=True`` raises :class:`WatchdogAbort` out of the
run loop so a wedged bench run dies in seconds instead of hanging
until its timeout.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence


class WatchdogAbort(RuntimeError):
    """Raised out of the run loop when a fatal health rule fires."""

    def __init__(self, event: "HealthEvent"):
        super().__init__(f"watchdog abort: {event.message}")
        self.event = event


@dataclass(frozen=True)
class HealthEvent:
    """One detected incident; lands in ``perf_summary()['health']``."""

    kind: str
    t_us: float
    server: int          # -1 for cluster-scoped events
    value: float
    threshold: float
    message: str

    def as_dict(self) -> dict:
        return {"kind": self.kind, "t_us": self.t_us,
                "server": self.server, "value": self.value,
                "threshold": self.threshold, "message": self.message}


@dataclass(frozen=True)
class HealthRule:
    """One declarative condition evaluated every interval."""

    kind: str
    threshold: float
    window: int = 3
    fatal: bool = False
    tenant: str | None = None


def default_rules() -> tuple[HealthRule, ...]:
    """The stock rule set: catch wedges fatally, degradation loudly."""
    return (
        HealthRule("stall", threshold=0.0, window=3, fatal=True),
        HealthRule("queue_saturation", threshold=64.0, window=3),
        HealthRule("slo_burn", threshold=0.5, window=3, tenant=None),
        HealthRule("leader_flap", threshold=1.0, window=3),
        HealthRule("restart_storm", threshold=2.0, window=3),
    )


class HealthWatchdog:
    """Evaluates :class:`HealthRule` s against ingested timeline rows.

    ``ingest`` feeds it sample rows (from any server, any order);
    ``evaluate`` runs every rule against the per-server windows and
    appends new :class:`HealthEvent` s to ``events``.  Latching: a
    (kind, subject) pair fires once per incident and re-arms only
    after an interval in which the condition does not hold.
    """

    def __init__(self, rules: Sequence[HealthRule] | None = None,
                 interval_us: float = 1.0, abort: bool = False):
        self.rules = tuple(rules) if rules is not None else default_rules()
        self.interval_us = float(interval_us)
        self.abort = abort
        self.events: list[HealthEvent] = []
        self.last_seen_us: dict[int, float] = {}
        window = max([r.window for r in self.rules], default=3)
        self._window = max(1, window)
        self._rows: dict[int, deque] = {}
        self._active: set[tuple] = set()
        self._finished: set[int] = set()

    # -- ingestion ---------------------------------------------------------

    def ingest(self, rows: Iterable, at_us: float | None = None) -> None:
        """Feed sample rows into the per-server windows.

        ``at_us`` is the *observer's* clock at ingestion time; the mp
        parent passes its own wall clock here because worker sample
        timestamps share neither origin nor skew with the clock that
        ``evaluate`` runs on (the workers' clocks start only after the
        build/population phase).  Single-clock backends (sim, aio)
        omit it and the rows' own timestamps are used.
        """
        for row in rows:
            book = self._rows.get(row.server)
            if book is None:
                book = self._rows[row.server] = deque(maxlen=self._window)
            book.append(row)
            if getattr(row, "final", False):
                # clean end-of-run flush: this server is done, its
                # silence from here on is retirement, not a stall
                self._finished.add(row.server)
            seen_us = at_us if at_us is not None else row.t_us
            seen = self.last_seen_us.get(row.server)
            if seen is None or seen_us > seen:
                self.last_seen_us[row.server] = seen_us

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now_us: float,
                 allow_abort: bool = True) -> list[HealthEvent]:
        """Run every rule; returns (and records) newly fired events."""
        fired: list[HealthEvent] = []
        for rule in self.rules:
            check = getattr(self, f"_check_{rule.kind}", None)
            if check is None:
                raise ValueError(f"unknown health rule kind "
                                 f"{rule.kind!r}")
            fired.extend(check(rule, now_us))
        self.events.extend(fired)
        if allow_abort and self.abort:
            for event in fired:
                for rule in self.rules:
                    if rule.fatal and rule.kind == event.kind:
                        raise WatchdogAbort(event)
        return fired

    def _latch(self, key: tuple, firing: bool,
               event: HealthEvent | None) -> list[HealthEvent]:
        if not firing:
            self._active.discard(key)
            return []
        if key in self._active:
            return []
        self._active.add(key)
        return [event]

    # -- rule kinds --------------------------------------------------------

    def _check_stall(self, rule: HealthRule,
                     now_us: float) -> list[HealthEvent]:
        fired = []
        horizon = rule.window * self.interval_us
        for server, book in self._rows.items():
            # silence: the server stopped shipping samples entirely
            # (on mp, the first visible symptom of a SIGKILLed worker)
            silent_us = now_us - self.last_seen_us[server]
            if silent_us >= horizon and server not in self._finished:
                fired.extend(self._latch(
                    ("stall", server), True,
                    HealthEvent(
                        "stall", now_us, server, silent_us, horizon,
                        f"server {server} silent for "
                        f"{silent_us:,.0f}us "
                        f"(>= {rule.window} intervals)")))
                continue
            if len(book) < rule.window:
                self._active.discard(("stall", server))
                continue
            recent = list(book)[-rule.window:]
            completed = sum(r.counters.get("completed", 0)
                            for r in recent)
            admitted = sum(r.counters.get("admitted", 0)
                           for r in recent)
            queued = recent[-1].gauges.get("queue_depth", 0.0)
            firing = (completed <= rule.threshold
                      and (admitted > 0 or queued > 0))
            fired.extend(self._latch(
                ("stall", server), firing,
                HealthEvent(
                    "stall", recent[-1].t_us, server, completed,
                    rule.threshold,
                    f"server {server} completed nothing for "
                    f"{rule.window} intervals "
                    f"(admitted={admitted:.0f}, "
                    f"queue_depth={queued:.0f})") if firing else None))
        return fired

    def _check_queue_saturation(self, rule: HealthRule,
                                now_us: float) -> list[HealthEvent]:
        fired = []
        for server, book in self._rows.items():
            recent = list(book)[-rule.window:]
            depths = [r.gauges.get("queue_depth", 0.0) for r in recent]
            firing = (len(recent) >= rule.window
                      and all(d >= rule.threshold for d in depths))
            fired.extend(self._latch(
                ("queue_saturation", server), firing,
                HealthEvent(
                    "queue_saturation", recent[-1].t_us, server,
                    max(depths), rule.threshold,
                    f"server {server} queue depth >= "
                    f"{rule.threshold:.0f} for {rule.window} "
                    f"intervals (peak {max(depths):.0f})")
                if firing else None))
        return fired

    def _check_slo_burn(self, rule: HealthRule,
                        now_us: float) -> list[HealthEvent]:
        # per-tenant counters ride the primary rows; pool the window
        # across servers so a multi-process run reads as one fleet
        scheduled: dict[str, float] = {}
        in_slo: dict[str, float] = {}
        latest = 0.0
        for book in self._rows.values():
            for row in book:
                latest = max(latest, row.t_us)
                for tenant, counters in row.tenants.items():
                    if rule.tenant and rule.tenant not in tenant:
                        continue
                    scheduled[tenant] = (scheduled.get(tenant, 0.0)
                                         + counters.get("scheduled", 0))
                    in_slo[tenant] = (in_slo.get(tenant, 0.0)
                                      + counters.get("in_slo", 0))
        fired = []
        for tenant, n in scheduled.items():
            if n <= 0:
                self._active.discard(("slo_burn", tenant))
                continue
            attainment = in_slo.get(tenant, 0.0) / n
            firing = attainment < rule.threshold
            fired.extend(self._latch(
                ("slo_burn", tenant), firing,
                HealthEvent(
                    "slo_burn", latest, -1, attainment, rule.threshold,
                    f"tenant {tenant} SLO attainment "
                    f"{attainment:.2f} < {rule.threshold:.2f} over "
                    f"the last {rule.window} intervals")
                if firing else None))
        return fired

    def _cluster_counter(self, rule: HealthRule, now_us: float,
                         counter: str, what: str) -> list[HealthEvent]:
        total = 0.0
        latest = 0.0
        for book in self._rows.values():
            for row in book:
                total += row.counters.get(counter, 0)
                latest = max(latest, row.t_us)
        firing = total >= rule.threshold
        return self._latch(
            (rule.kind, -1), firing,
            HealthEvent(
                rule.kind, latest or now_us, -1, total, rule.threshold,
                f"{total:.0f} {what} within {rule.window} intervals")
            if firing else None)

    def _check_leader_flap(self, rule: HealthRule,
                           now_us: float) -> list[HealthEvent]:
        return self._cluster_counter(rule, now_us,
                                     "controller_failovers",
                                     "placement lease failover(s)")

    def _check_restart_storm(self, rule: HealthRule,
                             now_us: float) -> list[HealthEvent]:
        return self._cluster_counter(rule, now_us, "recoveries",
                                     "worker recovery(ies)")

    def summary(self) -> list[dict]:
        return [event.as_dict() for event in self.events]
