"""Observability: tracing, live metrics timeline, health, exposition.

See :mod:`repro.obs.tracer` for the ring-buffer span log,
:mod:`repro.obs.export` for critical-path reduction and Perfetto
export, :mod:`repro.obs.timeline` for the periodic delta sampler and
merged per-server timeline, :mod:`repro.obs.health` for the declarative
watchdog, and :mod:`repro.obs.expose` for Prometheus/CSV/sparkline
rendering.  The rest of the codebase imports :data:`NOOP_TRACER` (the
disabled fast path) and guards every emission site on
``tracer.enabled``; the timeline is equally opt-in via
``RunConfig(metrics_interval=...)``.
"""

from .tracer import (NOOP_TRACER, PHASES, VERB_PHASES, SpanRing,
                     TraceData, Tracer)
from .export import (critical_path, exemplar_summary, to_trace_events,
                     trace_tree, write_trace_json)
from .timeline import Timeline, TimelineSample, TimelineSampler
from .health import (HealthEvent, HealthRule, HealthWatchdog,
                     WatchdogAbort, default_rules)
from .expose import (MetricsHttpServer, render_watch, sparkline,
                     timeline_csv, to_prometheus, write_timeline_csv)

__all__ = [
    "NOOP_TRACER", "PHASES", "VERB_PHASES", "SpanRing", "TraceData",
    "Tracer", "critical_path", "exemplar_summary", "to_trace_events",
    "trace_tree", "write_trace_json",
    "Timeline", "TimelineSample", "TimelineSampler",
    "HealthEvent", "HealthRule", "HealthWatchdog", "WatchdogAbort",
    "default_rules",
    "MetricsHttpServer", "render_watch", "sparkline", "timeline_csv",
    "to_prometheus", "write_timeline_csv",
]
