"""Observability: phase-span tracing, tail exemplars, trace export.

See :mod:`repro.obs.tracer` for the ring-buffer span log and
:mod:`repro.obs.export` for critical-path reduction and Perfetto
export.  The rest of the codebase imports :data:`NOOP_TRACER` (the
disabled fast path) and guards every emission site on
``tracer.enabled``.
"""

from .tracer import (NOOP_TRACER, PHASES, VERB_PHASES, SpanRing,
                     TraceData, Tracer)
from .export import (critical_path, exemplar_summary, to_trace_events,
                     trace_tree, write_trace_json)

__all__ = [
    "NOOP_TRACER", "PHASES", "VERB_PHASES", "SpanRing", "TraceData",
    "Tracer", "critical_path", "exemplar_summary", "to_trace_events",
    "trace_tree", "write_trace_json",
]
