"""Near-zero-overhead phase tracing for the transaction runtimes.

The tracer answers the question the aggregate metrics cannot: *where
did a slow transaction spend its time, on which server?*  Executors,
the commit FSM, schedulers, admission, and the migration executor emit
**phase spans** — flat tuples ``(trace, txn_id, attempt, server,
phase, t_start_us, t_end_us, outcome)`` — into per-server ring
buffers.  A trace id allocated at dispatch rides the effect runtimes'
task context (and, on the mp backend, the wire frames), so a
cross-partition transaction's spans stitch into one tree however many
processes touched it.

Overhead discipline:

* Disabled is the default and costs one attribute load + branch per
  would-be span: every emission site guards on ``tracer.enabled``
  (a class attribute — ``False`` on :data:`NOOP_TRACER`) and the
  module-level :data:`NOOP_TRACER` singleton means no per-run
  allocation happens until a run opts in with ``trace=True``.
* Enabled stays cheap: rings are preallocated power-of-two lists
  written with a mask-and-bump (no append, no branch on full — old
  spans are overwritten and counted as ``dropped``), spans are plain
  tuples of ints and interned phase strings, and sampling is a
  deterministic every-Nth counter so two runs with the same seed
  sample the same transactions.
* Span emission is pure Python bookkeeping — no effects, no RNG
  draws — so even with tracing *on* the sim backend's event stream
  (and therefore every figure) is bit-identical to tracing off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PHASES = ("lock", "read", "validate", "replicate", "prepare", "commit",
          "release", "queue_wait", "shed", "migrate")

TRACE_HOME_SHIFT = 40
"""Trace ids are ``(home + 1) << 40 | seq``: per-home counters can
never collide, the id fits the wire codec's signed int64 slot, and 0
is reserved for "untraced" so it packs as a plain falsy sentinel."""

# Server-side phase attribution for mp remote verb execution, where
# the participant sees a verb name rather than a coordinator phase.
VERB_PHASES = {
    "lock_read": "lock",
    "lock_insert": "lock",
    "plain_read": "read",
    "validate_write": "validate",
    "validate_read": "validate",
    "replica_apply": "replicate",
    "prepare": "prepare",
    "decision": "commit",
    "commit": "commit",
    "recover_query": "commit",
    "release": "release",
}


class SpanRing:
    """Fixed-capacity overwrite-oldest span log for one server."""

    __slots__ = ("buf", "mask", "n")

    def __init__(self, capacity: int):
        cap = 1
        while cap < capacity:
            cap <<= 1
        self.buf = [None] * cap
        self.mask = cap - 1
        self.n = 0

    def push(self, span) -> None:
        self.buf[self.n & self.mask] = span
        self.n += 1

    @property
    def dropped(self) -> int:
        return max(0, self.n - len(self.buf))

    def spans(self) -> list:
        """Retained spans, oldest first."""
        if self.n <= len(self.buf):
            return self.buf[:self.n]
        head = self.n & self.mask
        return self.buf[head:] + self.buf[:head]


@dataclass
class TraceData:
    """Harvested spans + tail exemplars; the mergeable metrics payload.

    mp workers harvest their rings at quiescence and ship a
    ``TraceData`` home inside :class:`~repro.bench.metrics.Metrics`;
    the parent folds them with :meth:`merge_from` exactly like the
    other per-worker stats.
    """

    spans: list = field(default_factory=list)
    exemplars: dict = field(default_factory=dict)
    dropped: int = 0
    exemplar_k: int = 5

    def merge_from(self, other: "TraceData") -> None:
        self.spans.extend(other.spans)
        self.dropped += other.dropped
        self.exemplar_k = max(self.exemplar_k, other.exemplar_k)
        for tenant, entries in other.exemplars.items():
            mine = self.exemplars.setdefault(tenant, [])
            mine.extend(entries)
            mine.sort(key=lambda e: -e[0])
            del mine[self.exemplar_k:]

    def summary(self) -> dict:
        # "dropped_spans" duplicates "dropped" under the name the
        # Perfetto export and report tooling key on, so a truncated
        # trace is loud everywhere the summary travels
        return {"spans": len(self.spans), "dropped": self.dropped,
                "dropped_spans": self.dropped,
                "traces": len({s[0] for s in self.spans})}


class Tracer:
    """The live tracer installed on a run's :class:`Database`.

    One instance serves every server engine in a process; rings are
    per-server so the hot path never contends and harvest preserves
    per-server attribution.
    """

    enabled = True

    __slots__ = ("sample_every", "ring_capacity", "exemplar_k",
                 "rings", "exemplars", "_next_seq")

    def __init__(self, sample_every: int = 1, ring_capacity: int = 65536,
                 exemplar_k: int = 5):
        self.sample_every = max(1, int(sample_every))
        self.ring_capacity = ring_capacity
        self.exemplar_k = exemplar_k
        self.rings: dict[int, SpanRing] = {}
        self.exemplars: dict[str, list] = {}
        self._next_seq: dict[int, int] = {}

    def new_trace(self, home: int) -> int:
        """Allocate a trace id for a request dispatched at ``home``.

        Returns 0 (= untraced) for unsampled requests; the counter
        advances either way so sampling is deterministic.
        """
        seq = self._next_seq.get(home, 0)
        self._next_seq[home] = seq + 1
        if seq % self.sample_every:
            return 0
        return ((home + 1) << TRACE_HOME_SHIFT) | seq

    def span(self, trace: int, txn_id: int, attempt: int, server: int,
             phase: str, t_start_us: float, t_end_us: float,
             outcome: str = "ok") -> None:
        if not trace:
            return
        ring = self.rings.get(server)
        if ring is None:
            ring = self.rings[server] = SpanRing(self.ring_capacity)
        ring.push((trace, txn_id, attempt, server, phase,
                   t_start_us, t_end_us, outcome))

    def exemplar(self, tenant: str, trace: int,
                 latency_us: float) -> None:
        """Tag ``trace`` as a tail candidate for ``tenant``.

        Keeps the slowest-K per tenant; ties broken by insertion.
        """
        if not trace:
            return
        entries = self.exemplars.setdefault(tenant, [])
        entries.append((latency_us, trace))
        entries.sort(key=lambda e: -e[0])
        del entries[self.exemplar_k:]

    def harvest(self) -> TraceData:
        """Drain every ring into a mergeable :class:`TraceData`.

        Draining (not copying) keeps a restarted mp worker's tracer
        from re-shipping its predecessor generation's spans.
        """
        spans = []
        dropped = 0
        for server in sorted(self.rings):
            ring = self.rings[server]
            spans.extend(ring.spans())
            dropped += ring.dropped
        data = TraceData(spans=spans, exemplars=self.exemplars,
                         dropped=dropped, exemplar_k=self.exemplar_k)
        self.rings = {}
        self.exemplars = {}
        return data


class _NoopTracer:
    """Module-level disabled fast path: one shared instance, every
    method a no-op, ``enabled`` False so guarded emission sites skip
    even the call."""

    enabled = False

    __slots__ = ()

    def new_trace(self, home: int) -> int:
        return 0

    def span(self, *args, **kwargs) -> None:
        return None

    def exemplar(self, *args, **kwargs) -> None:
        return None

    def harvest(self) -> TraceData:
        return TraceData()


NOOP_TRACER = _NoopTracer()
