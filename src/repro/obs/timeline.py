"""Live metrics timeline: periodic delta snapshots of the run's stats.

The aggregate metrics answer *what* a run did; the tracer answers
*where one transaction* spent its time.  This module answers *when the
system degraded*: every ``metrics_interval`` (simulated µs on the sim
backend, wall clock on aio/mp) a :class:`TimelineSampler` snapshots
**deltas** of the existing mergeable stats — committed/aborted txns and
abort reasons, scheduler queue depth and sheds, per-tenant SLO
attainment, WAL fsync/group-commit counters, placement moves/flips,
recovery restarts, wire bytes — into one :class:`TimelineSample` row
per server, collected in a bounded per-server ring
(:class:`Timeline`).

Overhead discipline mirrors the tracer's:

* Off is the default and costs one attribute load + None check per
  simulator event (``Simulator.probe``) and nothing at all on aio/mp.
* Sampling is pure Python bookkeeping — it reads counters that already
  exist, schedules no events, draws no randomness — so the sim
  backend's event stream (and therefore every figure) stays
  bit-identical with the timeline on.
* mp workers ship their rows home over the parent control pipe as the
  run progresses (a ``metrics_sample`` message per interval), so the
  parent holds one merged, monotonic timeline that survives worker
  deaths: a SIGKILLed worker's already-shipped intervals are kept even
  though its end-of-run metrics payload is lost forever.

Monotonicity by construction: every counter in a sample is a
nonnegative delta of a cumulative source counter, and a restarted
worker generation starts its sources from zero, so cumulative sums
over the merged timeline never decrease and a dead generation's unsent
partial interval is simply absent — never double-counted.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

DEFAULT_RING = 4096
"""Samples retained per server; at the default intervals this is hours
of run time, and overflow drops the *oldest* rows (counted, like the
tracer's span rings)."""


@dataclass
class TimelineSample:
    """One server's activity during one sample interval.

    ``counters`` are deltas over the interval (nonnegative by
    construction); ``gauges`` are point-in-time readings at the sample
    instant; ``tenants`` are per-tenant open-loop counter deltas
    (``scheduled`` / ``shed`` / ``committed`` / ``failed`` /
    ``in_slo``), present only on the row of the process's primary
    server.  Process-scoped counters (commits, WAL, wire bytes, ...)
    likewise appear only on the primary row so merging rows from many
    servers never double-counts them.
    """

    t_us: float
    server: int
    gen: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    tenants: dict[str, dict[str, float]] = field(default_factory=dict)
    final: bool = False
    """True on the end-of-run flush row: this server finished cleanly
    (the watchdog stops treating its subsequent silence as a stall)."""


class Timeline:
    """Bounded per-server rings of :class:`TimelineSample` rows.

    Mergeable and picklable like every other stats object: the parent
    of an mp run folds each worker's shipped rows into one instance,
    and ``Metrics.merged`` folds timelines like scheduler stats.
    ``health`` carries the watchdog's typed events so one object rides
    ``metrics.timeline`` into ``perf_summary()``.
    """

    def __init__(self, interval_us: float, ring: int = DEFAULT_RING):
        if interval_us <= 0:
            raise ValueError(f"metrics interval must be positive, "
                             f"got {interval_us}")
        self.interval_us = float(interval_us)
        self.ring = max(1, int(ring))
        self._rings: dict[int, deque] = {}
        self.dropped = 0
        self.health: list = []

    def add(self, sample: TimelineSample) -> None:
        ring = self._rings.get(sample.server)
        if ring is None:
            ring = self._rings[sample.server] = deque(maxlen=self.ring)
        if len(ring) == self.ring:
            self.dropped += 1
        ring.append(sample)

    def add_rows(self, rows: Iterable[TimelineSample]) -> None:
        for row in rows:
            self.add(row)

    def servers(self) -> list[int]:
        return sorted(self._rings)

    def rows(self, server: int | None = None) -> list[TimelineSample]:
        """Retained samples, time-ordered (all servers interleaved
        unless one is selected)."""
        if server is not None:
            return list(self._rings.get(server, ()))
        rows = [row for ring in self._rings.values() for row in ring]
        rows.sort(key=lambda r: (r.t_us, r.server, r.gen))
        return rows

    def series(self, name: str,
               server: int | None = None) -> list[tuple[float, float]]:
        """Per-interval values of one counter delta (or gauge)."""
        return [(row.t_us, row.counters.get(name,
                                            row.gauges.get(name, 0.0)))
                for row in self.rows(server)]

    def cumulative(self, name: str,
                   server: int | None = None) -> list[tuple[float, float]]:
        """Running totals of a delta counter — monotonic by
        construction (every delta is nonnegative)."""
        total = 0.0
        out = []
        for row in self.rows(server):
            total += row.counters.get(name, 0.0)
            out.append((row.t_us, total))
        return out

    def totals(self) -> dict[str, float]:
        """Every counter summed over all retained rows."""
        totals: dict[str, float] = {}
        for ring in self._rings.values():
            for row in ring:
                for name, value in row.counters.items():
                    totals[name] = totals.get(name, 0.0) + value
        return totals

    def tenant_totals(self) -> dict[str, dict[str, float]]:
        totals: dict[str, dict[str, float]] = {}
        for ring in self._rings.values():
            for row in ring:
                for tenant, counters in row.tenants.items():
                    book = totals.setdefault(tenant, {})
                    for name, value in counters.items():
                        book[name] = book.get(name, 0.0) + value
        return totals

    def gauge_max(self, name: str, server: int | None = None) -> float:
        values = [row.gauges[name] for row in self.rows(server)
                  if name in row.gauges]
        return max(values) if values else 0.0

    def gauge_last(self, name: str, server: int) -> float:
        ring = self._rings.get(server)
        if ring:
            for row in reversed(ring):
                if name in row.gauges:
                    return row.gauges[name]
        return 0.0

    def merge_from(self, other: "Timeline") -> None:
        for server in other.servers():
            self.add_rows(other.rows(server))
        self.dropped += other.dropped
        self.health.extend(other.health)

    @classmethod
    def merged(cls, parts: list["Timeline"]) -> "Timeline":
        total = cls(parts[0].interval_us if parts else 1.0)
        for part in parts:
            total.merge_from(part)
        return total

    def summary(self) -> dict:
        """Report fields for ``RunResult.perf_summary()['timeline']``."""
        totals = self.totals()
        n = sum(len(ring) for ring in self._rings.values())
        return {
            "interval_us": self.interval_us,
            "samples": n,
            "dropped": self.dropped,
            "servers": len(self._rings),
            "commits": int(totals.get("commits", 0)),
            "aborts": int(totals.get("aborts", 0)),
            "sheds": int(totals.get("sheds", 0)),
            "max_queue_depth": int(self.gauge_max("queue_depth")),
        }


class TimelineSampler:
    """Snapshots one process's live stats into delta rows.

    One instance per process (the whole run on sim/aio, one per worker
    on mp).  Per-engine counters come from each home's scheduler
    stats; process-scoped counters — transaction outcomes, WAL,
    placement, recovery, wire bytes, events — land on the *primary*
    row (the smallest owned home) so merging rows across processes
    never double-counts them.  ``tick`` emits one row per home every
    time the clock crosses an interval boundary; ``flush`` stamps the
    final partial interval.
    """

    def __init__(self, interval_us: float, metrics, schedulers: dict,
                 *, network=None, recovery=None, placement=None,
                 events_fired: Callable[[], int] | None = None,
                 gen: int = 0):
        if interval_us <= 0:
            raise ValueError(f"metrics interval must be positive, "
                             f"got {interval_us}")
        self.interval_us = float(interval_us)
        self.metrics = metrics
        self.schedulers = schedulers
        self.network = network
        self.recovery = recovery
        self.placement = placement
        self.events_fired = events_fired
        self.gen = gen
        self.primary = min(schedulers) if schedulers else 0
        self._due = self.interval_us
        self._outcome_idx = 0
        self._events_prev = 0
        self._prev: dict[object, dict[str, float]] = {}

    def tick(self, now_us: float) -> list[TimelineSample]:
        """Emit rows iff ``now_us`` crossed the next interval boundary.

        Cheap when not due (one float compare), so the sim backend can
        call it after every event.
        """
        if now_us < self._due:
            return []
        self._due = (math.floor(now_us / self.interval_us) + 1) \
            * self.interval_us
        return self.sample(now_us)

    def flush(self, now_us: float) -> list[TimelineSample]:
        """Stamp the final (possibly partial) interval at run end."""
        return self.sample(now_us, final=True)

    def sample(self, now_us: float,
               final: bool = False) -> list[TimelineSample]:
        rows = []
        for home in sorted(self.schedulers):
            stats = getattr(self.schedulers[home], "stats",
                            self.schedulers[home])
            counters = self._delta(("sched", home),
                                   stats.timeline_snapshot())
            row = TimelineSample(
                t_us=now_us, server=home, gen=self.gen,
                counters=counters,
                gauges={"queue_depth": float(stats.queue_depth),
                        "max_queue_depth": float(stats.max_queue_depth)},
                final=final)
            if home == self.primary:
                self._process_counters(row)
            rows.append(row)
        if not rows:
            # a process with no load homes still reports its
            # process-scoped activity (and proves liveness)
            row = TimelineSample(t_us=now_us, server=self.primary,
                                 gen=self.gen, final=final)
            self._process_counters(row)
            rows.append(row)
        return rows

    # -- delta bookkeeping -------------------------------------------------

    def _delta(self, key, current: dict[str, float]) -> dict[str, float]:
        prev = self._prev.get(key)
        self._prev[key] = current
        if prev is None:
            return {k: v for k, v in current.items() if v}
        return {k: v - prev.get(k, 0) for k, v in current.items()
                if v != prev.get(k, 0)}

    def _process_counters(self, row: TimelineSample) -> None:
        counters = row.counters
        outcomes = self.metrics.outcomes
        commits = aborts = 0
        for outcome in outcomes[self._outcome_idx:]:
            if outcome.committed:
                commits += 1
            else:
                aborts += 1
                reason = getattr(outcome.reason, "value", outcome.reason)
                key = f"aborts.{reason}"
                counters[key] = counters.get(key, 0) + 1
        self._outcome_idx = len(outcomes)
        if commits:
            counters["commits"] = commits
        if aborts:
            counters["aborts"] = aborts
        for key, source in (("recovery", self.recovery),
                            ("placement", self.placement),
                            ("network", self.network)):
            if source is not None:
                counters.update(self._delta(key,
                                            source.timeline_snapshot()))
        if self.events_fired is not None:
            events = self.events_fired()
            if events != self._events_prev:
                counters["events"] = events - self._events_prev
                self._events_prev = events
        open_loop = getattr(self.metrics, "open_loop", None)
        if open_loop is not None:
            prev = self._prev.get("tenants", {})
            current = open_loop.timeline_snapshot()
            self._prev["tenants"] = current
            for tenant, book in current.items():
                before = prev.get(tenant, {})
                delta = {k: v - before.get(k, 0) for k, v in book.items()
                         if v != before.get(k, 0)}
                if delta:
                    row.tenants[tenant] = delta
