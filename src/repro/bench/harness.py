"""Benchmark driver: build a database, run a workload, collect metrics.

The driver mirrors the paper's setup: each server pins one execution
engine which keeps up to ``concurrent`` transactions in flight (worker
coroutines); an aborted transaction retries after a short randomized
backoff — NO_WAIT systems retry at the client, and the abort *rate*
counts every attempt.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable

from .._util import make_rng
from ..analysis import ProcedureRegistry
from ..sim import AioCluster, Cluster, NetworkConfig, Sleep
from ..storage import Catalog
from ..txn import BaseExecutor, Database, ExecConfig, HistoryRecorder
from .metrics import APP_ABORTS, Metrics

BACKENDS = ("sim", "aio")
"""Execution backends a run can select: the discrete-event simulator
(deterministic, simulated microseconds) or the asyncio runtime (real
event loop, wall-clock microseconds)."""


@dataclass
class RunConfig:
    """One benchmark run's knobs."""

    n_partitions: int = 4
    concurrent_per_engine: int = 1
    horizon_us: float = 50_000.0
    """Stop admitting new transactions at this time — simulated
    microseconds on the sim backend, wall-clock microseconds on aio."""

    warmup_us: float = 5_000.0
    """Commits before this time are excluded from throughput."""

    seed: int = 7
    retry_aborts: bool = True
    retry_backoff_us: float = 10.0
    max_attempts: int = 50
    n_replicas: int = 1
    track_spans: bool = False
    record_history: bool = False
    network: NetworkConfig | None = None
    exec_config: ExecConfig | None = None
    homes: tuple[int, ...] | None = None
    """Engines that generate transactions (default: all)."""

    route_by_data: bool = False
    """Dispatch each transaction to the partition owning most of its
    data (requires the workload to implement ``route``/``rebind``).
    This is how the Fig. 7/8 deployments route client requests."""

    doorbell_batching: bool = False
    """Fuse same-destination one-sided verbs within a parallel round
    into one doorbell-batched round trip (see
    :attr:`~repro.sim.NetworkConfig.doorbell_batching`).  Lets the
    figure sweeps run with batching on/off without hand-building a
    :class:`~repro.sim.NetworkConfig`."""

    backend: str = "sim"
    """Execution backend: ``"sim"`` (discrete-event simulator, the
    seed-calibrated default) or ``"aio"`` (asyncio event loop over a
    real transport; throughput figures are then wall-clock)."""

    aio_transport: str = "loopback"
    """Transport for the aio backend: ``"loopback"`` (in-loop, hermetic)
    or ``"tcp"`` (real localhost sockets).  Ignored on the sim
    backend."""

    aio_run_timeout_s: float | None = None
    """Hang guard for the aio backend's run-to-quiescence loop.  None
    derives a bound from the wall-clock horizon (horizon plus two
    minutes of drain headroom), so long runs are never killed by the
    cluster's default cap.  Ignored on the sim backend."""

    def network_config(self) -> NetworkConfig:
        """The effective network model for this run.

        Starts from :attr:`network` (or defaults) and turns doorbell
        batching on when either knob requests it.
        """
        base = self.network or NetworkConfig()
        if self.doorbell_batching and not base.doorbell_batching:
            base = replace(base, doorbell_batching=True)
        return base


@dataclass
class RunResult:
    """Everything a single run produced."""

    metrics: Metrics
    database: Database
    history: HistoryRecorder | None
    config: RunConfig
    end_time: float

    @property
    def throughput(self) -> float:
        """Committed txns/sec in the measurement window."""
        window_end = max(self.config.horizon_us,
                         self.config.warmup_us + 1.0)
        return self.metrics.throughput(self.config.warmup_us, window_end)

    @property
    def abort_rate(self) -> float:
        return self.metrics.abort_rate()

    @property
    def wall_seconds(self) -> float:
        """Real time taken to drive this run.  On the sim backend this
        is perf health of the Python hot path, not a property of the
        simulated system; on the aio backend it *is* the run duration."""
        return self.metrics.wall_seconds

    @property
    def events_processed(self) -> int:
        """Simulator events (sim) / effects performed (aio) this run."""
        return self.metrics.events_processed

    @property
    def wall_clock_throughput(self) -> float:
        """Committed txns per *real* second of driving the run.

        The apples-to-apples figure across backends: all commits over
        the whole run (warmup and drain included) divided by total wall
        time.  On aio it tracks :attr:`throughput` (same clock, but
        that one is computed over the warmup-to-horizon window only);
        on sim it measures how fast the Python simulator churns, not
        the modeled system."""
        if self.metrics.wall_seconds <= 0.0:
            return 0.0
        return self.metrics.commits / self.metrics.wall_seconds

    def perf_summary(self) -> dict:
        """Hot-path health figures for BENCH_*.json / extra_info.

        ``end_time_us`` is on the backend's own clock; the ``sim_us``
        alias is only emitted for sim-backend runs so cross-backend
        report consumers cannot mistake wall time for simulated time.
        """
        summary = {
            "backend": self.config.backend,
            "wall_seconds": self.metrics.wall_seconds,
            "events_processed": self.metrics.events_processed,
            "events_per_wall_second": self.metrics.events_per_wall_second(),
            "wall_clock_throughput": self.wall_clock_throughput,
            "end_time_us": self.end_time,
        }
        if self.config.backend == "sim":
            summary["sim_us"] = self.end_time
        return summary


def make_cluster(config: RunConfig) -> Cluster | AioCluster:
    """Build the cluster for ``config``'s selected backend."""
    if config.backend == "sim":
        return Cluster(config.n_partitions, config.network_config())
    if config.backend == "aio":
        timeout = config.aio_run_timeout_s
        if timeout is None:
            timeout = config.horizon_us / 1e6 + 120.0
        return AioCluster(config.n_partitions, config.network_config(),
                          transport=config.aio_transport,
                          run_timeout_s=timeout)
    raise ValueError(f"unknown backend {config.backend!r} "
                     f"(expected one of {BACKENDS})")


def build_database(workload, catalog: Catalog, config: RunConfig,
                   ) -> tuple[Database, Cluster | AioCluster]:
    """Create the cluster, register procedures, and load the data."""
    cluster = make_cluster(config)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=config.n_replicas,
                  track_spans=config.track_spans)
    workload.populate(db.loader())
    return db, cluster


def run_benchmark(workload, executor: BaseExecutor,
                  config: RunConfig) -> RunResult:
    """Drive ``workload`` through ``executor`` until the horizon."""
    db = executor.db
    cluster = db.cluster
    metrics = Metrics()
    homes: Iterable[int] = (config.homes if config.homes is not None
                            else range(config.n_partitions))

    routed_queues: dict[int, deque] = {home: deque() for home in homes}

    def next_routed(home: int, rng: random.Random):
        """Data-affinity dispatch: serve a queued request routed to this
        engine, else generate until one routes here (foreign ones are
        queued for their owners; after a bounded number of tries the
        last request is executed here anyway, like an overloaded
        router shedding work)."""
        queue = routed_queues[home]
        if queue:
            return queue.popleft()
        request = workload.next_request(home, rng)
        for _ in range(20):
            target = workload.route(request, db.partition_of)
            if target == home or target not in routed_queues:
                break
            routed_queues[target].append(workload.rebind(request,
                                                         target))
            if queue:
                return queue.popleft()
            request = workload.next_request(home, rng)
        return workload.rebind(request, home)

    def worker(home: int, slot: int):
        rng = make_rng(config.seed, "worker", home, slot)
        while cluster.sim.now < config.horizon_us:
            if config.route_by_data:
                request = next_routed(home, rng)
            else:
                request = workload.next_request(home, rng)
            attempts = 0
            while True:
                outcome = yield from executor.execute(request)
                metrics.add(outcome)
                attempts += 1
                retryable = (not outcome.committed
                             and outcome.reason not in APP_ABORTS
                             and config.retry_aborts
                             and attempts < config.max_attempts
                             and cluster.sim.now < config.horizon_us)
                if not retryable:
                    break
                yield Sleep(rng.uniform(0.0, config.retry_backoff_us))

    for home in homes:
        for slot in range(config.concurrent_per_engine):
            cluster.engine(home).spawn(worker(home, slot))
    events_before = cluster.sim.events_fired
    wall_start = time.perf_counter()
    cluster.run()
    metrics.wall_seconds = time.perf_counter() - wall_start
    metrics.events_processed = cluster.sim.events_fired - events_before
    return RunResult(metrics=metrics, database=db,
                     history=executor.history, config=config,
                     end_time=cluster.sim.now)
