"""Benchmark driver: build a database, run a workload, collect metrics.

The driver mirrors the paper's setup: each server pins one execution
engine which keeps up to ``concurrent`` transactions in flight (worker
coroutines); an aborted transaction retries after a short randomized
backoff — NO_WAIT systems retry at the client, and the abort *rate*
counts every attempt.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable

from .._util import make_rng
from ..analysis import ProcedureRegistry
from ..sim import Cluster, NetworkConfig, Sleep
from ..storage import Catalog
from ..txn import BaseExecutor, Database, ExecConfig, HistoryRecorder
from .metrics import APP_ABORTS, Metrics


@dataclass
class RunConfig:
    """One benchmark run's knobs."""

    n_partitions: int = 4
    concurrent_per_engine: int = 1
    horizon_us: float = 50_000.0
    """Stop admitting new transactions at this simulated time."""

    warmup_us: float = 5_000.0
    """Commits before this time are excluded from throughput."""

    seed: int = 7
    retry_aborts: bool = True
    retry_backoff_us: float = 10.0
    max_attempts: int = 50
    n_replicas: int = 1
    track_spans: bool = False
    record_history: bool = False
    network: NetworkConfig | None = None
    exec_config: ExecConfig | None = None
    homes: tuple[int, ...] | None = None
    """Engines that generate transactions (default: all)."""

    route_by_data: bool = False
    """Dispatch each transaction to the partition owning most of its
    data (requires the workload to implement ``route``/``rebind``).
    This is how the Fig. 7/8 deployments route client requests."""

    doorbell_batching: bool = False
    """Fuse same-destination one-sided verbs within a parallel round
    into one doorbell-batched round trip (see
    :attr:`~repro.sim.NetworkConfig.doorbell_batching`).  Lets the
    figure sweeps run with batching on/off without hand-building a
    :class:`~repro.sim.NetworkConfig`."""

    def network_config(self) -> NetworkConfig:
        """The effective network model for this run.

        Starts from :attr:`network` (or defaults) and turns doorbell
        batching on when either knob requests it.
        """
        base = self.network or NetworkConfig()
        if self.doorbell_batching and not base.doorbell_batching:
            base = replace(base, doorbell_batching=True)
        return base


@dataclass
class RunResult:
    """Everything a single run produced."""

    metrics: Metrics
    database: Database
    history: HistoryRecorder | None
    config: RunConfig
    end_time: float

    @property
    def throughput(self) -> float:
        """Committed txns/sec in the measurement window."""
        window_end = max(self.config.horizon_us,
                         self.config.warmup_us + 1.0)
        return self.metrics.throughput(self.config.warmup_us, window_end)

    @property
    def abort_rate(self) -> float:
        return self.metrics.abort_rate()

    @property
    def wall_seconds(self) -> float:
        """Real time the simulator took to drive this run (perf health
        of the Python hot path, not a property of the simulated system)."""
        return self.metrics.wall_seconds

    @property
    def events_processed(self) -> int:
        """Simulator events fired during this run."""
        return self.metrics.events_processed

    def perf_summary(self) -> dict:
        """Hot-path health figures for BENCH_*.json / extra_info."""
        return {
            "wall_seconds": self.metrics.wall_seconds,
            "events_processed": self.metrics.events_processed,
            "events_per_wall_second": self.metrics.events_per_wall_second(),
            "sim_us": self.end_time,
        }


def build_database(workload, catalog: Catalog, config: RunConfig,
                   ) -> tuple[Database, Cluster]:
    """Create the cluster, register procedures, and load the data."""
    cluster = Cluster(config.n_partitions, config.network_config())
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=config.n_replicas,
                  track_spans=config.track_spans)
    workload.populate(db.loader())
    return db, cluster


def run_benchmark(workload, executor: BaseExecutor,
                  config: RunConfig) -> RunResult:
    """Drive ``workload`` through ``executor`` until the horizon."""
    db = executor.db
    cluster = db.cluster
    metrics = Metrics()
    homes: Iterable[int] = (config.homes if config.homes is not None
                            else range(config.n_partitions))

    routed_queues: dict[int, deque] = {home: deque() for home in homes}

    def next_routed(home: int, rng: random.Random):
        """Data-affinity dispatch: serve a queued request routed to this
        engine, else generate until one routes here (foreign ones are
        queued for their owners; after a bounded number of tries the
        last request is executed here anyway, like an overloaded
        router shedding work)."""
        queue = routed_queues[home]
        if queue:
            return queue.popleft()
        request = workload.next_request(home, rng)
        for _ in range(20):
            target = workload.route(request, db.partition_of)
            if target == home or target not in routed_queues:
                break
            routed_queues[target].append(workload.rebind(request,
                                                         target))
            if queue:
                return queue.popleft()
            request = workload.next_request(home, rng)
        return workload.rebind(request, home)

    def worker(home: int, slot: int):
        rng = make_rng(config.seed, "worker", home, slot)
        while cluster.sim.now < config.horizon_us:
            if config.route_by_data:
                request = next_routed(home, rng)
            else:
                request = workload.next_request(home, rng)
            attempts = 0
            while True:
                outcome = yield from executor.execute(request)
                metrics.add(outcome)
                attempts += 1
                retryable = (not outcome.committed
                             and outcome.reason not in APP_ABORTS
                             and config.retry_aborts
                             and attempts < config.max_attempts
                             and cluster.sim.now < config.horizon_us)
                if not retryable:
                    break
                yield Sleep(rng.uniform(0.0, config.retry_backoff_us))

    for home in homes:
        for slot in range(config.concurrent_per_engine):
            cluster.engine(home).spawn(worker(home, slot))
    events_before = cluster.sim.events_fired
    wall_start = time.perf_counter()
    cluster.run()
    metrics.wall_seconds = time.perf_counter() - wall_start
    metrics.events_processed = cluster.sim.events_fired - events_before
    return RunResult(metrics=metrics, database=db,
                     history=executor.history, config=config,
                     end_time=cluster.sim.now)
