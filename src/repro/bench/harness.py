"""Benchmark driver: build a database, run a workload, collect metrics.

The driver mirrors the paper's setup: each server pins one execution
engine which keeps up to ``concurrent`` transactions in flight (worker
coroutines).  Dispatch is scheduler-mediated (:mod:`repro.sched`):
every request passes through its engine's scheduler before executing,
and every attempt's outcome feeds back into it.  With the default
:class:`~repro.sched.FifoScheduler` this reproduces the historical
behavior bit-for-bit — an aborted transaction retries after a short
randomized backoff (NO_WAIT systems retry at the client, and the abort
*rate* counts every attempt); the conflict scheduler instead
serializes known-conflicting requests and sheds hopeless queues.
"""

from __future__ import annotations

import dataclasses
import random
import sys
import tempfile
import time
import uuid
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from .._util import make_rng
from ..analysis import ProcedureRegistry
from ..placement import (AccessTelemetry, MigrationExecutor,
                         PlacementController, PlacementSpec, PlacementStats,
                         as_placement_spec, controller_loop,
                         install_flip_handler, lease_controller_loop)
from ..sched import SchedAction, Scheduler, SchedulerSpec, as_spec
from ..sim import (AioCluster, Cluster, MpRunSpec, NetworkConfig, Sleep,
                   effective_mp_workers, run_mp_workers)
from ..sim import mp_runtime
from ..storage import Catalog, WalSpec, as_wal_spec
from ..txn import (BaseExecutor, Database, ExecConfig, HistoryRecorder,
                   recover_database, recovery_program)
from ..txn.common import seed_txn_ids
from .metrics import APP_ABORTS, Metrics

BACKENDS = ("sim", "aio", "mp")
"""Execution backends a run can select: the discrete-event simulator
(deterministic, simulated microseconds), the asyncio runtime (real
event loop, wall-clock microseconds), or the multiprocess runtime (one
OS process per server over a real wire codec, wall-clock
microseconds)."""


@dataclass
class RunConfig:
    """One benchmark run's knobs."""

    n_partitions: int = 4
    concurrent_per_engine: int = 1
    horizon_us: float = 50_000.0
    """Stop admitting new transactions at this time — simulated
    microseconds on the sim backend, wall-clock microseconds on aio."""

    warmup_us: float = 5_000.0
    """Commits before this time are excluded from throughput."""

    seed: int = 7
    retry_aborts: bool = True
    retry_backoff_us: float = 10.0
    max_attempts: int = 50
    n_replicas: int = 1
    track_spans: bool = False
    record_history: bool = False
    network: NetworkConfig | None = None
    exec_config: ExecConfig | None = None
    homes: tuple[int, ...] | None = None
    """Engines that generate transactions (default: all)."""

    route_by_data: bool = False
    """Dispatch each transaction to the partition owning most of its
    data (requires the workload to implement ``route``/``rebind``).
    This is how the Fig. 7/8 deployments route client requests."""

    doorbell_batching: bool = False
    """Fuse same-destination one-sided verbs within a parallel round
    into one doorbell-batched round trip (see
    :attr:`~repro.sim.NetworkConfig.doorbell_batching`).  Lets the
    figure sweeps run with batching on/off without hand-building a
    :class:`~repro.sim.NetworkConfig`."""

    backend: str = "sim"
    """Execution backend: ``"sim"`` (discrete-event simulator, the
    seed-calibrated default) or ``"aio"`` (asyncio event loop over a
    real transport; throughput figures are then wall-clock)."""

    aio_transport: str = "loopback"
    """Transport for the aio backend: ``"loopback"`` (in-loop, hermetic)
    or ``"tcp"`` (real localhost sockets).  Ignored on the sim
    backend."""

    aio_run_timeout_s: float | None = None
    """Hang guard for the aio backend's run-to-quiescence loop.  None
    derives a bound from the wall-clock horizon (horizon plus two
    minutes of drain headroom), so long runs are never killed by the
    cluster's default cap.  Ignored on the sim backend."""

    mp_workers: int | None = None
    """Worker-process count for the mp backend.  None (default) runs
    one process per server — the paper-faithful topology; smaller
    values pack servers onto workers round-robin (``server %
    workers``).  Ignored on other backends."""

    mp_run_timeout_s: float | None = None
    """Hang guard for the mp backend: how long the parent waits for
    every worker to report before tearing the fleet down.  None derives
    a bound from the wall-clock horizon plus a minute of build/drain
    headroom."""

    mp_transport: str = "tcp"
    """Carrier for cross-worker frames on the mp backend: ``"tcp"``
    (localhost sockets, one connection per ordered worker pair) or
    ``"shm"`` (lock-free shared-memory rings polled without kernel
    involvement — the fast wire path; see
    :mod:`repro.sim.shm_transport`).  Ignored on other backends."""

    mp_codec: str = "packed"
    """Frame encoding for the mp backend: ``"packed"`` (fixed-format
    struct frames for the hot verbs, pickle for everything else) or
    ``"pickle"`` (every frame pickled — the pre-fast-path behavior,
    kept as an escape hatch and as the byte-accounting baseline).
    Commit/abort decisions are codec-independent (asserted by the
    conformance suite)."""

    mp_shm_ring_bytes: int | None = None
    """Data capacity of each shm ring (``mp_transport="shm"`` only).
    None uses the default (1 MiB per ordered worker pair); raise it if
    a run legitimately ships frames larger than the ring."""

    mp_profile_dir: str | None = None
    """When set, every mp worker cProfiles its serve loop and dumps
    ``worker-<id>.prof`` into this directory (the bench CLI's
    ``--profile`` sets it, plus ``parent.prof`` for the parent)."""

    wal: WalSpec | str | None = "off"
    """Commit-path durability: ``"off"`` (bit-identical to the
    historical behavior — the FSM logs nothing), ``"fsync"`` (sync
    every append), ``"group"`` (group commit: batched fsyncs, but the
    coordinator's decision record always syncs), or a full
    :class:`~repro.storage.WalSpec`."""

    wal_dir: str | None = None
    """Directory for the per-server ``server-<id>.wal`` files.  None
    lets the harness assign a fresh temp directory per run (recorded
    back into this field so mp workers and restarts share it)."""

    wal_group_size: int = 8
    """Appends per fsync under ``wal="group"``."""

    mp_recovery: bool = False
    """Restart dead mp workers instead of failing the run: the parent
    respawns the worker, which replays its servers' WALs, resolves
    in-doubt transactions by coordinator query / presumed abort, and
    rejoins the fleet.  Requires a durable ``wal`` mode."""

    mp_max_restarts: int = 1
    """Total worker restarts the parent will perform per run before
    treating a death as fatal (``mp_recovery`` only)."""

    mp_run_id: str | None = None
    """Stable id naming this run's shared-memory rings
    (``repro-<run_id>-...``).  None lets the parent assign one per run;
    deterministic names let a respawned worker reclaim and recreate its
    predecessor's rings, and let tests assert nothing leaked."""

    mp_chaos_kill_worker: int | None = None
    """Chaos knob: SIGKILL this worker id mid-run (recovery tests)."""

    mp_chaos_kill_after_s: float = 0.5
    """Wall-clock delay before the chaos kill fires."""

    scheduler: SchedulerSpec | str | None = None
    """Cross-transaction scheduling policy: ``None``/``"fifo"`` (admit
    everything immediately — bit-identical to the historical raw retry
    loop), ``"conflict"`` (serialize conflict classes, see
    :mod:`repro.sched`), or a full :class:`~repro.sched.SchedulerSpec`.
    Each engine builds its own scheduler instance from this picklable
    value, so the knob works unchanged on sim/aio/mp."""

    placement: PlacementSpec | str | None = None
    """Data-placement policy: ``None``/``"static"`` (the layout the
    setup built never changes — bit-identical to the historical
    behavior), ``"adaptive"`` (access telemetry feeds a periodic
    re-partition whose top-K record moves migrate live, see
    :mod:`repro.placement`), or a full
    :class:`~repro.placement.PlacementSpec`.  Picklable, so the knob
    works unchanged on sim/aio/mp (on mp the controller runs in the
    worker owning its home engine and flips routing cluster-wide)."""

    arrivals: "object | str | None" = None
    """Open-loop traffic: ``None`` (closed-loop workers — bit-identical
    to the historical behavior), an arrival-process name from
    :data:`repro.traffic.ARRIVAL_PROCESSES` (``"poisson"``,
    ``"diurnal"``, ``"flash"``, ``"tenants"``), or a full
    :class:`~repro.traffic.ArrivalSpec`.  When set, requests enter at
    generated timestamps regardless of completion and latency is
    measured from the *scheduled* arrival (coordinated-omission-safe);
    see :mod:`repro.traffic`.  Picklable, so the knob works unchanged
    on sim/aio/mp (each mp worker regenerates its homes' schedules
    deterministically)."""

    offered_load: float | None = None
    """Aggregate open-loop arrival rate in txns/sec (overrides the
    arrival spec's default; ignored when :attr:`arrivals` is None)."""

    deadline_us: float | None = None
    """Default SLO deadline from scheduled arrival to commit (overrides
    the arrival spec's default; ignored when :attr:`arrivals` is
    None)."""

    trace: bool = False
    """Per-phase span tracing (:mod:`repro.obs`).  Off (default) keeps
    every backend on the module-level no-op tracer — zero allocation,
    bit-identical event streams, byte-identical wire frames.  On, each
    process records sampled transactions' phase spans into preallocated
    rings, harvested into ``metrics.trace`` at quiescence (mp workers
    ship theirs to the parent like any other metric)."""

    trace_sample: int = 1
    """Trace every Nth transaction per engine (1 = all).  Sampling is
    deterministic (a per-tracer counter), so repeated runs trace the
    same population."""

    trace_out: str | None = None
    """When tracing, write the merged spans to this path as Chrome
    ``trace_event`` JSON (loadable in ``ui.perfetto.dev``)."""

    metrics_interval: float | None = None
    """Live metrics timeline (:mod:`repro.obs.timeline`): sample
    period in microseconds — simulated µs on the sim backend (pure
    bookkeeping; the event stream stays bit-identical), wall-clock µs
    on aio/mp.  None (default) disables the timeline: no sampler, no
    watchdog, no per-event probe."""

    metrics_ring: int = 4096
    """Timeline samples retained per server (oldest dropped, counted)."""

    health_rules: tuple | None = None
    """Watchdog rules (:class:`repro.obs.HealthRule` tuple) evaluated
    each interval; None uses :func:`repro.obs.default_rules`.  Only
    consulted when :attr:`metrics_interval` is set."""

    watchdog_abort: bool = False
    """Let a *fatal* health rule abort a wedged run early by raising
    :class:`repro.obs.WatchdogAbort` out of the run loop."""

    metrics_port: int | None = None
    """Serve live Prometheus text exposition on
    ``http://127.0.0.1:<port>/metrics`` for the duration of the run
    (aio/mp only — the sim backend has no wall clock to scrape
    against).  0 binds an ephemeral port."""

    metrics_csv: str | None = None
    """Write the merged timeline to this path as wide-format CSV at
    the end of the run."""

    metrics_watch: bool = False
    """Print the terminal sparkline dashboard
    (:func:`repro.obs.render_watch`) when the run finishes."""

    def arrival_spec(self):
        """The effective open-loop arrival process for this run, or
        None for the closed-loop default.  A string/spec
        :attr:`arrivals` picks up the :attr:`offered_load` and
        :attr:`deadline_us` overrides."""
        from ..traffic import as_arrival_spec  # lazy: traffic imports
        spec = as_arrival_spec(self.arrivals)  # bench.metrics
        if spec is None:
            return None
        overrides = {}
        if self.offered_load is not None:
            overrides["offered_load"] = self.offered_load
        if self.deadline_us is not None:
            overrides["deadline_us"] = self.deadline_us
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
        return spec

    def wal_spec(self) -> WalSpec:
        """The effective durability policy for this run.

        A string/None :attr:`wal` picks up :attr:`wal_dir` and
        :attr:`wal_group_size`; a full :class:`WalSpec` is respected
        as-is except that a missing directory is filled from
        :attr:`wal_dir`.
        """
        spec = as_wal_spec(self.wal)
        if isinstance(self.wal, str) or self.wal is None:
            spec = dataclasses.replace(spec, dir=self.wal_dir,
                                       group_size=self.wal_group_size)
        elif spec.dir is None and self.wal_dir is not None:
            spec = dataclasses.replace(spec, dir=self.wal_dir)
        return spec

    def network_config(self) -> NetworkConfig:
        """The effective network model for this run.

        Starts from :attr:`network` (or defaults) and turns doorbell
        batching on when either knob requests it.
        """
        base = self.network or NetworkConfig()
        if self.doorbell_batching and not base.doorbell_batching:
            base = replace(base, doorbell_batching=True)
        return base


@dataclass
class RunResult:
    """Everything a single run produced."""

    metrics: Metrics
    database: Database
    history: HistoryRecorder | None
    config: RunConfig
    end_time: float

    @property
    def throughput(self) -> float:
        """Committed txns/sec in the measurement window."""
        window_end = max(self.config.horizon_us,
                         self.config.warmup_us + 1.0)
        return self.metrics.throughput(self.config.warmup_us, window_end)

    @property
    def abort_rate(self) -> float:
        return self.metrics.abort_rate()

    @property
    def wall_seconds(self) -> float:
        """Real time taken to drive this run.  On the sim backend this
        is perf health of the Python hot path, not a property of the
        simulated system; on the aio backend it *is* the run duration."""
        return self.metrics.wall_seconds

    @property
    def events_processed(self) -> int:
        """Simulator events (sim) / effects performed (aio) this run."""
        return self.metrics.events_processed

    @property
    def wall_clock_throughput(self) -> float:
        """Committed txns per *real* second of driving the run.

        The apples-to-apples figure across backends: all commits over
        the whole run (warmup and drain included) divided by total wall
        time.  On aio it tracks :attr:`throughput` (same clock, but
        that one is computed over the warmup-to-horizon window only);
        on sim it measures how fast the Python simulator churns, not
        the modeled system."""
        if self.metrics.wall_seconds <= 0.0:
            return 0.0
        return self.metrics.commits / self.metrics.wall_seconds

    def perf_summary(self) -> dict:
        """Hot-path health figures for BENCH_*.json / extra_info.

        ``end_time_us`` is on the backend's own clock; the ``sim_us``
        alias is only emitted for sim-backend runs so cross-backend
        report consumers cannot mistake wall time for simulated time.
        """
        summary = {
            "backend": self.config.backend,
            "wall_seconds": self.metrics.wall_seconds,
            "events_processed": self.metrics.events_processed,
            "events_per_wall_second": self.metrics.events_per_wall_second(),
            "wall_clock_throughput": self.wall_clock_throughput,
            "end_time_us": self.end_time,
        }
        if self.config.backend == "sim":
            summary["sim_us"] = self.end_time
        if self.config.backend == "mp":
            summary["workers"] = effective_mp_workers(self.config)
        sched = self.metrics.scheduler_summary()
        if sched is not None:
            summary["scheduler"] = sched.summary()
        if self.metrics.placement_stats is not None:
            summary["placement"] = self.metrics.placement_stats.summary()
        recovery = self.metrics.recovery_stats
        if recovery is not None and recovery.any_activity:
            summary["recovery"] = recovery.summary()
        if self.metrics.open_loop is not None:
            summary["open_loop"] = self.metrics.open_loop.summary()
        traffic = self.traffic_summary()
        if traffic is not None:
            summary["traffic"] = traffic
        trace = self.metrics.trace
        if trace is not None:
            from ..obs.export import exemplar_summary  # lazy: obs is
            summary["trace"] = trace.summary()         # optional wiring
            exemplars = exemplar_summary(trace)
            if exemplars:
                summary["exemplars"] = exemplars
        timeline = self.metrics.timeline
        if timeline is not None:
            summary["timeline"] = timeline.summary()
            summary["health"] = [event.as_dict()
                                 for event in timeline.health]
        return summary

    def traffic_summary(self) -> dict | None:
        """Fig.-style traffic breakdown: wire bytes by transaction
        phase (lock/validate/replicate/commit/...), cluster-wide and
        per issuing executor.  None when nothing crossed the wire (or
        no database rode along to read the counters from)."""
        if self.database is None:
            return None
        stats = self.database.cluster.network.stats
        if not stats.bytes_by_kind:
            return None
        return {
            "bytes_by_phase": stats.bytes_by_phase(),
            "bytes_by_server_phase": {
                str(server): phases for server, phases
                in stats.bytes_by_server_phase().items()},
        }


SUMMARY_HOOK: "Callable[[RunResult], None] | None" = None
"""When set, every completed run (single-process and mp alike) is
passed through this hook before being returned.  The experiments and
bench CLIs install a collector here to implement ``--summary-json``
without threading a sink through every figure function."""


def install_summary_json(args: list[str],
                         ) -> "tuple[list[str], Callable[[], None]]":
    """CLI helper behind every driver's ``--summary-json PATH`` flag.

    Strips the flag from ``args``, installs a :data:`SUMMARY_HOOK`
    collector, and returns ``(rest_args, flush)``; ``flush()`` —
    call it when the sweep ends, ideally in a ``finally`` — writes the
    collected per-run ``perf_summary()`` dicts as one JSON array and
    uninstalls the hook.  Without the flag, ``flush`` is a no-op.
    """
    path: str | None = None
    rest: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--summary-json":
            if i + 1 >= len(args):
                raise SystemExit("--summary-json needs a path")
            path = args[i + 1]
            i += 2
            continue
        if arg.startswith("--summary-json="):
            path = arg.split("=", 1)[1]
            i += 1
            continue
        rest.append(arg)
        i += 1
    if path is None:
        return rest, lambda: None
    collected: list[dict] = []

    def hook(result: RunResult) -> None:
        collected.append(result.perf_summary())

    global SUMMARY_HOOK
    SUMMARY_HOOK = hook

    def flush() -> None:
        global SUMMARY_HOOK
        SUMMARY_HOOK = None
        import json
        with open(path, "w") as fh:
            json.dump(collected, fh, indent=1)
        print(f"(wrote {len(collected)} run summaries to {path})")

    return rest, flush


def _finish_run(result: RunResult) -> RunResult:
    """Common run epilogue: trace/timeline export and the summary hook."""
    config = result.config
    trace = result.metrics.trace
    if trace is not None and trace.dropped > 0:
        print(f"warning: {trace.dropped} trace span(s) dropped (ring "
              f"capacity exceeded) — the trace is truncated; raise the "
              f"tracer ring capacity or sample with trace_sample",
              file=sys.stderr)
    if config.trace and config.trace_out and trace is not None:
        from ..obs.export import write_trace_json  # lazy: optional
        write_trace_json(trace, config.trace_out)
    timeline = result.metrics.timeline
    if timeline is not None:
        from ..obs.expose import render_watch, write_timeline_csv
        if config.metrics_csv:
            write_timeline_csv(timeline, config.metrics_csv)
        if config.metrics_watch:
            print(render_watch(timeline, timeline.health))
    if SUMMARY_HOOK is not None:
        SUMMARY_HOOK(result)
    return result


@dataclass
class _TimelineWiring:
    """Live-run observability state `_install_timeline` hands back."""

    timeline: object
    sampler: object
    watchdog: object
    http: object | None = None


def _install_timeline(config: RunConfig, cluster, db, metrics: Metrics,
                      wiring) -> "_TimelineWiring | None":
    """Attach the metrics timeline sampler + health watchdog to a
    single-process (sim/aio) run.  Returns None when the timeline is
    off — nothing is allocated and no hook is installed."""
    if not config.metrics_interval:
        return None
    from ..obs.health import HealthWatchdog
    from ..obs.timeline import Timeline, TimelineSampler
    timeline = Timeline(config.metrics_interval,
                        ring=config.metrics_ring)
    sampler = TimelineSampler(
        config.metrics_interval, metrics, wiring.schedulers,
        network=cluster.network.stats, recovery=db.recovery,
        placement=wiring.placement_stats,
        events_fired=lambda: cluster.sim.events_fired)
    watchdog = HealthWatchdog(rules=config.health_rules,
                              interval_us=config.metrics_interval,
                              abort=config.watchdog_abort)

    def tick(now_us: float) -> None:
        rows = sampler.tick(now_us)
        if rows:
            timeline.add_rows(rows)
            watchdog.ingest(rows)
            watchdog.evaluate(now_us)

    obs = _TimelineWiring(timeline, sampler, watchdog)
    if config.backend == "sim":
        # pure bookkeeping after each fired event: bit-identical
        cluster.sim.probe = tick
    else:
        cluster.on_tick = lambda: tick(cluster.sim.now)
        cluster.tick_interval_s = config.metrics_interval / 1e6
        if config.metrics_port is not None:
            from ..obs.expose import MetricsHttpServer, to_prometheus
            obs.http = MetricsHttpServer(
                config.metrics_port,
                lambda: to_prometheus(timeline, watchdog.events))
            obs.http.start()
    return obs


def _detach_timeline(config: RunConfig, cluster,
                     obs: "_TimelineWiring") -> None:
    if config.backend == "sim":
        cluster.sim.probe = None
    else:
        cluster.on_tick = None
    if obs.http is not None:
        obs.http.stop()


def _harvest_timeline(obs: "_TimelineWiring", metrics: Metrics,
                      now_us: float) -> None:
    """Flush the final partial interval and hang the merged timeline
    (health events included) off the run's metrics."""
    rows = obs.sampler.flush(now_us)
    if rows:
        obs.timeline.add_rows(rows)
        obs.watchdog.ingest(rows)
        obs.watchdog.evaluate(now_us, allow_abort=False)
    obs.timeline.health = obs.watchdog.events
    metrics.timeline = obs.timeline


def _watchdog_event(exc: BaseException):
    """The HealthEvent behind a watchdog abort, or None."""
    from ..obs.health import WatchdogAbort
    return exc.event if isinstance(exc, WatchdogAbort) else None


def make_cluster(config: RunConfig):
    """Build the cluster for ``config``'s selected backend."""
    if config.backend == "sim":
        return Cluster(config.n_partitions, config.network_config())
    if config.backend == "aio":
        timeout = config.aio_run_timeout_s
        if timeout is None:
            timeout = config.horizon_us / 1e6 + 120.0
        return AioCluster(config.n_partitions, config.network_config(),
                          transport=config.aio_transport,
                          run_timeout_s=timeout)
    if config.backend == "mp":
        # inside a worker process this is that worker's live cluster;
        # in the parent it is an inert template for inspection
        return mp_runtime.cluster_for_config(config.n_partitions,
                                             config.network_config())
    raise ValueError(f"unknown backend {config.backend!r} "
                     f"(expected one of {BACKENDS})")


def assign_wal_dir(config: RunConfig) -> None:
    """Give a durability-enabled run a WAL directory if it lacks one.

    Recorded back into ``config.wal_dir`` on purpose: the same config
    object rides inside ``MpRunSpec.args``, so every worker process —
    and every *restarted* worker — opens its logs in the directory the
    first build chose.
    """
    if config.wal_dir is None and as_wal_spec(config.wal).enabled:
        config.wal_dir = tempfile.mkdtemp(prefix="repro-wal-")


def build_database(workload, catalog: Catalog, config: RunConfig):
    """Create the cluster, register procedures, and load the data."""
    assign_wal_dir(config)
    cluster = make_cluster(config)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=config.n_replicas,
                  track_spans=config.track_spans,
                  wal=config.wal_spec())
    workload.populate(db.loader())
    return db, cluster


def run_benchmark(workload, executor: BaseExecutor,
                  config: RunConfig,
                  mp_spec: MpRunSpec | None = None) -> RunResult:
    """Drive ``workload`` through ``executor`` until the horizon.

    On the mp backend the run executes in worker processes, each
    rebuilding the database from ``mp_spec`` (the setups layer attaches
    one to every run it builds); the parent-side ``executor`` supplies
    only the result schema.
    """
    db = executor.db
    cluster = db.cluster
    if config.backend == "mp" and mp_runtime.current_worker_cluster() is None:
        if mp_spec is None:
            raise ValueError(
                "backend='mp' runs re-create their database inside worker "
                "processes; pass mp_spec=MpRunSpec(builder, ...) with a "
                "module-level builder, or use the setups layer "
                "(make_tpcc_run(...).run()) which attaches one")
        return run_mp_benchmark(mp_spec, config, database=db)
    metrics = Metrics()
    homes = list(config.homes if config.homes is not None
                 else range(config.n_partitions))
    wiring = _spawn_load(workload, executor, config, cluster, metrics,
                         homes)
    obs = _install_timeline(config, cluster, db, metrics, wiring)
    events_before = cluster.sim.events_fired
    wall_start = time.perf_counter()
    try:
        cluster.run()
    except Exception as exc:
        if obs is None or _watchdog_event(exc) is None:
            raise
        # the watchdog killed a wedged run: keep the partial metrics,
        # the event itself rides perf_summary()["health"]
    finally:
        if obs is not None:
            _detach_timeline(config, cluster, obs)
    metrics.wall_seconds = time.perf_counter() - wall_start
    metrics.events_processed = cluster.sim.events_fired - events_before
    metrics.scheduler_stats = {home: sched.stats
                               for home, sched in wiring.schedulers.items()}
    metrics.placement_stats = wiring.placement_stats
    metrics.recovery_stats = db.recovery
    if config.trace:
        metrics.trace = db.tracer.harvest()
    if obs is not None:
        _harvest_timeline(obs, metrics, cluster.sim.now)
    return _finish_run(RunResult(metrics=metrics, database=db,
                                 history=executor.history, config=config,
                                 end_time=cluster.sim.now))


def make_schedulers(executor: BaseExecutor, config: RunConfig,
                    homes: Iterable[int]) -> dict[int, Scheduler]:
    """One scheduler per engine, built from the run's picklable spec.

    The conflict-class fingerprint comes from the executor's
    pre-execution read/write-set estimate
    (:meth:`~repro.txn.executor.BaseExecutor.estimate_rw_sets`).
    """
    spec = as_spec(config.scheduler)

    def fingerprint(request):
        reads, writes = executor.estimate_rw_sets(request)
        return tuple(writes | reads) if spec.include_reads \
            else tuple(writes)

    return {home: spec.build(fingerprint) for home in homes}


@dataclass
class _LoadWiring:
    """What `_spawn_load` hands back for post-run stats collection."""

    schedulers: dict[int, Scheduler]
    placement_stats: PlacementStats | None = None
    telemetry: dict[int, AccessTelemetry] | None = None


def _spawn_load(workload, executor: BaseExecutor, config: RunConfig,
                cluster, metrics: Metrics,
                homes: Iterable[int]) -> _LoadWiring:
    """Spawn the worker coroutines that generate load on ``homes`` (a
    subset on mp workers, all engines elsewhere).  With
    ``config.arrivals`` set, open-loop dispatchers replace the
    closed-loop workers: requests enter on a pre-generated arrival
    schedule regardless of completion (see :mod:`repro.traffic`).

    Every request passes through its engine's scheduler before any
    effect is emitted — admission, class serialization, and shedding
    happen engine-side, which is why the same logic runs unchanged on
    all three backends.  Returns the per-engine schedulers (and, on
    adaptive runs, the placement wiring) so the caller can surface
    their stats after the run drains.

    With ``config.placement`` adaptive, this is also where the
    placement loop attaches: committed outcomes feed per-engine
    :class:`~repro.placement.AccessTelemetry`, the ``placement_flip``
    RPC is installed on this process's database, and — if this process
    drives the controller's home engine — the observe/plan/migrate
    controller loop is spawned alongside the load.
    """
    db = executor.db
    tracer = None
    if config.trace:
        from ..obs.tracer import Tracer  # lazy: obs is optional wiring
        tracer = Tracer(sample_every=config.trace_sample)
        db.tracer = tracer  # shadows the class-level no-op
        for server in cluster.servers:
            runtime = getattr(server.engine, "runtime", None)
            if runtime is not None:
                runtime.tracer = tracer
    schedulers = make_schedulers(executor, config, homes)
    arrivals = config.arrival_spec()
    if arrivals is not None and config.route_by_data:
        raise ValueError("open-loop arrivals and route_by_data cannot "
                         "be combined: the dispatcher issues requests "
                         "on their scheduled home")
    placement = as_placement_spec(config.placement)
    placement_stats: PlacementStats | None = None
    telemetry: dict[int, AccessTelemetry] | None = None
    if placement.adaptive:
        if (getattr(cluster, "owns", None) is None
                and placement.controller_home not in homes):
            # only mp workers legitimately drive a homes subset (the
            # controller then lives in the worker owning its engine);
            # a single-process run that excludes it would silently
            # collect telemetry and never adapt
            raise ValueError(
                f"adaptive placement needs its controller engine "
                f"{placement.controller_home} among the load homes "
                f"{sorted(homes)}; set PlacementSpec.controller_home "
                f"to one of them")
        placement_stats = PlacementStats(placement="adaptive")
        install_flip_handler(db, placement, placement_stats)
        executor.record_footprints = True
        telemetry = {home: AccessTelemetry(
                         sample_every=placement.sample_every,
                         max_samples=placement.max_samples)
                     for home in homes}
    routed_queues: dict[int, deque] = {home: deque() for home in homes}

    def next_routed(home: int, rng: random.Random):
        """Data-affinity dispatch: serve a queued request routed to this
        engine, else generate until one routes here (foreign ones are
        queued for their owners; after a bounded number of tries the
        last request is executed here anyway, like an overloaded
        router shedding work)."""
        queue = routed_queues[home]
        if queue:
            return queue.popleft()
        request = workload.next_request(home, rng)
        for _ in range(20):
            target = workload.route(request, db.partition_of)
            if target == home or target not in routed_queues:
                break
            routed_queues[target].append(workload.rebind(request,
                                                         target))
            if queue:
                return queue.popleft()
            request = workload.next_request(home, rng)
        return workload.rebind(request, home)

    def worker(home: int, slot: int):
        rng = make_rng(config.seed, "worker", home, slot)
        scheduler = schedulers[home]
        while cluster.sim.now < config.horizon_us:
            if config.route_by_data:
                request = next_routed(home, rng)
            else:
                request = workload.next_request(home, rng)
            trace = tracer.new_trace(home) if tracer is not None else 0
            t_admit = cluster.sim.now
            decision = scheduler.admit(request, cluster.sim.now)
            while decision.action is SchedAction.DEFER:
                yield decision.wait_effect()
                decision = scheduler.readmit(request, decision,
                                             cluster.sim.now)
            if decision.action is SchedAction.SHED:
                if trace:
                    tracer.span(trace, 0, 0, home, "shed", t_admit,
                                cluster.sim.now, "shed")
                continue  # typed reason already recorded in the stats
            if trace and cluster.sim.now > t_admit:
                tracer.span(trace, 0, 0, home, "queue_wait", t_admit,
                            cluster.sim.now)
            attempts = 0
            while True:
                outcome = yield from executor.execute(request, trace=trace,
                                                      attempt=attempts)
                metrics.add(outcome)
                if telemetry is not None and outcome.committed:
                    telemetry[home].observe(outcome, cluster.sim.now)
                attempts += 1
                retryable = (not outcome.committed
                             and outcome.reason not in APP_ABORTS
                             and config.retry_aborts
                             and attempts < config.max_attempts
                             and cluster.sim.now < config.horizon_us)
                scheduler.on_outcome(decision, outcome, cluster.sim.now,
                                     will_retry=retryable)
                if not retryable:
                    break
                yield Sleep(scheduler.retry_backoff_us(
                    decision, rng, config.retry_backoff_us))
            if trace:
                tracer.exemplar(f"home-{home}", trace,
                                cluster.sim.now - t_admit)

    if arrivals is not None:
        from ..traffic import spawn_open_loop  # lazy: avoids a cycle
        spawn_open_loop(workload, executor, config, arrivals, cluster,
                        metrics, homes, schedulers, telemetry)
    else:
        for home in homes:
            for slot in range(config.concurrent_per_engine):
                cluster.engine(home).spawn(worker(home, slot))
    if placement.adaptive:
        if getattr(cluster, "owns", None) is None:
            # single process: pin the loop to the controller engine —
            # keeps the sim backend's event stream (and every figure)
            # bit-identical to the pre-election behavior
            if placement.controller_home in homes:
                migrator = MigrationExecutor(db, placement.controller_home,
                                             placement, placement_stats)
                cluster.engine(placement.controller_home).spawn(
                    controller_loop(db, telemetry, placement,
                                    PlacementController(placement),
                                    migrator, placement_stats,
                                    config.horizon_us))
        elif homes:
            # mp: every worker runs a lease-election candidate instead
            # of pinning the controller to whichever worker owns
            # controller_home — the role survives that worker's death
            candidate_home = min(homes)
            migrator = MigrationExecutor(db, candidate_home, placement,
                                         placement_stats)
            cluster.engine(candidate_home).spawn(
                lease_controller_loop(db, telemetry, placement,
                                      PlacementController(placement),
                                      migrator, placement_stats,
                                      config.horizon_us, cluster))
    return _LoadWiring(schedulers, placement_stats, telemetry)


# -- the multiprocess path ----------------------------------------------------

def mp_benchmark_driver(run_obj, cluster, worker_id: int):
    """Per-worker half of :func:`run_mp_benchmark`.

    Runs inside each worker process: namespaces transaction ids (by
    worker *and* restart generation, so a respawn never reuses its
    predecessor's ids), replays this worker's WALs when it is a
    restart, spawns the benchmark load for the servers this worker
    owns, and returns the ``finalize`` hook evaluated at local
    quiescence.
    """
    namespace = getattr(cluster, "txn_namespace", None)
    seed_txn_ids(namespace() if namespace is not None else worker_id)
    config: RunConfig = run_obj.config
    if getattr(cluster, "generation", 0) > 0:
        db = run_obj.executor.db
        in_doubt = recover_database(db)
        if in_doubt:
            # chase coordinators for the prepared-but-undecided txns;
            # unreachable coordinators resolve by presumed abort
            home = cluster.owned_servers()[0]
            cluster.engine(home).spawn(recovery_program(db, in_doubt))
    metrics = Metrics()
    homes = [h for h in (config.homes if config.homes is not None
                         else range(config.n_partitions))
             if cluster.owns(h)]
    wiring = _spawn_load(run_obj.workload, run_obj.executor, config,
                         cluster, metrics, homes)
    if config.metrics_interval:
        from ..obs.timeline import TimelineSampler
        # rows ship to the parent live (metrics_sample messages) so
        # the merged timeline survives this worker being killed; the
        # finalize payload deliberately carries no timeline
        cluster.metrics_sampler = TimelineSampler(
            config.metrics_interval, metrics, wiring.schedulers,
            network=cluster.network.stats,
            recovery=run_obj.executor.db.recovery,
            placement=wiring.placement_stats,
            events_fired=lambda: cluster.sim.events_fired,
            gen=getattr(cluster, "generation", 0))
        cluster.metrics_interval_s = config.metrics_interval / 1e6

    def finalize() -> dict:
        metrics.wall_seconds = cluster.sim.now / 1e6
        metrics.events_processed = cluster.sim.events_fired
        metrics.scheduler_stats = {
            home: sched.stats
            for home, sched in wiring.schedulers.items()}
        metrics.placement_stats = wiring.placement_stats
        metrics.recovery_stats = run_obj.executor.db.recovery
        if config.trace:
            # rings ride home inside the metrics payload and merge in
            # the parent exactly like every other per-worker counter
            metrics.trace = run_obj.executor.db.tracer.harvest()
        return {"metrics": metrics, "end_time": cluster.sim.now,
                "stats": cluster.network.stats}

    return finalize


def run_mp_benchmark(spec: MpRunSpec, config: RunConfig,
                     database: Database | None = None) -> RunResult:
    """Run ``spec`` across worker processes and merge their metrics.

    ``database`` (the parent-side template build, if any) rides along
    in the RunResult for schema inspection; its stores are *not* the
    ones the run mutated — those lived in the workers.
    """
    if spec.driver is None:
        spec = dataclasses.replace(spec, driver=mp_benchmark_driver)
    assign_wal_dir(config)
    if config.mp_run_id is None:
        # recorded into the shared config (it rides in spec.args too)
        # so workers and the parent derive the same shm ring names
        config.mp_run_id = uuid.uuid4().hex[:12]
    obs = None
    on_sample = on_tick = tick_s = None
    if config.metrics_interval:
        from ..obs.health import HealthWatchdog
        from ..obs.timeline import Timeline
        timeline = Timeline(config.metrics_interval,
                            ring=config.metrics_ring)
        watchdog = HealthWatchdog(rules=config.health_rules,
                                  interval_us=config.metrics_interval,
                                  abort=config.watchdog_abort)
        obs = _TimelineWiring(timeline, None, watchdog)
        run_t0 = time.monotonic()

        def on_sample(worker_id: int, rows: list) -> None:
            # stamp last-seen with the *parent's* clock: worker sample
            # timestamps start after the build phase, so comparing
            # them against the parent clock in evaluate() would read
            # the whole build time as silence
            timeline.add_rows(rows)
            watchdog.ingest(rows, at_us=(time.monotonic() - run_t0) * 1e6)

        def on_tick() -> None:
            watchdog.evaluate((time.monotonic() - run_t0) * 1e6)

        tick_s = config.metrics_interval / 1e6
        if config.metrics_port is not None:
            from ..obs.expose import MetricsHttpServer, to_prometheus
            obs.http = MetricsHttpServer(
                config.metrics_port,
                lambda: to_prometheus(timeline, watchdog.events))
            obs.http.start()
    try:
        payloads = run_mp_workers(spec, config, on_sample=on_sample,
                                  on_tick=on_tick, tick_s=tick_s)
    finally:
        if obs is not None and obs.http is not None:
            obs.http.stop()
    metrics = Metrics.merged([p["metrics"] for p in payloads])
    if obs is not None:
        obs.timeline.health = obs.watchdog.events
        metrics.timeline = obs.timeline
    if database is not None:
        # surface the measured traffic where every backend's consumers
        # read it (the template's own counters are all zero)
        for payload in payloads:
            database.cluster.network.stats.merge_from(payload["stats"])
    return _finish_run(RunResult(metrics=metrics, database=database,
                                 history=None, config=config,
                                 end_time=max(p["end_time"]
                                              for p in payloads)))
