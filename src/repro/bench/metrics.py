"""Run metrics: throughput, abort rates, fairness, latency.

One :class:`Metrics` instance collects every transaction attempt's
:class:`~repro.txn.common.Outcome`.  Abort *rate* is aborts over all
attempts (retries count as fresh attempts, matching how the paper's
NO_WAIT systems report it); throughput counts commits per simulated
second inside the measurement window.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..placement import PlacementStats
from ..sched import SchedulerStats
from ..storage import RecoveryStats
from ..txn.common import AbortReason, Outcome

APP_ABORTS = frozenset({AbortReason.LOGICAL, AbortReason.READ_MISS})
"""Abort reasons decided by the application, not by contention."""


@dataclass
class Metrics:
    """Aggregated outcomes of one benchmark run."""

    outcomes: list[Outcome] = field(default_factory=list)

    wall_seconds: float = 0.0
    """Real (not simulated) time the run took; filled by the harness so
    Python hot-path regressions show up in persisted benchmark results."""

    events_processed: int = 0
    """Simulator events fired during the run; filled by the harness."""

    scheduler_stats: dict[int, SchedulerStats] = field(default_factory=dict)
    """Per-engine scheduling counters (queue depth, queueing delay,
    deferrals/sheds by typed reason); filled by the harness.  Shed
    requests never produced an Outcome — this is where they show up."""

    placement_stats: PlacementStats | None = None
    """Adaptive-placement counters (epochs, planned/applied moves,
    routing flips); filled by the harness when ``RunConfig.placement``
    is adaptive, None on static runs."""

    recovery_stats: RecoveryStats | None = None
    """Durability/recovery counters (WAL appends/fsyncs/bytes, replays,
    in-doubt resolutions, controller failovers); filled by the harness
    from the database's shared ``RecoveryStats``."""

    def add(self, outcome: Outcome) -> None:
        self.outcomes.append(outcome)

    @classmethod
    def merged(cls, parts: list["Metrics"]) -> "Metrics":
        """Combine per-worker metrics from a parallel (mp) run.

        Outcome lists concatenate; wall time is the *max* (workers ran
        concurrently); events sum across processes; scheduler stats
        union by engine (each engine's scheduler lived in exactly one
        worker).
        """
        merged = cls()
        for part in parts:
            merged.outcomes.extend(part.outcomes)
            merged.wall_seconds = max(merged.wall_seconds,
                                      part.wall_seconds)
            merged.events_processed += part.events_processed
            merged.scheduler_stats.update(part.scheduler_stats)
            if part.placement_stats is not None:
                if merged.placement_stats is None:
                    merged.placement_stats = PlacementStats()
                merged.placement_stats.merge_from(part.placement_stats)
            if part.recovery_stats is not None:
                if merged.recovery_stats is None:
                    merged.recovery_stats = RecoveryStats()
                merged.recovery_stats.merge_from(part.recovery_stats)
        return merged

    def scheduler_summary(self) -> SchedulerStats | None:
        """All engines' scheduling counters folded into one view."""
        if not self.scheduler_stats:
            return None
        return SchedulerStats.merged(list(self.scheduler_stats.values()))

    @property
    def shed_requests(self) -> int:
        """Requests admission control dropped before execution."""
        return sum(stats.sheds for stats in self.scheduler_stats.values())

    def wasted_attempts(self) -> int:
        """Attempts that aborted on contention — work the system paid
        CPU and network for with nothing to show (application aborts
        are workload semantics, not waste)."""
        return sum(1 for o in self.outcomes
                   if not o.committed and o.reason not in APP_ABORTS)

    def events_per_wall_second(self) -> float:
        """Simulator event rate — the hot-path speed figure."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_processed / self.wall_seconds

    # -- counts ----------------------------------------------------------

    @property
    def attempts(self) -> int:
        return len(self.outcomes)

    @property
    def commits(self) -> int:
        return sum(1 for o in self.outcomes if o.committed)

    @property
    def aborts(self) -> int:
        return self.attempts - self.commits

    def aborts_by_reason(self) -> Counter:
        return Counter(o.reason for o in self.outcomes if not o.committed)

    def commits_by_proc(self) -> Counter:
        return Counter(o.proc for o in self.outcomes if o.committed)

    def attempts_by_proc(self) -> Counter:
        return Counter(o.proc for o in self.outcomes)

    # -- rates ------------------------------------------------------------

    def abort_rate(self, proc: str | None = None,
                   include_app_aborts: bool = False) -> float:
        """Aborts / attempts.  Application aborts (failed CHECKs and the
        TPC-C 1% rollback read-misses) are excluded by default: they are
        workload semantics, not contention."""
        outcomes = [o for o in self.outcomes
                    if proc is None or o.proc == proc]
        if not include_app_aborts:
            outcomes = [o for o in outcomes
                        if o.committed or o.reason not in APP_ABORTS]
        if not outcomes:
            return 0.0
        aborted = sum(1 for o in outcomes if not o.committed)
        return aborted / len(outcomes)

    def throughput(self, window_start: float, window_end: float) -> float:
        """Committed transactions per simulated *second* in the window."""
        if window_end <= window_start:
            raise ValueError("empty measurement window")
        commits = sum(1 for o in self.outcomes
                      if o.committed and window_start <= o.end < window_end)
        return commits / ((window_end - window_start) / 1e6)

    def distributed_ratio(self) -> float:
        """Fraction of committed transactions spanning >1 partition."""
        committed = [o for o in self.outcomes if o.committed]
        if not committed:
            return 0.0
        return sum(1 for o in committed if o.distributed) / len(committed)

    def two_region_ratio(self) -> float:
        """Fraction of committed transactions run as two-region."""
        committed = [o for o in self.outcomes if o.committed]
        if not committed:
            return 0.0
        return (sum(1 for o in committed if o.used_two_region)
                / len(committed))

    # -- latency ------------------------------------------------------------

    def latencies(self, proc: str | None = None,
                  committed_only: bool = True) -> list[float]:
        return [o.latency for o in self.outcomes
                if (proc is None or o.proc == proc)
                and (o.committed or not committed_only)]

    def mean_latency(self, proc: str | None = None) -> float:
        values = self.latencies(proc)
        return sum(values) / len(values) if values else 0.0

    def percentile_latency(self, q: float, proc: str | None = None) -> float:
        values = sorted(self.latencies(proc))
        if not values:
            return 0.0
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    # -- fairness (Fig. 9c) ----------------------------------------------------

    def commit_share(self) -> dict[str, float]:
        """Per-procedure share of all commits (starvation shows up as a
        class's share collapsing)."""
        commits = self.commits_by_proc()
        total = sum(commits.values())
        if total == 0:
            return {}
        return {proc: count / total for proc, count in commits.items()}
