"""Run metrics: throughput, abort rates, fairness, latency.

One :class:`Metrics` instance collects every transaction attempt's
:class:`~repro.txn.common.Outcome`.  Abort *rate* is aborts over all
attempts (retries count as fresh attempts, matching how the paper's
NO_WAIT systems report it); throughput counts commits per simulated
second inside the measurement window.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from ..placement import PlacementStats
from ..sched import SchedulerStats
from ..storage import RecoveryStats
from ..txn.common import AbortReason, Outcome

APP_ABORTS = frozenset({AbortReason.LOGICAL, AbortReason.READ_MISS})
"""Abort reasons decided by the application, not by contention."""


class LatencyHistogram:
    """Log2-bucketed latency histogram with linear sub-buckets.

    Values (microseconds) below ``2**SUBBUCKET_BITS`` land in exact
    unit-wide buckets; above that, every power-of-two octave splits
    into ``2**SUBBUCKET_BITS`` equal sub-buckets (the HdrHistogram
    layout), bounding the relative quantile error at ``1 /
    2**(SUBBUCKET_BITS+1)`` (~1.6%) at any magnitude.  Bucket counts
    simply add, so merging is associative and commutative — mp workers
    pickle theirs to the parent, which folds them in any order.
    """

    SUBBUCKET_BITS = 5

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.n = 0
        self.total_us = 0.0
        self.max_us = 0.0

    @classmethod
    def _index(cls, value: int) -> int:
        sub = 1 << cls.SUBBUCKET_BITS
        if value < sub:
            return value
        shift = value.bit_length() - (cls.SUBBUCKET_BITS + 1)
        return (shift << cls.SUBBUCKET_BITS) + (value >> shift)

    @classmethod
    def _bucket_mid(cls, index: int) -> float:
        """Midpoint of the half-open value range bucket ``index`` covers."""
        sub = 1 << cls.SUBBUCKET_BITS
        shift = max(0, index // sub - 1)
        low = (index - shift * sub) << shift
        return low + ((1 << shift) - 1) / 2.0

    def record(self, latency_us: float) -> None:
        value = max(0, int(latency_us))
        index = self._index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.n += 1
        self.total_us += latency_us
        if latency_us > self.max_us:
            self.max_us = latency_us

    def merge_from(self, other: "LatencyHistogram") -> None:
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.n += other.n
        self.total_us += other.total_us
        self.max_us = max(self.max_us, other.max_us)

    @classmethod
    def merged(cls, parts: list["LatencyHistogram"]) -> "LatencyHistogram":
        total = cls()
        for part in parts:
            total.merge_from(part)
        return total

    def mean_us(self) -> float:
        return self.total_us / self.n if self.n else 0.0

    def percentile(self, q: float) -> float:
        """The latency at quantile ``q`` (0 < q <= 1), bucket-midpoint
        interpolated (exact for sub-``2**SUBBUCKET_BITS``-µs values)."""
        if self.n == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.n))
        cumulative = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= rank:
                return self._bucket_mid(index)
        return self.max_us

    def summary(self) -> dict:
        """p50/p99/p999 report fields (µs on the backend's own clock)."""
        return {
            "count": self.n,
            "mean_us": round(self.mean_us(), 1),
            "p50_us": round(self.percentile(0.50), 1),
            "p99_us": round(self.percentile(0.99), 1),
            "p999_us": round(self.percentile(0.999), 1),
            "max_us": round(self.max_us, 1),
        }


@dataclass
class TenantTraffic:
    """One tenant's open-loop accounting: arrivals in, SLO out.

    Latency is recorded **from the scheduled arrival** to final
    completion — queueing, dispatch lag, scheduler deferrals, and every
    retry included — which is what makes the percentiles coordinated-
    omission-safe: a stalled server inflates the recorded latency of
    every request scheduled during the stall, exactly as real clients
    would experience it.
    """

    deadline_us: float = 0.0
    scheduled: int = 0
    """Arrivals the generator produced for this tenant (the SLO
    denominator — shed and failed requests count against attainment)."""

    shed: int = 0
    """Arrivals dropped before execution (admission or scheduler)."""

    committed: int = 0
    failed: int = 0
    """Admitted requests that never committed (retries exhausted or the
    run drained first)."""

    in_slo: int = 0
    """Committed within ``deadline_us`` of the scheduled arrival."""

    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    def attainment(self) -> float:
        """Fraction of *scheduled* arrivals that met their SLO."""
        return self.in_slo / self.scheduled if self.scheduled else 0.0

    def merge_from(self, other: "TenantTraffic") -> None:
        self.deadline_us = max(self.deadline_us, other.deadline_us)
        self.scheduled += other.scheduled
        self.shed += other.shed
        self.committed += other.committed
        self.failed += other.failed
        self.in_slo += other.in_slo
        self.histogram.merge_from(other.histogram)


@dataclass
class OpenLoopStats:
    """Per-tenant open-loop traffic counters, surfaced via ``Metrics``.

    Mergeable and picklable: each mp worker accumulates its homes'
    traffic and the parent folds the parts (histogram buckets add,
    counters sum)."""

    tenants: dict[str, TenantTraffic] = field(default_factory=dict)

    def tenant(self, name: str, deadline_us: float = 0.0) -> TenantTraffic:
        traffic = self.tenants.get(name)
        if traffic is None:
            traffic = self.tenants[name] = TenantTraffic(
                deadline_us=deadline_us)
        return traffic

    def overall(self) -> LatencyHistogram:
        return LatencyHistogram.merged(
            [t.histogram for t in self.tenants.values()])

    @property
    def scheduled(self) -> int:
        return sum(t.scheduled for t in self.tenants.values())

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants.values())

    def merge_from(self, other: "OpenLoopStats") -> None:
        for name, theirs in other.tenants.items():
            self.tenant(name).merge_from(theirs)

    @classmethod
    def merged(cls, parts: list["OpenLoopStats"]) -> "OpenLoopStats":
        total = cls()
        for part in parts:
            total.merge_from(part)
        return total

    def timeline_snapshot(self) -> dict[str, dict[str, float]]:
        """Cumulative per-tenant counters for the live metrics
        timeline (diffed into per-interval deltas by the sampler)."""
        return {name: {"scheduled": t.scheduled, "shed": t.shed,
                       "committed": t.committed, "failed": t.failed,
                       "in_slo": t.in_slo}
                for name, t in self.tenants.items()}

    def summary(self) -> dict:
        """Report fields for ``RunResult.perf_summary()['open_loop']``."""
        report = {
            "scheduled": self.scheduled,
            "shed": self.shed,
            "latency": self.overall().summary(),
            "tenants": {},
        }
        for name in sorted(self.tenants):
            tenant = self.tenants[name]
            report["tenants"][name] = {
                "scheduled": tenant.scheduled,
                "shed": tenant.shed,
                "committed": tenant.committed,
                "failed": tenant.failed,
                "deadline_us": tenant.deadline_us,
                "slo_attainment": round(tenant.attainment(), 4),
                **{k: v for k, v in tenant.histogram.summary().items()
                   if k != "count"},
            }
        return report


@dataclass
class Metrics:
    """Aggregated outcomes of one benchmark run."""

    outcomes: list[Outcome] = field(default_factory=list)

    wall_seconds: float = 0.0
    """Real (not simulated) time the run took; filled by the harness so
    Python hot-path regressions show up in persisted benchmark results."""

    events_processed: int = 0
    """Simulator events fired during the run; filled by the harness."""

    scheduler_stats: dict[int, SchedulerStats] = field(default_factory=dict)
    """Per-engine scheduling counters (queue depth, queueing delay,
    deferrals/sheds by typed reason); filled by the harness.  Shed
    requests never produced an Outcome — this is where they show up."""

    placement_stats: PlacementStats | None = None
    """Adaptive-placement counters (epochs, planned/applied moves,
    routing flips); filled by the harness when ``RunConfig.placement``
    is adaptive, None on static runs."""

    recovery_stats: RecoveryStats | None = None
    """Durability/recovery counters (WAL appends/fsyncs/bytes, replays,
    in-doubt resolutions, controller failovers); filled by the harness
    from the database's shared ``RecoveryStats``."""

    open_loop: OpenLoopStats | None = None
    """Open-loop traffic counters (per-tenant CO-safe latency
    histograms + SLO attainment); filled by the harness when
    ``RunConfig.arrivals`` selects an arrival process, None on
    closed-loop runs."""

    trace: "TraceData | None" = None
    """Harvested phase spans + tail exemplars
    (:class:`repro.obs.TraceData`); filled by the harness when
    ``RunConfig.trace`` is on, None otherwise.  mp workers each ship
    theirs and the parent folds them below, like every other stat."""

    timeline: "object | None" = None
    """Merged live metrics timeline (:class:`repro.obs.Timeline`, with
    the watchdog's events on ``timeline.health``); filled by the
    harness when ``RunConfig.metrics_interval`` is set.  On mp runs
    workers ship sample rows live over the control pipe and the
    *parent* owns the one merged timeline, so it survives worker
    deaths — it does not ride the worker payloads."""

    def add(self, outcome: Outcome) -> None:
        self.outcomes.append(outcome)

    @classmethod
    def merged(cls, parts: list["Metrics"]) -> "Metrics":
        """Combine per-worker metrics from a parallel (mp) run.

        Outcome lists concatenate; wall time is the *max* (workers ran
        concurrently); events sum across processes; scheduler stats
        union by engine (each engine's scheduler lived in exactly one
        worker).
        """
        merged = cls()
        for part in parts:
            merged.outcomes.extend(part.outcomes)
            merged.wall_seconds = max(merged.wall_seconds,
                                      part.wall_seconds)
            merged.events_processed += part.events_processed
            merged.scheduler_stats.update(part.scheduler_stats)
            if part.placement_stats is not None:
                if merged.placement_stats is None:
                    merged.placement_stats = PlacementStats()
                merged.placement_stats.merge_from(part.placement_stats)
            if part.recovery_stats is not None:
                if merged.recovery_stats is None:
                    merged.recovery_stats = RecoveryStats()
                merged.recovery_stats.merge_from(part.recovery_stats)
            if part.open_loop is not None:
                if merged.open_loop is None:
                    merged.open_loop = OpenLoopStats()
                merged.open_loop.merge_from(part.open_loop)
            if part.trace is not None:
                if merged.trace is None:
                    from ..obs.tracer import TraceData
                    merged.trace = TraceData()
                merged.trace.merge_from(part.trace)
            if part.timeline is not None:
                if merged.timeline is None:
                    from ..obs.timeline import Timeline
                    merged.timeline = Timeline(
                        part.timeline.interval_us, part.timeline.ring)
                merged.timeline.merge_from(part.timeline)
        return merged

    def scheduler_summary(self) -> SchedulerStats | None:
        """All engines' scheduling counters folded into one view."""
        if not self.scheduler_stats:
            return None
        return SchedulerStats.merged(list(self.scheduler_stats.values()))

    @property
    def shed_requests(self) -> int:
        """Requests admission control dropped before execution."""
        return sum(stats.sheds for stats in self.scheduler_stats.values())

    def wasted_attempts(self) -> int:
        """Attempts that aborted on contention — work the system paid
        CPU and network for with nothing to show (application aborts
        are workload semantics, not waste)."""
        return sum(1 for o in self.outcomes
                   if not o.committed and o.reason not in APP_ABORTS)

    def events_per_wall_second(self) -> float:
        """Simulator event rate — the hot-path speed figure."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_processed / self.wall_seconds

    # -- counts ----------------------------------------------------------

    @property
    def attempts(self) -> int:
        return len(self.outcomes)

    @property
    def commits(self) -> int:
        return sum(1 for o in self.outcomes if o.committed)

    @property
    def aborts(self) -> int:
        return self.attempts - self.commits

    def aborts_by_reason(self) -> Counter:
        return Counter(o.reason for o in self.outcomes if not o.committed)

    def commits_by_proc(self) -> Counter:
        return Counter(o.proc for o in self.outcomes if o.committed)

    def attempts_by_proc(self) -> Counter:
        return Counter(o.proc for o in self.outcomes)

    # -- rates ------------------------------------------------------------

    def abort_rate(self, proc: str | None = None,
                   include_app_aborts: bool = False) -> float:
        """Aborts / attempts.  Application aborts (failed CHECKs and the
        TPC-C 1% rollback read-misses) are excluded by default: they are
        workload semantics, not contention."""
        outcomes = [o for o in self.outcomes
                    if proc is None or o.proc == proc]
        if not include_app_aborts:
            outcomes = [o for o in outcomes
                        if o.committed or o.reason not in APP_ABORTS]
        if not outcomes:
            return 0.0
        aborted = sum(1 for o in outcomes if not o.committed)
        return aborted / len(outcomes)

    def throughput(self, window_start: float, window_end: float) -> float:
        """Committed transactions per simulated *second* in the window."""
        if window_end <= window_start:
            raise ValueError("empty measurement window")
        commits = sum(1 for o in self.outcomes
                      if o.committed and window_start <= o.end < window_end)
        return commits / ((window_end - window_start) / 1e6)

    def distributed_ratio(self) -> float:
        """Fraction of committed transactions spanning >1 partition."""
        committed = [o for o in self.outcomes if o.committed]
        if not committed:
            return 0.0
        return sum(1 for o in committed if o.distributed) / len(committed)

    def two_region_ratio(self) -> float:
        """Fraction of committed transactions run as two-region."""
        committed = [o for o in self.outcomes if o.committed]
        if not committed:
            return 0.0
        return (sum(1 for o in committed if o.used_two_region)
                / len(committed))

    # -- latency ------------------------------------------------------------

    def latencies(self, proc: str | None = None,
                  committed_only: bool = True) -> list[float]:
        return [o.latency for o in self.outcomes
                if (proc is None or o.proc == proc)
                and (o.committed or not committed_only)]

    def mean_latency(self, proc: str | None = None) -> float:
        values = self.latencies(proc)
        return sum(values) / len(values) if values else 0.0

    def percentile_latency(self, q: float, proc: str | None = None) -> float:
        values = sorted(self.latencies(proc))
        if not values:
            return 0.0
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    # -- fairness (Fig. 9c) ----------------------------------------------------

    def commit_share(self) -> dict[str, float]:
        """Per-procedure share of all commits (starvation shows up as a
        class's share collapsing)."""
        commits = self.commits_by_proc()
        total = sum(commits.values())
        if total == 0:
            return {}
        return {proc: count / total for proc, count in commits.items()}
