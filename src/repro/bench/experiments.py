"""Parameter sweeps regenerating every table and figure of the paper.

Each ``figN_rows`` function returns plain dict rows (so tests can assert
shapes) and has a printer producing the same series the paper plots.
Run from the command line::

    python -m repro.bench.experiments fig7 fig8 fig9a fig9b fig9c fig10
    python -m repro.bench.experiments lookup cost reorder minweight
    python -m repro.bench.experiments all        # everything (slow-ish)
    python -m repro.bench.experiments all --quick
    python -m repro.bench.experiments fig7 --doorbell   # fused verbs on
    python -m repro.bench.experiments fig9a --quick --backend aio
    python -m repro.bench.experiments fig9a --quick --backend mp
    python -m repro.bench.experiments fig9a --quick --backend mp --workers 2
    python -m repro.bench.experiments fig9a --quick --backend mp \\
        --mp-transport shm --mp-codec packed
    python -m repro.bench.experiments fig9a --scheduler conflict
    python -m repro.bench.experiments fig9a --quick --profile /tmp/prof
    python -m repro.bench.experiments fig9a --quick --backend mp --wal group
    python -m repro.bench.experiments fig9a --quick --backend mp \\
        --wal group --mp-recovery --chaos-kill 1 --chaos-after 0.5
    python -m repro.bench.experiments fig9a --arrivals poisson \\
        --offered-load 200000 --deadline-us 4000
    python -m repro.bench.experiments fig9a --arrivals tenants \\
        --offered-load 1200000 --admission deadline
    python -m repro.bench.experiments fig9a --quick --trace \\
        --trace-out /tmp/fig9a.json --trace-sample 1
    python -m repro.bench.experiments fig9a --quick --summary-json /tmp/s.json
    python -m repro.bench.experiments fig9a --quick --metrics-interval 500
    python -m repro.bench.experiments fig9a --quick --backend mp \\
        --metrics-interval 50000 --metrics-port 9100 --watch
    python -m repro.bench.experiments fig9a --quick \\
        --metrics-interval 500 --metrics-csv /tmp/fig9a.timeline.csv

``--wal off|fsync|group`` selects the per-server write-ahead-log mode
(commit decisions become durable; see ARCHITECTURE.md, "Durability &
recovery").  ``--mp-recovery`` respawns SIGKILL'd mp workers and
replays their WAL instead of failing the run; ``--chaos-kill W``
SIGKILLs worker W ``--chaos-after S`` seconds into the run (implies
``--mp-recovery``), and ``--max-restarts N`` bounds respawns.

``--mp-transport tcp|shm`` moves mp worker frames over localhost TCP or
shared-memory rings; ``--mp-codec packed|pickle`` selects struct-packed
hot-verb frames or whole-frame pickles (see ARCHITECTURE.md, "The wire
path").  ``--profile DIR`` dumps cProfile stats: ``parent.prof`` always,
plus ``worker-N.prof`` per mp worker process.

``--scheduler fifo|conflict`` selects the cross-transaction scheduling
policy (:mod:`repro.sched`); unset and ``fifo`` reproduce the
historical raw dispatch loop bit-for-bit.
``--arrivals poisson|diurnal|flash|tenants`` switches the sweep to
open-loop traffic (:mod:`repro.traffic`): requests enter on a seeded
arrival schedule regardless of completion, and latency is measured
from the scheduled arrival (coordinated-omission-safe).
``--offered-load T`` sets the aggregate rate in txns/sec,
``--deadline-us D`` the SLO deadline, and ``--admission
none|deadline`` the shedding policy.  Unset, runs stay closed-loop and
every figure is bit-identical to the historical output.  Open-loop
throughput figures are NOT comparable to closed-loop ones — see
EXPERIMENTS.md, "Open-loop traffic".
``--trace`` records per-phase transaction spans (:mod:`repro.obs`) on
every run of the sweep; ``--trace-sample N`` traces every Nth
transaction per engine, and ``--trace-out PATH`` (implies ``--trace``)
writes the last run's spans as Chrome ``trace_event`` JSON for
``ui.perfetto.dev``.  ``--summary-json PATH`` collects every run's
``perf_summary()`` — including the trace/exemplar sections when
tracing — into one JSON array.
``--metrics-interval US`` turns on the live metrics timeline
(:mod:`repro.obs.timeline`): every US microseconds (simulated on sim,
wall clock on aio/mp) each run samples delta counters per server and
the health watchdog checks for stalls, queue saturation, SLO burn,
lease flaps, and restart storms (``perf_summary()['timeline']`` /
``['health']``).  ``--metrics-port P`` serves live Prometheus text on
``127.0.0.1:P/metrics`` (aio/mp), ``--metrics-csv PATH`` writes the
last run's timeline as CSV, ``--watch`` prints a sparkline dashboard
after each run, and ``--watchdog-abort`` lets a fatal rule abort a
wedged run early.
``--backend aio`` drives the same sweep through the asyncio runtime
(real event loop, wall-clock time) instead of the simulator;
``--backend mp`` through the multiprocess runtime (one OS process per
server, ``--workers N`` packs servers onto fewer processes).  See
EXPERIMENTS.md for how to read those numbers — they measure what this
machine actually sustains, not the modeled RDMA cluster.

Absolute throughput differs from the paper (their 8-node InfiniBand
testbed vs our discrete-event simulator); the *shapes* — orderings,
scaling trends, crossovers — are the reproduction target (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from typing import Iterable, Sequence

from ..workloads.instacart import InstacartWorkload
from ..workloads.tpcc import TpccScale, TpccWorkload
from ..placement import PLACEMENTS
from ..sched import SCHEDULERS
from ..sim.mp_runtime import MP_CODECS, MP_TRANSPORTS
from ..storage.wal import WAL_MODES
from ..traffic import ADMISSIONS, ARRIVAL_PROCESSES, ArrivalSpec
from .harness import BACKENDS, RunConfig, install_summary_json
from .setups import (build_instacart_layout, build_instacart_setup,
                     make_instacart_run, make_tpcc_run)

INSTACART_LAYOUTS = ("hashing", "schism", "chiller")
TPCC_EXECUTORS = ("2pl", "occ", "chiller")


# -- Section 7.2: Instacart (Figs. 7 & 8, lookup size, partitioner cost) ----

def instacart_config(n_partitions: int, quick: bool = False,
                     seed: int = 2,
                     doorbell_batching: bool = False,
                     backend: str = "sim",
                     mp_workers: int | None = None,
                     scheduler: str | None = None,
                     placement: str | None = None,
                     mp_transport: str = "tcp",
                     mp_codec: str = "packed",
                     profile_dir: str | None = None,
                     durability: dict | None = None,
                     traffic: dict | None = None,
                     tracing: dict | None = None,
                     observability: dict | None = None) -> RunConfig:
    return RunConfig(n_partitions=n_partitions,
                     concurrent_per_engine=4,
                     horizon_us=4_000.0 if quick else 12_000.0,
                     warmup_us=500.0 if quick else 2_000.0,
                     # open-loop arrivals pin each request to its
                     # scheduled home; data-affinity routing is a
                     # closed-loop worker concern (see repro.traffic)
                     seed=seed, n_replicas=1, route_by_data=not traffic,
                     doorbell_batching=doorbell_batching,
                     backend=backend, mp_workers=mp_workers,
                     scheduler=scheduler, placement=placement,
                     mp_transport=mp_transport, mp_codec=mp_codec,
                     mp_profile_dir=profile_dir,
                     **(durability or {}), **(traffic or {}),
                     **(tracing or {}), **(observability or {}))


def instacart_sweep(partitions: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
                    n_train: int = 3000, quick: bool = False,
                    seed: int = 2,
                    layouts: Sequence[str] = INSTACART_LAYOUTS,
                    workload_factory=InstacartWorkload,
                    doorbell_batching: bool = False,
                    backend: str = "sim",
                    mp_workers: int | None = None,
                    scheduler: str | None = None,
                    placement: str | None = None,
                    mp_transport: str = "tcp",
                    mp_codec: str = "packed",
                    profile_dir: str | None = None,
                    durability: dict | None = None,
                    traffic: dict | None = None,
                    tracing: dict | None = None,
                    observability: dict | None = None) -> list[dict]:
    """One row per partition count with every layout's metrics.

    Feeds Fig. 7 (throughput), Fig. 8 (distributed ratio), the lookup
    table comparison, and the partitioner cost comparison.
    ``workload_factory`` lets scaled-down callers shrink the catalog so
    the training trace still covers it (Schism needs coverage to show
    its locality advantage).
    """
    rows = []
    for k in partitions:
        workload = workload_factory()
        setup = build_instacart_setup(k, n_train=n_train,
                                      workload=workload, seed=seed)
        row: dict = {"partitions": k}
        for name in layouts:
            layout = build_instacart_layout(setup, name, seed=seed)
            run = make_instacart_run(
                setup, layout,
                instacart_config(k, quick, seed, doorbell_batching,
                                 backend, mp_workers, scheduler,
                                 placement, mp_transport, mp_codec,
                                 profile_dir, durability, traffic,
                                 tracing, observability))
            result = run.run()
            metrics = result.metrics
            row[f"{name}_throughput"] = result.throughput
            row[f"{name}_distributed"] = metrics.distributed_ratio()
            row[f"{name}_abort_rate"] = metrics.abort_rate()
            row[f"{name}_lookup"] = layout.lookup_table_size
            row[f"{name}_edges"] = layout.graph_edges
            row[f"{name}_train_s"] = layout.partition_seconds
        rows.append(row)
    return rows


def print_fig7(rows: list[dict]) -> None:
    print("\n== Fig. 7: throughput (K txns/sec) vs number of partitions ==")
    print(f"{'parts':>5} " + "".join(f"{n:>12}" for n in INSTACART_LAYOUTS))
    for row in rows:
        cells = "".join(f"{row[f'{n}_throughput'] / 1e3:>12.0f}"
                        for n in INSTACART_LAYOUTS)
        print(f"{row['partitions']:>5} {cells}")


def print_fig8(rows: list[dict]) -> None:
    print("\n== Fig. 8: ratio of distributed transactions ==")
    print(f"{'parts':>5} " + "".join(f"{n:>12}" for n in INSTACART_LAYOUTS))
    for row in rows:
        cells = "".join(f"{row[f'{n}_distributed']:>12.2f}"
                        for n in INSTACART_LAYOUTS)
        print(f"{row['partitions']:>5} {cells}")


def print_lookup(rows: list[dict]) -> None:
    print("\n== Section 7.2.2: lookup table size (entries) ==")
    print(f"{'parts':>5} {'schism':>10} {'chiller':>10} {'ratio':>8}")
    for row in rows:
        schism = row["schism_lookup"]
        chiller = max(1, row["chiller_lookup"])
        print(f"{row['partitions']:>5} {schism:>10} "
              f"{row['chiller_lookup']:>10} {schism / chiller:>8.1f}x")


def print_cost(rows: list[dict]) -> None:
    print("\n== Section 7.2.2: graph size and partitioning cost ==")
    print(f"{'parts':>5} {'schism edges':>13} {'star edges':>11} "
          f"{'schism s':>9} {'chiller s':>10} {'speedup':>8}")
    for row in rows:
        speed = row["schism_train_s"] / max(1e-9, row["chiller_train_s"])
        print(f"{row['partitions']:>5} {row['schism_edges']:>13} "
              f"{row['chiller_edges']:>11} {row['schism_train_s']:>9.2f} "
              f"{row['chiller_train_s']:>10.2f} {speed:>8.1f}x")


# -- Section 7.3: TPC-C concurrency sweep (Figs. 9a, 9b, 9c) ---------------

def tpcc_config(n_partitions: int, concurrent: int, quick: bool = False,
                seed: int = 3,
                doorbell_batching: bool = False,
                backend: str = "sim",
                mp_workers: int | None = None,
                scheduler: str | None = None,
                placement: str | None = None,
                mp_transport: str = "tcp",
                mp_codec: str = "packed",
                profile_dir: str | None = None,
                durability: dict | None = None,
                traffic: dict | None = None,
                tracing: dict | None = None,
                observability: dict | None = None) -> RunConfig:
    return RunConfig(n_partitions=n_partitions,
                     concurrent_per_engine=concurrent,
                     horizon_us=5_000.0 if quick else 15_000.0,
                     warmup_us=500.0 if quick else 2_000.0,
                     seed=seed, n_replicas=1,
                     doorbell_batching=doorbell_batching,
                     backend=backend, mp_workers=mp_workers,
                     scheduler=scheduler, placement=placement,
                     mp_transport=mp_transport, mp_codec=mp_codec,
                     mp_profile_dir=profile_dir,
                     **(durability or {}), **(traffic or {}),
                     **(tracing or {}), **(observability or {}))


def fig9_rows(concurrency: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
              n_partitions: int = 4, quick: bool = False,
              seed: int = 3, doorbell_batching: bool = False,
              backend: str = "sim",
              mp_workers: int | None = None,
              scheduler: str | None = None,
              placement: str | None = None,
              mp_transport: str = "tcp",
              mp_codec: str = "packed",
              profile_dir: str | None = None,
              durability: dict | None = None,
              traffic: dict | None = None,
              tracing: dict | None = None,
              observability: dict | None = None) -> list[dict]:
    """Throughput + abort rates per executor per concurrency level."""
    rows = []
    for concurrent in concurrency:
        row: dict = {"concurrent": concurrent}
        for name in TPCC_EXECUTORS:
            run = make_tpcc_run(
                name, tpcc_config(n_partitions, concurrent, quick, seed,
                                  doorbell_batching, backend, mp_workers,
                                  scheduler, placement, mp_transport,
                                  mp_codec, profile_dir, durability,
                                  traffic, tracing, observability))
            result = run.run()
            metrics = result.metrics
            row[f"{name}_throughput"] = result.throughput
            row[f"{name}_abort_rate"] = metrics.abort_rate()
            if name == "2pl":
                for proc in ("new_order", "payment", "stock_level"):
                    row[f"2pl_{proc}_abort"] = metrics.abort_rate(proc)
        rows.append(row)
    return rows


def print_fig9a(rows: list[dict]) -> None:
    print("\n== Fig. 9a: TPC-C throughput (K txns/sec) vs concurrent "
          "txns/warehouse ==")
    print(f"{'conc':>4} " + "".join(f"{n:>10}" for n in TPCC_EXECUTORS))
    for row in rows:
        cells = "".join(f"{row[f'{n}_throughput'] / 1e3:>10.0f}"
                        for n in TPCC_EXECUTORS)
        print(f"{row['concurrent']:>4} {cells}")


def print_fig9b(rows: list[dict]) -> None:
    print("\n== Fig. 9b: abort rate vs concurrent txns/warehouse ==")
    print(f"{'conc':>4} " + "".join(f"{n:>10}" for n in TPCC_EXECUTORS))
    for row in rows:
        cells = "".join(f"{row[f'{n}_abort_rate']:>10.2f}"
                        for n in TPCC_EXECUTORS)
        print(f"{row['concurrent']:>4} {cells}")


def print_fig9c(rows: list[dict]) -> None:
    print("\n== Fig. 9c: 2PL abort rate by transaction class ==")
    procs = ("new_order", "payment", "stock_level")
    print(f"{'conc':>4} " + "".join(f"{p:>12}" for p in procs))
    for row in rows:
        cells = "".join(f"{row[f'2pl_{p}_abort']:>12.2f}" for p in procs)
        print(f"{row['concurrent']:>4} {cells}")


# -- Section 7.4: impact of distributed transactions (Fig. 10) --------------

FIG10_MIX = (("new_order", 0.5), ("payment", 0.5))
FIG10_SERIES = (("2pl", 1), ("occ", 1), ("2pl", 5), ("occ", 5),
                ("chiller", 5))


def fig10_rows(percents: Sequence[int] = (0, 20, 40, 60, 80, 100),
               n_partitions: int = 4, quick: bool = False,
               seed: int = 5, doorbell_batching: bool = False,
               backend: str = "sim",
               mp_workers: int | None = None,
               scheduler: str | None = None,
               placement: str | None = None,
               mp_transport: str = "tcp",
               mp_codec: str = "packed",
               profile_dir: str | None = None,
               durability: dict | None = None,
               traffic: dict | None = None,
               tracing: dict | None = None,
               observability: dict | None = None) -> list[dict]:
    """Throughput vs fraction of distributed transactions."""
    rows = []
    for percent in percents:
        row: dict = {"percent": percent}
        for name, concurrent in FIG10_SERIES:
            workload = TpccWorkload(
                TpccScale(n_warehouses=n_partitions),
                n_partitions=n_partitions, mix=FIG10_MIX,
                payment_remote_prob=percent / 100.0,
                new_order_remote_prob=percent / 100.0)
            run = make_tpcc_run(
                name, tpcc_config(n_partitions, concurrent, quick, seed,
                                  doorbell_batching, backend, mp_workers,
                                  scheduler, placement, mp_transport,
                                  mp_codec, profile_dir, durability,
                                  traffic, tracing, observability),
                workload=workload)
            result = run.run()
            row[f"{name}_{concurrent}_throughput"] = result.throughput
        rows.append(row)
    return rows


def print_fig10(rows: list[dict]) -> None:
    print("\n== Fig. 10: throughput (K txns/sec) vs % distributed "
          "transactions ==")
    header = "".join(f"{f'{n}({c})':>12}" for n, c in FIG10_SERIES)
    print(f"{'%dist':>5} {header}")
    for row in rows:
        cells = "".join(
            f"{row[f'{n}_{c}_throughput'] / 1e3:>12.0f}"
            for n, c in FIG10_SERIES)
        print(f"{row['percent']:>5} {cells}")


# -- Ablations ---------------------------------------------------------------

def reorder_ablation_rows(n_partitions: int = 4, n_train: int = 1200,
                          quick: bool = False, seed: int = 2,
                          doorbell_batching: bool = False,
                          backend: str = "sim",
                          mp_workers: int | None = None,
                          scheduler: str | None = None) -> list[dict]:
    """Two-region execution without contention-aware partitioning.

    The paper's Section 1 claim: "re-ordering operations without
    re-considering the partitioning scheme only leads to limited
    performance improvements."  Series: plain 2PL on hashing; two-region
    execution on the hashing layout; two-region on Schism's layout;
    full Chiller (two-region + contention-aware layout).
    """
    setup = build_instacart_setup(n_partitions, n_train=n_train,
                                  seed=seed)
    config = instacart_config(n_partitions, quick, seed, doorbell_batching,
                              backend, mp_workers, scheduler)
    rows = []
    combos = (("hashing", "2pl", "2PL on hashing"),
              ("hashing", "chiller", "two-region on hashing"),
              ("schism", "chiller", "two-region on Schism"),
              ("chiller", "chiller", "full Chiller"))
    for layout_name, executor_name, label in combos:
        layout = build_instacart_layout(setup, layout_name, seed=seed)
        run = make_instacart_run(setup, layout, config,
                                 executor_override=executor_name)
        result = run.run()
        rows.append({
            "label": label,
            "layout": layout_name,
            "executor": executor_name,
            "throughput": result.throughput,
            "abort_rate": result.metrics.abort_rate(),
            "distributed": result.metrics.distributed_ratio(),
        })
    return rows


def print_reorder(rows: list[dict]) -> None:
    print("\n== Ablation: execution model vs partitioning layout ==")
    print(f"{'configuration':<26} {'K txns/s':>9} {'abort':>7} "
          f"{'distrib':>8}")
    for row in rows:
        print(f"{row['label']:<26} {row['throughput'] / 1e3:>9.0f} "
              f"{row['abort_rate']:>7.2f} {row['distributed']:>8.2f}")


def min_weight_ablation_rows(weights: Sequence[float] = (0.0, 0.05, 0.2,
                                                         0.5),
                             n_partitions: int = 4, n_train: int = 1200,
                             quick: bool = False,
                             seed: int = 2,
                             doorbell_batching: bool = False,
                             backend: str = "sim",
                             mp_workers: int | None = None,
                             scheduler: str | None = None) -> list[dict]:
    """Section 4.4: a minimum edge weight co-optimizes contention and
    the number of distributed transactions."""
    setup = build_instacart_setup(n_partitions, n_train=n_train,
                                  seed=seed)
    config = instacart_config(n_partitions, quick, seed, doorbell_batching,
                              backend, mp_workers, scheduler)
    rows = []
    for weight in weights:
        layout = build_instacart_layout(setup, "chiller", seed=seed,
                                        min_weight=weight)
        run = make_instacart_run(setup, layout, config)
        result = run.run()
        rows.append({
            "min_weight": weight,
            "throughput": result.throughput,
            "abort_rate": result.metrics.abort_rate(),
            "distributed": result.metrics.distributed_ratio(),
        })
    return rows


def print_min_weight(rows: list[dict]) -> None:
    print("\n== Ablation: star-graph minimum edge weight (Section 4.4) ==")
    print(f"{'min_w':>6} {'K txns/s':>9} {'abort':>7} {'distrib':>8}")
    for row in rows:
        print(f"{row['min_weight']:>6.2f} {row['throughput'] / 1e3:>9.0f} "
              f"{row['abort_rate']:>7.2f} {row['distributed']:>8.2f}")


# -- CLI ---------------------------------------------------------------------

def _parse_option(args: list[str], name: str,
                  allowed: Sequence[str] | None = None,
                  ) -> tuple[str | None, list[str]]:
    """Extract ``--name X`` / ``--name=X``; returns (value, rest).

    One extraction loop for every CLI knob: missing values and (when
    ``allowed`` is given) unknown values exit with the same message
    shape everywhere.
    """
    flag = f"--{name}"
    value: str | None = None
    rest: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == flag:
            if i + 1 >= len(args):
                raise SystemExit(
                    f"{flag} needs a value"
                    + (f" ({' | '.join(allowed)})" if allowed else ""))
            value = args[i + 1]
            i += 2
            continue
        if arg.startswith(flag + "="):
            value = arg.split("=", 1)[1]
            i += 1
            continue
        rest.append(arg)
        i += 1
    if value is not None and allowed is not None and value not in allowed:
        raise SystemExit(f"unknown {name} {value!r} "
                         f"(expected {' | '.join(allowed)})")
    return value, rest


def _parse_workers(args: list[str]) -> tuple[int | None, list[str]]:
    """Extract ``--workers N`` / ``--workers=N`` (mp worker processes)."""
    value, rest = _parse_option(args, "workers")
    if value is None:
        return None, rest
    try:
        workers = int(value)
    except ValueError:
        raise SystemExit(f"--workers needs an integer, got {value!r}")
    if workers < 1:
        raise SystemExit("--workers must be >= 1")
    return workers, rest


def main(argv: Iterable[str] | None = None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    backend, args = _parse_option(args, "backend", BACKENDS)
    backend = backend or "sim"
    workers, args = _parse_workers(args)
    scheduler, args = _parse_option(args, "scheduler", SCHEDULERS)
    placement, args = _parse_option(args, "placement", PLACEMENTS)
    mp_transport, args = _parse_option(args, "mp-transport", MP_TRANSPORTS)
    mp_transport = mp_transport or "tcp"
    mp_codec, args = _parse_option(args, "mp-codec", MP_CODECS)
    mp_codec = mp_codec or "packed"
    profile_dir, args = _parse_option(args, "profile")
    wal, args = _parse_option(args, "wal", WAL_MODES)
    chaos_kill, args = _parse_option(args, "chaos-kill")
    chaos_after, args = _parse_option(args, "chaos-after")
    max_restarts, args = _parse_option(args, "max-restarts")
    arrivals, args = _parse_option(args, "arrivals", ARRIVAL_PROCESSES)
    offered_load, args = _parse_option(args, "offered-load")
    deadline_us, args = _parse_option(args, "deadline-us")
    admission, args = _parse_option(args, "admission", ADMISSIONS)
    trace_out, args = _parse_option(args, "trace-out")
    trace_sample, args = _parse_option(args, "trace-sample")
    metrics_interval, args = _parse_option(args, "metrics-interval")
    metrics_port, args = _parse_option(args, "metrics-port")
    metrics_csv, args = _parse_option(args, "metrics-csv")
    args, flush_summaries = install_summary_json(args)
    quick = "--quick" in args
    doorbell = "--doorbell" in args
    mp_recovery = "--mp-recovery" in args
    trace = "--trace" in args or trace_out is not None
    watch = "--watch" in args
    watchdog_abort = "--watchdog-abort" in args
    args = [a for a in args if not a.startswith("--")]
    durability: dict = {}
    if wal:
        durability["wal"] = wal
    if mp_recovery or chaos_kill is not None:
        durability["mp_recovery"] = True
    try:
        if chaos_kill is not None:
            durability["mp_chaos_kill_worker"] = int(chaos_kill)
        if chaos_after is not None:
            durability["mp_chaos_kill_after_s"] = float(chaos_after)
        if max_restarts is not None:
            durability["mp_max_restarts"] = int(max_restarts)
    except ValueError as exc:
        raise SystemExit(f"bad durability knob: {exc}")
    traffic: dict = {}
    if arrivals:
        traffic["arrivals"] = (ArrivalSpec(process=arrivals,
                                           admission=admission)
                               if admission else arrivals)
    elif admission or offered_load or deadline_us:
        raise SystemExit("--offered-load/--deadline-us/--admission need "
                         "--arrivals PROCESS")
    try:
        if offered_load is not None:
            traffic["offered_load"] = float(offered_load)
        if deadline_us is not None:
            traffic["deadline_us"] = float(deadline_us)
    except ValueError as exc:
        raise SystemExit(f"bad traffic knob: {exc}")
    tracing: dict = {}
    if trace:
        tracing["trace"] = True
        if trace_out is not None:
            tracing["trace_out"] = trace_out
        try:
            if trace_sample is not None:
                tracing["trace_sample"] = int(trace_sample)
        except ValueError:
            raise SystemExit(f"--trace-sample needs an integer, got "
                             f"{trace_sample!r}")
    elif trace_sample is not None:
        raise SystemExit("--trace-sample needs --trace")
    observability: dict = {}
    if metrics_interval is not None:
        try:
            observability["metrics_interval"] = float(metrics_interval)
        except ValueError:
            raise SystemExit(f"--metrics-interval needs a number "
                             f"(microseconds), got {metrics_interval!r}")
        if metrics_port is not None:
            try:
                observability["metrics_port"] = int(metrics_port)
            except ValueError:
                raise SystemExit(f"--metrics-port needs an integer, "
                                 f"got {metrics_port!r}")
        if metrics_csv is not None:
            observability["metrics_csv"] = metrics_csv
        if watch:
            observability["metrics_watch"] = True
        if watchdog_abort:
            observability["watchdog_abort"] = True
    elif (metrics_port is not None or metrics_csv is not None
          or watch or watchdog_abort):
        raise SystemExit("--metrics-port/--metrics-csv/--watch/"
                         "--watchdog-abort need --metrics-interval US")
    wanted = set(args) or {"fig7"}
    if "all" in wanted:
        wanted = {"fig7", "fig8", "fig9a", "fig9b", "fig9c", "fig10",
                  "lookup", "cost", "reorder", "minweight"}
    if doorbell:
        print("(doorbell batching ON: same-destination verbs fused per "
              "round)")
    if backend == "aio":
        print("(asyncio backend: throughput is wall-clock — commits per "
              "real second of event-loop time, not simulated microseconds; "
              "numbers are NOT comparable to sim-backend figures)")
    if backend == "mp":
        print("(multiprocess backend: one OS process per server"
              + (f", packed onto {workers} workers" if workers else "")
              + "; throughput is wall-clock across truly parallel "
              "workers — comparable to aio numbers only, never to sim "
              "figures)")
    if scheduler:
        print(f"(scheduler: {scheduler} — every engine mediates its "
              f"load through repro.sched before executing)")
    if placement:
        print(f"(placement: {placement} — access telemetry drives "
              f"periodic re-partitioning with live record migration)")
    if backend == "mp" and (mp_transport != "tcp" or mp_codec != "packed"):
        print(f"(mp wire path: transport={mp_transport} codec={mp_codec})")
    if durability:
        knobs = " ".join(f"{k}={v}" for k, v in sorted(durability.items()))
        print(f"(durability: {knobs} — commit decisions go through the "
              f"per-server WAL; dead mp workers are respawned and "
              f"replayed when mp_recovery is on)")
    if traffic:
        print(f"(open-loop traffic: arrivals={arrivals}"
              + (f" offered_load={traffic['offered_load']:.0f}/s"
                 if "offered_load" in traffic else "")
              + (f" deadline={traffic['deadline_us']:.0f}us"
                 if "deadline_us" in traffic else "")
              + (f" admission={admission}" if admission else "")
              + " — requests enter on a seeded schedule regardless of "
              "completion; latency is measured from scheduled arrival "
              "and throughput is NOT comparable to closed-loop figures)")
    if trace:
        print("(tracing: per-phase spans recorded"
              + (f", every {tracing['trace_sample']}th txn"
                 if "trace_sample" in tracing else "")
              + (f", Perfetto JSON of the last run to {trace_out}"
                 if trace_out else "")
              + " — see perf_summary()['trace'] / ['exemplars'])")
    if observability:
        unit = "simulated us" if backend == "sim" else "wall-clock us"
        print(f"(live metrics: timeline sampled every "
              f"{observability['metrics_interval']:.0f} {unit}"
              + (f", Prometheus on port {observability['metrics_port']}"
                 if "metrics_port" in observability else "")
              + (f", CSV of the last run to {metrics_csv}"
                 if metrics_csv else "")
              + (", watchdog aborts wedged runs" if watchdog_abort
                 else "")
              + " — see perf_summary()['timeline'] / ['health'])")

    def run_wanted() -> None:
        if wanted & {"fig7", "fig8", "lookup", "cost"}:
            partitions = (2, 4, 8) if quick else (2, 3, 4, 5, 6, 7, 8)
            rows = instacart_sweep(partitions, quick=quick,
                                   doorbell_batching=doorbell,
                                   backend=backend, mp_workers=workers,
                                   scheduler=scheduler, placement=placement,
                                   mp_transport=mp_transport,
                                   mp_codec=mp_codec,
                                   profile_dir=profile_dir,
                                   durability=durability or None,
                                   traffic=traffic or None,
                                   tracing=tracing or None,
                                   observability=observability or None)
            if "fig7" in wanted:
                print_fig7(rows)
            if "fig8" in wanted:
                print_fig8(rows)
            if "lookup" in wanted:
                print_lookup(rows)
            if "cost" in wanted:
                print_cost(rows)
        if wanted & {"fig9a", "fig9b", "fig9c"}:
            concurrency = ((1, 2, 4, 8) if quick
                           else (1, 2, 3, 4, 5, 6, 7, 8))
            rows = fig9_rows(concurrency, quick=quick,
                             doorbell_batching=doorbell, backend=backend,
                             mp_workers=workers, scheduler=scheduler,
                             placement=placement,
                             mp_transport=mp_transport, mp_codec=mp_codec,
                             profile_dir=profile_dir,
                             durability=durability or None,
                             traffic=traffic or None,
                             tracing=tracing or None,
                             observability=observability or None)
            if "fig9a" in wanted:
                print_fig9a(rows)
            if "fig9b" in wanted:
                print_fig9b(rows)
            if "fig9c" in wanted:
                print_fig9c(rows)
        if "fig10" in wanted:
            percents = (0, 50, 100) if quick else (0, 20, 40, 60, 80, 100)
            print_fig10(fig10_rows(percents, quick=quick,
                                   doorbell_batching=doorbell,
                                   backend=backend, mp_workers=workers,
                                   scheduler=scheduler,
                                   placement=placement,
                                   mp_transport=mp_transport,
                                   mp_codec=mp_codec,
                                   profile_dir=profile_dir,
                                   durability=durability or None,
                                   traffic=traffic or None,
                                   tracing=tracing or None,
                                   observability=observability or None))
        if "reorder" in wanted:
            print_reorder(reorder_ablation_rows(quick=quick,
                                                doorbell_batching=doorbell,
                                                backend=backend,
                                                mp_workers=workers,
                                                scheduler=scheduler))
        if "minweight" in wanted:
            print_min_weight(min_weight_ablation_rows(
                quick=quick, doorbell_batching=doorbell, backend=backend,
                mp_workers=workers, scheduler=scheduler))

    if profile_dir is None:
        try:
            run_wanted()
        finally:
            flush_summaries()
        return
    # --profile DIR: cProfile the parent (the whole sweep; on the sim
    # backend that IS the run) and have each mp worker dump its own
    # worker-N.prof into the same directory (see RunConfig.mp_profile_dir)
    import cProfile
    import os
    os.makedirs(profile_dir, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_wanted()
    finally:
        profiler.disable()
        path = os.path.join(profile_dir, "parent.prof")
        profiler.dump_stats(path)
        print(f"(cProfile dumps in {profile_dir}: parent.prof"
              + (", worker-N.prof per mp worker" if backend == "mp"
                 else "") + ")")
        flush_summaries()


if __name__ == "__main__":
    main()
