"""Experiment setups: wire workloads, layouts, and executors together.

Two families, one per evaluation section of the paper:

* **TPC-C** (Section 7.3/7.4): warehouse partitioning for everyone
  (``ModuloScheme``), so only the execution models differ.  Chiller's
  hot-record table is derived from sampled statistics through the
  contention model — warehouses and districts clear the threshold,
  customers/stock do not.

* **Instacart** (Section 7.2): layouts differ.  A training trace feeds
  hash placement (baseline), Schism's co-access min-cut, or Chiller's
  contention-aware star-graph cut; runtime then drives the NewOrder-like
  grocery procedure against the chosen layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal

from ..analysis import ProcedureRegistry
from ..core import (ChillerExecutor, ChillerPartitionerConfig,
                    HotRecordTable, StatsService, partition_workload,
                    sample_from_request)
from ..partitioning import (ModuloScheme, SchismConfig, partition_schism)
from ..storage import Catalog
from ..txn import (Database, HistoryRecorder, OccExecutor, TwoPLExecutor)
from ..workloads.instacart import InstacartWorkload
from ..workloads.tpcc import (REPLICATED_TABLES, TpccScale, TpccWorkload,
                              tpcc_routing)
from ..workloads.ycsb import YcsbWorkload
from ..sim import MpRunSpec, current_worker_cluster
from .harness import (RunConfig, RunResult, assign_wal_dir, make_cluster,
                      mp_benchmark_driver, run_benchmark, run_mp_benchmark)

ExecutorName = Literal["2pl", "occ", "chiller"]


# -- TPC-C ------------------------------------------------------------------

def tpcc_hot_table_from_stats(workload: TpccWorkload, scheme,
                              n_samples: int = 2000,
                              threshold: float = 0.05,
                              seed: int = 17) -> HotRecordTable:
    """Run the paper's statistics pipeline over a sampled trace.

    The Poisson model flags the warehouse rows (written by every
    Payment, read by every NewOrder) and the ten district rows per
    warehouse (incremented by every NewOrder); customers and stock fall
    below the threshold.
    """
    from .._util import make_rng
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    stats = StatsService(sample_rate=1.0, lock_window_us=10.0)
    rng = make_rng(seed, "tpcc-stats")
    for i in range(n_samples):
        home = i % workload.n_partitions
        stats.record(sample_from_request(registry,
                                         workload.next_request(home, rng)))
    likelihoods = stats.likelihoods_from_txn_rate(
        txns_per_second=100_000.0 * workload.n_partitions)
    return HotRecordTable.from_stats(likelihoods, threshold,
                                     scheme.partition_of)


@dataclass
class TpccRun:
    """Everything needed to execute one TPC-C cell."""

    workload: TpccWorkload
    database: Database
    executor: object
    config: RunConfig
    hot_table: HotRecordTable | None = None
    mp_spec: MpRunSpec | None = None
    """How mp-backend worker processes rebuild this run (attached by the
    setup factories when ``config.backend == "mp"`` in the parent)."""

    def run(self) -> RunResult:
        if self.mp_spec is not None:
            return run_mp_benchmark(self.mp_spec, self.config,
                                    database=self.database)
        return run_benchmark(self.workload, self.executor, self.config)


def make_tpcc_run(executor_name: ExecutorName,
                  config: RunConfig,
                  workload: TpccWorkload | None = None,
                  hot_from_stats: bool = False) -> TpccRun:
    """Build a TPC-C database + executor over warehouse partitioning."""
    workload = workload or TpccWorkload(
        TpccScale(n_warehouses=config.n_partitions),
        n_partitions=config.n_partitions)
    assign_wal_dir(config)
    cluster = make_cluster(config)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    scheme = ModuloScheme(config.n_partitions, routing=tpcc_routing)
    catalog = Catalog(config.n_partitions, scheme,
                      replicated_tables=REPLICATED_TABLES)
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=config.n_replicas,
                  track_spans=config.track_spans,
                  wal=config.wal_spec())
    workload.populate(db.loader())
    history = HistoryRecorder() if config.record_history else None
    hot_table = None
    if executor_name == "2pl":
        executor = TwoPLExecutor(db, config.exec_config, history)
    elif executor_name == "occ":
        executor = OccExecutor(db, config.exec_config, history)
    elif executor_name == "chiller":
        if hot_from_stats:
            hot_table = tpcc_hot_table_from_stats(workload, scheme)
        else:
            hot_table = tpcc_static_hot_table(workload, scheme)
        executor = ChillerExecutor(db, hot_table, config.exec_config,
                                   history)
    else:
        raise ValueError(f"unknown executor {executor_name!r}")
    run = TpccRun(workload, db, executor, config, hot_table)
    if config.backend == "mp" and current_worker_cluster() is None:
        # parent-side build: record how each worker process re-creates
        # this exact cell (same args -> same deterministic database)
        run.mp_spec = MpRunSpec(
            builder=make_tpcc_run, args=(executor_name, config),
            kwargs={"workload": workload, "hot_from_stats": hot_from_stats},
            driver=mp_benchmark_driver)
    return run


def make_ycsb_run(executor_name: ExecutorName,
                  config: RunConfig,
                  workload: YcsbWorkload | None = None) -> TpccRun:
    """Build a YCSB key-value cell over modulo partitioning.

    The wire-path microbenchmarks use this: YCSB's flat read/write mix
    with ``route_by_data`` off makes nearly every transaction touch
    foreign partitions, so throughput tracks the transport + codec cost
    more directly than TPC-C's mostly-local mix.  Module-level and
    picklable-by-reference so mp workers rebuild it by name.
    """
    workload = workload or YcsbWorkload()
    assign_wal_dir(config)
    cluster = make_cluster(config)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    scheme = ModuloScheme(config.n_partitions)
    catalog = Catalog(config.n_partitions, scheme)
    db = Database(cluster, catalog, workload.tables(), registry,
                  n_replicas=config.n_replicas,
                  track_spans=config.track_spans,
                  wal=config.wal_spec())
    workload.populate(db.loader())
    history = HistoryRecorder() if config.record_history else None
    if executor_name == "2pl":
        executor = TwoPLExecutor(db, config.exec_config, history)
    elif executor_name == "occ":
        executor = OccExecutor(db, config.exec_config, history)
    else:
        raise ValueError(f"unknown YCSB executor {executor_name!r} "
                         "(expected 2pl | occ)")
    run = TpccRun(workload, db, executor, config, None)
    if config.backend == "mp" and current_worker_cluster() is None:
        run.mp_spec = MpRunSpec(
            builder=make_ycsb_run, args=(executor_name, config),
            kwargs={"workload": workload},
            driver=mp_benchmark_driver)
    return run


def tpcc_static_hot_table(workload: TpccWorkload,
                          scheme) -> HotRecordTable:
    """The analytically-known TPC-C hot set: warehouses + districts."""
    from ..workloads.tpcc import DISTRICTS_PER_WAREHOUSE
    entries = {}
    for w in range(workload.scale.n_warehouses):
        entries[("warehouse", w)] = scheme.partition_of("warehouse", w)
        for d in range(DISTRICTS_PER_WAREHOUSE):
            entries[("district", (w, d))] = scheme.partition_of(
                "district", (w, d))
    return HotRecordTable(entries)


# -- Instacart ------------------------------------------------------------------

LayoutName = Literal["hashing", "schism", "chiller"]


@dataclass
class InstacartLayout:
    """A trained layout plus its diagnostics."""

    name: str
    scheme: object
    hot_table: HotRecordTable
    lookup_table_size: int
    graph_edges: int
    partition_seconds: float
    executor_name: ExecutorName = "2pl"


@dataclass
class InstacartSetup:
    """Shared training artifacts for one Instacart configuration."""

    workload: InstacartWorkload
    n_partitions: int
    samples: list = field(default_factory=list)
    likelihoods: dict = field(default_factory=dict)


def build_instacart_setup(n_partitions: int,
                          n_train: int = 1500,
                          workload: InstacartWorkload | None = None,
                          seed: int = 7,
                          lock_window_us: float = 10.0,
                          assumed_tps: float = 400_000.0,
                          ) -> InstacartSetup:
    """Generate the training trace and contention statistics."""
    workload = workload or InstacartWorkload()
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    trace = workload.trace(n_train, n_partitions, seed=seed)
    stats = StatsService(sample_rate=1.0, lock_window_us=lock_window_us)
    for request in trace:
        stats.record(sample_from_request(registry, request))
    likelihoods = stats.likelihoods_from_txn_rate(assumed_tps)
    return InstacartSetup(workload, n_partitions,
                          samples=stats.samples,
                          likelihoods=likelihoods)


def build_instacart_layout(setup: InstacartSetup, name: LayoutName,
                           seed: int = 7,
                           eps: float = 0.15,
                           hot_threshold: float = 0.02,
                           min_weight: float = 0.0,
                           n_tries: int = 2) -> InstacartLayout:
    """Train one of the three layouts the Fig. 7/8 experiment compares."""
    k = setup.n_partitions
    fallback = ModuloScheme(k)  # stock by product id, orders by home
    if name == "hashing":
        return InstacartLayout("hashing", fallback,
                               HotRecordTable.empty(), 0, 0, 0.0, "2pl")
    if name == "schism":
        start = time.perf_counter()
        result = partition_schism(
            setup.samples, k, SchismConfig(eps=eps, seed=seed))
        elapsed = time.perf_counter() - start
        return InstacartLayout("schism", result.scheme(fallback),
                               HotRecordTable.empty(),
                               result.lookup_table_size(),
                               result.n_edges, elapsed, "2pl")
    if name == "chiller":
        start = time.perf_counter()
        result = partition_workload(
            setup.samples, setup.likelihoods, k,
            ChillerPartitionerConfig(eps=eps, seed=seed,
                                     hot_threshold=hot_threshold,
                                     min_weight=min_weight))
        elapsed = time.perf_counter() - start
        return InstacartLayout("chiller", result.scheme(fallback),
                               result.hot_table,
                               result.lookup_table_size(),
                               result.star.graph.n_edges, elapsed,
                               "chiller")
    raise ValueError(f"unknown layout {name!r}")


def make_instacart_run(setup: InstacartSetup, layout: InstacartLayout,
                       config: RunConfig,
                       executor_override: ExecutorName | None = None,
                       ) -> TpccRun:
    """Build the runtime database for one trained layout.

    ``executor_override`` supports the ablations: e.g. two-region
    execution over a Schism or hash layout ("reorder-only").
    """
    assign_wal_dir(config)
    cluster = make_cluster(config)
    registry = ProcedureRegistry()
    for proc in setup.workload.procedures():
        registry.register(proc)
    catalog = Catalog(config.n_partitions, layout.scheme)
    db = Database(cluster, catalog, setup.workload.tables(), registry,
                  n_replicas=config.n_replicas,
                  track_spans=config.track_spans,
                  wal=config.wal_spec())
    setup.workload.populate(db.loader())
    history = HistoryRecorder() if config.record_history else None
    executor_name = executor_override or layout.executor_name
    if executor_name == "2pl":
        executor = TwoPLExecutor(db, config.exec_config, history)
    elif executor_name == "occ":
        executor = OccExecutor(db, config.exec_config, history)
    else:
        hot_table = layout.hot_table
        if not len(hot_table):
            # two-region execution over a foreign layout: hot records
            # from the stats, placements from that layout
            from ..core.lookup import HotRecordTable as Hot
            hot_table = Hot.from_stats(
                setup.likelihoods, 0.02,
                lambda table, key: catalog.partition_of(table, key))
        executor = ChillerExecutor(db, hot_table, config.exec_config,
                                   history)
    run = TpccRun(setup.workload, db, executor, config, None)
    if config.backend == "mp" and current_worker_cluster() is None:
        run.mp_spec = MpRunSpec(
            builder=make_instacart_run, args=(setup, layout, config),
            kwargs={"executor_override": executor_override},
            driver=mp_benchmark_driver)
    return run
