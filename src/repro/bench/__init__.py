"""Benchmark harness: driver, metrics, and per-figure experiments."""

from .harness import (BACKENDS, RunConfig, RunResult, build_database,
                      install_summary_json, make_cluster,
                      mp_benchmark_driver, run_benchmark,
                      run_mp_benchmark)
from .metrics import Metrics

__all__ = [
    "BACKENDS",
    "Metrics",
    "RunConfig",
    "RunResult",
    "build_database",
    "install_summary_json",
    "make_cluster",
    "mp_benchmark_driver",
    "run_benchmark",
    "run_mp_benchmark",
]
