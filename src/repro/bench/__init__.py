"""Benchmark harness: driver, metrics, and per-figure experiments."""

from .harness import RunConfig, RunResult, build_database, run_benchmark
from .metrics import Metrics

__all__ = [
    "Metrics",
    "RunConfig",
    "RunResult",
    "build_database",
    "run_benchmark",
]
