"""Cross-backend conformance: one program, one decision sequence.

The figure sweeps cannot compare backends directly — sim counts
simulated microseconds, aio/mp count wall time, and contention makes
wall-clock outcomes scheduling-dependent.  What *must* agree everywhere
is the decision logic: given the same database and the same sequence of
transactions executed one at a time (no races), every backend has to
produce the identical commit/abort decision — and abort reason — for
every attempt, because each decision then depends only on data, never
on timing.

This module is that shared program: a bank database over 2 partitions
with replication, driven by a fixed request list that deliberately
exercises commits, logical aborts (insufficient funds), and read misses
(transfers touching a nonexistent account), through either the 2PL or
the OCC executor — covering the codec's lock/read, commit, release,
validate, and replica_apply verbs plus RPC-free and replicated paths.

Everything here is module-level and picklable so the multiprocess
backend's spawned workers can rebuild it by reference; the tier-1 suite
(`tests/sim/test_mp_runtime.py`) asserts sim == aio == mp, and CI's
`mp-backend-smoke` job runs it on every push.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..analysis import ProcedureRegistry
from ..core import HotRecordTable
from ..partitioning import HashScheme
from ..placement import (MigrationExecutor, PlacementSpec, PlacementStats,
                         install_flip_handler)
from ..sched import SchedAction, Scheduler
from ..sim import OneSided
from ..sim.codec import OpDescriptor
from ..storage import Catalog
from ..txn import Database, OccExecutor, TwoPLExecutor
from ..txn.common import TxnRequest, seed_txn_ids
from ..workloads.bank import BankWorkload
from ..workloads.ycsb import YcsbWorkload
from .harness import (RunConfig, build_database, make_cluster,
                      make_schedulers)

N_ACCOUNTS = 64
DRIVER_HOME = 0
"""All conformance transactions coordinate from server 0 (worker 0 on
the mp backend); remote accounts force cross-server — and on mp,
cross-process — verbs."""


def conformance_config(backend: str, n_partitions: int = 2,
                       mp_transport: str = "tcp",
                       mp_codec: str = "packed") -> RunConfig:
    """The shared run shape.  ``horizon_us`` is irrelevant (the driver
    executes a fixed request list, not horizon-bounded load) but bounds
    the mp hang guard.  ``mp_transport`` / ``mp_codec`` select the mp
    wire path — decisions must not depend on how frames travel."""
    return RunConfig(n_partitions=n_partitions, backend=backend,
                     n_replicas=1, horizon_us=30_000.0,
                     mp_run_timeout_s=120.0, seed=13,
                     mp_transport=mp_transport, mp_codec=mp_codec)


@dataclass
class ConformanceRun:
    """The run-object contract mp drivers expect."""

    workload: BankWorkload
    database: Database
    executor: object
    config: RunConfig
    executor_name: str


def build_conformance_run(config: RunConfig,
                          executor: str = "2pl") -> ConformanceRun:
    """Deterministically build the shared bank database + executor.

    Module-level and picklable-by-reference: the mp backend's workers
    call this to recreate identical state in every process.
    """
    workload = BankWorkload(n_accounts=N_ACCOUNTS, initial_balance=100.0,
                            amount=30.0)
    cluster = make_cluster(config)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(config.n_partitions,
                                   HashScheme(config.n_partitions)),
                  workload.tables(), registry,
                  n_replicas=config.n_replicas)
    workload.populate(db.loader())
    if executor == "2pl":
        exec_ = TwoPLExecutor(db)
    elif executor == "occ":
        exec_ = OccExecutor(db)
    else:
        raise ValueError(f"unknown conformance executor {executor!r}")
    return ConformanceRun(workload, db, exec_, config, executor)


def conformance_requests() -> list[TxnRequest]:
    """The fixed program: commits, logical aborts, and read misses.

    Account k lives on partition ``hash(k) % 2``; the mix below crosses
    partitions repeatedly.  Repeated debits from account 1 (balance 100,
    amount 30) commit three times then fail the funds CHECK — a
    deterministic LOGICAL abort; transfers touching account 9999 miss.
    """
    reqs = []

    def transfer(src, dst, amount=30.0):
        reqs.append(TxnRequest("transfer",
                               {"src": src, "dst": dst, "amount": amount},
                               home=DRIVER_HOME))

    for dst in (2, 3, 4, 5):          # drain account 1: 3 commits + aborts
        transfer(1, dst)
    transfer(1, 6)                    # still broke: LOGICAL abort again
    transfer(2, 1)                    # refund: commit
    transfer(1, 7)                    # funded again: commit
    transfer(8, 9999)                 # READ_MISS (missing destination)
    transfer(9999, 8)                 # READ_MISS (missing source)
    for src, dst in ((10, 11), (12, 13), (14, 10), (11, 12)):
        transfer(src, dst)            # plain cross-partition commits
    transfer(10, 15, amount=1000.0)   # LOGICAL abort (never that rich)
    reqs.append(TxnRequest("audit", {"accounts": [1, 2, 10, 11, 14]},
                           home=DRIVER_HOME))
    return reqs


def decision_program(run: ConformanceRun, decisions: list):
    """A coroutine executing the fixed requests strictly in sequence."""
    for request in conformance_requests():
        outcome = yield from run.executor.execute(request)
        decisions.append((request.proc, outcome.committed,
                          outcome.reason.value if outcome.reason else None))
    return decisions


def conformance_driver(run: ConformanceRun, cluster, worker_id: int):
    """mp worker driver: worker 0 drives the program, others serve."""
    seed_txn_ids(worker_id)
    decisions: list = []
    if cluster.owns(DRIVER_HOME):
        cluster.engine(DRIVER_HOME).spawn(decision_program(run, decisions))

    def finalize() -> dict:
        return {"decisions": decisions}

    return finalize


def run_conformance(backend: str, executor: str = "2pl",
                    mp_transport: str = "tcp",
                    mp_codec: str = "packed") -> list[tuple]:
    """Execute the shared program on ``backend``; return its decisions."""
    config = conformance_config(backend, mp_transport=mp_transport,
                                mp_codec=mp_codec)
    if backend == "mp":
        from ..sim import MpRunSpec, run_mp_workers
        spec = MpRunSpec(builder=build_conformance_run,
                         args=(config,), kwargs={"executor": executor},
                         driver=conformance_driver)
        payloads = run_mp_workers(spec, config)
        decisions = [p["decisions"] for p in payloads if p["decisions"]]
        assert len(decisions) == 1, "exactly one worker drives the program"
        return decisions[0]
    run = build_conformance_run(config, executor)
    decisions: list = []
    run.database.cluster.engine(DRIVER_HOME).spawn(
        decision_program(run, decisions))
    run.database.cluster.run()
    return decisions


# -- scheduler conformance ----------------------------------------------------
#
# The scheduling layer must be *transparent* to decision logic: a fixed,
# race-free request sequence has to produce the identical commit/abort
# decisions whether it runs through the raw executor loop, through
# FifoScheduler mediation, or through ConflictClassScheduler mediation
# — and, for each scheduler, identically on every backend.  The bank
# program above covers cross-partition verbs; the YCSB snippet below
# hammers two hot keys so conflict classes actually form (sequential
# execution means the classes serialize trivially, which is exactly the
# point: scheduling may reorder *when*, never *what*).

YCSB_N_KEYS = 64
YCSB_HOT_KEYS = (0, 1)


def build_ycsb_conformance_run(config: RunConfig,
                               executor: str = "2pl") -> ConformanceRun:
    """Deterministic hot-key YCSB database + executor (module-level and
    picklable-by-reference, like :func:`build_conformance_run`)."""
    workload = YcsbWorkload(n_keys=YCSB_N_KEYS, reads_per_txn=2,
                            writes_per_txn=2)
    db, _cluster = build_database(
        workload, Catalog(config.n_partitions,
                          HashScheme(config.n_partitions)), config)
    if executor == "2pl":
        exec_ = TwoPLExecutor(db)
    elif executor == "occ":
        exec_ = OccExecutor(db)
    else:
        raise ValueError(f"unknown conformance executor {executor!r}")
    return ConformanceRun(workload, db, exec_, config, executor)


def ycsb_conformance_requests() -> list[TxnRequest]:
    """A fixed hot-key program: every transaction writes one of two hot
    keys plus a distinct cold key, so the conflict scheduler builds
    real (overlapping) classes while the decisions stay deterministic."""
    reqs = []
    for i in range(12):
        hot = YCSB_HOT_KEYS[i % len(YCSB_HOT_KEYS)]
        cold = 8 + i
        reqs.append(TxnRequest("ycsb", {
            "read_keys": [16 + i, 40 + (i % 4)],
            "write_keys": [hot, cold],
        }, home=DRIVER_HOME))
    return reqs


def scheduled_decision_program(run: ConformanceRun,
                               scheduler: Scheduler | None,
                               decisions: list,
                               requests: list[TxnRequest]):
    """Execute ``requests`` in sequence, mediated by ``scheduler``.

    ``scheduler=None`` is the historical raw loop.  Mirrors the
    harness's dispatch exactly: admit → (wait) → execute → on_outcome;
    shed requests record a typed decision instead of an Outcome.
    """
    cluster = run.database.cluster
    for request in requests:
        if scheduler is not None:
            decision = scheduler.admit(request, cluster.sim.now)
            while decision.action is SchedAction.DEFER:
                yield decision.wait_effect()
                decision = scheduler.readmit(request, decision,
                                             cluster.sim.now)
            if decision.action is SchedAction.SHED:
                decisions.append((request.proc, "shed",
                                  decision.reason.value))
                continue
        outcome = yield from run.executor.execute(request)
        if scheduler is not None:
            scheduler.on_outcome(decision, outcome, cluster.sim.now,
                                 will_retry=False)
        decisions.append((request.proc, outcome.committed,
                          outcome.reason.value if outcome.reason else None))
    return decisions


def _engine_scheduler(run: ConformanceRun) -> Scheduler | None:
    """The driver engine's scheduler per ``run.config`` (None: raw loop,
    signalled by ``config.scheduler`` being the sentinel ``"raw"``)."""
    if run.config.scheduler == "raw":
        return None
    return make_schedulers(run.executor, run.config,
                           [DRIVER_HOME])[DRIVER_HOME]


def ycsb_conformance_driver(run: ConformanceRun, cluster, worker_id: int):
    """mp worker driver for the scheduled YCSB program."""
    seed_txn_ids(worker_id)
    decisions: list = []
    if cluster.owns(DRIVER_HOME):
        cluster.engine(DRIVER_HOME).spawn(scheduled_decision_program(
            run, _engine_scheduler(run), decisions,
            ycsb_conformance_requests()))

    def finalize() -> dict:
        return {"decisions": decisions}

    return finalize


def run_ycsb_conformance(backend: str, executor: str = "2pl",
                         scheduler: str | None = "fifo") -> list[tuple]:
    """The scheduled hot-key program's decisions on ``backend``.

    ``scheduler``: ``"fifo"`` / ``"conflict"`` mediate through that
    scheduler; ``None`` runs the raw (unscheduled) loop.
    """
    config = dataclasses.replace(
        conformance_config(backend),
        scheduler=scheduler if scheduler else "raw")
    if backend == "mp":
        from ..sim import MpRunSpec, run_mp_workers
        spec = MpRunSpec(builder=build_ycsb_conformance_run,
                         args=(config,), kwargs={"executor": executor},
                         driver=ycsb_conformance_driver)
        payloads = run_mp_workers(spec, config)
        decisions = [p["decisions"] for p in payloads if p["decisions"]]
        assert len(decisions) == 1, "exactly one worker drives the program"
        return decisions[0]
    run = build_ycsb_conformance_run(config, executor)
    decisions: list = []
    run.database.cluster.engine(DRIVER_HOME).spawn(
        scheduled_decision_program(run, _engine_scheduler(run), decisions,
                                   ycsb_conformance_requests()))
    run.database.cluster.run()
    return decisions


# -- migration conformance ----------------------------------------------------
#
# Live record migration must be *transparent* to decision logic: a
# fixed, race-free program that interleaves transactions with record
# moves has to produce identical commit/abort decisions — and identical
# final record values — on every backend.  The program below hammers
# one hot YCSB key across two partitions: write it, migrate it to the
# other partition (a locking migration txn: lock at source, ship,
# install, flip the epoch-versioned routing, delete at source), write
# it again at its new home, migrate it *back*, and audit the counter.
# The counter equals the number of committed writes everywhere, which
# is the sequential form of "a migrating record never loses a
# committed write" (the concurrent form lives in
# tests/placement/test_migration.py on the deterministic simulator).

MIGRATION_HOT_KEY = 3


def build_migration_conformance_run(config: RunConfig,
                                    executor: str = "2pl",
                                    ) -> ConformanceRun:
    """Deterministic YCSB database over a *live* epoch-versioned
    catalog scheme, with the placement-flip RPC installed (module-level
    and picklable-by-reference for mp workers)."""
    workload = YcsbWorkload(n_keys=YCSB_N_KEYS, reads_per_txn=2,
                            writes_per_txn=2)
    catalog = Catalog(config.n_partitions,
                      HotRecordTable.empty().live_scheme(
                          HashScheme(config.n_partitions)))
    db, _cluster = build_database(workload, catalog, config)
    install_flip_handler(db, PlacementSpec(kind="adaptive"),
                         PlacementStats(placement="adaptive"))
    if executor == "2pl":
        exec_ = TwoPLExecutor(db)
    elif executor == "occ":
        exec_ = OccExecutor(db)
    else:
        raise ValueError(f"unknown conformance executor {executor!r}")
    return ConformanceRun(workload, db, exec_, config, executor)


def migration_decision_program(run: ConformanceRun, decisions: list):
    """Transactions interleaved with live migrations, in sequence."""
    db = run.database
    stats = PlacementStats(placement="adaptive")
    migrator = MigrationExecutor(db, DRIVER_HOME,
                                 PlacementSpec(kind="adaptive"), stats)
    hot = MIGRATION_HOT_KEY

    def txn(reads, writes):
        outcome = yield from run.executor.execute(TxnRequest(
            "ycsb", {"read_keys": reads, "write_keys": writes},
            home=DRIVER_HOME))
        decisions.append(("ycsb", outcome.committed,
                          outcome.reason.value if outcome.reason else None))

    def note_placement():
        decisions.append(("placed", db.partition_of("usertable", hot),
                          db.placement_epoch()))

    yield from txn([1, 2], [hot, 5])          # write the hot key at home
    yield from txn([hot, 6], [7, 8])          # read it
    note_placement()

    src = db.partition_of("usertable", hot)
    dst = (src + 1) % db.n_partitions
    moved = yield from migrator.migrate("usertable", hot, dst, epoch=1)
    decisions.append(("migrate", moved, None))
    note_placement()

    yield from txn([9, 10], [hot, 11])        # write at the new home
    yield from txn([hot, 12], [13, 14])       # read at the new home

    moved = yield from migrator.migrate("usertable", hot, src, epoch=2)
    decisions.append(("migrate_back", moved, None))
    note_placement()
    yield from txn([15], [hot, 16])           # write back at the old home

    # a move of a nonexistent record must skip cleanly (and leave no lock)
    missing = yield from migrator.migrate("usertable", 9999,
                                          dst, epoch=3)
    decisions.append(("migrate_missing", missing, None))
    yield from txn([17], [18, 19])            # the table still works

    pid = db.partition_of("usertable", hot)
    value = yield OneSided(pid, OpDescriptor(
        "plain_read", pid, "usertable", hot).bind(db.dispatch_context),
        kind="lock_read")
    decisions.append(("counter", value[1]["counter"],
                      stats.moves_applied))
    return decisions


def migration_conformance_driver(run: ConformanceRun, cluster,
                                 worker_id: int):
    """mp worker driver: worker 0 drives, every worker serves flips."""
    seed_txn_ids(worker_id)
    decisions: list = []
    if cluster.owns(DRIVER_HOME):
        cluster.engine(DRIVER_HOME).spawn(
            migration_decision_program(run, decisions))

    def finalize() -> dict:
        return {"decisions": decisions}

    return finalize


def run_migration_conformance(backend: str,
                              executor: str = "2pl") -> list[tuple]:
    """The migration program's decisions on ``backend``."""
    config = conformance_config(backend)
    if backend == "mp":
        from ..sim import MpRunSpec, run_mp_workers
        spec = MpRunSpec(builder=build_migration_conformance_run,
                         args=(config,), kwargs={"executor": executor},
                         driver=migration_conformance_driver)
        payloads = run_mp_workers(spec, config)
        decisions = [p["decisions"] for p in payloads if p["decisions"]]
        assert len(decisions) == 1, "exactly one worker drives the program"
        return decisions[0]
    run = build_migration_conformance_run(config, executor)
    decisions: list = []
    run.database.cluster.engine(DRIVER_HOME).spawn(
        migration_decision_program(run, decisions))
    run.database.cluster.run()
    return decisions
