"""Coroutine-based execution engines.

Chiller hides network latency by running each transaction as a coroutine
on a per-core execution engine: when one transaction blocks on the
network, the engine switches to another (Section 6 of the paper).  We use
plain Python generators as coroutines.  A transaction coroutine *yields
effects* and is resumed with their results:

* :class:`Compute` — consume this engine's CPU for ``cost`` microseconds.
* :class:`OneSided` — a one-sided verb against a (possibly remote)
  partition's storage; resumes with the verb's return value.
* :class:`Rpc` — send a payload to another engine's RPC handler (itself a
  coroutine, consuming the *remote* CPU); resumes with the reply.
* :class:`All` — perform several effects concurrently; resumes with the
  list of their results (used, e.g., to lock records on many servers in
  one round trip).
* :class:`Sleep` — pure delay.

Sub-procedures compose with ``yield from``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from .cpu import Core
from .events import Simulator
from .network import Network

Coroutine = Generator["Effect", Any, Any]


class Effect:
    """Base class for everything a transaction coroutine may yield."""

    __slots__ = ()


class Compute(Effect):
    """Consume ``cost`` microseconds of the engine's CPU."""

    __slots__ = ("cost",)

    def __init__(self, cost: float):
        self.cost = cost


class OneSided(Effect):
    """Execute ``op`` against server ``target``'s storage via the NIC."""

    __slots__ = ("target", "op")

    def __init__(self, target: int, op: Callable[[], Any]):
        self.target = target
        self.op = op


class Rpc(Effect):
    """Send ``payload`` to server ``target``'s RPC handler, await reply."""

    __slots__ = ("target", "payload")

    def __init__(self, target: int, payload: Any):
        self.target = target
        self.payload = payload


class All(Effect):
    """Perform several effects concurrently; resume with list of results."""

    __slots__ = ("effects",)

    def __init__(self, effects: Iterable[Effect]):
        self.effects = tuple(effects)


class Sleep(Effect):
    """Suspend for ``delay`` microseconds without consuming CPU."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay


class Signal:
    """A one-shot rendezvous: coroutines Await it, someone fires it.

    Used for out-of-band completions, e.g. the Chiller coordinator
    waiting for the inner host's replicas to acknowledge (the acks
    arrive as messages addressed to the coordinator, not as replies to
    any request the coordinator sent).
    """

    __slots__ = ("fired", "value", "_waiters")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError("signal already fired")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)


class Await(Effect):
    """Suspend until ``signal`` fires; resumes with the fired value."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


class _Task:
    __slots__ = ("gen", "on_done")

    def __init__(self, gen: Coroutine, on_done: Callable[[Any], None] | None):
        self.gen = gen
        self.on_done = on_done


class Engine:
    """A per-core transaction execution engine.

    The engine drives coroutines to completion, multiplexing them over one
    simulated :class:`~repro.sim.cpu.Core`.  Incoming RPCs spawn handler
    coroutines on this same engine (and therefore compete for its CPU),
    exactly like the worker co-routines in the paper.
    """

    def __init__(self, sim: Simulator, network: Network, server_id: int):
        self.sim = sim
        self.network = network
        self.server_id = server_id
        self.core = Core(sim)
        self.active_tasks = 0
        self._rpc_handler: Callable[[int, Any], Coroutine] | None = None
        network.register_handler(server_id, self._on_message)

    def set_rpc_handler(self,
                        handler: Callable[[int, Any], Coroutine]) -> None:
        """Install the coroutine factory used to serve incoming RPCs.

        ``handler(src, request)`` must return a coroutine whose return
        value is the RPC reply.
        """
        self._rpc_handler = handler

    def spawn(self, gen: Coroutine,
              on_done: Callable[[Any], None] | None = None) -> None:
        """Start driving a coroutine; ``on_done`` receives its return."""
        self.active_tasks += 1
        self._advance(_Task(gen, on_done), None)

    # -- internal driving machinery ------------------------------------

    def _advance(self, task: _Task, value: Any) -> None:
        try:
            effect = task.gen.send(value)
        except StopIteration as stop:
            self.active_tasks -= 1
            if task.on_done is not None:
                task.on_done(stop.value)
            return
        self._perform(effect, lambda result: self._advance(task, result))

    def _perform(self, effect: Effect,
                 cont: Callable[[Any], None]) -> None:
        if isinstance(effect, Compute):
            self.core.execute(effect.cost, lambda: cont(None))
        elif isinstance(effect, OneSided):
            self.network.one_sided(self.server_id, effect.target,
                                   effect.op, cont)
        elif isinstance(effect, Rpc):
            self._send_rpc(effect, cont)
        elif isinstance(effect, Sleep):
            self.sim.schedule(effect.delay, lambda: cont(None))
        elif isinstance(effect, Await):
            if effect.signal.fired:
                self.sim.schedule(0.0,
                                  lambda: cont(effect.signal.value))
            else:
                effect.signal._waiters.append(cont)
        elif isinstance(effect, All):
            self._perform_all(effect, cont)
        else:
            raise TypeError(f"unknown effect {effect!r}")

    def _perform_all(self, effect: All,
                     cont: Callable[[Any], None]) -> None:
        n = len(effect.effects)
        if n == 0:
            # No sub-effects: resume immediately (still asynchronously, so
            # callers cannot observe a reentrant resume).
            self.sim.schedule(0.0, lambda: cont([]))
            return
        results: list[Any] = [None] * n
        remaining = [n]

        def collector(index: int) -> Callable[[Any], None]:
            def collect(value: Any) -> None:
                results[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    cont(results)
            return collect

        for i, sub in enumerate(effect.effects):
            self._perform(sub, collector(i))

    # -- RPC plumbing ----------------------------------------------------

    def _send_rpc(self, effect: Rpc, cont: Callable[[Any], None]) -> None:
        self.network.send(self.server_id, effect.target,
                          _RpcRequest(self.server_id, effect.payload, cont))

    def _on_message(self, src: int, payload: Any) -> None:
        if isinstance(payload, _RpcRequest):
            if self._rpc_handler is None:
                raise RuntimeError(
                    f"server {self.server_id} received an RPC but has no "
                    f"handler installed")
            handler_gen = self._rpc_handler(src, payload.payload)
            self.spawn(handler_gen,
                       on_done=lambda reply: self.network.send(
                           self.server_id, src,
                           _RpcReply(payload, reply)))
        elif isinstance(payload, _RpcReply):
            payload.request.cont(payload.value)
        elif isinstance(payload, OneWay):
            if self._rpc_handler is None:
                raise RuntimeError(
                    f"server {self.server_id} received a message but has "
                    f"no handler installed")
            self.spawn(self._rpc_handler(src, payload.payload))
        else:
            raise TypeError(f"unexpected network payload {payload!r}")

    def post(self, target: int, payload: Any) -> None:
        """Fire-and-forget message to ``target`` (no reply awaited)."""
        self.network.send(self.server_id, target, OneWay(payload))


class OneWay:
    """Wrapper marking a message that expects no reply."""

    __slots__ = ("payload",)

    def __init__(self, payload: Any):
        self.payload = payload


class _RpcRequest:
    __slots__ = ("src", "payload", "cont")

    def __init__(self, src: int, payload: Any, cont: Callable[[Any], None]):
        self.src = src
        self.payload = payload
        self.cont = cont


class _RpcReply:
    __slots__ = ("request", "value")

    def __init__(self, request: _RpcRequest, value: Any):
        self.request = request
        self.value = value
