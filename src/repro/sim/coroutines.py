"""Per-core execution engines (thin facade over the effect runtime).

The effect vocabulary a transaction yields lives in
:mod:`repro.sim.effects`; the interpretation of those effects — task
scheduling, dispatch, completion plumbing, doorbell batching — lives in
:class:`repro.sim.runtime.EffectRuntime`.  The :class:`Engine` here is
the per-server facade the rest of the system talks to: it wires one
runtime to the network's delivery handler and re-exposes the runtime's
surface under the historical names.  Both are re-exported from
``repro.sim``, so existing imports keep working.
"""

from __future__ import annotations

from typing import Any, Callable

from .cpu import Core
from .effects import (All, Await, BatchedOneSided, Compute,  # noqa: F401
                      Coroutine, Effect, OneSided, OneWay, Rpc, Signal,
                      Sleep)
from .events import Simulator
from .network import Network
from .runtime import EffectRuntime


class Engine:
    """A per-core transaction execution engine.

    The engine drives coroutines to completion, multiplexing them over
    one simulated :class:`~repro.sim.cpu.Core`.  All actual effect
    interpretation is delegated to the engine's
    :class:`~repro.sim.runtime.EffectRuntime`; swapping the runtime
    swaps the execution backend without changing any caller.
    """

    def __init__(self, sim: Simulator, network: Network, server_id: int,
                 runtime: EffectRuntime | None = None):
        self.sim = sim
        self.network = network
        self.server_id = server_id
        self.runtime = runtime or EffectRuntime(sim, network, server_id)
        network.register_handler(server_id, self.runtime.on_message)

    @property
    def core(self) -> Core:
        return self.runtime.core

    @property
    def active_tasks(self) -> int:
        return self.runtime.active_tasks

    def set_rpc_handler(self,
                        handler: Callable[[int, Any], Coroutine]) -> None:
        """Install the coroutine factory used to serve incoming RPCs.

        ``handler(src, request)`` must return a coroutine whose return
        value is the RPC reply.
        """
        self.runtime.rpc_handler = handler

    def spawn(self, gen: Coroutine,
              on_done: Callable[[Any], None] | None = None) -> None:
        """Start driving a coroutine; ``on_done`` receives its return."""
        self.runtime.spawn(gen, on_done)

    def post(self, target: int, payload: Any) -> None:
        """Fire-and-forget message to ``target`` (no reply awaited)."""
        self.runtime.post(target, payload)
