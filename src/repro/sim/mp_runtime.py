"""Multiprocess execution backend: every server is a real OS process.

The asyncio backend runs all servers as tasks of one process, so its
wall-clock numbers understate what truly parallel coordinators do to
each other.  Here each worker process runs its own asyncio event loop
(one or more servers per worker), and **everything** that crosses a
server boundary crosses a process boundary: one-sided verbs travel as
pickled :class:`~repro.sim.codec.OpDescriptor` specs dispatched against
the receiving worker's storage, RPC calls and replication messages as
token-routed wire envelopes (:class:`~repro.sim.codec.WireRpc` & co).
There is no escrow — a payload that cannot serialize raises a
:class:`~repro.sim.codec.CodecError` naming the offending effect.

**Topology.**  ``run_mp_workers(spec, config)`` (the parent) spawns one
worker per server by default (``config.mp_workers`` caps the process
count; servers are assigned round-robin).  Every worker deterministically
rebuilds the database from the spec's *builder* — a picklable
module-level factory — so all workers hold identical initial data; the
copy of partition ``p`` on ``p``'s owning worker is the authoritative
one, and every access to ``p`` routes there (local copies of foreign
partitions are never touched after loading).

**Lifecycle.**  Workers exchange listener ports through the parent,
connect lazily (one TCP connection per ordered worker pair, FIFO per
(src, dst) server channel), drive their share of the load, report
``done`` with their metrics payload at local quiescence, and keep
*serving* remote requests until the parent — having heard from every
worker — broadcasts ``stop``.  Teardown is unconditional: on success,
failure, or timeout the parent joins every worker, escalating to
``terminate``/``kill`` so an aborted run can never leak processes.

**Determinism caveat.**  Like the asyncio backend, runs are wall-clock
and scheduling-dependent — now additionally subject to OS process
scheduling.  Commit/abort *decisions* of contention-free programs remain
identical across sim/aio/mp (the conformance suite asserts this); counts
under contention are not bit-reproducible.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs.tracer import VERB_PHASES
from .aio_runtime import AioClock, AioNetwork
from .cluster import Server
from .codec import (PEER_DOWN, CodecError, FrameCodec, WireOneWay, WireRpc,
                    WireRpcReply, WireVerbReply, WireVerbs, decode_op,
                    encode_op)
from .effects import Coroutine, OneWay
from .network import (MESSAGE_NOMINAL_BYTES, NetworkConfig,
                      approx_payload_bytes)
from .runtime import EffectRuntimeBase, _payload_kind, _RpcRequest
from .shm_transport import (DEFAULT_RING_BYTES, ShmWorkerTransport,
                            cleanup_rings_by_name, create_inbound_rings,
                            ring_name, ring_names)

_LENGTH_BYTES = 4
_HOST = "127.0.0.1"

MP_TRANSPORTS = ("tcp", "shm")
MP_CODECS = ("packed", "pickle")

_STOP_GRACE_S = 5.0
"""How long a stopping worker keeps serving stragglers after ``stop``."""


class MpRunError(RuntimeError):
    """A multiprocess run failed (worker error, death, or timeout)."""


@dataclass
class MpRunSpec:
    """How each worker process recreates its share of a run.

    ``builder`` must be a *module-level* (picklable-by-reference)
    factory: ``builder(*args, **kwargs)`` builds the cluster via the
    harness's ``make_cluster`` (which, inside a worker, hands back that
    worker's live cluster) and returns a run object exposing
    ``workload`` / ``executor`` / ``config``.  ``driver(run_obj,
    cluster, worker_id)`` spawns that worker's tasks and returns a
    ``finalize() -> payload`` callable evaluated at local quiescence;
    the picklable payloads are what ``run_mp_workers`` returns to the
    parent.  Drivers are responsible for namespacing transaction ids
    (``repro.txn.common.seed_txn_ids``) before driving load.
    """

    builder: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    driver: Callable[[Any, "MpWorkerCluster", int], Callable[[], Any]] = None


def effective_mp_workers(config: Any) -> int:
    """Worker-process count for ``config`` (duck-typed RunConfig)."""
    n = config.n_partitions
    requested = getattr(config, "mp_workers", None)
    if requested is None:
        return n
    if requested < 1:
        raise ValueError(f"mp_workers must be >= 1, got {requested}")
    return min(requested, n)


# -- worker-side runtime ------------------------------------------------------


class MpServerRuntime(EffectRuntimeBase):
    """Interprets the effect vocabulary for one server of one worker.

    Owned targets (servers assigned to this worker) are reached
    in-process exactly like the asyncio loopback; everything else is
    encoded through the wire codec — descriptors for verbs, token-routed
    envelopes for RPCs and one-way messages — and crosses a real socket
    to the owning worker process.
    """

    __slots__ = ("_cluster", "network", "cpu_us", "_verb_pending",
                 "_rpc_pending", "_next_token")

    def __init__(self, cluster: "MpWorkerCluster", server_id: int):
        super().__init__(server_id)
        self._cluster = cluster
        self.network = cluster.network
        self.cpu_us = 0.0
        self._verb_pending: dict[int, tuple[Callable, bool]] = {}
        self._rpc_pending: dict[int, Callable[[Any], None]] = {}
        self._next_token = 0

    # -- base-class hooks --------------------------------------------------

    def _task_started(self) -> None:
        self._cluster._task_started()

    def _task_finished(self) -> None:
        self._cluster._task_finished()

    def perform(self, effect, cont) -> None:
        self._cluster.clock.events_fired += 1
        super().perform(effect, cont)

    def _batching_enabled(self) -> bool:
        return self.network.config.doorbell_batching

    def _defer(self, fn: Callable[[], None]) -> None:
        self._cluster.loop.call_soon(fn)

    def _do_compute(self, cost: float,
                    cont: Callable[[Any], None]) -> None:
        self.cpu_us += cost
        self._cluster.loop.call_soon(cont, None)

    def _do_sleep(self, delay: float,
                  cont: Callable[[Any], None]) -> None:
        if delay <= 0.0:
            self._cluster.loop.call_soon(cont, None)
            return
        self._cluster.loop.call_later(delay * 1e-6, cont, None)

    # -- verbs -------------------------------------------------------------

    def _one_sided(self, target: int, op: Callable[[], Any],
                   cont: Callable[[Any], None],
                   kind: str, nbytes: int | None) -> None:
        # Cross-worker verbs are accounted at their *actual* encoded
        # frame size (the codec knows better than any estimate); verbs
        # staying inside this worker keep the model's nominal sizes, as
        # no frame ever exists for them.
        if self._cluster.owns(target):
            self.network.stats.record_one_sided(
                kind, nbytes, remote=target != self.server_id,
                server=self.server_id)
            self._cluster.loop.call_soon(lambda: cont(op()))
            return
        sent = self._send_verbs(
            target, (op,), cont, batched=False,
            effect=f"OneSided(kind={kind!r}) to server {target}")
        self.network.stats.record_one_sided(kind, sent, remote=True,
                                            server=self.server_id)

    def _one_sided_batch(self, target, ops, cont, kinds) -> None:
        if self._cluster.owns(target):
            self.network.stats.record_batch(kinds, server=self.server_id)
            self._cluster.loop.call_soon(
                lambda: cont([op() for op in ops]))
            return
        kind = kinds[0][0] if kinds else "one_sided"
        sent = self._send_verbs(
            target, tuple(ops), cont, batched=True,
            effect=(f"BatchedOneSided(kind={kind!r}, {len(ops)} verbs) "
                    f"to server {target}"))
        # one frame carried the whole chain: split its real size across
        # the verbs so per-kind byte books still sum to wire bytes
        per = sent // len(ops)
        first = sent - per * (len(ops) - 1)
        self.network.stats.record_batch(
            [(k, first if i == 0 else per)
             for i, (k, _nb) in enumerate(kinds)],
            server=self.server_id)

    def _send_verbs(self, target: int, ops: tuple, cont: Callable,
                    batched: bool, effect: str) -> int:
        dst_worker = self._cluster.owner_of(target)
        if self._cluster.peer_is_down(dst_worker):
            # fail fast instead of queueing for a dead process: the
            # caller sees a peer_down status and aborts (retryably)
            result = [PEER_DOWN] * len(ops) if batched else PEER_DOWN
            self._cluster.loop.call_soon(cont, result)
            return 0
        specs = tuple(encode_op(op, effect) for op in ops)
        token = self._next_token
        self._next_token += 1
        self._verb_pending[token] = (cont, batched, dst_worker, len(ops))
        return self._cluster.transport.send(
            self.server_id, target,
            WireVerbs(token, specs, batched, self.current_trace),
            what=effect)

    # -- messages ----------------------------------------------------------

    def _payload_nbytes(self, size_of: Any) -> int:
        if self.network.config.account_payload_bytes:
            return approx_payload_bytes(size_of)
        return MESSAGE_NOMINAL_BYTES

    def send_rpc(self, effect, cont: Callable[[Any], None]) -> None:
        target = effect.target
        kind = _payload_kind(effect.payload, "rpc")
        if self._cluster.owns(target):
            self.network.stats.record_message(
                kind, self._payload_nbytes(effect.payload),
                remote=target != self.server_id, server=self.server_id)
            self._cluster.deliver_local(
                target, self.server_id,
                _RpcRequest(self.server_id, effect.payload, cont,
                            self.current_trace))
            return
        dst_worker = self._cluster.owner_of(target)
        if self._cluster.peer_is_down(dst_worker):
            self._cluster.loop.call_soon(cont, PEER_DOWN)
            return
        token = self._next_token
        self._next_token += 1
        self._rpc_pending[token] = (cont, dst_worker)
        sent = self._cluster.transport.send(
            self.server_id, target,
            WireRpc(token, effect.payload, self.current_trace),
            what=effect.describe())
        self.network.stats.record_message(kind, sent, remote=True,
                                          server=self.server_id)

    def post(self, target: int, payload: Any) -> None:
        kind = _payload_kind(payload, "one_way")
        if self._cluster.owns(target):
            self.network.stats.record_message(
                kind, self._payload_nbytes(payload),
                remote=target != self.server_id, server=self.server_id)
            self._cluster.deliver_local(target, self.server_id,
                                        OneWay(payload))
            return
        if self._cluster.peer_is_down(self._cluster.owner_of(target)):
            return  # one-way to a dead worker: dropped, like the wire would
        sent = self._cluster.transport.send(
            self.server_id, target, WireOneWay(payload),
            what=f"one-way message (kind={kind!r}) to server {target}")
        self.network.stats.record_message(kind, sent, remote=True,
                                          server=self.server_id)

    def send_payload(self, target: int, payload: Any,
                     kind: str, size_of: Any) -> None:
        # Only in-process plumbing wrappers (RPC request/reply objects
        # carrying live continuations) reach this hook; cross-worker
        # traffic goes through the wire forms above.
        self.network.stats.record_message(
            kind, self._payload_nbytes(size_of),
            remote=target != self.server_id, server=self.server_id)
        if not self._cluster.owns(target):
            raise CodecError(
                f"in-process payload {payload!r} addressed to foreign "
                f"server {target}; this is a runtime routing bug")
        self._cluster.deliver_local(target, self.server_id, payload)

    # -- wire delivery -----------------------------------------------------

    def on_transport(self, src: int, wire: Any) -> None:
        """Handle one decoded wire envelope addressed to this server."""
        if isinstance(wire, WireVerbs):
            traced = wire.trace and self.tracer.enabled
            t0 = self._cluster.sim.now if traced else 0.0
            values = []
            for spec in wire.specs:
                op = decode_op(spec).bind(self.dispatch_context)
                values.append(op())
            if traced:
                # server-side half of the trace tree: which participant
                # executed the verbs, attributed by verb kind
                self.tracer.span(wire.trace, 0, 0, self.server_id,
                                 VERB_PHASES.get(wire.specs[0][0], "read"),
                                 t0, self._cluster.sim.now)
            if self._cluster.peer_is_down(self._cluster.owner_of(src)):
                return  # the requester died since asking
            self._cluster.transport.send(
                self.server_id, src,
                WireVerbReply(wire.token, tuple(values), wire.batched),
                what="a verb reply")
        elif isinstance(wire, WireVerbReply):
            entry = self._verb_pending.pop(wire.token, None)
            if entry is None:
                return  # reply meant for this worker's dead predecessor
            cont, batched = entry[0], entry[1]
            values = list(wire.values)
            cont(values if batched else values[0])
        elif isinstance(wire, WireRpc):
            if self.rpc_handler is None:
                raise RuntimeError(
                    f"server {self.server_id} received an RPC but has no "
                    f"handler installed")

            def reply(value: Any, token: int = wire.token,
                      requester: int = src) -> None:
                if self._cluster.peer_is_down(
                        self._cluster.owner_of(requester)):
                    return
                sent = self._cluster.transport.send(
                    self.server_id, requester, WireRpcReply(token, value),
                    what="an RPC reply")
                self.network.stats.record_message(
                    "rpc_reply", sent, remote=True, server=self.server_id)

            self.spawn(self.rpc_handler(src, wire.payload), on_done=reply,
                       trace=wire.trace)
        elif isinstance(wire, WireRpcReply):
            entry = self._rpc_pending.pop(wire.token, None)
            if entry is not None:
                entry[0](wire.value)
        elif isinstance(wire, WireOneWay):
            self.on_message(src, OneWay(wire.payload))
        else:
            raise TypeError(f"unexpected wire payload {wire!r}")

    def resolve_peer_pendings(self, worker: int) -> None:
        """Complete every in-flight request addressed to a dead worker
        with PEER_DOWN, so no coordinator hangs on a reply that will
        never come (the commit FSM turns the status into a retryable
        abort)."""
        for token in [t for t, e in self._verb_pending.items()
                      if e[2] == worker]:
            cont, batched, _w, n_ops = self._verb_pending.pop(token)
            result = [PEER_DOWN] * n_ops if batched else PEER_DOWN
            self._cluster.loop.call_soon(cont, result)
        for token in [t for t, e in self._rpc_pending.items()
                      if e[1] == worker]:
            cont, _w = self._rpc_pending.pop(token)
            self._cluster.loop.call_soon(cont, PEER_DOWN)


class MpEngine:
    """Per-server facade over one :class:`MpServerRuntime` (same surface
    as :class:`~repro.sim.coroutines.Engine`)."""

    def __init__(self, cluster: "MpWorkerCluster", server_id: int):
        self.server_id = server_id
        self._cluster = cluster
        self.runtime = MpServerRuntime(cluster, server_id)

    @property
    def active_tasks(self) -> int:
        return self.runtime.active_tasks

    def set_rpc_handler(self,
                        handler: Callable[[int, Any], Coroutine]) -> None:
        self.runtime.rpc_handler = handler

    def spawn(self, gen: Coroutine,
              on_done: Callable[[Any], None] | None = None) -> None:
        self._cluster._spawn(self.runtime, gen, on_done)

    def post(self, target: int, payload: Any) -> None:
        self.runtime.post(target, payload)


# -- worker-side cluster ------------------------------------------------------


class MpWorkerCluster:
    """One worker process's view of the N-server cluster.

    Presents the full ``servers`` / ``engine()`` / ``network`` / ``sim``
    surface so the database layer wires storage and RPC dispatch for
    every server — but only the servers this worker *owns*
    (``server_id % n_workers == worker_id``) execute anything; their
    local copies of foreign partitions are never touched after loading.
    """

    def __init__(self, n_servers: int, worker_id: int, n_workers: int,
                 config: NetworkConfig | None = None, generation: int = 0):
        if not 0 <= worker_id < n_workers <= n_servers:
            raise ValueError(f"bad worker topology: worker {worker_id} of "
                             f"{n_workers} over {n_servers} servers")
        self.n_workers = n_workers
        self.worker_id = worker_id
        self.generation = generation
        """Restart count of this worker slot: 0 for an original spawn,
        incremented each time the parent respawns it after a death."""
        self.clock = AioClock()
        self.sim = self.clock
        self.network = AioNetwork(config)
        self.transport: MpWorkerTransport | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._pending_spawns: list[tuple] = []
        self._active = 0
        self._idle: asyncio.Event | None = None
        self._error: BaseException | None = None
        self._claimed = False
        self.wire_tables: tuple = ()
        self.recovery_enabled = False
        self.resume_at_us = 0.0
        self.peer_down_hooks: list[Callable] = []
        """Called as ``hook(worker, dead_generation)`` when a peer dies
        (the database layer reaps the dead generation's locks here)."""
        self.metrics_sampler = None
        """Timeline sampler the bench driver installs when
        ``metrics_interval`` is set; :func:`_serve_worker` ships its
        rows to the parent as ``metrics_sample`` messages."""
        self.metrics_interval_s: float = 0.0
        self._down_workers: set[int] = set()
        self.servers = [Server(i, MpEngine(self, i))
                        for i in range(n_servers)]

    def __len__(self) -> int:
        return len(self.servers)

    def server(self, server_id: int) -> Server:
        return self.servers[server_id]

    def engine(self, server_id: int) -> MpEngine:
        return self.servers[server_id].engine

    def owns(self, server_id: int) -> bool:
        return server_id % self.n_workers == self.worker_id

    def owner_of(self, server_id: int) -> int:
        return server_id % self.n_workers

    def owned_servers(self) -> list[int]:
        return [s.id for s in self.servers if self.owns(s.id)]

    def txn_namespace(self) -> int:
        """Txn-id namespace for this worker *generation*.  The modulo
        identity ``namespace % n_workers == worker_id`` survives
        restarts (lock owners remain attributable to their worker slot)
        while ``namespace // n_workers`` is the generation, so a
        respawn never reuses its predecessor's transaction ids."""
        return self.worker_id + self.generation * self.n_workers

    def peer_is_down(self, worker: int) -> bool:
        return worker in self._down_workers

    def fail_peer(self, worker: int, dead_generation: int = 0) -> None:
        """A peer worker died: stop routing to it, complete in-flight
        requests with PEER_DOWN, and reap the dead generation's locks.
        Idempotent — the parent's announcement and a transport-level
        connection error may both report the same death."""
        if worker == self.worker_id:
            return
        if worker not in self._down_workers:
            self._down_workers.add(worker)
            if self.transport is not None:
                self.transport.fail_peer(worker)
            for server in self.servers:
                if self.owns(server.id):
                    server.engine.runtime.resolve_peer_pendings(worker)
        # hooks re-run on repeat reports: a transport-level detection
        # fires with dead_generation=0, the parent's announcement later
        # supplies the exact generation to reap
        for hook in self.peer_down_hooks:
            hook(worker, dead_generation)

    def rewire_peer(self, worker: int, advert: Any,
                    dead_generation: int = 0) -> None:
        """The parent respawned a dead peer: reattach its channel and
        re-reap the dead generation's locks (a straggler frame from the
        dead generation may have re-taken one after the first reap)."""
        self._down_workers.discard(worker)
        if self.transport is not None:
            self.transport.rewire(worker, advert)
        for hook in self.peer_down_hooks:
            hook(worker, dead_generation)

    def register_wire_tables(self, names) -> None:
        """The packed codec's table registry (called by the database
        layer during the build, i.e. before the transport exists).

        Every worker rebuilds the database deterministically from the
        same spec, so every worker derives the *same* ordered name
        list — that shared derivation is the codec "negotiation"; no
        bytes are exchanged."""
        self.wire_tables = tuple(names)

    def run(self, max_events: int | None = None) -> None:
        raise RuntimeError("mp worker clusters are driven by the worker "
                           "serve loop, not run(); drive mp runs through "
                           "run_mp_benchmark / TpccRun.run() in the parent")

    def _claim(self, n_partitions: int) -> "MpWorkerCluster":
        if self._claimed:
            raise RuntimeError("the spec builder must create exactly one "
                               "cluster per worker (make_cluster called "
                               "twice)")
        if n_partitions != len(self.servers):
            raise ValueError(f"builder asked for {n_partitions} partitions "
                             f"but this worker serves {len(self.servers)}")
        self._claimed = True
        return self

    # -- task latch & spawning ---------------------------------------------

    def _spawn(self, runtime: MpServerRuntime, gen: Coroutine,
               on_done: Callable[[Any], None] | None) -> None:
        if not self.owns(runtime.server_id):
            raise ValueError(
                f"worker {self.worker_id} cannot drive tasks for foreign "
                f"server {runtime.server_id}")
        if self.loop is None:
            self._pending_spawns.append((runtime, gen, on_done))
        else:
            runtime.spawn(gen, on_done)

    def _task_started(self) -> None:
        self._active += 1
        if self._idle is not None:
            self._idle.clear()

    def _task_finished(self) -> None:
        self._active -= 1
        if self._active == 0 and self._idle is not None:
            self._idle.set()

    # -- delivery & failure -------------------------------------------------

    def deliver_local(self, dst: int, src: int, payload: Any) -> None:
        runtime = self.engine(dst).runtime

        def arrive() -> None:
            try:
                runtime.on_message(src, payload)
            except BaseException as exc:  # noqa: BLE001 - fatal for the run
                self._fatal(exc)

        self.loop.call_soon(arrive)

    def _deliver_wire(self, dst: int, src: int, wire: Any) -> None:
        if not self.owns(dst):
            self._fatal(RuntimeError(
                f"worker {self.worker_id} received a frame for foreign "
                f"server {dst} (routing bug)"))
            return
        try:
            self.engine(dst).runtime.on_transport(src, wire)
        except BaseException as exc:  # noqa: BLE001 - fatal for the run
            self._fatal(exc)

    def _fatal(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        if self._idle is not None:
            self._idle.set()

    def _loop_exception(self, loop: asyncio.AbstractEventLoop,
                        context: dict) -> None:
        self._fatal(context.get("exception")
                    or RuntimeError(context.get("message",
                                                "event loop error")))

    async def _drain(self) -> None:
        """Local quiescence: no active task after settling, transport
        outbound flushed.  A recorded fatal error ends the drain."""
        while True:
            await self._idle.wait()
            if self._error is not None:
                return
            settled = True
            for _ in range(4):
                await asyncio.sleep(0)
                if self._active or self._error is not None:
                    settled = False
                    break
            if not settled:
                if self._error is not None:
                    return
                continue
            if not self.transport.idle():
                await asyncio.sleep(0.001)
                continue
            if self._active == 0:
                return


# -- the wire -----------------------------------------------------------------


class MpWorkerTransport:
    """Real sockets between worker processes.

    One lazily-opened TCP connection per ordered (src_worker,
    dst_worker) pair; frames are length-prefixed codec bodies of
    ``(src_server, dst_server, wire_envelope)`` (struct-packed for hot
    verbs, pickled otherwise — see ``FrameCodec``).  Per-(src, dst)
    server channel FIFO follows from one connection + one writer task
    per worker pair and TCP byte ordering.  Writers coalesce: whatever
    frames accumulated in a channel queue go out as one ``write`` and
    one ``drain``, so a burst pays one syscall, not one per frame.
    """

    def __init__(self, cluster: MpWorkerCluster, listener: socket.socket,
                 ports: dict[int, int], codec: FrameCodec | None = None):
        self._cluster = cluster
        self._listener = listener
        self._ports = ports
        self._codec = codec or FrameCodec()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queues: dict[int, asyncio.Queue] = {}
        self._writers: dict[int, asyncio.Task] = {}
        self._down: set[int] = set()
        self._channel_in_flight: dict[int, int] = {}
        self._in_flight = 0
        """Frames accepted by :meth:`send` whose bytes have not yet been
        written to their socket.  ``idle()`` must count these: a frame
        a writer task has *popped* but not yet written would otherwise
        make the channel queues look empty while the frame is still in
        this process."""
        self.frames_sent = 0
        self.wire_bytes_sent = 0

    async def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._server = await asyncio.start_server(self._serve,
                                                  sock=self._listener)
        # channels to every peer are created up front (each writer task
        # dials its connection immediately — every peer's acceptor is
        # already listening before the parent shares the port map), like
        # an RDMA cluster's queue pairs.  Creation is synchronous: a
        # fast-starting peer can deliver a verb *while* this worker is
        # still starting, and the reply must find its channel queue
        # rather than crash the serve loop.
        for dst_worker in self._ports:
            if dst_worker != self._cluster.worker_id:
                self._ensure_channel(dst_worker)

    def _ensure_channel(self, dst_worker: int) -> asyncio.Queue:
        queue = self._queues.get(dst_worker)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[dst_worker] = queue
            self._writers[dst_worker] = self._loop.create_task(
                self._write_channel(dst_worker, queue))
        return queue

    def send(self, src: int, dst: int, wire: Any, what: str) -> int:
        if self._loop is None:
            raise RuntimeError("mp transport not started")
        body = self._codec.encode(src, dst, wire, what)
        dst_worker = self._cluster.owner_of(dst)
        if dst_worker == self._cluster.worker_id:
            raise RuntimeError(f"frame for owned server {dst} reached the "
                               f"transport (routing bug)")
        if dst_worker in self._down:
            return _LENGTH_BYTES + len(body)  # dropped: peer is dead
        self._in_flight += 1
        self._channel_in_flight[dst_worker] = \
            self._channel_in_flight.get(dst_worker, 0) + 1
        self._ensure_channel(dst_worker).put_nowait(body)
        return _LENGTH_BYTES + len(body)

    async def _write_channel(self, dst_worker: int,
                             queue: asyncio.Queue) -> None:
        writer = None
        try:
            _reader, writer = await asyncio.open_connection(
                _HOST, self._ports[dst_worker])
            closing = False
            while not closing:
                body = await queue.get()
                if body is _CloseChannel:
                    break
                # coalesce whatever else already queued behind it into
                # one write + one drain
                bodies = [body]
                while True:
                    try:
                        extra = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is _CloseChannel:
                        closing = True
                        break
                    bodies.append(extra)
                frame = b"".join(
                    piece for b in bodies
                    for piece in (len(b).to_bytes(_LENGTH_BYTES, "big"), b))
                writer.write(frame)
                self.frames_sent += len(bodies)
                self.wire_bytes_sent += len(frame)
                self._in_flight -= len(bodies)
                self._channel_in_flight[dst_worker] = \
                    self._channel_in_flight.get(dst_worker, 0) - len(bodies)
                await writer.drain()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if (isinstance(exc, OSError)
                    and self._cluster.recovery_enabled):
                # the peer process died under us: a survivable event on
                # recovery runs (the parent's announcement follows)
                self._cluster.fail_peer(dst_worker)
            else:
                self._cluster._fatal(exc)
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        decode = self._codec.decode
        try:
            while True:
                header = await reader.readexactly(_LENGTH_BYTES)
                length = int.from_bytes(header, "big")
                body = await reader.readexactly(length)
                src, dst, wire = decode(body)
                self._cluster._deliver_wire(dst, src, wire)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer worker closed the channel (normal at shutdown)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._cluster._fatal(exc)
        finally:
            writer.close()

    def idle(self) -> bool:
        return self._in_flight == 0 and \
            all(q.empty() for q in self._queues.values())

    def fail_peer(self, dst_worker: int) -> None:
        """Tear down the channel to a dead worker; queued frames are
        dropped (they were addressed to a process that no longer
        exists) and stop counting toward ``idle()``."""
        self._down.add(dst_worker)
        task = self._writers.pop(dst_worker, None)
        if task is not None:
            task.cancel()
        queue = self._queues.pop(dst_worker, None)
        if queue is not None:
            while not queue.empty():
                queue.get_nowait()
        self._in_flight -= self._channel_in_flight.pop(dst_worker, 0)

    def rewire(self, dst_worker: int, advert: Any) -> None:
        """A respawned worker advertised a fresh port; dial it lazily
        on the next frame."""
        self._ports[dst_worker] = advert
        self._down.discard(dst_worker)

    async def stop(self) -> None:
        for queue in self._queues.values():
            queue.put_nowait(_CloseChannel)
        if self._writers:
            await asyncio.gather(*self._writers.values(),
                                 return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._queues.clear()
        self._writers.clear()
        self._loop = None


class _CloseChannel:
    """Sentinel asking a channel writer task to flush and exit."""


# -- worker process entry -----------------------------------------------------

_ACTIVE_CLUSTER: MpWorkerCluster | None = None


def current_worker_cluster() -> MpWorkerCluster | None:
    """The live cluster while a spec builder runs inside a worker."""
    return _ACTIVE_CLUSTER


def cluster_for_config(n_partitions: int,
                       config: NetworkConfig | None) -> Any:
    """What ``make_cluster(backend="mp")`` returns.

    Inside a worker: that worker's live cluster (exactly once per
    build).  In the parent: an inert template so databases and
    executors can be constructed for inspection — driving the run
    happens through :func:`run_mp_workers`.
    """
    active = _ACTIVE_CLUSTER
    if active is not None:
        return active._claim(n_partitions)
    return MpTemplateCluster(n_partitions, config)


class _TemplateEngine:
    """Accepts wiring (RPC handlers) but refuses to execute."""

    def __init__(self, server_id: int):
        self.server_id = server_id
        self.active_tasks = 0
        self.rpc_handler = None

    def set_rpc_handler(self, handler) -> None:
        self.rpc_handler = handler

    def spawn(self, gen, on_done=None) -> None:
        raise RuntimeError(
            "this database was built against the parent-side template of "
            "a multiprocess run; drive it through run_mp_benchmark / "
            "TpccRun.run(), which re-creates it inside worker processes")

    post = spawn


class MpTemplateCluster:
    """Parent-side stand-in: carries the shape, never runs."""

    def __init__(self, n_servers: int, config: NetworkConfig | None = None):
        if n_servers <= 0:
            raise ValueError("cluster needs at least one server")
        self.clock = AioClock()
        self.sim = self.clock
        self.network = AioNetwork(config)
        self.servers = [Server(i, _TemplateEngine(i))
                        for i in range(n_servers)]

    def __len__(self) -> int:
        return len(self.servers)

    def server(self, server_id: int) -> Server:
        return self.servers[server_id]

    def engine(self, server_id: int) -> _TemplateEngine:
        return self.servers[server_id].engine

    def run(self, max_events: int | None = None) -> None:
        raise RuntimeError(
            "an mp-backend cluster in the parent process is a template; "
            "drive the run through run_mp_benchmark / TpccRun.run()")


def _worker_entry(conn, spec: MpRunSpec, config: Any, worker_id: int,
                  n_workers: int, generation: int = 0,
                  resume_at_us: float = 0.0) -> None:
    """Spawned process main: build, serve, report, exit."""
    try:
        _worker_body(conn, spec, config, worker_id, n_workers,
                     generation, resume_at_us)
    except BaseException:  # noqa: BLE001 - report, never hang the parent
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _worker_body(conn, spec: MpRunSpec, config: Any, worker_id: int,
                 n_workers: int, generation: int = 0,
                 resume_at_us: float = 0.0) -> None:
    global _ACTIVE_CLUSTER
    transport_kind = getattr(config, "mp_transport", "tcp") or "tcp"
    if transport_kind not in MP_TRANSPORTS:
        raise ValueError(f"unknown mp_transport {transport_kind!r} "
                         f"(expected one of {MP_TRANSPORTS})")
    listener = None
    rings_in = {}
    if transport_kind == "shm":
        # inbound rings must exist before any peer learns our advert;
        # with a run id the names are deterministic, so a respawned
        # generation recreates (and thereby reclaims) its predecessor's
        rings_in = create_inbound_rings(
            worker_id, n_workers,
            getattr(config, "mp_shm_ring_bytes", None) or DEFAULT_RING_BYTES,
            run_id=getattr(config, "mp_run_id", None))
        advert: Any = {src: ring.name for src, ring in rings_in.items()}
    else:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((_HOST, 0))
        listener.listen(64)
        advert = listener.getsockname()[1]
    try:
        conn.send(("port", worker_id, advert))
        msg = conn.recv()
        if not msg or msg[0] != "ports":
            return  # parent aborted before the run started
    except BaseException:
        for ring in rings_in.values():
            ring.close()
            ring.unlink()
        if listener is not None:
            listener.close()
        raise
    ports: dict[int, Any] = msg[1]

    cluster = MpWorkerCluster(config.n_partitions, worker_id, n_workers,
                              config.network_config(),
                              generation=generation)
    cluster.recovery_enabled = bool(getattr(config, "mp_recovery", False))
    cluster.resume_at_us = resume_at_us
    _ACTIVE_CLUSTER = cluster
    try:
        run_obj = spec.builder(*spec.args, **spec.kwargs)
    finally:
        _ACTIVE_CLUSTER = None
    if not cluster._claimed:
        raise RuntimeError(
            f"spec builder {spec.builder!r} never built a cluster via "
            f"make_cluster (is its config backend set to 'mp'?)")
    finalize = spec.driver(run_obj, cluster, worker_id)

    # the codec's table registry comes from this worker's own build —
    # identical on every worker, so no negotiation bytes are needed
    codec = FrameCodec(cluster.wire_tables,
                       packed=getattr(config, "mp_codec",
                                      "packed") != "pickle")
    if transport_kind == "shm":
        transport: Any = ShmWorkerTransport(cluster, rings_in, ports, codec)
    else:
        transport = MpWorkerTransport(cluster, listener, ports, codec)

    profile_dir = getattr(config, "mp_profile_dir", None)
    profiler = None
    if profile_dir:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        asyncio.run(_serve_worker(cluster, conn, transport, finalize,
                                  worker_id))
    finally:
        if profiler is not None:
            import os
            profiler.disable()
            profiler.dump_stats(os.path.join(profile_dir,
                                             f"worker-{worker_id}.prof"))


async def _serve_worker(cluster: MpWorkerCluster, conn,
                        transport: Any,
                        finalize: Callable[[], Any],
                        worker_id: int) -> None:
    loop = asyncio.get_running_loop()
    cluster.loop = loop
    cluster._idle = asyncio.Event()
    cluster._error = None
    cluster._active = 0
    loop.set_exception_handler(cluster._loop_exception)
    cluster.transport = transport
    stop = asyncio.Event()

    def on_parent_message() -> None:
        try:
            while conn.poll():
                msg = conn.recv()
                if not msg:
                    continue
                if msg[0] == "stop":
                    stop.set()
                elif msg[0] == "peer_down":
                    # (peer_down, worker, dead_generation)
                    cluster.fail_peer(msg[1], msg[2])
                elif msg[0] == "rewire":
                    # (rewire, worker, advert, dead_generation)
                    cluster.rewire_peer(msg[1], msg[2], msg[3])
        except (EOFError, OSError):
            stop.set()  # parent died: shut down rather than linger

    sampler = cluster.metrics_sampler
    sample_handle: asyncio.TimerHandle | None = None

    def ship_samples(rows) -> None:
        if rows:
            conn.send(("metrics_sample", worker_id, rows))

    def on_sample_timer() -> None:
        nonlocal sample_handle
        try:
            ship_samples(sampler.tick(cluster.clock.now))
        except (BrokenPipeError, OSError):
            return  # parent gone; stop sampling, stop handles exit
        sample_handle = loop.call_later(cluster.metrics_interval_s,
                                        on_sample_timer)

    loop.add_reader(conn.fileno(), on_parent_message)
    try:
        await transport.start(loop)
        # a respawned generation rejoins the fleet's elapsed timeline
        # instead of re-admitting a full horizon from zero
        cluster.clock.start(cluster.resume_at_us)
        if sampler is not None and cluster.metrics_interval_s:
            sample_handle = loop.call_later(cluster.metrics_interval_s,
                                            on_sample_timer)
        pending, cluster._pending_spawns = cluster._pending_spawns, []
        for runtime, gen, on_done in pending:
            runtime.spawn(gen, on_done)
        if cluster._active == 0:
            cluster._idle.set()
        await cluster._drain()
        if cluster._error is not None:
            raise cluster._error
        # fold the transport's ground-truth frame bytes into the stats
        # snapshot the finalize payload ships to the parent
        cluster.network.stats.wire_bytes_sent += getattr(
            transport, "wire_bytes_sent", 0)
        if sample_handle is not None:
            sample_handle.cancel()
            sample_handle = None
        if sampler is not None:
            # final partial interval, flushed in pipe order before the
            # done payload so the parent's timeline is complete when
            # the quiescence merge runs
            ship_samples(sampler.flush(cluster.clock.now))
        conn.send(("done", worker_id, finalize()))
        # keep serving foreign requests until every worker reported done
        # and the parent broadcast the stop
        await stop.wait()
        deadline = loop.time() + _STOP_GRACE_S
        while (loop.time() < deadline
               and not (cluster._active == 0 and transport.idle())):
            await asyncio.sleep(0.01)
    finally:
        if sample_handle is not None:
            sample_handle.cancel()
        loop.remove_reader(conn.fileno())
        await transport.stop()
        cluster.loop = None


# -- parent-side controller ---------------------------------------------------


def _spawn_worker(ctx, spec: MpRunSpec, config: Any, worker_id: int,
                  n_workers: int, generation: int,
                  resume_at_us: float) -> tuple:
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(
        target=_worker_entry,
        args=(child_conn, spec, config, worker_id, n_workers,
              generation, resume_at_us),
        daemon=True, name=f"mp-worker-{worker_id}.g{generation}")
    proc.start()
    child_conn.close()
    return proc, parent_conn


def run_mp_workers(spec: MpRunSpec, config: Any, *,
                   on_sample: Callable[[int, list], None] | None = None,
                   on_tick: Callable[[], None] | None = None,
                   tick_s: float | None = None) -> list[Any]:
    """Spawn the workers, run the spec, return per-worker payloads.

    ``config`` is duck-typed (the bench layer's ``RunConfig``): the
    controller reads ``n_partitions`` / ``mp_workers`` /
    ``mp_run_timeout_s`` / ``horizon_us`` and forwards the whole object
    to every worker's builder.  Teardown is unconditional — whatever
    happens, every worker process is joined (terminated, then killed if
    necessary) before this returns or raises.

    ``on_sample(worker_id, rows)`` receives each ``metrics_sample``
    message a worker ships (timeline rows, when the run has the
    metrics timeline on); ``on_tick`` is invoked about every
    ``tick_s`` seconds of wall clock between waits (the health
    watchdog evaluates here).  An exception from either aborts the
    run like a worker error would.

    With ``mp_recovery`` on, a worker that dies mid-run (crash or
    SIGKILL — ``mp_chaos_kill_worker`` injects one deliberately) is
    restarted up to ``mp_max_restarts`` times: the controller joins the
    corpse, reclaims its shm rings, announces ``peer_down`` to the
    survivors, respawns generation+1 resuming at the fleet's elapsed
    time, and rewires everyone once the replacement advertises.
    """
    if spec.driver is None:
        raise ValueError("MpRunSpec.driver is required")
    n_workers = effective_mp_workers(config)
    timeout = getattr(config, "mp_run_timeout_s", None)
    if timeout is None:
        timeout = getattr(config, "horizon_us", 0.0) / 1e6 + 60.0
    recovery = bool(getattr(config, "mp_recovery", False))
    restarts_left = int(getattr(config, "mp_max_restarts", 1)) \
        if recovery else 0
    run_id = getattr(config, "mp_run_id", None)
    ctx = multiprocessing.get_context("spawn")
    workers: dict[int, tuple] = {}       # worker_id -> live (proc, conn)
    all_workers: list[tuple] = []        # every incarnation, for teardown
    adverts: dict[int, Any] = {}
    generations = {w: 0 for w in range(n_workers)}
    chaos_timer = None
    try:
        for worker_id in range(n_workers):
            workers[worker_id] = _spawn_worker(ctx, spec, config,
                                               worker_id, n_workers, 0, 0.0)
        all_workers.extend(workers.values())
        deadline = time.monotonic() + timeout
        # handshake: a death here is fatal even with recovery on — no
        # run state exists yet worth saving
        adverts.update(_collect(workers, set(workers), "port", deadline))
        for _proc, parent in workers.values():
            parent.send(("ports", dict(adverts)))
        run_start = time.monotonic()

        victim = getattr(config, "mp_chaos_kill_worker", None)
        if victim is not None:
            chaos_timer = threading.Timer(
                getattr(config, "mp_chaos_kill_after_s", 0.5),
                workers[victim][0].kill)
            chaos_timer.daemon = True
            chaos_timer.start()

        results: dict[int, Any] = {}
        pending = set(workers)
        next_tick = (time.monotonic() + tick_s) if tick_s else None
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise MpRunError(
                    f"timed out waiting for {len(pending)} worker(s) to "
                    f"report 'done' (raise RunConfig.mp_run_timeout_s if "
                    f"the run is legitimately long)")
            wait_s = remaining
            if next_tick is not None:
                wait_s = min(wait_s,
                             max(0.0, next_tick - time.monotonic()))
            by_conn = {workers[w][1]: w for w in pending}
            ready = multiprocessing.connection.wait(list(by_conn),
                                                    timeout=wait_s)
            for conn in ready:
                w = by_conn[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    if restarts_left <= 0:
                        proc = workers[w][0]
                        raise MpRunError(
                            f"worker {proc.name} died before reporting "
                            f"'done' (exit code {proc.exitcode})") from None
                    restarts_left -= 1
                    all_workers.append(_restart_worker(
                        ctx, spec, config, w, n_workers, workers,
                        adverts, generations, run_id, run_start, deadline))
                    continue
                if msg[0] == "error":
                    raise MpRunError(f"worker {msg[1]} failed:\n{msg[2]}")
                if msg[0] == "metrics_sample":
                    if on_sample is not None:
                        on_sample(msg[1], msg[2])
                    continue
                if msg[0] != "done":
                    raise MpRunError(f"protocol error: expected 'done', "
                                     f"worker sent {msg[0]!r}")
                results[w] = msg[2]
                pending.discard(w)
            # evaluate only after draining the ready connections: a
            # blocking restart leaves minutes of queued samples in the
            # survivors' pipes, and ticking before reading them would
            # misread that backlog as silence
            if next_tick is not None and time.monotonic() >= next_tick:
                if on_tick is not None:
                    on_tick()
                next_tick = time.monotonic() + tick_s

        for _proc, parent in workers.values():
            try:
                parent.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        join_deadline = time.monotonic() + _STOP_GRACE_S + 5.0
        for proc, _parent in workers.values():
            proc.join(timeout=max(0.1, join_deadline - time.monotonic()))
        return [results[w] for w in range(n_workers)]
    finally:
        if chaos_timer is not None:
            chaos_timer.cancel()
        _teardown(all_workers)
        # a worker that died before its transport.stop() leaked its shm
        # rings; with a run id every possible name is derivable, else
        # fall back to the adverts actually exchanged (workers that
        # exited cleanly already unlinked — then this is a no-op)
        if run_id is not None:
            cleanup_rings_by_name(ring_names(run_id, n_workers))
        else:
            cleanup_rings_by_name(name for advert in adverts.values()
                                  if isinstance(advert, dict)
                                  for name in advert.values())


def _restart_worker(ctx, spec: MpRunSpec, config: Any, worker_id: int,
                    n_workers: int, workers: dict[int, tuple],
                    adverts: dict[int, Any], generations: dict[int, int],
                    run_id: str | None, run_start: float,
                    deadline: float) -> tuple:
    """Replace a dead worker in a running fleet; returns the new
    (proc, conn) pair (also installed into ``workers``)."""
    dead_proc, dead_conn = workers[worker_id]
    dead_gen = generations[worker_id]
    dead_proc.join(timeout=5.0)
    if dead_proc.is_alive():
        dead_proc.kill()
        dead_proc.join(timeout=5.0)
    try:
        dead_conn.close()
    except Exception:
        pass
    # reclaim the corpse's inbound rings before the replacement
    # recreates the same names
    if run_id is not None:
        cleanup_rings_by_name(ring_name(run_id, worker_id, src)
                              for src in range(n_workers)
                              if src != worker_id)
    elif isinstance(adverts.get(worker_id), dict):
        cleanup_rings_by_name(adverts[worker_id].values())
    # survivors must stop waiting on the dead generation (and reap its
    # locks) before the replacement starts issuing new-generation txns
    for sw, (_proc, sconn) in workers.items():
        if sw != worker_id:
            try:
                sconn.send(("peer_down", worker_id, dead_gen))
            except (BrokenPipeError, OSError):
                pass
    generations[worker_id] = dead_gen + 1
    resume_at_us = (time.monotonic() - run_start) * 1e6
    replacement = _spawn_worker(ctx, spec, config, worker_id, n_workers,
                                dead_gen + 1, resume_at_us)
    workers[worker_id] = replacement
    # private handshake: the newcomer rebuilds (workload population can
    # take a while), advertises, and gets the current fleet map
    advert = _collect(workers, {worker_id}, "port", deadline)[worker_id]
    adverts[worker_id] = advert
    replacement[1].send(("ports", dict(adverts)))
    for sw, (_proc, sconn) in workers.items():
        if sw != worker_id:
            try:
                sconn.send(("rewire", worker_id, advert, dead_gen))
            except (BrokenPipeError, OSError):
                pass
    return replacement


def _collect(workers: dict[int, tuple], worker_ids: set[int], tag: str,
             deadline: float) -> dict[int, Any]:
    """Gather one ``(tag, worker_id, value)`` message from each of
    ``worker_ids``, surfacing worker errors, deaths, and timeouts as
    MpRunError."""
    by_conn = {workers[w][1]: w for w in worker_ids}
    pending = set(by_conn)
    out: dict[int, Any] = {}
    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise MpRunError(
                f"timed out waiting for {len(pending)} worker(s) to "
                f"report {tag!r} (raise RunConfig.mp_run_timeout_s if the "
                f"run is legitimately long)")
        ready = multiprocessing.connection.wait(pending,
                                                timeout=remaining)
        for conn in ready:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                proc = workers[by_conn[conn]][0]
                raise MpRunError(
                    f"worker {proc.name} died before reporting {tag!r} "
                    f"(exit code {proc.exitcode})") from None
            if msg[0] == "error":
                raise MpRunError(
                    f"worker {msg[1]} failed:\n{msg[2]}")
            if msg[0] != tag:
                raise MpRunError(f"protocol error: expected {tag!r}, "
                                 f"worker sent {msg[0]!r}")
            out[msg[1]] = msg[2]
            pending.discard(conn)
    return out


def _teardown(workers: list[tuple]) -> None:
    """Join every worker incarnation, escalating so none can leak."""
    for proc, _parent in workers:
        if proc.is_alive():
            proc.terminate()
    for proc, _parent in workers:
        if proc.is_alive():
            proc.join(timeout=5.0)
    for proc, _parent in workers:
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
    for _proc, parent in workers:
        try:
            parent.close()
        except Exception:
            pass
