"""Cluster wiring: N servers, each a (storage slot, execution engine) pair.

The simulation layer stays ignorant of the database layer: ``storage`` is
an opaque slot that `repro.txn` / `repro.core` fill with a
:class:`~repro.storage.partition.Partition` (and replicas).
"""

from __future__ import annotations

from typing import Any

from .coroutines import Engine
from .events import Simulator
from .network import Network, NetworkConfig


class Server:
    """One simulated machine: an engine plus whatever storage it hosts."""

    def __init__(self, server_id: int, engine: Engine):
        self.id = server_id
        self.engine = engine
        self.storage: Any = None

    def __repr__(self) -> str:
        return f"Server({self.id})"


class Cluster:
    """A set of servers sharing one simulator and one network."""

    def __init__(self, n_servers: int,
                 config: NetworkConfig | None = None,
                 sim: Simulator | None = None):
        if n_servers <= 0:
            raise ValueError("cluster needs at least one server")
        self.sim = sim or Simulator()
        self.network = Network(self.sim, config)
        self.servers = [Server(i, Engine(self.sim, self.network, i))
                        for i in range(n_servers)]

    def __len__(self) -> int:
        return len(self.servers)

    def server(self, server_id: int) -> Server:
        return self.servers[server_id]

    def engine(self, server_id: int) -> Engine:
        return self.servers[server_id].engine

    def run(self, max_events: int | None = None) -> None:
        """Drive the simulation until quiescence."""
        self.sim.run(max_events)
